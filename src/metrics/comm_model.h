// Closed-form communication predictor: the per-superstep mirror-sync bytes
// a vertex-cut engine will move for a given partition — the quantity the
// replication factor controls (the paper's Table-5 mechanism), available
// without running an application.
#ifndef DNE_METRICS_COMM_MODEL_H_
#define DNE_METRICS_COMM_MODEL_H_

#include <cstdint>

#include "graph/graph.h"
#include "partition/edge_partition.h"

namespace dne {

/// Predicted bytes of one full gather+scatter round when every replicated
/// vertex synchronises (the PageRank regime): each of a vertex's k-1
/// mirrors sends and receives one (vertex id, payload) record.
///   bytes = sum_v 2 (k_v - 1) (payload + sizeof(VertexId)).
std::uint64_t PredictSyncBytesPerRound(const Graph& g,
                                       const EdgePartition& partition,
                                       std::uint64_t payload_bytes);

}  // namespace dne

#endif  // DNE_METRICS_COMM_MODEL_H_
