#include "metrics/theory.h"

#include <cmath>
#include <vector>

#include "common/zeta.h"

namespace dne {

namespace {

// Truncation point for the numeric expectations: the power-law densities
// with alpha > 2 have negligible mass beyond 2^24 at our 1e-4 precision.
constexpr std::uint64_t kMaxDegree = 1 << 24;

// Expectation of f(d) under the *continuous* power-law (Pareto) density
// p(d) = (alpha - 1) d^-alpha for d >= 1 — the degree model Xie et al. [49]
// analyse the hash methods under. Integrated with per-bin mass
// (d^{1-alpha} - (d+step)^{1-alpha}) and f evaluated at the bin midpoint;
// bins widen geometrically so the tail costs O(log dmax).
template <typename F>
double ExpectPareto(double alpha, F f) {
  double sum = 0.0;
  std::uint64_t d = 1;
  while (d < kMaxDegree) {
    const std::uint64_t step = std::max<std::uint64_t>(1, d / 64);
    const std::uint64_t hi = std::min(d + step, kMaxDegree);
    const double mass = std::pow(static_cast<double>(d), 1.0 - alpha) -
                        std::pow(static_cast<double>(hi), 1.0 - alpha);
    sum += mass * f(0.5 * static_cast<double>(d + hi));
    d = hi;
  }
  return sum;
}

}  // namespace

double Theorem1UpperBound(std::uint64_t num_edges, std::uint64_t num_vertices,
                          std::uint64_t num_partitions) {
  return static_cast<double>(num_edges + num_vertices + num_partitions) /
         static_cast<double>(num_vertices);
}

double DneExpectedUpperBound(double alpha) {
  // Discrete zeta form, exactly as the paper computes its own row of
  // Table 1: E[UB] ~= zeta(alpha-1)/(2 zeta(alpha)) + 1.
  return 0.5 * RiemannZeta(alpha - 1.0) / RiemannZeta(alpha) + 1.0;
}

double RandomExpectedRf(double alpha, std::uint64_t num_partitions) {
  // Each of a vertex's d edges lands on a uniform partition:
  // E[A(v) | d] = |P| (1 - (1 - 1/|P|)^d)   (occupancy).
  const double p = static_cast<double>(num_partitions);
  return ExpectPareto(alpha, [p](double d) {
    return p * (1.0 - std::pow(1.0 - 1.0 / p, d));
  });
}

double GridExpectedRf(double alpha, std::uint64_t num_partitions) {
  // A vertex's replicas are confined to its grid row + column: the same
  // occupancy over 2 sqrt(|P|) - 1 candidate cells.
  const double sqrt_p = std::sqrt(static_cast<double>(num_partitions));
  const double c = 2.0 * sqrt_p - 1.0;
  return ExpectPareto(alpha, [c](double d) {
    return c * (1.0 - std::pow(1.0 - 1.0 / c, d));
  });
}

double DbhExpectedRf(double alpha, std::uint64_t num_partitions) {
  // DBH hashes each edge by its lower-degree endpoint. For a vertex of
  // degree d, an incident edge is hashed *away* by the neighbour with
  // probability q(d) = Pr[neighbour degree < d] under the edge-biased
  // Pareto distribution (CDF 1 - d^{2-alpha}); otherwise it sticks to the
  // fixed home partition h(v). Occupancy over home + random targets:
  //   E[A | d] = (1 - (q (1 - 1/P))^d) + (P-1) (1 - (1 - q/P)^d).
  //
  // NOTE: this is an *exact expectation* under the model. The paper's
  // Table 1 instead reprints the (looser) upper-bound theorems of [49],
  // which is why its DBH/Random entries sit higher — see EXPERIMENTS.md.
  const double p = static_cast<double>(num_partitions);
  return ExpectPareto(alpha, [p, alpha](double d) {
    const double q = 1.0 - std::pow(d, 2.0 - alpha);
    const double home_empty = std::pow(q * (1.0 - 1.0 / p), d);
    const double other_occupied = 1.0 - std::pow(1.0 - q / p, d);
    return (1.0 - home_empty) + (p - 1.0) * other_occupied;
  });
}

}  // namespace dne
