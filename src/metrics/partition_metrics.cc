#include "metrics/partition_metrics.h"

#include <algorithm>

namespace dne {

VertexReplicaSets ComputeVertexReplicaSets(const Graph& g,
                                           const EdgePartition& partition) {
  const VertexId n = g.NumVertices();
  VertexReplicaSets out;
  // Two-pass bucket build: count, prefix-sum, fill, then per-vertex
  // sort+unique compaction.
  std::vector<std::uint64_t> counts(n + 1, 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.edge(e);
    ++counts[ed.src + 1];
    ++counts[ed.dst + 1];
  }
  for (VertexId v = 0; v < n; ++v) counts[v + 1] += counts[v];
  std::vector<PartitionId> flat(counts[n]);
  std::vector<std::uint64_t> cursor(counts.begin(), counts.end() - 1);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.edge(e);
    const PartitionId p = partition.Get(e);
    flat[cursor[ed.src]++] = p;
    flat[cursor[ed.dst]++] = p;
  }

  out.offsets.assign(n + 1, 0);
  out.partitions.reserve(counts[n] / 2);
  for (VertexId v = 0; v < n; ++v) {
    auto begin = flat.begin() + static_cast<std::ptrdiff_t>(counts[v]);
    auto end = flat.begin() + static_cast<std::ptrdiff_t>(counts[v + 1]);
    std::sort(begin, end);
    auto last = std::unique(begin, end);
    for (auto it = begin; it != last; ++it) out.partitions.push_back(*it);
    out.offsets[v + 1] = out.partitions.size();
  }
  return out;
}

PartitionMetrics ComputePartitionMetrics(const Graph& g,
                                         const EdgePartition& partition) {
  PartitionMetrics m;
  const std::uint32_t num_parts = partition.num_partitions();
  m.edges_per_partition = partition.PartitionSizes();
  m.vertices_per_partition.assign(num_parts, 0);

  VertexReplicaSets sets = ComputeVertexReplicaSets(g, partition);
  std::uint64_t non_isolated = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto parts = sets.of(v);
    if (parts.empty()) continue;
    ++non_isolated;
    m.total_replicas += parts.size();
    if (parts.size() >= 2) ++m.cut_vertices;
    for (PartitionId p : parts) ++m.vertices_per_partition[p];
  }

  if (non_isolated > 0) {
    m.replication_factor = static_cast<double>(m.total_replicas) /
                           static_cast<double>(non_isolated);
  }

  auto balance = [](const std::vector<std::uint64_t>& xs) {
    if (xs.empty()) return 0.0;
    std::uint64_t mx = 0, sum = 0;
    for (std::uint64_t x : xs) {
      mx = std::max(mx, x);
      sum += x;
    }
    if (sum == 0) return 0.0;
    return static_cast<double>(mx) * static_cast<double>(xs.size()) /
           static_cast<double>(sum);
  };
  m.edge_balance = balance(m.edges_per_partition);
  m.vertex_balance = balance(m.vertices_per_partition);
  return m;
}

}  // namespace dne
