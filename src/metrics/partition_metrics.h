// Quality metrics of an edge partition: replication factor (Eq. (1)),
// edge/vertex balance (Sec. 7.6).
#ifndef DNE_METRICS_PARTITION_METRICS_H_
#define DNE_METRICS_PARTITION_METRICS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "partition/edge_partition.h"

namespace dne {

/// Quality summary of an edge partition.
struct PartitionMetrics {
  /// RF = (1/|V|) * sum_p |V(E_p)| over non-isolated vertices (Eq. (1)).
  double replication_factor = 0.0;
  /// EB = max_p |E_p| / mean_p |E_p|.
  double edge_balance = 0.0;
  /// VB = max_p |V(E_p)| / mean_p |V(E_p)|.
  double vertex_balance = 0.0;
  /// Total vertex replicas sum_p |V(E_p)|.
  std::uint64_t total_replicas = 0;
  /// Number of vertices present in >= 2 partitions (cut vertices).
  std::uint64_t cut_vertices = 0;
  /// |E_p| per partition.
  std::vector<std::uint64_t> edges_per_partition;
  /// |V(E_p)| per partition.
  std::vector<std::uint64_t> vertices_per_partition;
};

/// Computes all metrics in one pass over the edges.
PartitionMetrics ComputePartitionMetrics(const Graph& g,
                                         const EdgePartition& partition);

/// For each vertex, the set of partitions its edges touch, as a flat
/// adjacency (offsets + partition ids, sorted per vertex). Exposed for the
/// app engine (master/mirror construction) and tests.
struct VertexReplicaSets {
  std::vector<std::uint64_t> offsets;   ///< size |V|+1
  std::vector<PartitionId> partitions;  ///< concatenated sorted sets
  std::span<const PartitionId> of(VertexId v) const {
    return {partitions.data() + offsets[v], partitions.data() + offsets[v + 1]};
  }
};

VertexReplicaSets ComputeVertexReplicaSets(const Graph& g,
                                           const EdgePartition& partition);

}  // namespace dne

#endif  // DNE_METRICS_PARTITION_METRICS_H_
