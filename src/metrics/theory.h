// Theoretical partitioning-quality bounds from Section 6 of the paper:
// Theorem 1 (Distributed NE upper bound) and the expected replication
// factors of the hash-based methods on power-law graphs (Table 1, following
// Xie et al. [49]).
#ifndef DNE_METRICS_THEORY_H_
#define DNE_METRICS_THEORY_H_

#include <cstdint>

namespace dne {

/// Theorem 1: RF <= (|E| + |V| + |P|) / |V| for any graph partitioned by
/// Distributed NE (single-vertex expansion).
double Theorem1UpperBound(std::uint64_t num_edges, std::uint64_t num_vertices,
                          std::uint64_t num_partitions);

/// Expected Theorem-1 bound on the power-law graph model of Eq. (6) with
/// d_min = 1 and |P|/|V| ~= 0:
///   E[UB] ~= E[|E|/|V|] + 1 = zeta(alpha-1)/(2 zeta(alpha)) + 1.
double DneExpectedUpperBound(double alpha);

/// Expected replication factor of 1-D random hashing on the power-law model:
///   E[RF] = E_d[ |P| (1 - (1 - 1/|P|)^d) ].
double RandomExpectedRf(double alpha, std::uint64_t num_partitions);

/// Expected replication factor of 2-D (grid) hashing: each vertex's edges
/// fall in its row+column candidate set of size 2*sqrt(|P|) - 1.
double GridExpectedRf(double alpha, std::uint64_t num_partitions);

/// Expected replication factor of degree-based hashing (DBH [49]): each edge
/// is hashed by its lower-degree endpoint. For a vertex of degree d, an
/// incident edge is hashed *away* (by the neighbour) with probability q(d) =
/// Pr[neighbour degree < d] + 0.5 Pr[equal] under the edge-biased degree
/// distribution; occupancy over partitions then gives E[A(v)].
double DbhExpectedRf(double alpha, std::uint64_t num_partitions);

}  // namespace dne

#endif  // DNE_METRICS_THEORY_H_
