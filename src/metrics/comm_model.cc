#include "metrics/comm_model.h"

#include "metrics/partition_metrics.h"

namespace dne {

std::uint64_t PredictSyncBytesPerRound(const Graph& g,
                                       const EdgePartition& partition,
                                       std::uint64_t payload_bytes) {
  VertexReplicaSets sets = ComputeVertexReplicaSets(g, partition);
  const std::uint64_t record = payload_bytes + sizeof(VertexId);
  std::uint64_t bytes = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const std::size_t k = sets.of(v).size();
    if (k > 1) bytes += 2 * (k - 1) * record;
  }
  return bytes;
}

}  // namespace dne
