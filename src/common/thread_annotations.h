// Clang Thread Safety Analysis support: annotation macros plus an annotated
// Mutex/MutexLock pair wrapping std::mutex.
//
// The macros expand to clang's thread-safety attributes when the compiler
// supports them (-Wthread-safety; promoted to an error in CI) and to nothing
// elsewhere, so gcc builds are unaffected. Annotating a class makes its
// locking discipline machine-checked: reads/writes of a DNE_GUARDED_BY
// member outside its mutex, a forgotten unlock, or a call into a
// DNE_REQUIRES function without the lock all become compile errors instead
// of latent races. See the README "Correctness tooling" section for how the
// analysis, TSan, and tools/dne_lint.py divide the work.
//
// Discipline for this repo (enforced on every mutex-owning class):
//   * the mutex is a dne::Mutex member, conventionally `mu_`;
//   * every member it protects carries DNE_GUARDED_BY(mu_);
//   * public entry points take DNE_MutexLock lock(&mu_); private helpers
//     that expect the caller to hold it carry DNE_REQUIRES(mu_).
// Classes that are *externally* synchronised (phase-structured sharing with
// no internal mutex, e.g. AllToAll and the RankMailboxes) instead document
// their happens-before contract in the class comment — the analysis cannot
// express barrier-structured sharing, which is what the TSan stress suite
// (tests/tsan_stress_test.cc) covers at runtime.
#ifndef DNE_COMMON_THREAD_ANNOTATIONS_H_
#define DNE_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define DNE_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define DNE_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define DNE_CAPABILITY(x) DNE_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define DNE_SCOPED_CAPABILITY DNE_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member readable/writable only while holding the named mutex.
#define DNE_GUARDED_BY(x) DNE_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member whose *pointee* is protected by the named mutex.
#define DNE_PT_GUARDED_BY(x) DNE_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function that must be called with the named mutex(es) held.
#define DNE_REQUIRES(...) \
  DNE_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function that must be called with the named mutex(es) NOT held.
#define DNE_EXCLUDES(...) \
  DNE_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Function that acquires the mutex(es) and does not release them.
#define DNE_ACQUIRE(...) \
  DNE_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function that releases mutex(es) the caller holds.
#define DNE_RELEASE(...) \
  DNE_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function that acquires the mutex iff it returns `b`.
#define DNE_TRY_ACQUIRE(b, ...) \
  DNE_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(b, __VA_ARGS__))

/// Asserts (at runtime semantics, statically trusted) that the lock is held.
#define DNE_ASSERT_CAPABILITY(x) \
  DNE_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Function returning a reference to the named mutex.
#define DNE_RETURN_CAPABILITY(x) \
  DNE_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch for code whose locking is correct but inexpressible (e.g. a
/// destructor that tears down workers which still take the lock). Every use
/// must carry a comment saying why the analysis cannot follow it.
#define DNE_NO_THREAD_SAFETY_ANALYSIS \
  DNE_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace dne {

/// std::mutex with capability annotations. Also satisfies BasicLockable
/// (lower-case lock/unlock), so a std::condition_variable_any can wait on
/// it directly — the ThreadPool does exactly that — without losing the
/// static analysis on every other access.
class DNE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DNE_ACQUIRE() { mu_.lock(); }
  void Unlock() DNE_RELEASE() { mu_.unlock(); }
  bool TryLock() DNE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling for std::condition_variable_any / std::scoped_lock.
  void lock() DNE_ACQUIRE() { mu_.lock(); }
  void unlock() DNE_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over dne::Mutex, visible to the analysis as a scoped
/// acquisition (the annotated stand-in for std::lock_guard).
class DNE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DNE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DNE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace dne

#endif  // DNE_COMMON_THREAD_ANNOTATIONS_H_
