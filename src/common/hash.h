// Deterministic 64-bit hashing kernels used for all hash-based partitioners
// and for the 2-D initial distribution of Distributed NE. The paper (Sec. 4)
// computes replica metadata *functionally from vertex ids* instead of storing
// maps; these kernels are that function.
#ifndef DNE_COMMON_HASH_H_
#define DNE_COMMON_HASH_H_

#include <cstdint>

#include "common/types.h"

namespace dne {

/// SplitMix64 finalizer: a high-quality, allocation-free 64-bit mixer.
/// Deterministic across platforms and runs (no seed-by-address tricks), which
/// keeps every partitioner reproducible.
inline std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash of a vertex id under a salt (salt lets independent experiments draw
/// independent hash functions).
inline std::uint64_t HashVertex(VertexId v, std::uint64_t salt = 0) {
  return Mix64(v + 0x632be59bd9b4e019ULL * (salt + 1));
}

/// Hash of an (unordered) edge; canonical order is applied so (u,v) == (v,u).
inline std::uint64_t HashEdge(VertexId u, VertexId v, std::uint64_t salt = 0) {
  VertexId lo = u < v ? u : v;
  VertexId hi = u < v ? v : u;
  return Mix64(Mix64(lo + salt) ^ (hi * 0x9e3779b97f4a7c15ULL));
}

/// Boost-style hash combiner for composite keys.
inline std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

}  // namespace dne

#endif  // DNE_COMMON_HASH_H_
