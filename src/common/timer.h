// Wall-clock timer used by the benchmark harness.
#ifndef DNE_COMMON_TIMER_H_
#define DNE_COMMON_TIMER_H_

#include <chrono>

namespace dne {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dne

#endif  // DNE_COMMON_TIMER_H_
