// Riemann / Hurwitz zeta evaluation for the theoretical bounds of Section 6.
#ifndef DNE_COMMON_ZETA_H_
#define DNE_COMMON_ZETA_H_

namespace dne {

/// Hurwitz zeta zeta(s, a) = sum_{k>=0} (k + a)^{-s}, for s > 1, a > 0.
/// Direct summation with an Euler-Maclaurin tail correction; accurate to
/// ~1e-12 for the s in (1, 4] range used by the power-law bounds.
double HurwitzZeta(double s, double a);

/// Riemann zeta zeta(s) = HurwitzZeta(s, 1), s > 1.
double RiemannZeta(double s);

/// Mean degree of the power-law graph model of Eq. (6) with d_min = 1:
/// E[d] = zeta(alpha - 1) / zeta(alpha). (Sec. 6, "Comparison with the Other
/// Distributed Methods".)
double PowerLawMeanDegree(double alpha);

}  // namespace dne

#endif  // DNE_COMMON_ZETA_H_
