// Core scalar types and the Edge record shared by every module.
#ifndef DNE_COMMON_TYPES_H_
#define DNE_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <tuple>

namespace dne {

/// Vertex identifier. 64-bit so that trillion-edge-scale graphs (2^30 vertices
/// and beyond) are representable without remapping.
using VertexId = std::uint64_t;

/// Dense edge identifier; indexes into the canonical edge array of a Graph.
using EdgeId = std::uint64_t;

/// Partition identifier (the paper's `p` in `P`). 32 bits: the paper targets
/// up to ~1K partitions; 2^32 leaves ample headroom.
using PartitionId = std::uint32_t;

/// Sentinel meaning "edge not yet allocated to any partition".
inline constexpr PartitionId kNoPartition =
    std::numeric_limits<PartitionId>::max();

/// Sentinel for an invalid / absent vertex.
inline constexpr VertexId kNoVertex = std::numeric_limits<VertexId>::max();

/// An undirected edge e_{u,v}. Canonical form (used by EdgeList::Normalize)
/// stores src <= dst so each undirected edge has exactly one representation.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst;
  }
  friend bool operator!=(const Edge& a, const Edge& b) { return !(a == b); }
  friend bool operator<(const Edge& a, const Edge& b) {
    return std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
  }
};

}  // namespace dne

#endif  // DNE_COMMON_TYPES_H_
