// Status: RocksDB-style error propagation without exceptions.
#ifndef DNE_COMMON_STATUS_H_
#define DNE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dne {

/// Result of a fallible library operation. The library never throws across
/// its public API; every fallible call returns a Status (or fills an output
/// parameter and returns Status), following the RocksDB/Arrow idiom.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kIOError,
    kInternal,
    kNotSupported,
    kCancelled,
    kUnavailable,
    kDeadlineExceeded,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  /// A transient distributed-runtime failure (peer crash, stalled mesh
  /// round, corrupted frame): the operation failed but the run may be
  /// recoverable by the supervisor — restart from the last checkpoint.
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  /// A request ran past its deadline: the work was cooperatively stopped at
  /// a superstep boundary, so partial-progress stats are still valid and no
  /// mesh round is left hanging.
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "InvalidArgument: num_partitions == 0".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Early-return helper: propagates a non-OK Status to the caller.
#define DNE_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::dne::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace dne

#endif  // DNE_COMMON_STATUS_H_
