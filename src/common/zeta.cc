#include "common/zeta.h"

#include <cmath>

namespace dne {

double HurwitzZeta(double s, double a) {
  // Sum the first N terms directly, then add the Euler-Maclaurin tail:
  //   sum_{k>=N} (k+a)^-s ~= (N+a)^{1-s}/(s-1) + 0.5*(N+a)^-s
  //                          + s/12*(N+a)^{-s-1} - ...
  constexpr int kDirectTerms = 64;
  double sum = 0.0;
  for (int k = 0; k < kDirectTerms; ++k) {
    sum += std::pow(k + a, -s);
  }
  const double x = kDirectTerms + a;
  sum += std::pow(x, 1.0 - s) / (s - 1.0);
  sum += 0.5 * std::pow(x, -s);
  sum += s / 12.0 * std::pow(x, -s - 1.0);
  sum -= s * (s + 1.0) * (s + 2.0) / 720.0 * std::pow(x, -s - 3.0);
  return sum;
}

double RiemannZeta(double s) { return HurwitzZeta(s, 1.0); }

double PowerLawMeanDegree(double alpha) {
  return RiemannZeta(alpha - 1.0) / RiemannZeta(alpha);
}

}  // namespace dne
