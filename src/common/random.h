// SplitMix64 RNG: tiny, fast, deterministic, UniformRandomBitGenerator.
#ifndef DNE_COMMON_RANDOM_H_
#define DNE_COMMON_RANDOM_H_

#include <cstdint>

namespace dne {

/// Deterministic 64-bit RNG (SplitMix64). Used everywhere instead of
/// std::mt19937_64 because its state is 8 bytes and its output sequence is
/// stable across standard-library implementations, keeping experiments
/// byte-reproducible.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed = 0x853c49e6748fea9bULL)
      : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) { return (*this)() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace dne

#endif  // DNE_COMMON_RANDOM_H_
