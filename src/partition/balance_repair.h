// BalanceRepair: post-pass that restores the Eq. (2) balance constraint
// (max_p |E_p| < alpha |E| / |P|) on ANY edge partition while increasing the
// replication factor as little as possible. Useful after partitioner
// families that trade balance for quality (Ginger, Spinner), and as the
// library's general repair utility for downstream users.
#ifndef DNE_PARTITION_BALANCE_REPAIR_H_
#define DNE_PARTITION_BALANCE_REPAIR_H_

#include <cstdint>

#include "common/status.h"
#include "graph/graph.h"
#include "partition/edge_partition.h"

namespace dne {

struct BalanceRepairOptions {
  /// Target balance slack alpha (>= 1.0).
  double alpha = 1.1;
  std::uint64_t seed = 1;
};

/// Result counters of a repair run.
struct BalanceRepairStats {
  std::uint64_t moved_edges = 0;
  double rf_before = 0.0;
  double rf_after = 0.0;
  double eb_before = 0.0;
  double eb_after = 0.0;
};

/// Moves edges out of over-full partitions into under-full ones, preferring
/// moves that do not create new vertex replicas (both endpoints already
/// present in the destination), then moves with one shared endpoint, then
/// arbitrary edges. Modifies `partition` in place.
Status RepairBalance(const Graph& g, const BalanceRepairOptions& options,
                     EdgePartition* partition, BalanceRepairStats* stats);

}  // namespace dne

#endif  // DNE_PARTITION_BALANCE_REPAIR_H_
