// Grid (2-D hash) edge partitioning [53, 9, 4, 17]. Also provides the
// row/column replica algebra reused by Distributed NE's initial distribution.
#ifndef DNE_PARTITION_GRID_PARTITIONER_H_
#define DNE_PARTITION_GRID_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace dne {

/// Arranges the |P| partitions in an R x C grid (R = the largest divisor of
/// |P| that is <= sqrt(|P|)); edge (u, v) goes to the cell at the
/// intersection of u's row and v's column, so a vertex's replicas are
/// confined to its row + column (<= R + C - 1 partitions).
class GridPartitioner : public Partitioner {
 public:
  explicit GridPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  std::string name() const override { return "grid"; }
  Status Partition(const Graph& g, std::uint32_t num_partitions,
                   EdgePartition* out) override;
  PartitionRunStats run_stats() const override { return stats_; }

  /// Grid shape used for a given |P|: returns {rows, cols}, rows*cols == P.
  static void GridShape(std::uint32_t num_partitions, std::uint32_t* rows,
                        std::uint32_t* cols);

 private:
  std::uint64_t seed_;
  PartitionRunStats stats_;
};

}  // namespace dne

#endif  // DNE_PARTITION_GRID_PARTITIONER_H_
