// Grid (2-D hash) edge partitioning [53, 9, 4, 17]. Also provides the
// row/column replica algebra reused by Distributed NE's initial distribution.
#ifndef DNE_PARTITION_GRID_PARTITIONER_H_
#define DNE_PARTITION_GRID_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "partition/partitioner.h"
#include "partition/streaming_partitioner.h"

namespace dne {

/// Arranges the |P| partitions in an R x C grid (R = the largest divisor of
/// |P| that is <= sqrt(|P|)); edge (u, v) goes to the cell at the
/// intersection of u's row and v's column, so a vertex's replicas are
/// confined to its row + column (<= R + C - 1 partitions). Stateless per
/// edge, so the streaming facet reproduces the batch assignment exactly.
class GridPartitioner : public Partitioner, public StreamingPartitioner {
 public:
  explicit GridPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  std::string name() const override { return "grid"; }
  StreamingPartitioner* streaming() override { return this; }

  Status BeginStream(std::uint32_t num_partitions,
                     const PartitionContext& ctx) override;
  using StreamingPartitioner::BeginStream;
  Status AddEdges(std::span<const Edge> edges) override;
  Status Finish(EdgePartition* out) override;

  /// Grid shape used for a given |P|: returns {rows, cols}, rows*cols == P.
  static void GridShape(std::uint32_t num_partitions, std::uint32_t* rows,
                        std::uint32_t* cols);

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  std::uint64_t seed_;

  bool stream_open_ = false;
  std::uint32_t stream_k_ = 0;
  std::uint32_t stream_rows_ = 0;
  std::uint32_t stream_cols_ = 0;
  std::uint64_t stream_seed_ = 0;
  PartitionContext stream_ctx_;
  std::vector<PartitionId> stream_assign_;
};

}  // namespace dne

#endif  // DNE_PARTITION_GRID_PARTITIONER_H_
