#include "partition/ginger_partitioner.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/hash.h"
#include "common/timer.h"

namespace dne {

Status GingerPartitioner::Partition(const Graph& g,
                                    std::uint32_t num_partitions,
                                    EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  WallTimer timer;
  const VertexId n = g.NumVertices();
  const EdgeId m = g.NumEdges();

  // Low-degree vertices own a "home" partition; each of their edges follows
  // the home of the lower-degree endpoint, hub-hub edges are hashed. This is
  // hybrid-cut re-expressed in vertex-placement form, which is what Ginger
  // refines.
  auto is_low = [&](VertexId v) {
    return g.degree(v) <= options_.degree_threshold;
  };
  std::vector<PartitionId> home(n);
  for (VertexId v = 0; v < n; ++v) {
    home[v] =
        static_cast<PartitionId>(HashVertex(v, options_.seed) % num_partitions);
  }

  // Loads for the Fennel penalty, maintained incrementally over moves.
  std::vector<double> vload(num_partitions, 0.0);
  std::vector<double> eload(num_partitions, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    vload[home[v]] += 1.0;
    eload[home[v]] += static_cast<double>(g.degree(v));
  }
  const double v_target = static_cast<double>(n) / num_partitions;
  const double e_target = 2.0 * static_cast<double>(m) / num_partitions;

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  const std::uint64_t seed = options_.seed;
  std::sort(order.begin(), order.end(), [seed](VertexId a, VertexId b) {
    return Mix64(a ^ seed) < Mix64(b ^ seed);
  });

  std::vector<double> affinity(num_partitions, 0.0);
  std::vector<PartitionId> touched;
  for (int round = 0; round < options_.rounds; ++round) {
    for (VertexId v : order) {
      if (!is_low(v) || g.degree(v) == 0) continue;
      touched.clear();
      for (const Adjacency& a : g.neighbors(v)) {
        const PartitionId hp = home[a.to];
        if (affinity[hp] == 0.0) touched.push_back(hp);
        affinity[hp] += 1.0;
      }
      const PartitionId cur = home[v];
      PartitionId best = cur;
      double best_score = -1e300;
      // Hard per-partition edge capacity on top of the Fennel score: Ginger
      // inherits hybrid-cut's balance goal, so a move may not overfill the
      // target partition.
      const double e_cap = 1.5 * e_target;
      auto score_of = [&](PartitionId p) {
        const double penalty =
            0.5 * (vload[p] / v_target + eload[p] / e_target);
        return affinity[p] - options_.balance_weight * penalty;
      };
      const double d_v = static_cast<double>(g.degree(v));
      for (PartitionId p : touched) {
        if (p != cur && eload[p] + d_v > e_cap) continue;
        const double s = score_of(p);
        if (s > best_score + 1e-12) {
          best_score = s;
          best = p;
        }
      }
      if (score_of(cur) >= best_score - 1e-12) best = cur;  // sticky
      for (PartitionId p : touched) affinity[p] = 0.0;
      if (best != cur) {
        const double d = static_cast<double>(g.degree(v));
        vload[cur] -= 1.0;
        eload[cur] -= d;
        vload[best] += 1.0;
        eload[best] += d;
        home[v] = best;
      }
    }
  }

  *out = EdgePartition(num_partitions, m);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& ed = g.edge(e);
    const bool src_low = is_low(ed.src);
    const bool dst_low = is_low(ed.dst);
    if (!src_low && !dst_low) {
      out->Set(e, static_cast<PartitionId>(
                      HashEdge(ed.src, ed.dst, options_.seed) %
                      num_partitions));
      continue;
    }
    VertexId key;
    if (src_low && dst_low) {
      key = g.degree(ed.src) <= g.degree(ed.dst) ? ed.src : ed.dst;
    } else {
      key = src_low ? ed.src : ed.dst;
    }
    out->Set(e, home[key]);
  }

  stats_ = PartitionRunStats{};
  stats_.wall_seconds = timer.Seconds();
  stats_.peak_memory_bytes = g.MemoryBytes() +
                             n * sizeof(PartitionId) +
                             2 * num_partitions * sizeof(double);
  return Status::OK();
}

}  // namespace dne
