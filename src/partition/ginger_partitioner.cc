#include "partition/ginger_partitioner.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/hash.h"
#include "core/partitioner_registry.h"
#include "partition/greedy/score_engine.h"

namespace dne {

namespace {
constexpr EdgeId kCheckStride = 8192;

// The hybrid-cut edge rule over refined homes: low-degree edges follow the
// lower-degree endpoint's home, hub-hub edges stay hashed.
PartitionId GingerAssign(const Edge& ed, std::uint64_t du, std::uint64_t dv,
                         const std::vector<PartitionId>& home,
                         std::size_t threshold, std::uint64_t seed,
                         std::uint32_t num_partitions) {
  const bool src_low = du <= threshold;
  const bool dst_low = dv <= threshold;
  if (!src_low && !dst_low) {
    return static_cast<PartitionId>(HashEdge(ed.src, ed.dst, seed) %
                                    num_partitions);
  }
  VertexId key;
  if (src_low && dst_low) {
    key = du <= dv ? ed.src : ed.dst;
  } else {
    key = src_low ? ed.src : ed.dst;
  }
  return home[key];
}

OptionSchema GingerSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "home/edge hash seed"),
      OptionSpec::Uint("degree_threshold", 100,
                       "PowerLyra theta: degrees above it stay hashed"),
      OptionSpec::Int("rounds", 3, 0, 1000,
                      "refinement sweeps over low-degree vertices"),
      OptionSpec::Double("balance_weight", 1.0, 0.0, 1e6,
                         "weight of the Fennel balance penalty"),
      OptionSpec::Bool("legacy_scorer", false,
                       "use the pre-engine hand-rolled affinity arrays")};
}

}  // namespace

Status GingerPartitioner::ComputeHomes(const Graph& g,
                                       std::uint32_t num_partitions,
                                       std::uint64_t seed,
                                       const PartitionContext& ctx,
                                       std::vector<PartitionId>* out) const {
  const VertexId n = g.NumVertices();
  const EdgeId m = g.NumEdges();

  // Low-degree vertices own a "home" partition; each of their edges follows
  // the home of the lower-degree endpoint, hub-hub edges are hashed. This is
  // hybrid-cut re-expressed in vertex-placement form, which is what Ginger
  // refines.
  auto is_low = [&](VertexId v) {
    return g.degree(v) <= options_.degree_threshold;
  };
  std::vector<PartitionId>& home = *out;
  home.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    home[v] = static_cast<PartitionId>(HashVertex(v, seed) % num_partitions);
  }

  // Loads for the Fennel penalty, maintained incrementally over moves.
  std::vector<double> vload(num_partitions, 0.0);
  std::vector<double> eload(num_partitions, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    vload[home[v]] += 1.0;
    eload[home[v]] += static_cast<double>(g.degree(v));
  }
  const double v_target = static_cast<double>(n) / num_partitions;
  const double e_target = 2.0 * static_cast<double>(m) / num_partitions;

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [seed](VertexId a, VertexId b) {
    return Mix64(a ^ seed) < Mix64(b ^ seed);
  });

  // The per-vertex candidate accumulator: the engine path uses the shared
  // greedy::NeighborAffinity, the legacy path keeps the hand-rolled array
  // pair. Both accumulate identically (first-seen touched order, +1.0
  // increments), so the move decisions below are mode-independent.
  greedy::NeighborAffinity engine_affinity;
  std::vector<double> legacy_affinity;
  std::vector<PartitionId> legacy_touched;
  if (options_.legacy_scorer) {
    legacy_affinity.assign(num_partitions, 0.0);
  } else {
    engine_affinity.Reset(num_partitions);
  }
  for (int round = 0; round < options_.rounds; ++round) {
    DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
    ctx.ReportProgress("round", static_cast<std::uint64_t>(round),
                       static_cast<std::uint64_t>(options_.rounds));
    for (VertexId v : order) {
      if (!is_low(v) || g.degree(v) == 0) continue;
      if (options_.legacy_scorer) {
        legacy_touched.clear();
        for (const Adjacency& a : g.neighbors(v)) {
          const PartitionId hp = home[a.to];
          if (legacy_affinity[hp] == 0.0) legacy_touched.push_back(hp);
          legacy_affinity[hp] += 1.0;
        }
      } else {
        for (const Adjacency& a : g.neighbors(v)) {
          engine_affinity.Add(home[a.to]);
        }
      }
      const std::vector<PartitionId>& touched =
          options_.legacy_scorer ? legacy_touched : engine_affinity.touched();
      const auto affinity_of = [&](PartitionId p) {
        return options_.legacy_scorer ? legacy_affinity[p]
                                      : engine_affinity.value(p);
      };
      const PartitionId cur = home[v];
      PartitionId best = cur;
      double best_score = -1e300;
      // Hard per-partition edge capacity on top of the Fennel score: Ginger
      // inherits hybrid-cut's balance goal, so a move may not overfill the
      // target partition.
      const double e_cap = 1.5 * e_target;
      auto score_of = [&](PartitionId p) {
        const double penalty =
            0.5 * (vload[p] / v_target + eload[p] / e_target);
        return affinity_of(p) - options_.balance_weight * penalty;
      };
      const double d_v = static_cast<double>(g.degree(v));
      for (PartitionId p : touched) {
        if (p != cur && eload[p] + d_v > e_cap) continue;
        const double s = score_of(p);
        if (s > best_score + 1e-12) {
          best_score = s;
          best = p;
        }
      }
      if (score_of(cur) >= best_score - 1e-12) best = cur;  // sticky
      if (options_.legacy_scorer) {
        for (PartitionId p : legacy_touched) legacy_affinity[p] = 0.0;
      } else {
        engine_affinity.Clear();
      }
      if (best != cur) {
        const double d = static_cast<double>(g.degree(v));
        vload[cur] -= 1.0;
        eload[cur] -= d;
        vload[best] += 1.0;
        eload[best] += d;
        home[v] = best;
      }
    }
  }
  return Status::OK();
}

Status GingerPartitioner::PartitionImpl(const Graph& g,
                                        std::uint32_t num_partitions,
                                        const PartitionContext& ctx,
                                        EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const std::uint64_t seed = ctx.EffectiveSeed(options_.seed);
  const EdgeId m = g.NumEdges();

  std::vector<PartitionId> home;
  DNE_RETURN_IF_ERROR(ComputeHomes(g, num_partitions, seed, ctx, &home));

  *out = EdgePartition(num_partitions, m);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& ed = g.edge(e);
    out->Set(e, GingerAssign(ed, g.degree(ed.src), g.degree(ed.dst), home,
                             options_.degree_threshold, seed,
                             num_partitions));
  }

  stats_.peak_memory_bytes = g.MemoryBytes() +
                             g.NumVertices() * sizeof(PartitionId) +
                             2 * num_partitions * sizeof(double);
  return Status::OK();
}

Status GingerPartitioner::BeginStream(std::uint32_t num_partitions,
                                      const PartitionContext& ctx) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  stream_open_ = true;
  stream_k_ = num_partitions;
  stream_seed_ = ctx.EffectiveSeed(options_.seed);
  stream_ctx_ = ctx;
  stream_buffer_.clear();
  stream_peak_bytes_ = 0;
  return Status::OK();
}

Status GingerPartitioner::AddEdges(std::span<const Edge> edges) {
  if (!stream_open_) {
    return Status::InvalidArgument("AddEdges before BeginStream");
  }
  DNE_RETURN_IF_ERROR(stream_ctx_.CheckCancelled());
  stream_buffer_.insert(stream_buffer_.end(), edges.begin(), edges.end());
  stream_peak_bytes_ =
      std::max(stream_peak_bytes_, stream_buffer_.capacity() * sizeof(Edge));
  stream_ctx_.ReportProgress("edges", stream_buffer_.size(), 0);
  return Status::OK();
}

Status GingerPartitioner::Finish(EdgePartition* out) {
  if (!stream_open_) {
    return Status::InvalidArgument("Finish before BeginStream");
  }
  stream_open_ = false;
  // Rebuild the graph from the buffered stream: the refinement needs whole
  // neighbourhoods, which no single-pass method has. Degrees and homes are
  // keyed by global vertex id, so the arrival-order assignment below is
  // independent of the rebuild's canonical edge order.
  EdgeList list;
  list.Reserve(stream_buffer_.size());
  for (const Edge& ed : stream_buffer_) list.Add(ed.src, ed.dst);
  Graph g = Graph::Build(std::move(list));

  std::vector<PartitionId> home;
  DNE_RETURN_IF_ERROR(
      ComputeHomes(g, stream_k_, stream_seed_, stream_ctx_, &home));

  *out = EdgePartition(stream_k_, stream_buffer_.size());
  const EdgeId m = stream_buffer_.size();
  for (EdgeId e = 0; e < m; ++e) {
    if (e % kCheckStride == 0) {
      stream_ctx_.ReportProgress("edges", e, m);
    }
    const Edge& ed = stream_buffer_[e];
    out->Set(e, GingerAssign(ed, g.degree(ed.src), g.degree(ed.dst), home,
                             options_.degree_threshold, stream_seed_,
                             stream_k_));
  }
  stream_ctx_.ReportProgress("edges", m, m);
  stats_.peak_memory_bytes =
      std::max(stream_peak_bytes_,
               g.MemoryBytes() + home.capacity() * sizeof(PartitionId) +
                   stream_buffer_.capacity() * sizeof(Edge) +
                   m * sizeof(PartitionId));
  stream_buffer_.clear();
  return Status::OK();
}

DNE_REGISTER_PARTITIONER(
    ginger,
    PartitionerInfo{
        .name = "ginger",
        .description = "hybrid-cut + Fennel-style greedy refinement",
        .paper_order = 60,
        .schema = GingerSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          const OptionSchema s = GingerSchema();
          GingerOptions o;
          o.seed = s.UintOr(c, "seed");
          o.degree_threshold =
              static_cast<std::size_t>(s.UintOr(c, "degree_threshold"));
          o.rounds = static_cast<int>(s.IntOr(c, "rounds"));
          o.balance_weight = s.DoubleOr(c, "balance_weight");
          o.legacy_scorer = s.BoolOr(c, "legacy_scorer");
          return std::make_unique<GingerPartitioner>(o);
        },
        .streaming = true})

}  // namespace dne
