// The multi-process DNE transport: forks `nproc` rank processes, streams
// each one its 2-D shard over the control channel, lets them run the
// rank-local superstep loop against a SocketCommunicator mesh, then
// collects results + accounting tapes and replays them into the same stats
// machinery the in-process driver uses.
//
// Rank-local memory is real here: a child builds its allocation/expansion
// state only from the streamed shard — the forked copy-on-write image of
// the parent is never touched. The partition is bit-identical to the
// in-process transport for any process count; what changes is the
// accounting source (observed frames instead of modeled bytes).
#ifndef DNE_PARTITION_DNE_DNE_PROCESS_TRANSPORT_H_
#define DNE_PARTITION_DNE_DNE_PROCESS_TRANSPORT_H_

#include <cstdint>

#include "common/status.h"
#include "core/partition_context.h"
#include "graph/graph.h"
#include "partition/dne/dne_options.h"
#include "partition/edge_partition.h"

namespace dne {

/// Runs Distributed NE over `nproc` forked rank processes. `seed` is the
/// already-resolved effective seed. Fills `*out` (validated by the caller)
/// and the full `*stats` record. A crashed or wedged rank process surfaces
/// as Status::Internal naming the process — never a hang.
Status RunDneProcessTransport(const Graph& g, std::uint32_t num_partitions,
                              const DneOptions& options, std::uint64_t seed,
                              int nproc, const PartitionContext& ctx,
                              EdgePartition* out, DneStats* stats);

}  // namespace dne

#endif  // DNE_PARTITION_DNE_DNE_PROCESS_TRANSPORT_H_
