// The multi-process DNE transport: forks `nproc` rank processes, hands
// each one its 2-D shard (kCtrlEdges frames over the control channel for
// the socket mesh, a pre-fork MAP_SHARED bulk region parsed in place for
// the shm mesh, or out-of-core straight from an edge file), lets them run
// the rank-local superstep loop against a MeshCommunicator mesh
// (socketpairs or shared-memory rings, per DneOptions::transport), then
// collects results + accounting tapes and replays them into the same stats
// machinery the in-process driver uses.
//
// Rank-local memory is real here: a child builds its allocation/expansion
// state only from the streamed shard — the forked copy-on-write image of
// the parent is never touched. The partition is bit-identical to the
// in-process transport for any process count; what changes is the
// accounting source (observed frames instead of modeled bytes).
#ifndef DNE_PARTITION_DNE_DNE_PROCESS_TRANSPORT_H_
#define DNE_PARTITION_DNE_DNE_PROCESS_TRANSPORT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/partition_context.h"
#include "graph/graph.h"
#include "partition/dne/dne_options.h"
#include "partition/edge_partition.h"

namespace dne {

/// Runs Distributed NE over `nproc` forked rank processes. `seed` is the
/// already-resolved effective seed. Fills `*out` (validated by the caller)
/// and the full `*stats` record. A crashed or wedged rank process surfaces
/// as Status::Internal naming the process — never a hang.
Status RunDneProcessTransport(const Graph& g, std::uint32_t num_partitions,
                              const DneOptions& options, std::uint64_t seed,
                              int nproc, const PartitionContext& ctx,
                              EdgePartition* out, DneStats* stats);

/// Out-of-core ingest source for RunDneProcessTransportStream: a *canonical*
/// edge file — the edges a Graph::Build of the same input would hold, in
/// ascending edge-id order (e.g. a binary v2 file saved from a built graph).
/// That order is the contract that keeps the streamed run bit-identical to
/// the materialized one; raw generator output is NOT canonical.
struct DneStreamSpec {
  std::string path;
  /// "text", "bin" or "auto" (see graph/edge_stream_reader.h).
  std::string format = "auto";
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  /// Edges per streamed chunk — the coordinator's and each child's ingest
  /// working set is O(chunk_edges), never O(num_edges).
  std::uint64_t chunk_edges = 1ull << 20;
  /// When true the coordinator re-streams the file after the run to gather
  /// the full edge->partition assignment into `*out` (O(E) output memory,
  /// as any materialized assignment must be). When false, only per-partition
  /// edge counts come back (DneStats::edges_per_partition) and the
  /// coordinator's peak memory stays O(chunk_edges); `out` must be null.
  bool gather_assignment = true;
};

/// Out-of-core variant: every rank process opens `spec.path` itself and
/// keeps only the edges of its own 2-D shard — the coordinator ships
/// routing (the config), not edges, so no address space ever materializes
/// the full edge list. Requires a multi-process DneOptions::transport.
Status RunDneProcessTransportStream(const DneStreamSpec& spec,
                                    std::uint32_t num_partitions,
                                    const DneOptions& options,
                                    std::uint64_t seed, int nproc,
                                    const PartitionContext& ctx,
                                    EdgePartition* out, DneStats* stats);

}  // namespace dne

#endif  // DNE_PARTITION_DNE_DNE_PROCESS_TRANSPORT_H_
