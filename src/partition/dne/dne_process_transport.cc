#include "partition/dne/dne_process_transport.h"

#include <poll.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/timer.h"
#include "graph/edge_stream_reader.h"
#include "partition/dne/dne_rank_state.h"
#include "partition/dne/two_d_distribution.h"
#include "runtime/checkpoint.h"
#include "runtime/fault_injector.h"
#include "runtime/process_cluster.h"
#include "runtime/shm_ring.h"
#include "runtime/wire.h"

namespace dne {
namespace {

static_assert(std::is_trivially_copyable_v<DneOptions>,
              "DneOptions is shipped to rank processes by memcpy");

// Control-channel frame kinds (disjoint from DneMsgKind so a crossed wire
// is caught as a protocol desync, not misparsed).
enum CtrlKind : std::uint8_t {
  kCtrlConfig = 32,
  kCtrlEdges = 33,
  kCtrlEdgesDone = 34,
  kCtrlResult = 35,
  kCtrlStats = 36,
  kCtrlError = 37,
  // A rank process hit a recoverable (kUnavailable) failure: it closed its
  // mesh ends, reported where it stood (ParkedHead + message) and now sits
  // parked until the supervisor SIGKILLs the cluster for the restart.
  kCtrlParked = 38,
  // Out-of-core counts-only result: per hosted rank, the per-partition edge
  // counts of its shard instead of the full assignment vector — the reply
  // that keeps the coordinator O(chunk), not O(E).
  kCtrlResultCounts = 39,
};

struct ConfigTail {
  std::uint32_t num_partitions;
  std::uint32_t nproc;
  std::uint32_t proc_index;
  /// Superstep to restore from the checkpoint directory (0 = fresh start).
  std::uint32_t resume_step;
  std::uint64_t num_vertices;
  std::uint64_t total_edges;
  std::uint64_t seed;
  /// Supervisor recovery epoch: 0 on the original attempt, +1 per restart.
  /// Keys the fault plan so an injected fault does not refire after the
  /// recovery it was meant to trigger.
  std::int32_t epoch;
  /// 0 = the coordinator ships the shard as kCtrlEdges frames. 1/2 = the
  /// child streams its shard itself from the edge file whose path follows
  /// the tail in the config frame (1 = full assignments come back, 2 =
  /// per-partition counts only).
  std::uint32_t ingest_mode;
  /// Edges per streamed ingest chunk (ingest_mode != 0).
  std::uint64_t chunk_edges;
};

/// Run directory at the head of the shm bulk region (transport=shm with a
/// materialized graph): one slot per rank, followed by the runs — bare
/// 16-byte {src, dst} records in ascending global edge order, exactly the
/// bytes a kCtrlEdges stream would have carried. This never crosses a
/// wire; the layout is private to one coordinator and the children that
/// inherited its mapping, so it is not a wire POD.
struct BulkRankRun {
  std::uint64_t offset;  ///< byte offset of the run from the region base
  std::uint64_t count;   ///< edges in the run
};

/// Payload head of a kCtrlParked frame; the failure message follows.
struct ParkedHead {
  std::uint32_t superstep;
  std::uint8_t round_kind;  ///< wire kind of the mesh round that failed
  std::uint8_t pad[3] = {0, 0, 0};
};

struct RankStatsRecord {
  std::uint32_t rank;
  std::uint32_t pad = 0;
  std::uint64_t two_hop;
  std::uint64_t restarts;
  std::uint64_t mem_bytes;
  std::uint64_t boundary_peak;
};

struct StatsHead {
  std::uint64_t iterations;
  std::uint64_t rss_bytes;
  double phase_seconds[4];
  double distribute_seconds;
  std::uint32_t num_local;
  std::uint32_t pad = 0;
  std::uint64_t num_steps;
  std::uint64_t checkpoint_bytes;
  double checkpoint_seconds;
};

constexpr const char* kCoordinator = "coordinator";

std::uint64_t SelfPeakRssBytes() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
}

/// Human name of a mesh round for the structured failure report.
const char* MeshRoundName(std::uint8_t kind) {
  switch (static_cast<DneMsgKind>(kind)) {
    case DneMsgKind::kSelectRequest:
      return "select";
    case DneMsgKind::kSyncPair:
      return "sync";
    case DneMsgKind::kStepEnd:
      return "step-end";
    case DneMsgKind::kBarrier:
      return "barrier";
    case DneMsgKind::kAllGather:
      return "all-gather";
    case DneMsgKind::kBoundaryReport:
      return "boundary-report";
    case DneMsgKind::kEdgeHandoff:
      return "edge-handoff";
    case DneMsgKind::kStepSummary:
      return "step-summary";
    default:
      return "unknown";
  }
}

// ---- Tape step wire encoding (stats frames + checkpoint tape frames) --------

void AppendTapeStep(const TapeLedger::Step& step,
                    std::vector<unsigned char>* buf) {
  wire::AppendPod(buf, static_cast<std::uint8_t>(step.selection));
  wire::AppendPod(buf, static_cast<std::uint8_t>(step.superstep_end));
  wire::AppendPod(buf, std::uint16_t{0});
  wire::AppendPod(buf, std::uint32_t{0});
  for (const TapeLedger::StepRow& row : step.rows) {
    wire::AppendPod(buf, row.work);
    wire::AppendPod(buf, row.data_bytes);
    wire::AppendPod(buf, row.data_messages);
    wire::AppendPod(buf, row.control_bytes);
    wire::AppendPod(buf, row.wire_bytes);
    wire::AppendPod(buf, row.wire_frames);
  }
}

bool ReadTapeStep(wire::PayloadReader* reader, std::size_t num_local,
                  TapeLedger::Step* step) {
  std::uint8_t selection = 0, superstep_end = 0;
  std::uint16_t pad16 = 0;
  std::uint32_t pad32 = 0;
  if (!reader->Read(&selection) || !reader->Read(&superstep_end) ||
      !reader->Read(&pad16) || !reader->Read(&pad32)) {
    return false;
  }
  step->selection = selection != 0;
  step->superstep_end = superstep_end != 0;
  step->rows.resize(num_local);
  for (TapeLedger::StepRow& row : step->rows) {
    if (!reader->Read(&row.work) || !reader->Read(&row.data_bytes) ||
        !reader->Read(&row.data_messages) ||
        !reader->Read(&row.control_bytes) || !reader->Read(&row.wire_bytes) ||
        !reader->Read(&row.wire_frames)) {
      return false;
    }
  }
  return true;
}

// ---- Child side -------------------------------------------------------------

/// Serialises this process's full superstep-boundary state into one
/// checkpoint file (see runtime/checkpoint.h for the frame layout).
Status WriteCheckpoint(const std::string& dir, int child,
                       const ConfigTail& tail, std::uint32_t num_partitions,
                       const std::vector<int>& local,
                       const std::vector<DneRankState>& states,
                       const TapeLedger& ledger, std::uint32_t superstep,
                       std::uint64_t total_allocated,
                       const std::vector<std::uint64_t>& allocated_vec,
                       const std::vector<std::uint64_t>& all_peeks,
                       bool tear_tail, std::uint64_t* bytes_written) {
  ckpt::CheckpointWriter writer;
  DNE_RETURN_IF_ERROR(writer.Open(dir, child, superstep));

  std::vector<unsigned char> frame;
  ckpt::CkptFileHeader fh;
  fh.nproc = tail.nproc;
  fh.proc_index = static_cast<std::uint32_t>(child);
  fh.num_partitions = num_partitions;
  fh.num_local_ranks = static_cast<std::uint32_t>(local.size());
  fh.superstep = superstep;
  fh.num_vertices = tail.num_vertices;
  fh.total_edges = tail.total_edges;
  fh.seed = tail.seed;
  fh.total_allocated = total_allocated;
  wire::AppendPod(&frame, fh);
  for (std::uint64_t a : allocated_vec) wire::AppendPod(&frame, a);
  for (std::uint64_t p : all_peeks) wire::AppendPod(&frame, p);
  DNE_RETURN_IF_ERROR(
      writer.WriteFrame(ckpt::kCkptHeader, frame.data(), frame.size()));

  std::vector<unsigned char> alloc_blob, exp_blob;
  for (std::size_t l = 0; l < local.size(); ++l) {
    const DneRankState& st = states[l];
    alloc_blob.clear();
    exp_blob.clear();
    st.alloc.SerializeState(&alloc_blob);
    st.expansion.SerializeState(&exp_blob);
    frame.clear();
    ckpt::CkptRankHeader rh;
    rh.rank = static_cast<std::uint32_t>(local[l]);
    rh.alloc_bytes = alloc_blob.size();
    rh.expansion_bytes = exp_blob.size();
    rh.two_hop_edges = st.two_hop_edges;
    rh.random_restarts = st.random_restarts;
    wire::AppendPod(&frame, rh);
    frame.insert(frame.end(), alloc_blob.begin(), alloc_blob.end());
    frame.insert(frame.end(), exp_blob.begin(), exp_blob.end());
    DNE_RETURN_IF_ERROR(
        writer.WriteFrame(ckpt::kCkptRank, frame.data(), frame.size()));
  }

  // The closed-step tape history rides along so a resumed run's end-of-run
  // stats replay covers the whole run, not just the post-recovery tail.
  frame.clear();
  wire::AppendPod(&frame, static_cast<std::uint64_t>(ledger.steps().size()));
  for (const TapeLedger::Step& step : ledger.steps()) {
    AppendTapeStep(step, &frame);
  }
  DNE_RETURN_IF_ERROR(
      writer.WriteFrame(ckpt::kCkptTape, frame.data(), frame.size()));

  DNE_RETURN_IF_ERROR(writer.Commit(tear_tail));
  *bytes_written = writer.bytes_written();
  return Status::OK();
}

/// Restores the process's state from `<dir>/proc<child>.step<resume>.ckpt`.
/// The supervisor already validated the whole checkpoint set, so any
/// failure here is a real corruption — fatal, not recoverable.
Status RestoreFromCheckpoint(const std::string& dir, int child,
                             const ConfigTail& tail,
                             std::uint32_t num_partitions,
                             const std::vector<int>& local,
                             std::vector<DneRankState>* states,
                             TapeLedger* ledger, DneLoopEnv* env) {
  const std::size_t num_local = local.size();
  ckpt::CheckpointReader reader;
  DNE_RETURN_IF_ERROR(
      reader.Open(ckpt::CheckpointPath(dir, child, tail.resume_step)));
  const ckpt::CkptFileHeader& fh = reader.header();
  if (fh.nproc != tail.nproc ||
      fh.proc_index != static_cast<std::uint32_t>(child) ||
      fh.num_partitions != num_partitions ||
      fh.num_local_ranks != num_local ||
      fh.num_vertices != tail.num_vertices ||
      fh.total_edges != tail.total_edges || fh.seed != tail.seed) {
    return Status::Internal("checkpoint shape does not match the run");
  }

  {
    const std::vector<unsigned char>& payload = reader.frames()[0].second;
    wire::PayloadReader r(payload.data(), payload.size());
    ckpt::CkptFileHeader skip;
    if (!r.Read(&skip)) return Status::Internal("malformed checkpoint header");
    env->resume.allocated_vec.assign(num_partitions, 0);
    env->resume.all_peeks.assign(num_partitions, 0);
    for (std::uint64_t& a : env->resume.allocated_vec) {
      if (!r.Read(&a)) return Status::Internal("malformed checkpoint header");
    }
    for (std::uint64_t& p : env->resume.all_peeks) {
      if (!r.Read(&p)) return Status::Internal("malformed checkpoint header");
    }
    if (r.remaining() != 0) {
      return Status::Internal("malformed checkpoint header");
    }
  }

  std::size_t next_local = 0;
  bool tape_restored = false;
  for (std::size_t i = 1; i < reader.frames().size(); ++i) {
    const std::uint8_t kind = reader.frames()[i].first;
    const std::vector<unsigned char>& payload = reader.frames()[i].second;
    wire::PayloadReader r(payload.data(), payload.size());
    if (kind == ckpt::kCkptRank) {
      if (next_local >= num_local) {
        return Status::Internal("checkpoint has too many rank frames");
      }
      ckpt::CkptRankHeader rh;
      if (!r.Read(&rh) ||
          rh.rank != static_cast<std::uint32_t>(local[next_local])) {
        return Status::Internal("checkpoint rank frame out of order");
      }
      DneRankState& st = (*states)[next_local];
      const std::size_t before_alloc = r.remaining();
      if (!st.alloc.RestoreState(&r) ||
          before_alloc - r.remaining() != rh.alloc_bytes) {
        return Status::Internal("corrupt allocation state in checkpoint");
      }
      const std::size_t before_exp = r.remaining();
      if (!st.expansion.RestoreState(&r) ||
          before_exp - r.remaining() != rh.expansion_bytes ||
          r.remaining() != 0) {
        return Status::Internal("corrupt expansion state in checkpoint");
      }
      st.two_hop_edges = rh.two_hop_edges;
      st.random_restarts = rh.random_restarts;
      ++next_local;
    } else if (kind == ckpt::kCkptTape) {
      std::uint64_t count = 0;
      if (tape_restored || !r.Read(&count) || count > (1ull << 32)) {
        return Status::Internal("malformed checkpoint tape");
      }
      std::vector<TapeLedger::Step> steps(count);
      for (TapeLedger::Step& step : steps) {
        if (!ReadTapeStep(&r, num_local, &step)) {
          return Status::Internal("malformed checkpoint tape");
        }
      }
      if (r.remaining() != 0) {
        return Status::Internal("malformed checkpoint tape");
      }
      ledger->RestoreSteps(std::move(steps));
      tape_restored = true;
    } else {
      return Status::Internal("unexpected checkpoint frame kind " +
                              std::to_string(kind));
    }
  }
  if (next_local != num_local || !tape_restored) {
    return Status::Internal("incomplete checkpoint file");
  }

  env->resume.active = true;
  env->resume.iterations = tail.resume_step;
  env->resume.total_allocated = fh.total_allocated;
  return Status::OK();
}

/// Recoverable-failure terminal state of a rank process: close the mesh so
/// every peer blocked on this endpoint unblocks with EOF (their wait turns
/// into kUnavailable and they park too — the cluster drains instead of
/// deadlocking), report where the run stood, then wait for the
/// supervisor's SIGKILL.
[[noreturn]] void ParkUntilKilled(int child, const std::vector<int>& mesh_fds,
                                  ShmMesh* shm, int control_fd,
                                  std::uint32_t superstep,
                                  std::uint8_t round_kind,
                                  const std::string& why) {
  for (int fd : mesh_fds) {
    if (fd >= 0) ::close(fd);
  }
  // The shm mesh has no EOF: marking ourselves dead is the ring-world
  // equivalent of closing the socket ends — peers blocked on our rings wake
  // and fail their round instead of waiting out the stall deadline.
  if (shm != nullptr) shm->MarkDead(child);
  std::vector<unsigned char> buf;
  ParkedHead head{};
  head.superstep = superstep;
  head.round_kind = round_kind;
  wire::AppendPod(&buf, head);
  buf.insert(buf.end(), why.begin(), why.end());
  (void)wire::SendFrame(control_fd, kCtrlParked,
                        static_cast<std::uint32_t>(child), buf.data(),
                        buf.size(), kCoordinator);
  char b;
  for (;;) {
    const ssize_t n = ::read(control_fd, &b, 1);
    if (n == 0 || (n < 0 && errno != EINTR)) break;
  }
  ::_exit(0);
}

/// Reads one `u64 length + bytes` string out of the config payload.
bool ReadConfigString(wire::PayloadReader* reader, std::string* out) {
  std::uint64_t len = 0;
  if (!reader->Read(&len) || len > (1u << 16) || reader->remaining() < len) {
    return false;
  }
  out->assign(reinterpret_cast<const char*>(reader->cursor()),
              static_cast<std::size_t>(len));
  reader->Skip(len);
  return true;
}

Status ChildRun(int child, const std::vector<int>& mesh_fds, ShmMesh* shm,
                const unsigned char* bulk, std::size_t bulk_bytes,
                int control_fd) {
  // Config first: options + cluster geometry.
  wire::FrameHeader header;
  std::vector<unsigned char> payload;
  DNE_RETURN_IF_ERROR(
      wire::RecvFrame(control_fd, &header, &payload, kCoordinator));
  if (header.kind != kCtrlConfig) {
    return Status::Internal("rank process expected config frame");
  }
  DneOptions opt;
  ConfigTail tail{};
  std::string stream_path, stream_format;
  {
    wire::PayloadReader reader(payload.data(), payload.size());
    if (!reader.Read(&opt) || !reader.Read(&tail)) {
      return Status::Internal("malformed config frame");
    }
    if (tail.ingest_mode != 0 &&
        (!ReadConfigString(&reader, &stream_path) ||
         !ReadConfigString(&reader, &stream_format))) {
      return Status::Internal("malformed config frame");
    }
  }
  const std::uint32_t num_partitions = tail.num_partitions;
  const int ranks = static_cast<int>(num_partitions);
  const bool fast = !opt.legacy_hotpath;

  // Deterministic fault injection: only the plan entries keyed to this
  // process and this recovery epoch are armed.
  FaultInjector injector;
  injector.Configure(opt.faults, opt.num_faults, child,
                     static_cast<int>(tail.nproc), tail.epoch);

  // The mesh endpoint: identical frames either way, so everything past this
  // point is transport-blind.
  std::unique_ptr<MeshCommunicator> comm_owner;
  if (opt.transport == DneTransport::kShm) {
    if (shm == nullptr) {
      return Status::Internal("transport=shm child launched without a mesh");
    }
    comm_owner = std::make_unique<ShmCommunicator>(
        ranks, static_cast<int>(tail.nproc), child, shm, opt.coalesce_frames,
        opt.stall_timeout_s);
  } else {
    comm_owner = std::make_unique<SocketCommunicator>(
        ranks, static_cast<int>(tail.nproc), child, mesh_fds,
        opt.coalesce_frames, opt.stall_timeout_s);
  }
  MeshCommunicator& comm = *comm_owner;
  if (injector.armed()) comm.SetFaultInjector(&injector);
  const std::vector<int>& local = comm.local_ranks();
  const std::size_t num_local = local.size();
  TwoDDistribution dist(num_partitions, tail.seed);

  // Shard ingestion: the only bytes of the graph this process ever owns.
  // Edges arrive in ascending global order per rank, so AddEdge order (and
  // with it the frozen CSR) matches the in-process distribution exactly.
  // Global edge ids stay with the coordinator; a rank addresses its edges
  // by local index and ships back one partition id per local edge. On a
  // recovery restart the shard is re-shipped in full — the frozen CSR is
  // deliberately not checkpointed — and the checkpoint restore overwrites
  // only the mutable allocation/expansion state on top of it.
  WallTimer distribute_timer;
  std::vector<AllocationProcess> allocs;
  allocs.reserve(num_local);
  for (int r : local) {
    allocs.emplace_back(r, num_partitions, opt.seed_strategy,
                        /*legacy_scan=*/!fast);
  }
  std::vector<EdgeId> next_local_edge(num_local, 0);
  if (tail.ingest_mode == 0 && bulk != nullptr) {
    // Shm bulk handoff: the coordinator laid out every rank's run in a
    // MAP_SHARED region before the fork, so this process's shard is
    // already sitting in its address space — parse it in place. Per-rank
    // record order is the same ascending global order the kCtrlEdges
    // stream would have delivered, so the frozen CSR is bit-identical.
    const std::size_t table_bytes =
        static_cast<std::size_t>(ranks) * sizeof(BulkRankRun);
    if (bulk_bytes < table_bytes) {
      return Status::Internal("shm bulk region smaller than its directory");
    }
    for (std::size_t slot = 0; slot < num_local; ++slot) {
      BulkRankRun run;
      std::memcpy(&run, bulk + local[slot] * sizeof(BulkRankRun),
                  sizeof(run));
      if (run.offset < table_bytes || run.offset > bulk_bytes ||
          run.count > (bulk_bytes - run.offset) / sizeof(Edge)) {
        return Status::Internal("malformed shm bulk shard directory");
      }
      const unsigned char* p = bulk + run.offset;
      Edge rec{};
      for (std::uint64_t i = 0; i < run.count; ++i, p += sizeof(Edge)) {
        std::memcpy(&rec, p, sizeof(rec));
        allocs[slot].AddEdge(next_local_edge[slot]++, rec.src, rec.dst);
      }
    }
  } else if (tail.ingest_mode == 0) {
    for (;;) {
      DNE_RETURN_IF_ERROR(
          wire::RecvFrame(control_fd, &header, &payload, kCoordinator));
      if (header.kind == kCtrlEdgesDone) break;
      if (header.kind != kCtrlEdges) {
        return Status::Internal("rank process expected an edge frame");
      }
      // The frame's `from` field carries the destination rank: one frame is
      // one run of that rank's edges, bare 16-byte {src, dst} records.
      if (header.from >= num_partitions ||
          comm.rank_to_proc(static_cast<int>(header.from)) != child) {
        return Status::Internal("misrouted edge frame");
      }
      const std::size_t slot =
          comm.slot_of_rank(static_cast<int>(header.from));
      wire::PayloadReader reader(payload.data(), payload.size());
      Edge rec{};
      while (reader.remaining() > 0) {
        if (!reader.Read(&rec)) {
          return Status::Internal("malformed edge frame");
        }
        allocs[slot].AddEdge(next_local_edge[slot]++, rec.src, rec.dst);
      }
    }
  } else {
    // Out-of-core ingest: stream the canonical edge file and keep only this
    // process's shard. The stream's order IS ascending global edge-id
    // order, so per-rank AddEdge order matches what the coordinator-shipped
    // path produces — the bit-identity invariant holds with no edge ever
    // materialized outside its owner. Working set: one chunk.
    std::unique_ptr<EdgeStreamReader> stream;
    DNE_RETURN_IF_ERROR(OpenEdgeStream(
        stream_path, stream_format,
        static_cast<std::size_t>(tail.chunk_edges), &stream));
    std::vector<Edge> chunk;
    std::uint64_t streamed = 0;
    for (;;) {
      DNE_RETURN_IF_ERROR(stream->NextChunk(&chunk));
      if (chunk.empty()) break;
      for (const Edge& ed : chunk) {
        const int r = dist.OwnerOf(ed.src, ed.dst);
        if (comm.rank_to_proc(r) == child) {
          const std::size_t slot = comm.slot_of_rank(r);
          allocs[slot].AddEdge(next_local_edge[slot]++, ed.src, ed.dst);
        }
        ++streamed;
      }
    }
    if (streamed != tail.total_edges) {
      return Status::Internal(
          "edge stream " + stream_path + " yielded " +
          std::to_string(streamed) + " edges, config promised " +
          std::to_string(tail.total_edges) +
          " (stale file or non-canonical stream?)");
    }
  }
  for (AllocationProcess& a : allocs) a.Finalize();

  const std::uint64_t limit =
      DneEdgeLimit(opt.alpha, tail.total_edges, num_partitions);
  std::vector<DneRankState> states;
  states.reserve(num_local);
  for (std::size_t l = 0; l < num_local; ++l) {
    states.emplace_back(local[l], std::move(allocs[l]),
                        MakeDneExpansion(opt, local[l], tail.num_vertices,
                                         limit, tail.seed),
                        num_partitions);
  }
  allocs.clear();
  const double distribute_seconds = distribute_timer.Seconds();

  TapeLedger ledger(local);
  comm.SetLedger(&ledger);

  DneLoopEnv env;
  env.options = &opt;
  env.num_partitions = num_partitions;
  env.total_edges = tail.total_edges;
  env.edge_limit = limit;
  env.max_supersteps = DneMaxSupersteps(opt, tail.num_vertices);
  env.dist = &dist;
  env.comm = &comm;
  env.ledger = &ledger;

  std::uint32_t current_superstep = tail.resume_step;
  env.superstep_hook = [&](std::uint64_t iter) -> Status {
    // The loop counts completed supersteps (0-based at the top); the fault
    // grammar and every diagnostic are 1-based ("superstep 1" is the first).
    current_superstep = static_cast<std::uint32_t>(iter) + 1;
    injector.SetSuperstep(current_superstep);
    injector.AtSuperstepStart();
    return Status::OK();
  };

  const std::string ckpt_dir = opt.checkpoint_dir;
  std::deque<std::uint32_t> kept_steps;
  std::uint64_t ckpt_bytes = 0;
  double ckpt_seconds = 0.0;
  if (opt.checkpoint_every > 0 && !ckpt_dir.empty()) {
    env.checkpoint_every = opt.checkpoint_every;
    env.checkpoint_hook =
        [&](std::uint64_t iterations, std::uint64_t total_allocated,
            const std::vector<std::uint64_t>& allocated_vec,
            const std::vector<std::uint64_t>& all_peeks) -> Status {
      const auto superstep = static_cast<std::uint32_t>(iterations);
      if (injector.ShouldFailCheckpoint(superstep)) {
        return Status::Unavailable(
            "injected checkpoint write failure at superstep " +
            std::to_string(superstep));
      }
      WallTimer ckpt_timer;
      std::uint64_t bytes = 0;
      DNE_RETURN_IF_ERROR(WriteCheckpoint(
          ckpt_dir, child, tail, num_partitions, local, states, ledger,
          superstep, total_allocated, allocated_vec, all_peeks,
          injector.ShouldTearCheckpoint(superstep), &bytes));
      ckpt_bytes += bytes;
      ckpt_seconds += ckpt_timer.Seconds();
      // Keep the last two checkpoints: the newest for the fast resume, its
      // predecessor as the fallback when the newest turns out torn.
      kept_steps.push_back(superstep);
      if (kept_steps.size() > 2) {
        ::unlink(
            ckpt::CheckpointPath(ckpt_dir, child, kept_steps.front()).c_str());
        kept_steps.pop_front();
      }
      return Status::OK();
    };
  }

  if (tail.resume_step > 0) {
    DNE_RETURN_IF_ERROR(RestoreFromCheckpoint(ckpt_dir, child, tail,
                                              num_partitions, local, &states,
                                              &ledger, &env));
  }

  DneLoopResult result;
  Status loop_st = RunDneSuperstepLoop(env, &states, &result);
  // Terminal barrier: every rank's exchanges (and with them its accounting
  // tape) are complete before anything is reported.
  if (loop_st.ok()) loop_st = comm.Barrier();
  if (!loop_st.ok()) {
    if (loop_st.code() == Status::Code::kUnavailable) {
      ParkUntilKilled(child, mesh_fds, shm, control_fd, current_superstep,
                      comm.last_round_kind(), loop_st.message());
    }
    return loop_st;
  }

  // Results: one frame per hosted rank — the shard's full assignment, or
  // (counts-only out-of-core mode) just its per-partition edge counts so
  // the coordinator never holds O(E) of anything.
  std::vector<unsigned char> buf;
  for (std::size_t l = 0; l < num_local; ++l) {
    const std::vector<PartitionId>& parts =
        states[l].alloc.local_assignment();
    buf.clear();
    if (tail.ingest_mode == 2) {
      std::vector<std::uint64_t> counts(num_partitions, 0);
      for (PartitionId p : parts) ++counts[p];
      wire::AppendPod(&buf, static_cast<std::uint32_t>(local[l]));
      wire::AppendPod(&buf, std::uint32_t{0});
      wire::AppendPod(&buf, static_cast<std::uint64_t>(counts.size()));
      for (std::uint64_t n : counts) wire::AppendPod(&buf, n);
      DNE_RETURN_IF_ERROR(wire::SendFrame(control_fd, kCtrlResultCounts,
                                          static_cast<std::uint32_t>(child),
                                          buf.data(), buf.size(),
                                          kCoordinator));
      continue;
    }
    wire::AppendPod(&buf, static_cast<std::uint32_t>(local[l]));
    wire::AppendPod(&buf, std::uint32_t{0});
    wire::AppendPod(&buf, static_cast<std::uint64_t>(parts.size()));
    const auto* data = reinterpret_cast<const unsigned char*>(parts.data());
    buf.insert(buf.end(), data, data + parts.size() * sizeof(PartitionId));
    DNE_RETURN_IF_ERROR(wire::SendFrame(control_fd, kCtrlResult,
                                        static_cast<std::uint32_t>(child),
                                        buf.data(), buf.size(),
                                        kCoordinator));
  }

  // Stats: per-rank counters + the accounting tape, gathered while the
  // cluster stands at the terminal barrier.
  buf.clear();
  StatsHead head{};
  head.iterations = result.iterations;
  head.rss_bytes = SelfPeakRssBytes();
  for (int i = 0; i < 4; ++i) head.phase_seconds[i] = result.host_phase_seconds[i];
  head.distribute_seconds = distribute_seconds;
  head.num_local = static_cast<std::uint32_t>(num_local);
  head.num_steps = ledger.steps().size();
  head.checkpoint_bytes = ckpt_bytes;
  head.checkpoint_seconds = ckpt_seconds;
  wire::AppendPod(&buf, head);
  for (std::size_t l = 0; l < num_local; ++l) {
    const DneRankState& st = states[l];
    RankStatsRecord rec{};
    rec.rank = static_cast<std::uint32_t>(local[l]);
    rec.two_hop = st.two_hop_edges;
    rec.restarts = st.random_restarts;
    // The same census the in-process driver takes: frozen structures plus
    // the grown allocation-id spill plus the peak boundary queue.
    rec.mem_bytes =
        st.alloc.StaticMemoryBytes() + st.alloc.DynamicMemoryBytes() +
        st.expansion.peak_boundary_size() * (sizeof(std::uint64_t) * 2);
    rec.boundary_peak = st.expansion.peak_boundary_size();
    wire::AppendPod(&buf, rec);
  }
  for (const TapeLedger::Step& step : ledger.steps()) {
    AppendTapeStep(step, &buf);
  }
  return wire::SendFrame(control_fd, kCtrlStats,
                         static_cast<std::uint32_t>(child), buf.data(),
                         buf.size(), kCoordinator);
}

int DneChildMain(int child, const std::vector<int>& mesh_fds, ShmMesh* shm,
                 const ShmBulk* bulk, int control_fd) {
  const Status st =
      ChildRun(child, mesh_fds, shm, bulk != nullptr ? bulk->data() : nullptr,
               bulk != nullptr ? bulk->bytes() : 0, control_fd);
  if (st.ok()) return 0;
  // Best-effort diagnostic to the coordinator before exiting non-zero.
  const std::string msg = st.ToString();
  (void)wire::SendFrame(
      control_fd, kCtrlError, static_cast<std::uint32_t>(child),
      reinterpret_cast<const unsigned char*>(msg.data()), msg.size(),
      kCoordinator);
  return 1;
}

// ---- Parent side ------------------------------------------------------------

/// Where the run's edges come from: a materialized Graph the coordinator
/// ships shard-by-shard, or an on-disk canonical edge file every child
/// streams itself (out-of-core; the coordinator ships routing only).
struct ShardSource {
  const Graph* g = nullptr;
  const DneStreamSpec* stream = nullptr;

  std::uint64_t num_vertices() const {
    return g != nullptr ? g->NumVertices() : stream->num_vertices;
  }
  std::uint64_t total_edges() const {
    return g != nullptr ? g->NumEdges() : stream->num_edges;
  }
  std::uint32_t ingest_mode() const {
    if (g != nullptr) return 0;
    return stream->gather_assignment ? 1 : 2;
  }
};

struct ChildReport {
  bool stats_done = false;
  StatsHead head{};
  std::vector<RankStatsRecord> rank_stats;
  std::vector<TapeLedger::Step> tape;
  std::vector<std::vector<PartitionId>> rank_parts;   // by local slot
  std::vector<std::vector<std::uint64_t>> rank_counts;  // counts-only mode
  std::vector<int> local_ranks;
};

/// What the supervisor learned about a failed attempt: whether a restart
/// can recover it, and the (process, superstep, round) coordinates for the
/// structured report when recovery is exhausted.
struct AttemptFailure {
  bool recoverable = false;
  int proc = -1;
  std::uint32_t superstep = 0;
  bool have_round = false;
  std::string round = "unknown";
  std::string detail;
};

Status ParseStatsFrame(const std::vector<unsigned char>& payload,
                       ChildReport* report) {
  wire::PayloadReader reader(payload.data(), payload.size());
  if (!reader.Read(&report->head)) {
    return Status::Internal("malformed stats frame header");
  }
  // Size the frame arithmetic before any resize: a corrupted count must
  // become a diagnostic, not an allocation of its face value.
  const std::uint64_t per_step =
      8 + static_cast<std::uint64_t>(report->head.num_local) *
              (6 * sizeof(std::uint64_t));
  if (report->head.num_local == 0 ||
      report->head.num_local > (1u << 20) ||
      report->head.num_steps > (1ull << 32) ||
      reader.remaining() !=
          report->head.num_local * sizeof(RankStatsRecord) +
              report->head.num_steps * per_step) {
    return Status::Internal("stats frame size mismatch (corrupted counts)");
  }
  report->rank_stats.resize(report->head.num_local);
  for (RankStatsRecord& rec : report->rank_stats) {
    if (!reader.Read(&rec)) return Status::Internal("malformed rank stats");
  }
  report->tape.resize(report->head.num_steps);
  for (TapeLedger::Step& step : report->tape) {
    if (!ReadTapeStep(&reader, report->head.num_local, &step)) {
      return Status::Internal("malformed tape step");
    }
  }
  return Status::OK();
}

/// One cluster attempt: launch, ship config (with the resume superstep and
/// the recovery epoch) + shards, monitor to completion. On success
/// `reports` holds every child's results; on failure `failure` says
/// whether the supervisor may restart and where the run stood.
Status RunOnce(const ShardSource& src, std::uint32_t num_partitions,
               const DneOptions& options, std::uint64_t seed, int nproc,
               const PartitionContext& ctx, std::uint32_t resume_step,
               std::int32_t epoch,
               std::vector<std::vector<EdgeId>>* rank_gids,
               std::vector<ChildReport>* reports_out, double* ship_seconds,
               AttemptFailure* failure) {
  const std::uint64_t total_edges = src.total_edges();
  const int ranks = static_cast<int>(num_partitions);
  const std::uint32_t ingest_mode = src.ingest_mode();
  TwoDDistribution dist(num_partitions, seed);

  ProcessCluster cluster;
  const ProcessCluster::MeshMode mode =
      options.transport == DneTransport::kShm
          ? ProcessCluster::MeshMode::kShm
          : ProcessCluster::MeshMode::kSocket;

  // Shm transport with a materialized graph: lay every rank's shard out in
  // a MAP_SHARED bulk region *before* forking. The children then parse
  // their runs in place and the per-edge round trip through the control
  // socketpair (two kernel copies of the whole edge list, plus the frame
  // checksums over it) disappears. The socket transport keeps the streamed
  // kCtrlEdges path — its children share no memory with the coordinator.
  const bool bulk_ship =
      mode == ProcessCluster::MeshMode::kShm && ingest_mode == 0;
  std::unique_ptr<ShmBulk> bulk;
  rank_gids->assign(ranks, std::vector<EdgeId>());
  double bulk_fill_seconds = 0.0;
  if (bulk_ship) {
    WallTimer fill_timer;
    const Graph& g = *src.g;
    // Pass 1: route every edge once, remembering the owner so pass 2 can
    // sweep the edge array sequentially instead of gathering per rank
    // (the per-rank gather strides ~ranks*16B through the edge array —
    // every read a cache miss on any graph bigger than L2).
    std::vector<std::uint32_t> owners(total_edges);
    for (EdgeId e = 0; e < total_edges; ++e) {
      const Edge& ed = g.edge(e);
      const int r = dist.OwnerOf(ed.src, ed.dst);
      owners[e] = static_cast<std::uint32_t>(r);
      (*rank_gids)[r].push_back(e);
      if ((e & 0xfffff) == 0xfffff) {
        if (ctx.cancelled()) {
          return Status::Cancelled("partitioning cancelled");
        }
        ctx.ReportProgress("distribute", e, total_edges);
      }
    }
    const std::size_t table_bytes =
        static_cast<std::size_t>(ranks) * sizeof(BulkRankRun);
    std::size_t bytes = table_bytes;
    for (int r = 0; r < ranks; ++r) {
      bytes += (*rank_gids)[r].size() * sizeof(Edge);
    }
    DNE_RETURN_IF_ERROR(ShmBulk::Create(bytes, &bulk));
    // Pass 2: lay the runs out contiguously, one streaming write cursor
    // per rank over one sequential read of the edge array.
    std::vector<unsigned char*> cursor(ranks);
    std::size_t off = table_bytes;
    for (int r = 0; r < ranks; ++r) {
      BulkRankRun run;
      run.offset = off;
      run.count = (*rank_gids)[r].size();
      std::memcpy(bulk->data() + r * sizeof(BulkRankRun), &run, sizeof(run));
      cursor[r] = bulk->data() + off;
      off += run.count * sizeof(Edge);
    }
    for (EdgeId e = 0; e < total_edges; ++e) {
      unsigned char*& p = cursor[owners[e]];
      std::memcpy(p, &g.edge(e), sizeof(Edge));
      p += sizeof(Edge);
    }
    bulk_fill_seconds = fill_timer.Seconds();
  }

  // The lambda runs in the forked child; cluster.shm_mesh() resolves on the
  // child's copy-on-write ProcessCluster, whose MAP_SHARED mesh mapping is
  // the same physical pages the parent and every sibling see (as is the
  // bulk region, when one exists).
  DNE_RETURN_IF_ERROR(cluster.Launch(
      nproc, mode,
      [&cluster, &bulk](int child, const std::vector<int>& fds, int ctrl) {
        return DneChildMain(child, fds, cluster.shm_mesh(), bulk.get(), ctrl);
      }));
  // Teardown + classification for failures outside the monitor loop: a
  // kUnavailable (vanished/corrupted peer) is recoverable, anything else
  // is a hard failure of this run.
  auto fail = [&cluster, failure](Status st) {
    cluster.KillAll();
    const std::string abnormal = cluster.ReapAll();
    if (st.code() == Status::Code::kUnavailable) {
      failure->recoverable = true;
      if (failure->detail.empty()) failure->detail = st.message();
      return st;
    }
    failure->recoverable = false;
    if (abnormal.empty()) return st;
    return Status::Internal(st.message() + " [" + abnormal + "]");
  };

  WallTimer ship_timer;
  // Config to every rank process.
  {
    std::vector<unsigned char> cfg;
    for (int c = 0; c < nproc; ++c) {
      cfg.clear();
      wire::AppendPod(&cfg, options);
      ConfigTail tail{};
      tail.num_partitions = num_partitions;
      tail.nproc = static_cast<std::uint32_t>(nproc);
      tail.proc_index = static_cast<std::uint32_t>(c);
      tail.resume_step = resume_step;
      tail.num_vertices = src.num_vertices();
      tail.total_edges = total_edges;
      tail.seed = seed;
      tail.epoch = epoch;
      tail.ingest_mode = ingest_mode;
      tail.chunk_edges =
          src.stream != nullptr ? src.stream->chunk_edges : 0;
      wire::AppendPod(&cfg, tail);
      if (ingest_mode != 0) {
        wire::AppendPod(
            &cfg, static_cast<std::uint64_t>(src.stream->path.size()));
        cfg.insert(cfg.end(), src.stream->path.begin(),
                   src.stream->path.end());
        wire::AppendPod(
            &cfg, static_cast<std::uint64_t>(src.stream->format.size()));
        cfg.insert(cfg.end(), src.stream->format.begin(),
                   src.stream->format.end());
      }
      const Status st =
          wire::SendFrame(cluster.control_fd(c), kCtrlConfig, 0, cfg.data(),
                          cfg.size(), "rank process " + std::to_string(c));
      if (!st.ok()) return fail(st);
    }
  }

  // 2-D shard streaming (socket transport); the coordinator keeps the
  // local-index -> global-id mapping per rank so the children never need
  // global ids. Edges are buffered per destination rank and shipped as
  // bare 16-byte {src, dst} records in frames whose `from` field names the
  // rank — per-rank arrival order is still ascending global order, which
  // is all the child's AddEdge/CSR construction depends on. The shm
  // transport already handed the identical runs over through the pre-fork
  // bulk region above, and the out-of-core children stream their shards
  // from the edge file themselves (no O(E) gid map to keep).
  if (ingest_mode != 0) {
    rank_gids->clear();
  } else if (!bulk_ship) {
    const Graph& g = *src.g;
    std::vector<std::vector<unsigned char>> bufs(ranks);
    constexpr std::size_t kFlushBytes = 1 << 20;
    auto flush = [&](int r) -> Status {
      if (bufs[r].empty()) return Status::OK();
      const int c = r % nproc;
      Status st = wire::SendFrame(cluster.control_fd(c), kCtrlEdges,
                                  static_cast<std::uint32_t>(r),
                                  bufs[r].data(), bufs[r].size(),
                                  "rank process " + std::to_string(c));
      bufs[r].clear();
      return st;
    };
    for (EdgeId e = 0; e < total_edges; ++e) {
      const Edge& ed = g.edge(e);
      const int r = dist.OwnerOf(ed.src, ed.dst);
      (*rank_gids)[r].push_back(e);
      wire::AppendPod(&bufs[r], ed);
      if (bufs[r].size() >= kFlushBytes) {
        // Flush boundaries double as the cancellation/progress points of
        // the distribution phase (the superstep loop has its own).
        if (ctx.cancelled()) {
          return fail(Status::Cancelled("partitioning cancelled"));
        }
        ctx.ReportProgress("distribute", e, total_edges);
        const Status st = flush(r);
        if (!st.ok()) return fail(st);
      }
    }
    for (int r = 0; r < ranks; ++r) {
      const Status st = flush(r);
      if (!st.ok()) return fail(st);
    }
    for (int c = 0; c < nproc; ++c) {
      const Status st = wire::SendFrame(cluster.control_fd(c), kCtrlEdgesDone,
                                        0, nullptr, 0,
                                        "rank process " + std::to_string(c));
      if (!st.ok()) return fail(st);
    }
  }
  *ship_seconds = ship_timer.Seconds() + bulk_fill_seconds;

  // Monitor: collect result + stats frames. A kCtrlError is a hard
  // failure; a kCtrlParked frame, a vanished child or a stalled cluster is
  // a recoverable one — the monitor then drains briefly so late parkers
  // can refine the (superstep, round) coordinates before the teardown.
  std::vector<ChildReport>& reports = *reports_out;
  reports.assign(nproc, ChildReport{});
  for (int c = 0; c < nproc; ++c) {
    for (int r = c; r < ranks; r += nproc) reports[c].local_ranks.push_back(r);
    reports[c].rank_parts.resize(reports[c].local_ranks.size());
    reports[c].rank_counts.resize(reports[c].local_ranks.size());
  }
  std::vector<bool> closed(nproc, false);
  int remaining = nproc;
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline;
  auto last_activity = std::chrono::steady_clock::now();
  const auto watchdog = std::chrono::milliseconds(
      static_cast<long long>(2.0 * options.stall_timeout_s * 1000.0));

  auto record_recoverable = [&](int proc, std::uint32_t superstep,
                                const char* round, bool have_round,
                                std::string detail) {
    if (!failure->recoverable) {
      failure->recoverable = true;
      failure->proc = proc;
      failure->superstep = superstep;
      failure->have_round = have_round;
      if (have_round) failure->round = round;
      failure->detail = std::move(detail);
    } else if (!failure->have_round && have_round) {
      failure->superstep = superstep;
      failure->round = round;
      failure->have_round = true;
      if (failure->proc < 0) failure->proc = proc;
    }
    if (!draining) {
      draining = true;
      drain_deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
    }
  };

  for (;;) {
    if (!draining && remaining == 0) break;
    if (draining) {
      bool any_open = false;
      for (int c = 0; c < nproc; ++c) {
        if (!reports[c].stats_done && !closed[c]) any_open = true;
      }
      if (!any_open || std::chrono::steady_clock::now() >= drain_deadline) {
        break;
      }
    }
    if (!draining && ctx.cancelled()) {
      return fail(Status::Cancelled("partitioning cancelled"));
    }
    std::vector<pollfd> pfds;
    std::vector<int> children;
    for (int c = 0; c < nproc; ++c) {
      if (reports[c].stats_done || closed[c]) continue;
      pfds.push_back(pollfd{cluster.control_fd(c), POLLIN, 0});
      children.push_back(c);
    }
    if (pfds.empty()) break;
    const int rc = ::poll(pfds.data(), pfds.size(), 100);
    if (rc < 0 && errno != EINTR) {
      return fail(Status::Internal(std::string("poll failed: ") +
                                   std::strerror(errno)));
    }
    {
      // Reap zombies as they appear. An exit is not yet a failure: a
      // finished child's frames may still sit in the socket buffer — the
      // buffer stays readable after the peer closes, so the drain below
      // decides. A crash surfaces as EOF before the stats frame.
      int exited = 0, status = 0;
      while (cluster.PollExited(&exited, &status)) {
        last_activity = std::chrono::steady_clock::now();
      }
    }
    if (rc <= 0) {
      // Watchdog for the every-process-stalled case (no peer left to hit
      // its mesh deadline and park): twice the per-round stall budget of
      // silence on the control channel is a recoverable cluster stall.
      if (!draining &&
          std::chrono::steady_clock::now() - last_activity > watchdog) {
        record_recoverable(
            -1, 0, "", false,
            "no control-channel progress for " +
                std::to_string(2.0 * options.stall_timeout_s) +
                "s (rank cluster stalled)");
      }
      continue;
    }
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int c = children[k];
      ChildReport& report = reports[c];
      last_activity = std::chrono::steady_clock::now();
      wire::FrameHeader header;
      std::vector<unsigned char> payload;
      Status st = wire::RecvFrame(cluster.control_fd(c), &header, &payload,
                                  "rank process " + std::to_string(c));
      if (!st.ok()) {
        closed[c] = true;
        if (st.code() == Status::Code::kUnavailable) {
          record_recoverable(c, 0, "", false,
                             "rank process " + std::to_string(c) +
                                 " died before reporting results: " +
                                 st.message());
          continue;
        }
        if (draining) continue;
        return fail(Status::Internal(
            "rank process " + std::to_string(c) +
            " died before reporting results: " + st.message()));
      }
      if (header.kind == kCtrlParked) {
        closed[c] = true;
        ParkedHead ph{};
        wire::PayloadReader reader(payload.data(), payload.size());
        if (reader.Read(&ph)) {
          const std::string msg(payload.begin() + sizeof(ParkedHead),
                                payload.end());
          record_recoverable(c, ph.superstep, MeshRoundName(ph.round_kind),
                             true,
                             "rank process " + std::to_string(c) +
                                 " parked at superstep " +
                                 std::to_string(ph.superstep) + " (" +
                                 MeshRoundName(ph.round_kind) +
                                 " round): " + msg);
        } else {
          record_recoverable(c, 0, "", false,
                             "rank process " + std::to_string(c) +
                                 " parked with a malformed report");
        }
        continue;
      }
      // Once a recoverable failure is recorded the attempt is dead: stray
      // results/errors from survivors are noise — the restart reproduces
      // any deterministic failure without it.
      if (draining) continue;
      if (header.kind == kCtrlError) {
        return fail(Status::Internal(
            "rank process " + std::to_string(c) + " failed: " +
            std::string(payload.begin(), payload.end())));
      }
      if (header.kind == kCtrlResult) {
        if (ingest_mode == 2) {
          return fail(Status::Internal(
              "full result frame in counts-only out-of-core mode"));
        }
        wire::PayloadReader reader(payload.data(), payload.size());
        std::uint32_t rank = 0, pad = 0;
        std::uint64_t count = 0;
        // In shipped-edges mode the coordinator knows each rank's exact
        // shard size; streamed shards are bounded by the edge total and
        // cross-checked against the stream during assembly.
        if (!reader.Read(&rank) || !reader.Read(&pad) ||
            !reader.Read(&count) || rank >= num_partitions ||
            static_cast<int>(rank % nproc) != c ||
            (ingest_mode == 0 ? count != (*rank_gids)[rank].size()
                              : count > total_edges) ||
            reader.remaining() != count * sizeof(PartitionId)) {
          return fail(Status::Internal("malformed result frame from rank " +
                                       std::to_string(rank)));
        }
        std::vector<PartitionId> parts(count);
        reader.ReadBytes(parts.data(), count * sizeof(PartitionId));
        report.rank_parts[rank / nproc] = std::move(parts);
        continue;
      }
      if (header.kind == kCtrlResultCounts) {
        if (ingest_mode != 2) {
          return fail(Status::Internal(
              "counts-only result frame outside counts mode"));
        }
        wire::PayloadReader reader(payload.data(), payload.size());
        std::uint32_t rank = 0, pad = 0;
        std::uint64_t num = 0;
        if (!reader.Read(&rank) || !reader.Read(&pad) || !reader.Read(&num) ||
            rank >= num_partitions || static_cast<int>(rank % nproc) != c ||
            num != num_partitions ||
            reader.remaining() != num * sizeof(std::uint64_t)) {
          return fail(Status::Internal(
              "malformed counts frame from rank " + std::to_string(rank)));
        }
        std::vector<std::uint64_t> counts(num);
        reader.ReadBytes(counts.data(), num * sizeof(std::uint64_t));
        report.rank_counts[rank / nproc] = std::move(counts);
        continue;
      }
      if (header.kind == kCtrlStats) {
        st = ParseStatsFrame(payload, &report);
        if (!st.ok()) return fail(st);
        if (report.head.num_local != report.local_ranks.size()) {
          return fail(Status::Internal("stats frame with wrong rank count"));
        }
        report.stats_done = true;
        --remaining;
        continue;
      }
      return fail(Status::Internal("unexpected control frame kind " +
                                   std::to_string(header.kind)));
    }
  }
  if (failure->recoverable) {
    cluster.KillAll();
    cluster.ReapAll();
    return Status::Unavailable(failure->detail);
  }
  {
    const std::string abnormal = cluster.ReapAll();
    if (!abnormal.empty()) {
      return Status::Internal("rank process exited abnormally: " + abnormal);
    }
  }
  return Status::OK();
}

/// The shared supervisor: retry loop, partition assembly and stats replay,
/// parameterized over where the edges come from.
Status RunDneTransportImpl(const ShardSource& src,
                           std::uint32_t num_partitions,
                           const DneOptions& options, std::uint64_t seed,
                           int nproc, const PartitionContext& ctx,
                           EdgePartition* out, DneStats* stats) {
  const std::uint64_t total_edges = src.total_edges();
  const int ranks = static_cast<int>(num_partitions);

  // Run-start hygiene: a stale checkpoint directory must never be resumed
  // from (FindResumeStep's shape check guards against foreign runs, but an
  // earlier checkpoint of the *same* run config is indistinguishable).
  const std::string ckpt_dir = options.checkpoint_dir;
  if (!ckpt_dir.empty()) ckpt::RemoveRunCheckpoints(ckpt_dir);
  ckpt::CheckpointExpect expect;
  expect.nproc = static_cast<std::uint32_t>(nproc);
  expect.num_partitions = num_partitions;
  expect.num_vertices = src.num_vertices();
  expect.total_edges = total_edges;
  expect.seed = seed;

  // Supervisor loop: run the cluster, and on a recoverable failure restart
  // it from the latest complete checkpoint (superstep 0 — a deterministic
  // from-scratch rerun — when none exists). Every restart bumps the epoch
  // that keys the fault plan, so an injected fault fires exactly in the
  // attempt it targets.
  std::vector<std::vector<EdgeId>> rank_gids;
  std::vector<ChildReport> reports;
  double ship_seconds = 0.0;
  std::uint32_t attempt = 0;
  AttemptFailure failure;
  for (;;) {
    std::uint32_t resume_step = 0;
    if (attempt > 0 && options.checkpoint_every > 0 && !ckpt_dir.empty()) {
      resume_step = ckpt::FindResumeStep(ckpt_dir, expect);
    }
    failure = AttemptFailure{};
    const Status st =
        RunOnce(src, num_partitions, options, seed, nproc, ctx, resume_step,
                static_cast<std::int32_t>(attempt), &rank_gids, &reports,
                &ship_seconds, &failure);
    if (st.ok()) break;
    if (!failure.recoverable) return st;
    if (attempt >= options.max_recoveries) {
      const std::string who =
          failure.proc >= 0 ? "rank process " + std::to_string(failure.proc)
                            : "the rank cluster";
      return Status::Internal(
          who + " failed at superstep " + std::to_string(failure.superstep) +
          " (" + failure.round + " round); recovery exhausted after " +
          std::to_string(attempt) + " restart(s): " + failure.detail);
    }
    ++attempt;
    // Exponential backoff before the relaunch: transient host pressure
    // (fd/pid exhaustion, OOM kills) should not be hammered.
    const int backoff_ms =
        std::min(100 << static_cast<int>(std::min(attempt - 1, 4u)), 2000);
    ::poll(nullptr, 0, backoff_ms);
  }

  // ---- Assemble the partition ----------------------------------------------
  const std::uint32_t ingest_mode = src.ingest_mode();
  if (ingest_mode == 0) {
    *out = EdgePartition(num_partitions, total_edges);
    std::vector<PartitionId>& assignment = out->mutable_assignment();
    for (int r = 0; r < ranks; ++r) {
      const ChildReport& report = reports[r % nproc];
      const std::vector<PartitionId>& parts = report.rank_parts[r / nproc];
      const std::vector<EdgeId>& gids = rank_gids[r];
      for (std::size_t i = 0; i < gids.size(); ++i) {
        assignment[gids[i]] = parts[i];
      }
    }
  } else if (ingest_mode == 1) {
    // Gathered out-of-core assembly: re-stream the edge file once and walk
    // a cursor through each rank's returned shard assignment. The stream
    // replays the exact ownership order the children ingested in, so
    // cursor position i IS local edge i of that rank.
    *out = EdgePartition(num_partitions, total_edges);
    std::vector<PartitionId>& assignment = out->mutable_assignment();
    TwoDDistribution dist(num_partitions, seed);
    std::unique_ptr<EdgeStreamReader> stream;
    DNE_RETURN_IF_ERROR(OpenEdgeStream(
        src.stream->path, src.stream->format,
        static_cast<std::size_t>(src.stream->chunk_edges), &stream));
    std::vector<std::size_t> cursor(ranks, 0);
    std::vector<Edge> chunk;
    EdgeId e = 0;
    for (;;) {
      DNE_RETURN_IF_ERROR(stream->NextChunk(&chunk));
      if (chunk.empty()) break;
      for (const Edge& ed : chunk) {
        const int r = dist.OwnerOf(ed.src, ed.dst);
        const std::vector<PartitionId>& parts =
            reports[r % nproc].rank_parts[r / nproc];
        if (cursor[r] >= parts.size() || e >= total_edges) {
          return Status::Internal(
              "edge stream and rank shard sizes disagree (file changed "
              "mid-run?)");
        }
        assignment[e++] = parts[cursor[r]++];
      }
    }
    for (int r = 0; r < ranks; ++r) {
      if (cursor[r] != reports[r % nproc].rank_parts[r / nproc].size()) {
        return Status::Internal(
            "edge stream and rank shard sizes disagree (file changed "
            "mid-run?)");
      }
    }
  }

  // ---- Replay the tapes into the shared stats machinery --------------------
  // Every endpoint ran the same BSP schedule, so the tapes must agree on
  // step count and superstep count; the replay recovers the cluster-wide
  // critical path (max over ranks per step) from observed quantities.
  const std::size_t num_steps = reports[0].tape.size();
  for (int c = 1; c < nproc; ++c) {
    if (reports[c].tape.size() != num_steps ||
        reports[c].head.iterations != reports[0].head.iterations) {
      return Status::Internal("rank processes disagree on the superstep "
                              "schedule (transport bug)");
    }
  }
  SimCluster sim(ranks, options.cost);
  SimClusterLedger replay(&sim);
  std::uint64_t wire_total = 0;
  for (std::size_t s = 0; s < num_steps; ++s) {
    for (int c = 0; c < nproc; ++c) {
      const ChildReport& report = reports[c];
      const TapeLedger::Step& step = report.tape[s];
      for (std::size_t l = 0; l < report.local_ranks.size(); ++l) {
        const int r = report.local_ranks[l];
        const TapeLedger::StepRow& row = step.rows[l];
        replay.AddWork(r, row.work);
        replay.AddDataAggregate(r, row.data_bytes, row.data_messages);
        replay.AddControlBytes(r, row.control_bytes);
        replay.AddWireOverhead(r, row.wire_bytes, row.wire_frames);
        wire_total += row.data_bytes + row.control_bytes + row.wire_bytes;
      }
    }
    if (reports[0].tape[s].superstep_end) {
      replay.EndSuperstep();
    } else {
      replay.EndPhase(reports[0].tape[s].selection);
    }
  }

  *stats = DneStats{};
  stats->iterations = reports[0].head.iterations;
  stats->rank_peak_bytes.assign(ranks, 0);
  std::uint64_t max_boundary = 0, sum_boundary = 0;
  for (int c = 0; c < nproc; ++c) {
    const ChildReport& report = reports[c];
    for (const RankStatsRecord& rec : report.rank_stats) {
      stats->two_hop_edges += rec.two_hop;
      stats->random_restarts += rec.restarts;
      sim.mem().Allocate(static_cast<int>(rec.rank), rec.mem_bytes);
      max_boundary = std::max(max_boundary, rec.boundary_peak);
      sum_boundary += rec.boundary_peak;
    }
    stats->process_rss_bytes.push_back(report.head.rss_bytes);
    for (int i = 0; i < 4; ++i) {
      double& phase = i == 0   ? stats->host_phase_a_seconds
                      : i == 1 ? stats->host_phase_b_seconds
                      : i == 2 ? stats->host_phase_c_seconds
                               : stats->host_phase_d_seconds;
      phase = std::max(phase, report.head.phase_seconds[i]);
    }
    stats->host_distribute_seconds = std::max(
        stats->host_distribute_seconds, report.head.distribute_seconds);
    stats->checkpoint_bytes += report.head.checkpoint_bytes;
    stats->checkpoint_seconds += report.head.checkpoint_seconds;
  }
  // The children ingest concurrently with the coordinator's ship loop, so
  // the phase's wall time is the slower of the two — not their sum.
  stats->host_distribute_seconds =
      std::max(stats->host_distribute_seconds, ship_seconds);
  stats->one_hop_edges = total_edges - stats->two_hop_edges;
  stats->comm_bytes = sim.comm().bytes;
  stats->comm_messages = sim.comm().messages;
  stats->sim_seconds = sim.cost().SimSeconds();
  stats->selection_work_fraction =
      replay.total_critical_ops() == 0
          ? 0.0
          : static_cast<double>(replay.selection_critical_ops()) /
                static_cast<double>(replay.total_critical_ops());
  stats->peak_memory_bytes = sim.mem().peak_total();
  stats->rank_peak_bytes = sim.mem().rank_peaks();
  stats->boundary_imbalance =
      sum_boundary == 0 ? 1.0
                        : static_cast<double>(max_boundary) * num_partitions /
                              static_cast<double>(sum_boundary);
  stats->wire_bytes = wire_total;
  stats->wire_frames = replay.wire_frames();
  stats->rank_processes = nproc;
  stats->transport_used = options.transport;
  stats->recoveries = attempt;
  if (ingest_mode == 2) {
    // Counts-only mode never materializes an assignment anywhere; the
    // per-partition totals come straight from the ranks' count frames.
    stats->edges_per_partition.assign(num_partitions, 0);
    std::uint64_t counted = 0;
    for (const ChildReport& report : reports) {
      for (const std::vector<std::uint64_t>& counts : report.rank_counts) {
        for (std::uint32_t p = 0; p < num_partitions; ++p) {
          stats->edges_per_partition[p] += counts[p];
          counted += counts[p];
        }
      }
    }
    if (counted != total_edges) {
      return Status::Internal("rank shard counts do not sum to the edge "
                              "total (transport bug)");
    }
  } else {
    stats->edges_per_partition = out->PartitionSizes();
  }
  return Status::OK();
}

}  // namespace

Status RunDneProcessTransport(const Graph& g, std::uint32_t num_partitions,
                              const DneOptions& options, std::uint64_t seed,
                              int nproc, const PartitionContext& ctx,
                              EdgePartition* out, DneStats* stats) {
  ShardSource src;
  src.g = &g;
  return RunDneTransportImpl(src, num_partitions, options, seed, nproc, ctx,
                             out, stats);
}

Status RunDneProcessTransportStream(const DneStreamSpec& spec,
                                    std::uint32_t num_partitions,
                                    const DneOptions& options,
                                    std::uint64_t seed, int nproc,
                                    const PartitionContext& ctx,
                                    EdgePartition* out, DneStats* stats) {
  if (options.transport == DneTransport::kInProcess) {
    return Status::InvalidArgument(
        "out-of-core ingest requires a multi-process transport "
        "(transport=process or transport=shm)");
  }
  if (spec.path.empty() || spec.num_edges == 0 || spec.chunk_edges == 0) {
    return Status::InvalidArgument(
        "out-of-core ingest needs a path, a positive edge count and a "
        "positive chunk size");
  }
  if (spec.gather_assignment != (out != nullptr)) {
    return Status::InvalidArgument(
        spec.gather_assignment
            ? "gather_assignment needs an output partition to fill"
            : "counts-only out-of-core runs take no output partition "
              "(pass out = nullptr)");
  }
  ShardSource src;
  src.stream = &spec;
  return RunDneTransportImpl(src, num_partitions, options, seed, nproc, ctx,
                             out, stats);
}

}  // namespace dne
