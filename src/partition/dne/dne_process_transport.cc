#include "partition/dne/dne_process_transport.h"

#include <poll.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/timer.h"
#include "partition/dne/dne_rank_state.h"
#include "partition/dne/two_d_distribution.h"
#include "runtime/process_cluster.h"
#include "runtime/wire.h"

namespace dne {
namespace {

static_assert(std::is_trivially_copyable_v<DneOptions>,
              "DneOptions is shipped to rank processes by memcpy");

// Control-channel frame kinds (disjoint from DneMsgKind so a crossed wire
// is caught as a protocol desync, not misparsed).
enum CtrlKind : std::uint8_t {
  kCtrlConfig = 32,
  kCtrlEdges = 33,
  kCtrlEdgesDone = 34,
  kCtrlResult = 35,
  kCtrlStats = 36,
  kCtrlError = 37,
};

struct ConfigTail {
  std::uint32_t num_partitions;
  std::uint32_t nproc;
  std::uint32_t proc_index;
  std::uint32_t pad = 0;
  std::uint64_t num_vertices;
  std::uint64_t total_edges;
  std::uint64_t seed;
};

struct RankStatsRecord {
  std::uint32_t rank;
  std::uint32_t pad = 0;
  std::uint64_t two_hop;
  std::uint64_t restarts;
  std::uint64_t mem_bytes;
  std::uint64_t boundary_peak;
};

struct StatsHead {
  std::uint64_t iterations;
  std::uint64_t rss_bytes;
  double phase_seconds[4];
  double distribute_seconds;
  std::uint32_t num_local;
  std::uint32_t pad = 0;
  std::uint64_t num_steps;
};

constexpr const char* kCoordinator = "coordinator";

std::uint64_t SelfPeakRssBytes() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
}

// ---- Child side -------------------------------------------------------------

Status ChildRun(int child, const std::vector<int>& mesh_fds, int control_fd) {
  // Config first: options + cluster geometry.
  wire::FrameHeader header;
  std::vector<unsigned char> payload;
  DNE_RETURN_IF_ERROR(
      wire::RecvFrame(control_fd, &header, &payload, kCoordinator));
  if (header.kind != kCtrlConfig) {
    return Status::Internal("rank process expected config frame");
  }
  DneOptions opt;
  ConfigTail tail{};
  {
    wire::PayloadReader reader(payload.data(), payload.size());
    if (!reader.Read(&opt) || !reader.Read(&tail)) {
      return Status::Internal("malformed config frame");
    }
  }
  const std::uint32_t num_partitions = tail.num_partitions;
  const int ranks = static_cast<int>(num_partitions);
  const bool fast = !opt.legacy_hotpath;

  SocketCommunicator comm(ranks, static_cast<int>(tail.nproc), child,
                          mesh_fds, opt.coalesce_frames);
  const std::vector<int>& local = comm.local_ranks();
  const std::size_t num_local = local.size();

  // Shard ingestion: the only bytes of the graph this process ever owns.
  // Edges arrive in ascending global order per rank, so AddEdge order (and
  // with it the frozen CSR) matches the in-process distribution exactly.
  // Global edge ids stay with the coordinator; a rank addresses its edges
  // by local index and ships back one partition id per local edge.
  WallTimer distribute_timer;
  std::vector<AllocationProcess> allocs;
  allocs.reserve(num_local);
  for (int r : local) {
    allocs.emplace_back(r, num_partitions, opt.seed_strategy,
                        /*legacy_scan=*/!fast);
  }
  std::vector<EdgeId> next_local_edge(num_local, 0);
  for (;;) {
    DNE_RETURN_IF_ERROR(
        wire::RecvFrame(control_fd, &header, &payload, kCoordinator));
    if (header.kind == kCtrlEdgesDone) break;
    if (header.kind != kCtrlEdges) {
      return Status::Internal("rank process expected an edge frame");
    }
    // The frame's `from` field carries the destination rank: one frame is
    // one run of that rank's edges, bare 16-byte {src, dst} records.
    if (header.from >= num_partitions ||
        comm.rank_to_proc(static_cast<int>(header.from)) != child) {
      return Status::Internal("misrouted edge frame");
    }
    const std::size_t slot = comm.slot_of_rank(static_cast<int>(header.from));
    wire::PayloadReader reader(payload.data(), payload.size());
    Edge rec{};
    while (reader.remaining() > 0) {
      if (!reader.Read(&rec)) {
        return Status::Internal("malformed edge frame");
      }
      allocs[slot].AddEdge(next_local_edge[slot]++, rec.src, rec.dst);
    }
  }
  for (AllocationProcess& a : allocs) a.Finalize();

  const std::uint64_t limit =
      DneEdgeLimit(opt.alpha, tail.total_edges, num_partitions);
  std::vector<DneRankState> states;
  states.reserve(num_local);
  for (std::size_t l = 0; l < num_local; ++l) {
    states.emplace_back(local[l], std::move(allocs[l]),
                        MakeDneExpansion(opt, local[l], tail.num_vertices,
                                         limit, tail.seed),
                        num_partitions);
  }
  allocs.clear();
  const double distribute_seconds = distribute_timer.Seconds();

  TapeLedger ledger(local);
  comm.SetLedger(&ledger);
  TwoDDistribution dist(num_partitions, tail.seed);

  DneLoopEnv env;
  env.options = &opt;
  env.num_partitions = num_partitions;
  env.total_edges = tail.total_edges;
  env.edge_limit = limit;
  env.max_supersteps = DneMaxSupersteps(opt, tail.num_vertices);
  env.dist = &dist;
  env.comm = &comm;
  env.ledger = &ledger;
  if (opt.fault_rank == child) {
    env.superstep_hook = [child](std::uint64_t iter) -> Status {
      if (iter == 1) {
        // Injected crash: die without a goodbye so the failure path is the
        // real one (peers see EOF, the coordinator sees the exit status).
        ::_exit(3);
      }
      (void)child;
      return Status::OK();
    };
  }

  DneLoopResult result;
  DNE_RETURN_IF_ERROR(RunDneSuperstepLoop(env, &states, &result));
  // Terminal barrier: every rank's exchanges (and with them its accounting
  // tape) are complete before anything is reported.
  DNE_RETURN_IF_ERROR(comm.Barrier());

  // Results: one frame per hosted rank with the shard's assignment.
  std::vector<unsigned char> buf;
  for (std::size_t l = 0; l < num_local; ++l) {
    const std::vector<PartitionId>& parts =
        states[l].alloc.local_assignment();
    buf.clear();
    wire::AppendPod(&buf, static_cast<std::uint32_t>(local[l]));
    wire::AppendPod(&buf, std::uint32_t{0});
    wire::AppendPod(&buf, static_cast<std::uint64_t>(parts.size()));
    const auto* data = reinterpret_cast<const unsigned char*>(parts.data());
    buf.insert(buf.end(), data, data + parts.size() * sizeof(PartitionId));
    DNE_RETURN_IF_ERROR(wire::SendFrame(control_fd, kCtrlResult,
                                        static_cast<std::uint32_t>(child),
                                        buf.data(), buf.size(),
                                        kCoordinator));
  }

  // Stats: per-rank counters + the accounting tape, gathered while the
  // cluster stands at the terminal barrier.
  buf.clear();
  StatsHead head{};
  head.iterations = result.iterations;
  head.rss_bytes = SelfPeakRssBytes();
  for (int i = 0; i < 4; ++i) head.phase_seconds[i] = result.host_phase_seconds[i];
  head.distribute_seconds = distribute_seconds;
  head.num_local = static_cast<std::uint32_t>(num_local);
  head.num_steps = ledger.steps().size();
  wire::AppendPod(&buf, head);
  for (std::size_t l = 0; l < num_local; ++l) {
    const DneRankState& st = states[l];
    RankStatsRecord rec{};
    rec.rank = static_cast<std::uint32_t>(local[l]);
    rec.two_hop = st.two_hop_edges;
    rec.restarts = st.random_restarts;
    // The same census the in-process driver takes: frozen structures plus
    // the grown allocation-id spill plus the peak boundary queue.
    rec.mem_bytes =
        st.alloc.StaticMemoryBytes() + st.alloc.DynamicMemoryBytes() +
        st.expansion.peak_boundary_size() * (sizeof(std::uint64_t) * 2);
    rec.boundary_peak = st.expansion.peak_boundary_size();
    wire::AppendPod(&buf, rec);
  }
  for (const TapeLedger::Step& step : ledger.steps()) {
    wire::AppendPod(&buf, static_cast<std::uint8_t>(step.selection));
    wire::AppendPod(&buf, static_cast<std::uint8_t>(step.superstep_end));
    wire::AppendPod(&buf, std::uint16_t{0});
    wire::AppendPod(&buf, std::uint32_t{0});
    for (const TapeLedger::StepRow& row : step.rows) {
      wire::AppendPod(&buf, row.work);
      wire::AppendPod(&buf, row.data_bytes);
      wire::AppendPod(&buf, row.data_messages);
      wire::AppendPod(&buf, row.control_bytes);
      wire::AppendPod(&buf, row.wire_bytes);
      wire::AppendPod(&buf, row.wire_frames);
    }
  }
  return wire::SendFrame(control_fd, kCtrlStats,
                         static_cast<std::uint32_t>(child), buf.data(),
                         buf.size(), kCoordinator);
}

int DneChildMain(int child, const std::vector<int>& mesh_fds,
                 int control_fd) {
  const Status st = ChildRun(child, mesh_fds, control_fd);
  if (st.ok()) return 0;
  // Best-effort diagnostic to the coordinator before exiting non-zero.
  const std::string msg = st.ToString();
  (void)wire::SendFrame(
      control_fd, kCtrlError, static_cast<std::uint32_t>(child),
      reinterpret_cast<const unsigned char*>(msg.data()), msg.size(),
      kCoordinator);
  return 1;
}

// ---- Parent side ------------------------------------------------------------

struct ChildReport {
  bool stats_done = false;
  StatsHead head{};
  std::vector<RankStatsRecord> rank_stats;
  std::vector<TapeLedger::Step> tape;
  std::vector<std::vector<PartitionId>> rank_parts;  // by local slot
  std::vector<int> local_ranks;
};

Status ParseStatsFrame(const std::vector<unsigned char>& payload,
                       ChildReport* report) {
  wire::PayloadReader reader(payload.data(), payload.size());
  if (!reader.Read(&report->head)) {
    return Status::Internal("malformed stats frame header");
  }
  // Size the frame arithmetic before any resize: a corrupted count must
  // become a diagnostic, not an allocation of its face value.
  const std::uint64_t per_step =
      8 + static_cast<std::uint64_t>(report->head.num_local) *
              (6 * sizeof(std::uint64_t));
  if (report->head.num_local == 0 ||
      report->head.num_local > (1u << 20) ||
      report->head.num_steps > (1ull << 32) ||
      reader.remaining() !=
          report->head.num_local * sizeof(RankStatsRecord) +
              report->head.num_steps * per_step) {
    return Status::Internal("stats frame size mismatch (corrupted counts)");
  }
  report->rank_stats.resize(report->head.num_local);
  for (RankStatsRecord& rec : report->rank_stats) {
    if (!reader.Read(&rec)) return Status::Internal("malformed rank stats");
  }
  report->tape.resize(report->head.num_steps);
  for (TapeLedger::Step& step : report->tape) {
    std::uint8_t selection = 0, superstep_end = 0;
    std::uint16_t pad16 = 0;
    std::uint32_t pad32 = 0;
    if (!reader.Read(&selection) || !reader.Read(&superstep_end) ||
        !reader.Read(&pad16) || !reader.Read(&pad32)) {
      return Status::Internal("malformed tape step");
    }
    step.selection = selection != 0;
    step.superstep_end = superstep_end != 0;
    step.rows.resize(report->head.num_local);
    for (TapeLedger::StepRow& row : step.rows) {
      if (!reader.Read(&row.work) || !reader.Read(&row.data_bytes) ||
          !reader.Read(&row.data_messages) ||
          !reader.Read(&row.control_bytes) || !reader.Read(&row.wire_bytes) ||
          !reader.Read(&row.wire_frames)) {
        return Status::Internal("malformed tape row");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status RunDneProcessTransport(const Graph& g, std::uint32_t num_partitions,
                              const DneOptions& options, std::uint64_t seed,
                              int nproc, const PartitionContext& ctx,
                              EdgePartition* out, DneStats* stats) {
  const std::uint64_t total_edges = g.NumEdges();
  const int ranks = static_cast<int>(num_partitions);
  TwoDDistribution dist(num_partitions, seed);

  ProcessCluster cluster;
  DNE_RETURN_IF_ERROR(cluster.Launch(nproc, DneChildMain));
  auto fail = [&cluster](Status st) {
    cluster.KillAll();
    const std::string abnormal = cluster.ReapAll();
    if (abnormal.empty()) return st;
    return Status::Internal(st.message() + " [" + abnormal + "]");
  };

  WallTimer ship_timer;
  // Config to every rank process.
  {
    std::vector<unsigned char> cfg;
    for (int c = 0; c < nproc; ++c) {
      cfg.clear();
      wire::AppendPod(&cfg, options);
      ConfigTail tail{};
      tail.num_partitions = num_partitions;
      tail.nproc = static_cast<std::uint32_t>(nproc);
      tail.proc_index = static_cast<std::uint32_t>(c);
      tail.num_vertices = g.NumVertices();
      tail.total_edges = total_edges;
      tail.seed = seed;
      wire::AppendPod(&cfg, tail);
      const Status st =
          wire::SendFrame(cluster.control_fd(c), kCtrlConfig, 0, cfg.data(),
                          cfg.size(), "rank process " + std::to_string(c));
      if (!st.ok()) return fail(st);
    }
  }

  // 2-D shard streaming; the coordinator keeps the local-index ->
  // global-id mapping per rank so the children never need global ids.
  // Edges are buffered per destination rank and shipped as bare 16-byte
  // {src, dst} records in frames whose `from` field names the rank —
  // per-rank arrival order is still ascending global order, which is all
  // the child's AddEdge/CSR construction depends on.
  std::vector<std::vector<EdgeId>> rank_gids(ranks);
  {
    std::vector<std::vector<unsigned char>> bufs(ranks);
    constexpr std::size_t kFlushBytes = 1 << 20;
    auto flush = [&](int r) -> Status {
      if (bufs[r].empty()) return Status::OK();
      const int c = r % nproc;
      Status st = wire::SendFrame(cluster.control_fd(c), kCtrlEdges,
                                  static_cast<std::uint32_t>(r),
                                  bufs[r].data(), bufs[r].size(),
                                  "rank process " + std::to_string(c));
      bufs[r].clear();
      return st;
    };
    for (EdgeId e = 0; e < total_edges; ++e) {
      const Edge& ed = g.edge(e);
      const int r = dist.OwnerOf(ed.src, ed.dst);
      rank_gids[r].push_back(e);
      wire::AppendPod(&bufs[r], ed);
      if (bufs[r].size() >= kFlushBytes) {
        // Flush boundaries double as the cancellation/progress points of
        // the distribution phase (the superstep loop has its own).
        if (ctx.cancelled()) {
          return fail(Status::Cancelled("partitioning cancelled"));
        }
        ctx.ReportProgress("distribute", e, total_edges);
        const Status st = flush(r);
        if (!st.ok()) return fail(st);
      }
    }
    for (int r = 0; r < ranks; ++r) {
      const Status st = flush(r);
      if (!st.ok()) return fail(st);
    }
    for (int c = 0; c < nproc; ++c) {
      const Status st = wire::SendFrame(cluster.control_fd(c), kCtrlEdgesDone,
                                        0, nullptr, 0,
                                        "rank process " + std::to_string(c));
      if (!st.ok()) return fail(st);
    }
  }
  const double ship_seconds = ship_timer.Seconds();

  // Monitor: collect result + stats frames; any child error, crash or
  // cancellation tears the cluster down immediately.
  std::vector<ChildReport> reports(nproc);
  for (int c = 0; c < nproc; ++c) {
    for (int r = c; r < ranks; r += nproc) reports[c].local_ranks.push_back(r);
    reports[c].rank_parts.resize(reports[c].local_ranks.size());
  }
  int remaining = nproc;
  while (remaining > 0) {
    if (ctx.cancelled()) {
      return fail(Status::Cancelled("partitioning cancelled"));
    }
    std::vector<pollfd> pfds;
    std::vector<int> children;
    for (int c = 0; c < nproc; ++c) {
      if (reports[c].stats_done) continue;
      pfds.push_back(pollfd{cluster.control_fd(c), POLLIN, 0});
      children.push_back(c);
    }
    const int rc = ::poll(pfds.data(), pfds.size(), 200);
    if (rc < 0 && errno != EINTR) {
      return fail(Status::Internal(std::string("poll failed: ") +
                                   std::strerror(errno)));
    }
    {
      // Reap zombies as they appear. An exit is not yet a failure: a
      // finished child's frames may still sit in the socket buffer — the
      // buffer stays readable after the peer closes, so the drain below
      // decides. A crash surfaces as EOF before the stats frame.
      int exited = 0, status = 0;
      while (cluster.PollExited(&exited, &status)) {
      }
    }
    if (rc <= 0) continue;
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int c = children[k];
      ChildReport& report = reports[c];
      wire::FrameHeader header;
      std::vector<unsigned char> payload;
      Status st = wire::RecvFrame(cluster.control_fd(c), &header, &payload,
                                  "rank process " + std::to_string(c));
      if (!st.ok()) {
        return fail(Status::Internal(
            "rank process " + std::to_string(c) +
            " died before reporting results: " + st.message()));
      }
      if (header.kind == kCtrlError) {
        return fail(Status::Internal(
            "rank process " + std::to_string(c) + " failed: " +
            std::string(payload.begin(), payload.end())));
      }
      if (header.kind == kCtrlResult) {
        wire::PayloadReader reader(payload.data(), payload.size());
        std::uint32_t rank = 0, pad = 0;
        std::uint64_t count = 0;
        if (!reader.Read(&rank) || !reader.Read(&pad) ||
            !reader.Read(&count) || rank >= num_partitions ||
            static_cast<int>(rank % nproc) != c ||
            count != rank_gids[rank].size() ||
            reader.remaining() != count * sizeof(PartitionId)) {
          return fail(Status::Internal("malformed result frame from rank " +
                                       std::to_string(rank)));
        }
        std::vector<PartitionId> parts(count);
        reader.ReadBytes(parts.data(), count * sizeof(PartitionId));
        report.rank_parts[rank / nproc] = std::move(parts);
        continue;
      }
      if (header.kind == kCtrlStats) {
        st = ParseStatsFrame(payload, &report);
        if (!st.ok()) return fail(st);
        if (report.head.num_local != report.local_ranks.size()) {
          return fail(Status::Internal("stats frame with wrong rank count"));
        }
        report.stats_done = true;
        --remaining;
        continue;
      }
      return fail(Status::Internal("unexpected control frame kind " +
                                   std::to_string(header.kind)));
    }
  }
  {
    const std::string abnormal = cluster.ReapAll();
    if (!abnormal.empty()) {
      return Status::Internal("rank process exited abnormally: " + abnormal);
    }
  }

  // ---- Assemble the partition ----------------------------------------------
  *out = EdgePartition(num_partitions, total_edges);
  std::vector<PartitionId>& assignment = out->mutable_assignment();
  for (int r = 0; r < ranks; ++r) {
    const ChildReport& report = reports[r % nproc];
    const std::vector<PartitionId>& parts = report.rank_parts[r / nproc];
    const std::vector<EdgeId>& gids = rank_gids[r];
    for (std::size_t i = 0; i < gids.size(); ++i) {
      assignment[gids[i]] = parts[i];
    }
  }

  // ---- Replay the tapes into the shared stats machinery --------------------
  // Every endpoint ran the same BSP schedule, so the tapes must agree on
  // step count and superstep count; the replay recovers the cluster-wide
  // critical path (max over ranks per step) from observed quantities.
  const std::size_t num_steps = reports[0].tape.size();
  for (int c = 1; c < nproc; ++c) {
    if (reports[c].tape.size() != num_steps ||
        reports[c].head.iterations != reports[0].head.iterations) {
      return Status::Internal("rank processes disagree on the superstep "
                              "schedule (transport bug)");
    }
  }
  SimCluster sim(ranks, options.cost);
  SimClusterLedger replay(&sim);
  std::uint64_t wire_total = 0;
  for (std::size_t s = 0; s < num_steps; ++s) {
    for (int c = 0; c < nproc; ++c) {
      const ChildReport& report = reports[c];
      const TapeLedger::Step& step = report.tape[s];
      for (std::size_t l = 0; l < report.local_ranks.size(); ++l) {
        const int r = report.local_ranks[l];
        const TapeLedger::StepRow& row = step.rows[l];
        replay.AddWork(r, row.work);
        replay.AddDataAggregate(r, row.data_bytes, row.data_messages);
        replay.AddControlBytes(r, row.control_bytes);
        replay.AddWireOverhead(r, row.wire_bytes, row.wire_frames);
        wire_total += row.data_bytes + row.control_bytes + row.wire_bytes;
      }
    }
    if (reports[0].tape[s].superstep_end) {
      replay.EndSuperstep();
    } else {
      replay.EndPhase(reports[0].tape[s].selection);
    }
  }

  *stats = DneStats{};
  stats->iterations = reports[0].head.iterations;
  stats->rank_peak_bytes.assign(ranks, 0);
  std::uint64_t max_boundary = 0, sum_boundary = 0;
  for (int c = 0; c < nproc; ++c) {
    const ChildReport& report = reports[c];
    for (const RankStatsRecord& rec : report.rank_stats) {
      stats->two_hop_edges += rec.two_hop;
      stats->random_restarts += rec.restarts;
      sim.mem().Allocate(static_cast<int>(rec.rank), rec.mem_bytes);
      max_boundary = std::max(max_boundary, rec.boundary_peak);
      sum_boundary += rec.boundary_peak;
    }
    stats->process_rss_bytes.push_back(report.head.rss_bytes);
    for (int i = 0; i < 4; ++i) {
      double& phase = i == 0   ? stats->host_phase_a_seconds
                      : i == 1 ? stats->host_phase_b_seconds
                      : i == 2 ? stats->host_phase_c_seconds
                               : stats->host_phase_d_seconds;
      phase = std::max(phase, report.head.phase_seconds[i]);
    }
    stats->host_distribute_seconds = std::max(
        stats->host_distribute_seconds, report.head.distribute_seconds);
  }
  // The children ingest concurrently with the coordinator's ship loop, so
  // the phase's wall time is the slower of the two — not their sum.
  stats->host_distribute_seconds =
      std::max(stats->host_distribute_seconds, ship_seconds);
  stats->one_hop_edges = total_edges - stats->two_hop_edges;
  stats->comm_bytes = sim.comm().bytes;
  stats->comm_messages = sim.comm().messages;
  stats->sim_seconds = sim.cost().SimSeconds();
  stats->selection_work_fraction =
      replay.total_critical_ops() == 0
          ? 0.0
          : static_cast<double>(replay.selection_critical_ops()) /
                static_cast<double>(replay.total_critical_ops());
  stats->peak_memory_bytes = sim.mem().peak_total();
  stats->rank_peak_bytes = sim.mem().rank_peaks();
  stats->boundary_imbalance =
      sum_boundary == 0 ? 1.0
                        : static_cast<double>(max_boundary) * num_partitions /
                              static_cast<double>(sum_boundary);
  stats->wire_bytes = wire_total;
  stats->wire_frames = replay.wire_frames();
  stats->rank_processes = nproc;
  stats->edges_per_partition = out->PartitionSizes();
  return Status::OK();
}

}  // namespace dne
