// AllocationProcess: one per machine (Fig. 4). Owns a unique slice of the
// edges (2-D hash), replicated vertex allocation-id sets, and performs the
// one-hop / two-hop edge allocation of Algorithms 2-3.
#ifndef DNE_PARTITION_DNE_ALLOCATION_PROCESS_H_
#define DNE_PARTITION_DNE_ALLOCATION_PROCESS_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "partition/dne/compact_part_sets.h"
#include "partition/dne/dne_messages.h"
#include "partition/dne/dne_options.h"

namespace dne {

/// One edge allocated this superstep, queued for hand-off to the owning
/// expansion rank (Fig. 4's data flow): the edge travels, the destination
/// is implied by `p` (one expansion process per partition).
struct HandoffRecord {
  Edge edge;
  PartitionId p;
};

class AllocationProcess {
 public:
  /// `legacy_scan` replays the pre-overhaul data structures — whole-array
  /// binary search for LocalIndex, full adjacency rescans (no live-arc
  /// compaction) and materialised two-hop set intersections — so
  /// bench_dne_hotpath can measure the overhaul end to end. The allocation
  /// *results* are identical either way.
  AllocationProcess(int rank, std::uint32_t num_partitions,
                    SeedStrategy seed_strategy = SeedStrategy::kRandom,
                    bool legacy_scan = false)
      : rank_(rank),
        seed_strategy_(seed_strategy),
        legacy_scan_(legacy_scan),
        local_count_per_part_(num_partitions, 0) {}

  /// Build stage: registers an owned edge (global id + endpoints).
  void AddEdge(EdgeId e, VertexId u, VertexId v);

  /// Build stage, parallel 2-D distribution: pre-sizes the edge buffers so
  /// concurrent chunks can scatter-write owned edges via PlaceEdge().
  void PrepareBulkEdges(std::size_t count) {
    build_edges_.resize(count);
    build_gids_.resize(count);
  }

  /// Writes owned edge `e` into slot `pos` of the build buffers. The driver
  /// derives slots from deterministic per-(chunk, owner) prefix sums, so
  /// each slot is written exactly once and the resulting order equals the
  /// sequential AddEdge order (ascending global edge id) for any thread
  /// count.
  void PlaceEdge(std::size_t pos, EdgeId e, VertexId u, VertexId v) {
    build_edges_[pos] = Edge{u, v};
    build_gids_[pos] = e;
  }

  /// Freezes the local CSR. Must be called once before the superstep loop.
  void Finalize();

  /// Resident bytes of the frozen structures (CSR + state arrays).
  std::size_t StaticMemoryBytes() const;
  /// Bytes grown during the run (vertex allocation-id sets).
  std::size_t DynamicMemoryBytes() const;

  /// A local vertex that still has unallocated edges (random-restart source,
  /// Alg. 1 line 7); kNoVertex if this rank is exhausted. Non-consuming.
  VertexId PeekFreeVertex();

  /// Sets this rank's per-partition allocation caps for the coming
  /// superstep. Derived by the driver from the all-gathered |E_p| of
  /// Alg. 1 line 14: remaining budget split across the replica ranks, so
  /// the cluster-wide per-superstep allocation for p cannot exceed its
  /// remaining budget and |E_p| stays below ~alpha |E| / |P|.
  void SetSuperstepBudgets(std::vector<std::uint64_t> budgets) {
    budget_ = std::move(budgets);
  }

  /// Phase B (Alg. 3 AllocteOneHopNeighbors): allocates the remaining local
  /// edges of each requested vertex to the requesting partition, recording
  /// the result in this rank's local assignment (edges are uniquely owned,
  /// so ranks never conflict; conflicts between partitions at this rank
  /// resolve in request order). Newly created (vertex, partition) pairs are
  /// appended to `sync_out` for replica synchronisation; per-partition
  /// allocation counts for this phase are added to `allocated_per_part`;
  /// `*ops` accrues local work units.
  void AllocateOneHop(const std::vector<SelectRequest>& requests,
                      std::vector<VertexPartPair>* sync_out,
                      std::vector<std::uint64_t>* allocated_per_part,
                      std::uint64_t* ops);

  /// Phase C1 (SyncVertexAllocations, receive side): applies pairs from
  /// other ranks; pairs new to this rank join the pending set.
  void ApplySync(const std::vector<VertexPartPair>& pairs, std::uint64_t* ops);

  /// Phase C2 (AllocateTwoHopNeighbors) over the pending pairs: allocates
  /// edges whose two endpoints already share a partition (Condition (5)),
  /// to the locally least-loaded shared partition (Alg. 3 line 16).
  void AllocateTwoHop(std::vector<std::uint64_t>* allocated_per_part,
                      std::uint64_t* two_hop_count, std::uint64_t* ops);

  /// Phase C3 (ComputeLocalDrest): one report per pending pair, then clears
  /// the pending set for the next superstep.
  void DrainBoundaryReports(std::vector<BoundaryReport>* out,
                            std::uint64_t* ops);

  /// Edges allocated since the last ClearSuperstepHandoff(), in allocation
  /// order — the per-superstep hand-off payload to the expansion ranks.
  const std::vector<HandoffRecord>& superstep_handoff() const {
    return handoff_;
  }
  void ClearSuperstepHandoff() { handoff_.clear(); }

  /// This rank's materialised result: partition of each *local* edge,
  /// indexed by local edge id (insertion order), kNoPartition while
  /// unallocated.
  const std::vector<PartitionId>& local_assignment() const {
    return local_assignment_;
  }

  /// Streams the final (global edge id, partition) pairs of every allocated
  /// local edge — how the in-process driver scatters rank results into the
  /// shared output (ranks own disjoint edges, so concurrent scatters never
  /// collide).
  template <typename Fn>
  void ForEachAssignment(Fn&& fn) const {
    for (std::size_t le = 0; le < local_assignment_.size(); ++le) {
      if (edge_done_[le]) fn(edge_gid_[le], local_assignment_[le]);
    }
  }

  int rank() const { return rank_; }
  std::uint64_t num_local_edges() const { return edge_gid_.size(); }

  /// Checkpoint support: appends the mutable post-Finalize state — edge
  /// assignments, rest degrees, the seed cursor, the live adjacency windows
  /// (window contents included: the compacting scans permute them) and the
  /// vertex allocation-id sets. The frozen CSR itself is NOT written; the
  /// restoring process rebuilds it from its re-shipped edge shard.
  void SerializeState(std::vector<unsigned char>* out) const;

  /// Restores a SerializeState snapshot into this freshly Finalize()d twin,
  /// re-deriving edge_done_ and the per-partition counts and resetting the
  /// per-superstep queues. False on any shape mismatch with the local CSR
  /// (the caller treats that as an unusable checkpoint).
  bool RestoreState(wire::PayloadReader* reader);

 private:
  std::uint32_t LocalIndex(VertexId v) const;
  /// Sorts + dedups pending_ unless it is already in that state.
  void SortPendingUnique();
  /// Allocates local edge `le` (endpoints `a`, `b`, local ids) to p;
  /// registers fresh (vertex, partition) pairs in pending_/sync and the
  /// edge in the superstep hand-off queue.
  void Allocate(std::uint32_t le, std::uint32_t a, std::uint32_t b,
                PartitionId p, std::vector<VertexPartPair>* sync_out);
  bool AddVertexPart(std::uint32_t local_v, PartitionId p);

  struct Arc {
    std::uint32_t to;    // local vertex index
    std::uint32_t edge;  // local edge index
  };

  int rank_;
  SeedStrategy seed_strategy_;
  bool legacy_scan_;
  // Scratch buffers for the legacy-mode two-hop intersection.
  std::vector<PartitionId> scratch_u_;
  std::vector<PartitionId> scratch_w_;
  // Seed scan order (degree-sorted for the non-random strategies).
  std::vector<std::uint32_t> seed_order_;
  // Build buffers (cleared by Finalize).
  std::vector<Edge> build_edges_;
  std::vector<EdgeId> build_gids_;

  // Frozen local CSR.
  std::vector<VertexId> vertices_;       // sorted global ids
  std::vector<std::uint32_t> offsets_;   // per local vertex
  std::vector<Arc> arcs_;
  std::vector<EdgeId> edge_gid_;         // local edge -> global edge id
  std::vector<std::uint8_t> edge_done_;  // local allocation flag
  // Rank-local result: partition per local edge. This is the materialised
  // partition a real rank owns; a rank process ships it to the coordinator
  // once, after termination.
  std::vector<PartitionId> local_assignment_;
  // Edges allocated in the current superstep, awaiting hand-off.
  std::vector<HandoffRecord> handoff_;
  // Radix bucket index over the sorted vertices_ (monotone v -> bucket
  // mapping): LocalIndex narrows its binary search to one ~16-element
  // bucket instead of the whole array. O(|V_r|/16) extra words.
  std::vector<std::uint32_t> bucket_start_;
  std::uint64_t vrange_ = 0;       // vertices_.back() + 1; 0 when empty
  std::uint32_t bucket_count_ = 0;
  // Per-vertex live adjacency window [offsets_[v], live_end_[v]): the
  // allocation scans stably compact already-done arcs out, so a vertex
  // re-expanded by later partitions no longer re-reads dead arcs.
  std::vector<std::uint32_t> live_end_;

  // Mutable per-vertex state. Vertex allocation ids use the compact
  // bitmap/two-slot representation — the paper's "no memory-consuming data
  // structure" requirement; the two-hop intersection runs directly on it.
  std::vector<std::uint32_t> rest_degree_;
  CompactPartSets vertex_parts_;

  // Per-partition local allocation counts (Alg. 3 line 16 tie-break).
  std::vector<std::uint64_t> local_count_per_part_;

  // Pairs newly learned this superstep (locally created or synced in).
  // `pending_sorted_` tracks whether the set is already sorted + deduped so
  // the Phase-C passes sort at most once per superstep.
  std::vector<VertexPartPair> pending_;
  bool pending_sorted_ = true;

  // Per-partition allocation caps for the current superstep (empty = no
  // caps, used by unit tests that drive the process directly).
  std::vector<std::uint64_t> budget_;

  std::uint32_t free_cursor_ = 0;
};

}  // namespace dne

#endif  // DNE_PARTITION_DNE_ALLOCATION_PROCESS_H_
