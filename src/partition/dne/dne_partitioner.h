// DnePartitioner: Distributed Neighbor Expansion — the paper's contribution.
// Orchestrates |P| expansion processes and |P| allocation processes over the
// simulated cluster, one BSP superstep per Algorithm-1 iteration.
#ifndef DNE_PARTITION_DNE_DNE_PARTITIONER_H_
#define DNE_PARTITION_DNE_DNE_PARTITIONER_H_

#include <cstdint>

#include "partition/dne/dne_options.h"
#include "partition/partitioner.h"

namespace dne {

class DnePartitioner : public Partitioner {
 public:
  explicit DnePartitioner(const DneOptions& options = DneOptions{})
      : options_(options) {}

  std::string name() const override { return "dne"; }

  /// Detailed counters of the most recent run (iterations, one/two-hop
  /// splits, simulated time, peak memory...).
  const DneStats& dne_stats() const { return dne_stats_; }

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  DneOptions options_;
  DneStats dne_stats_;
};

}  // namespace dne

#endif  // DNE_PARTITION_DNE_DNE_PARTITIONER_H_
