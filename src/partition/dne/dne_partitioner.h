// DnePartitioner: Distributed Neighbor Expansion — the paper's contribution.
// Orchestrates |P| expansion processes and |P| allocation processes over the
// simulated cluster, one BSP superstep per Algorithm-1 iteration.
#ifndef DNE_PARTITION_DNE_DNE_PARTITIONER_H_
#define DNE_PARTITION_DNE_DNE_PARTITIONER_H_

#include <cstdint>
#include <string>

#include "partition/dne/dne_options.h"
#include "partition/partitioner.h"

namespace dne {

class DnePartitioner : public Partitioner {
 public:
  explicit DnePartitioner(const DneOptions& options = DneOptions{})
      : options_(options) {}

  std::string name() const override { return "dne"; }

  /// Variable-length option values that cannot ride in the fixed-size
  /// DneOptions POD as-is: validated (length / grammar) at Partition time,
  /// where a malformed value can surface as a proper Status instead of a
  /// silent truncation in the factory.
  void SetCheckpointDir(std::string dir) { checkpoint_dir_ = std::move(dir); }
  void SetFaultSpec(std::string spec) { fault_spec_ = std::move(spec); }

  /// Detailed counters of the most recent run (iterations, one/two-hop
  /// splits, simulated time, peak memory...).
  const DneStats& dne_stats() const { return dne_stats_; }

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  DneOptions options_;
  std::string checkpoint_dir_;
  std::string fault_spec_;
  DneStats dne_stats_;
};

}  // namespace dne

#endif  // DNE_PARTITION_DNE_DNE_PARTITIONER_H_
