#include "partition/dne/allocation_process.h"

#include <algorithm>
#include <bit>

namespace dne {

void AllocationProcess::AddEdge(EdgeId e, VertexId u, VertexId v) {
  build_edges_.push_back(Edge{u, v});
  build_gids_.push_back(e);
}

void AllocationProcess::Finalize() {
  const std::size_t m = build_edges_.size();
  vertices_.reserve(m * 2);
  for (const Edge& e : build_edges_) {
    vertices_.push_back(e.src);
    vertices_.push_back(e.dst);
  }
  std::sort(vertices_.begin(), vertices_.end());
  vertices_.erase(std::unique(vertices_.begin(), vertices_.end()),
                  vertices_.end());
  vertices_.shrink_to_fit();
  const std::uint32_t nv = static_cast<std::uint32_t>(vertices_.size());

  // Bucket index for LocalIndex (built before the lu/lv translation below,
  // which is itself the first heavy LocalIndex user). The legacy replay
  // neither builds nor charges it — it binary-searches the whole array.
  if (!legacy_scan_) {
    vrange_ = nv == 0 ? 0 : static_cast<std::uint64_t>(vertices_.back()) + 1;
    bucket_count_ = std::min<std::uint32_t>(
        1u << 20, std::bit_ceil(std::max<std::uint32_t>(1, nv / 16)));
    bucket_start_.assign(bucket_count_ + 1, 0);
    for (std::uint32_t i = 0; i < nv; ++i) {
      const std::uint32_t b = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(vertices_[i]) * bucket_count_ /
          vrange_);
      ++bucket_start_[b + 1];
    }
    for (std::uint32_t b = 0; b < bucket_count_; ++b) {
      bucket_start_[b + 1] += bucket_start_[b];
    }
  }

  offsets_.assign(nv + 1, 0);
  std::vector<std::uint32_t> lu(m), lv(m);
  for (std::size_t i = 0; i < m; ++i) {
    lu[i] = LocalIndex(build_edges_[i].src);
    lv[i] = LocalIndex(build_edges_[i].dst);
    ++offsets_[lu[i] + 1];
    ++offsets_[lv[i] + 1];
  }
  for (std::uint32_t v = 0; v < nv; ++v) offsets_[v + 1] += offsets_[v];
  arcs_.resize(2 * m);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < m; ++i) {
    arcs_[cursor[lu[i]]++] = Arc{lv[i], static_cast<std::uint32_t>(i)};
    arcs_[cursor[lv[i]]++] = Arc{lu[i], static_cast<std::uint32_t>(i)};
  }
  edge_gid_ = std::move(build_gids_);
  edge_done_.assign(m, 0);
  local_assignment_.assign(m, kNoPartition);
  rest_degree_.assign(nv, 0);
  if (!legacy_scan_) live_end_.assign(nv, 0);
  for (std::uint32_t v = 0; v < nv; ++v) {
    rest_degree_[v] = offsets_[v + 1] - offsets_[v];
    if (!legacy_scan_) live_end_[v] = offsets_[v + 1];
  }
  vertex_parts_.Init(nv,
                     static_cast<std::uint32_t>(local_count_per_part_.size()));
  seed_order_.resize(nv);
  for (std::uint32_t v = 0; v < nv; ++v) seed_order_[v] = v;
  if (seed_strategy_ != SeedStrategy::kRandom) {
    const bool ascending = seed_strategy_ == SeedStrategy::kMinDegree;
    std::sort(seed_order_.begin(), seed_order_.end(),
              [this, ascending](std::uint32_t a, std::uint32_t b) {
                const std::uint32_t da = offsets_[a + 1] - offsets_[a];
                const std::uint32_t db = offsets_[b + 1] - offsets_[b];
                if (da != db) return ascending ? da < db : da > db;
                return a < b;
              });
  }
  build_edges_.clear();
  build_edges_.shrink_to_fit();
}

std::size_t AllocationProcess::StaticMemoryBytes() const {
  // The per-machine footprint of the distributed deployment: local CSR,
  // allocation flags, D_rest counters, inline allocation-id slots. The
  // edge_gid_ array is NOT counted — a real rank addresses edges by local
  // index and materialises its own partition; the global-id array exists
  // only so this in-process simulation can write the shared result.
  return vertices_.capacity() * sizeof(VertexId) +
         offsets_.capacity() * sizeof(std::uint32_t) +
         arcs_.capacity() * sizeof(Arc) +
         edge_done_.capacity() * sizeof(std::uint8_t) +
         local_assignment_.capacity() * sizeof(PartitionId) +
         rest_degree_.capacity() * sizeof(std::uint32_t) +
         live_end_.capacity() * sizeof(std::uint32_t) +
         bucket_start_.capacity() * sizeof(std::uint32_t) +
         vertex_parts_.InlineBytes() +
         local_count_per_part_.capacity() * sizeof(std::uint64_t);
}

std::size_t AllocationProcess::DynamicMemoryBytes() const {
  return vertex_parts_.SpillBytes();
}

std::uint32_t AllocationProcess::LocalIndex(VertexId v) const {
  if (legacy_scan_) {
    auto it = std::lower_bound(vertices_.begin(), vertices_.end(), v);
    if (it == vertices_.end() || *it != v) return UINT32_MAX;
    return static_cast<std::uint32_t>(it - vertices_.begin());
  }
  if (static_cast<std::uint64_t>(v) >= vrange_) return UINT32_MAX;
  const std::uint32_t b = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(v) * bucket_count_ / vrange_);
  const VertexId* begin = vertices_.data() + bucket_start_[b];
  const VertexId* end = vertices_.data() + bucket_start_[b + 1];
  const VertexId* it = std::lower_bound(begin, end, v);
  if (it == end || *it != v) return UINT32_MAX;
  return static_cast<std::uint32_t>(it - vertices_.data());
}

VertexId AllocationProcess::PeekFreeVertex() {
  while (free_cursor_ < seed_order_.size() &&
         rest_degree_[seed_order_[free_cursor_]] == 0) {
    ++free_cursor_;
  }
  return free_cursor_ < seed_order_.size()
             ? vertices_[seed_order_[free_cursor_]]
             : kNoVertex;
}

bool AllocationProcess::AddVertexPart(std::uint32_t local_v, PartitionId p) {
  return vertex_parts_.Add(local_v, p);
}

void AllocationProcess::Allocate(std::uint32_t le, std::uint32_t a,
                                 std::uint32_t b, PartitionId p,
                                 std::vector<VertexPartPair>* sync_out) {
  edge_done_[le] = 1;
  local_assignment_[le] = p;
  handoff_.push_back(HandoffRecord{Edge{vertices_[a], vertices_[b]}, p});
  --rest_degree_[a];
  --rest_degree_[b];
  ++local_count_per_part_[p];
  // Both endpoints now belong to V(E_p); fresh pairs join the pending set
  // (processed for two-hop + D_rest this superstep) and, when a sync_out is
  // given, the replica-synchronisation outbox.
  for (std::uint32_t x : {a, b}) {
    if (AddVertexPart(x, p)) {
      pending_.push_back(VertexPartPair{vertices_[x], p});
      pending_sorted_ = false;
      if (sync_out != nullptr) {
        sync_out->push_back(VertexPartPair{vertices_[x], p});
      }
    }
  }
}

void AllocationProcess::AllocateOneHop(
    const std::vector<SelectRequest>& requests,
    std::vector<VertexPartPair>* sync_out,
    std::vector<std::uint64_t>* allocated_per_part, std::uint64_t* ops) {
  for (const SelectRequest& req : requests) {
    const std::uint32_t lv = LocalIndex(req.v);
    *ops += 1;
    if (lv == UINT32_MAX) continue;  // replica rank without local edges of v
    // Scan the live adjacency window only, dropping every arc that is (or
    // just became) allocated: a one-hop pass either allocates a live arc or
    // stops on an exhausted budget, so completed scans leave an empty
    // window and later expansions of v by other partitions are O(1).
    const std::uint32_t begin = offsets_[lv];
    const std::uint32_t end = legacy_scan_ ? offsets_[lv + 1] : live_end_[lv];
    std::uint32_t i = begin;
    for (; i < end; ++i) {
      const Arc a = arcs_[i];
      *ops += 1;
      if (edge_done_[a.edge]) continue;
      if (!budget_.empty() && budget_[req.p] == 0) break;  // p is full here
      if (!budget_.empty()) --budget_[req.p];
      Allocate(a.edge, lv, a.to, req.p, sync_out);
      ++(*allocated_per_part)[req.p];
    }
    if (legacy_scan_) continue;  // pre-overhaul: no window maintenance
    if (i < end) {
      // Budget break: the unscanned tail [i, end) is still live; slide it
      // to the window start (stable, so the pre-compaction scan order —
      // and with it the allocation result — is preserved exactly).
      std::copy(arcs_.begin() + i, arcs_.begin() + end,
                arcs_.begin() + begin);
      live_end_[lv] = begin + (end - i);
    } else {
      live_end_[lv] = begin;
    }
  }
}

void AllocationProcess::ApplySync(const std::vector<VertexPartPair>& pairs,
                                  std::uint64_t* ops) {
  for (const VertexPartPair& pair : pairs) {
    *ops += 1;
    const std::uint32_t lv = LocalIndex(pair.v);
    if (lv == UINT32_MAX) continue;
    if (AddVertexPart(lv, pair.p)) {
      pending_.push_back(pair);
      pending_sorted_ = false;
    }
  }
}

void AllocationProcess::SortPendingUnique() {
  if (pending_sorted_ && !legacy_scan_) return;
  std::sort(pending_.begin(), pending_.end());
  pending_.erase(std::unique(pending_.begin(), pending_.end()),
                 pending_.end());
  pending_sorted_ = true;
}

void AllocationProcess::AllocateTwoHop(
    std::vector<std::uint64_t>* allocated_per_part,
    std::uint64_t* two_hop_count, std::uint64_t* ops) {
  // Deterministic order; dedup by vertex — Alg. 3 line 12 iterates the
  // boundary vertices, ignoring the pair's partition.
  SortPendingUnique();
  VertexId last_v = kNoVertex;
  // Indexed loop: Allocate() can in principle append to pending_, but
  // two-hop allocations never create fresh (vertex, partition) pairs — both
  // endpoints already carry the chosen partition — so the size is stable
  // and the sorted/unique state established above survives the loop.
  const std::size_t pending_size = pending_.size();
  for (std::size_t pi = 0; pi < pending_size; ++pi) {
    const VertexPartPair pair = pending_[pi];
    if (pair.v == last_v) continue;
    last_v = pair.v;
    const std::uint32_t lu = LocalIndex(pair.v);
    if (lu == UINT32_MAX) continue;
    // Same live-window discipline as the one-hop scan: done arcs compact
    // out stably, arcs that stay unallocated (no common partition with
    // budget) are retained in order for the next superstep.
    const std::uint32_t begin = offsets_[lu];
    const std::uint32_t end = legacy_scan_ ? offsets_[lu + 1] : live_end_[lu];
    std::uint32_t w = begin;
    if (legacy_scan_) vertex_parts_.CopyTo(lu, &scratch_u_);
    for (std::uint32_t i = begin; i < end; ++i) {
      const Arc a = arcs_[i];
      *ops += 1;
      if (edge_done_[a.edge]) continue;
      // P_new = Parti(u) n Parti(w); allocate to the locally smallest
      // member with remaining budget (Alg. 3 lines 14-17). The fast path
      // intersects directly on the compact sets (a word AND in bitmap
      // mode) — no per-arc materialisation; the legacy path replays the
      // pre-overhaul copy-and-merge.
      PartitionId best = kNoPartition;
      if (legacy_scan_) {
        vertex_parts_.CopyTo(a.to, &scratch_w_);
        auto iu = scratch_u_.begin();
        auto iw = scratch_w_.begin();
        while (iu != scratch_u_.end() && iw != scratch_w_.end()) {
          if (*iu < *iw) {
            ++iu;
          } else if (*iw < *iu) {
            ++iw;
          } else {
            const bool has_budget = budget_.empty() || budget_[*iu] > 0;
            if (has_budget &&
                (best == kNoPartition ||
                 local_count_per_part_[*iu] < local_count_per_part_[best])) {
              best = *iu;
            }
            ++iu;
            ++iw;
          }
          *ops += 1;
        }
      } else {
        std::uint64_t visited = 0;
        vertex_parts_.ForEachCommon(lu, a.to, [&](PartitionId p) {
          ++visited;
          const bool has_budget = budget_.empty() || budget_[p] > 0;
          if (has_budget &&
              (best == kNoPartition ||
               local_count_per_part_[p] < local_count_per_part_[best])) {
            best = p;
          }
        });
        *ops += visited;
      }
      if (best != kNoPartition) {
        if (!budget_.empty()) --budget_[best];
        Allocate(a.edge, lu, a.to, best, nullptr);
        ++(*allocated_per_part)[best];
        ++(*two_hop_count);
      } else if (!legacy_scan_) {
        arcs_[w++] = a;  // still live: keep for the next superstep
      }
    }
    if (!legacy_scan_) live_end_[lu] = w;
  }
}

void AllocationProcess::DrainBoundaryReports(std::vector<BoundaryReport>* out,
                                             std::uint64_t* ops) {
  // No-op when AllocateTwoHop already sorted this superstep's pending set;
  // still needed when the two-hop phase is disabled by the ablation options.
  SortPendingUnique();
  for (const VertexPartPair& pair : pending_) {
    const std::uint32_t lv = LocalIndex(pair.v);
    if (lv == UINT32_MAX) continue;
    *ops += 1;
    out->push_back(BoundaryReport{pair.v, pair.p, rest_degree_[lv]});
  }
  pending_.clear();
  pending_sorted_ = true;
}

namespace {

template <typename T>
void AppendRaw(std::vector<unsigned char>* out, const std::vector<T>& v) {
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  out->insert(out->end(), p, p + v.size() * sizeof(T));
}

}  // namespace

void AllocationProcess::SerializeState(std::vector<unsigned char>* out) const {
  wire::AppendPod(out, static_cast<std::uint8_t>(legacy_scan_ ? 1 : 0));
  wire::AppendPod(out, static_cast<std::uint64_t>(local_assignment_.size()));
  AppendRaw(out, local_assignment_);
  wire::AppendPod(out, static_cast<std::uint64_t>(rest_degree_.size()));
  AppendRaw(out, rest_degree_);
  wire::AppendPod(out, free_cursor_);
  // Fast path only: the compacting scans both shrink each vertex's live
  // window and permute the arcs inside it, so window bounds AND contents
  // are state. Arcs past live_end_[v] are dead — never read again — and
  // are left as whatever the restoring Finalize() produced.
  const std::uint8_t has_live = live_end_.empty() ? 0 : 1;
  wire::AppendPod(out, has_live);
  if (has_live != 0) {
    AppendRaw(out, live_end_);
    for (std::size_t v = 0; v < live_end_.size(); ++v) {
      const auto* p =
          reinterpret_cast<const unsigned char*>(&arcs_[offsets_[v]]);
      out->insert(out->end(), p,
                  p + (live_end_[v] - offsets_[v]) * sizeof(Arc));
    }
  }
  vertex_parts_.SerializeState(out);
}

bool AllocationProcess::RestoreState(wire::PayloadReader* reader) {
  std::uint8_t legacy = 0;
  if (!reader->Read(&legacy) || legacy != (legacy_scan_ ? 1 : 0)) return false;
  std::uint64_t num_edges = 0;
  if (!reader->Read(&num_edges) || num_edges != local_assignment_.size() ||
      !reader->ReadBytes(local_assignment_.data(),
                         num_edges * sizeof(PartitionId))) {
    return false;
  }
  std::uint64_t num_vertices = 0;
  if (!reader->Read(&num_vertices) || num_vertices != rest_degree_.size() ||
      !reader->ReadBytes(rest_degree_.data(),
                         num_vertices * sizeof(std::uint32_t))) {
    return false;
  }
  if (!reader->Read(&free_cursor_) || free_cursor_ > num_vertices) {
    return false;
  }
  std::uint8_t has_live = 0;
  if (!reader->Read(&has_live) || has_live != (live_end_.empty() ? 0 : 1)) {
    return false;
  }
  if (has_live != 0) {
    if (!reader->ReadBytes(live_end_.data(),
                           num_vertices * sizeof(std::uint32_t))) {
      return false;
    }
    for (std::size_t v = 0; v < live_end_.size(); ++v) {
      if (live_end_[v] < offsets_[v] || live_end_[v] > offsets_[v + 1]) {
        return false;
      }
      if (!reader->ReadBytes(&arcs_[offsets_[v]],
                             (live_end_[v] - offsets_[v]) * sizeof(Arc))) {
        return false;
      }
    }
  }
  if (!vertex_parts_.RestoreState(reader)) return false;
  // Derived state: allocation flags and per-partition counts follow from
  // the restored assignment. Per-superstep queues restart empty — the
  // checkpoint is taken at a superstep boundary, where they always are.
  std::fill(local_count_per_part_.begin(), local_count_per_part_.end(), 0);
  for (std::size_t le = 0; le < local_assignment_.size(); ++le) {
    const PartitionId p = local_assignment_[le];
    edge_done_[le] = p != kNoPartition ? 1 : 0;
    if (p == kNoPartition) continue;
    if (p >= local_count_per_part_.size()) return false;
    ++local_count_per_part_[p];
  }
  pending_.clear();
  pending_sorted_ = true;
  handoff_.clear();
  budget_.clear();
  return true;
}

}  // namespace dne
