#include "partition/dne/allocation_process.h"

#include <algorithm>

namespace dne {

void AllocationProcess::AddEdge(EdgeId e, VertexId u, VertexId v) {
  build_edges_.push_back(Edge{u, v});
  build_gids_.push_back(e);
}

void AllocationProcess::Finalize() {
  const std::size_t m = build_edges_.size();
  vertices_.reserve(m * 2);
  for (const Edge& e : build_edges_) {
    vertices_.push_back(e.src);
    vertices_.push_back(e.dst);
  }
  std::sort(vertices_.begin(), vertices_.end());
  vertices_.erase(std::unique(vertices_.begin(), vertices_.end()),
                  vertices_.end());
  vertices_.shrink_to_fit();
  const std::uint32_t nv = static_cast<std::uint32_t>(vertices_.size());

  offsets_.assign(nv + 1, 0);
  std::vector<std::uint32_t> lu(m), lv(m);
  for (std::size_t i = 0; i < m; ++i) {
    lu[i] = LocalIndex(build_edges_[i].src);
    lv[i] = LocalIndex(build_edges_[i].dst);
    ++offsets_[lu[i] + 1];
    ++offsets_[lv[i] + 1];
  }
  for (std::uint32_t v = 0; v < nv; ++v) offsets_[v + 1] += offsets_[v];
  arcs_.resize(2 * m);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < m; ++i) {
    arcs_[cursor[lu[i]]++] = Arc{lv[i], static_cast<std::uint32_t>(i)};
    arcs_[cursor[lv[i]]++] = Arc{lu[i], static_cast<std::uint32_t>(i)};
  }
  edge_gid_ = std::move(build_gids_);
  edge_done_.assign(m, 0);
  rest_degree_.assign(nv, 0);
  for (std::uint32_t v = 0; v < nv; ++v) {
    rest_degree_[v] = offsets_[v + 1] - offsets_[v];
  }
  vertex_parts_.Init(nv,
                     static_cast<std::uint32_t>(local_count_per_part_.size()));
  seed_order_.resize(nv);
  for (std::uint32_t v = 0; v < nv; ++v) seed_order_[v] = v;
  if (seed_strategy_ != SeedStrategy::kRandom) {
    const bool ascending = seed_strategy_ == SeedStrategy::kMinDegree;
    std::sort(seed_order_.begin(), seed_order_.end(),
              [this, ascending](std::uint32_t a, std::uint32_t b) {
                const std::uint32_t da = offsets_[a + 1] - offsets_[a];
                const std::uint32_t db = offsets_[b + 1] - offsets_[b];
                if (da != db) return ascending ? da < db : da > db;
                return a < b;
              });
  }
  build_edges_.clear();
  build_edges_.shrink_to_fit();
}

std::size_t AllocationProcess::StaticMemoryBytes() const {
  // The per-machine footprint of the distributed deployment: local CSR,
  // allocation flags, D_rest counters, inline allocation-id slots. The
  // edge_gid_ array is NOT counted — a real rank addresses edges by local
  // index and materialises its own partition; the global-id array exists
  // only so this in-process simulation can write the shared result.
  return vertices_.capacity() * sizeof(VertexId) +
         offsets_.capacity() * sizeof(std::uint32_t) +
         arcs_.capacity() * sizeof(Arc) +
         edge_done_.capacity() * sizeof(std::uint8_t) +
         rest_degree_.capacity() * sizeof(std::uint32_t) +
         vertex_parts_.InlineBytes() +
         local_count_per_part_.capacity() * sizeof(std::uint64_t);
}

std::size_t AllocationProcess::DynamicMemoryBytes() const {
  return vertex_parts_.SpillBytes();
}

std::uint32_t AllocationProcess::LocalIndex(VertexId v) const {
  auto it = std::lower_bound(vertices_.begin(), vertices_.end(), v);
  if (it == vertices_.end() || *it != v) return UINT32_MAX;
  return static_cast<std::uint32_t>(it - vertices_.begin());
}

VertexId AllocationProcess::PeekFreeVertex() {
  while (free_cursor_ < seed_order_.size() &&
         rest_degree_[seed_order_[free_cursor_]] == 0) {
    ++free_cursor_;
  }
  return free_cursor_ < seed_order_.size()
             ? vertices_[seed_order_[free_cursor_]]
             : kNoVertex;
}

bool AllocationProcess::AddVertexPart(std::uint32_t local_v, PartitionId p) {
  return vertex_parts_.Add(local_v, p);
}

void AllocationProcess::Allocate(std::uint32_t le, std::uint32_t a,
                                 std::uint32_t b, PartitionId p,
                                 std::vector<PartitionId>* assignment,
                                 std::vector<VertexPartPair>* sync_out) {
  edge_done_[le] = 1;
  (*assignment)[edge_gid_[le]] = p;
  --rest_degree_[a];
  --rest_degree_[b];
  ++local_count_per_part_[p];
  // Both endpoints now belong to V(E_p); fresh pairs join the pending set
  // (processed for two-hop + D_rest this superstep) and, when a sync_out is
  // given, the replica-synchronisation outbox.
  for (std::uint32_t x : {a, b}) {
    if (AddVertexPart(x, p)) {
      pending_.push_back(VertexPartPair{vertices_[x], p});
      if (sync_out != nullptr) {
        sync_out->push_back(VertexPartPair{vertices_[x], p});
      }
    }
  }
}

void AllocationProcess::AllocateOneHop(
    const std::vector<SelectRequest>& requests,
    std::vector<PartitionId>* assignment,
    std::vector<VertexPartPair>* sync_out,
    std::vector<std::uint64_t>* allocated_per_part, std::uint64_t* ops) {
  for (const SelectRequest& req : requests) {
    const std::uint32_t lv = LocalIndex(req.v);
    *ops += 1;
    if (lv == UINT32_MAX) continue;  // replica rank without local edges of v
    for (std::uint32_t i = offsets_[lv]; i < offsets_[lv + 1]; ++i) {
      const Arc& a = arcs_[i];
      *ops += 1;
      if (edge_done_[a.edge]) continue;
      if (!budget_.empty() && budget_[req.p] == 0) break;  // p is full here
      if (!budget_.empty()) --budget_[req.p];
      Allocate(a.edge, lv, a.to, req.p, assignment, sync_out);
      ++(*allocated_per_part)[req.p];
    }
  }
}

void AllocationProcess::ApplySync(const std::vector<VertexPartPair>& pairs,
                                  std::uint64_t* ops) {
  for (const VertexPartPair& pair : pairs) {
    *ops += 1;
    const std::uint32_t lv = LocalIndex(pair.v);
    if (lv == UINT32_MAX) continue;
    if (AddVertexPart(lv, pair.p)) {
      pending_.push_back(pair);
    }
  }
}

void AllocationProcess::AllocateTwoHop(
    std::vector<PartitionId>* assignment,
    std::vector<std::uint64_t>* allocated_per_part,
    std::uint64_t* two_hop_count, std::uint64_t* ops) {
  // Deterministic order; dedup by vertex — Alg. 3 line 12 iterates the
  // boundary vertices, ignoring the pair's partition.
  std::sort(pending_.begin(), pending_.end());
  pending_.erase(std::unique(pending_.begin(), pending_.end()),
                 pending_.end());
  VertexId last_v = kNoVertex;
  // Indexed loop: Allocate() can in principle append to pending_, but
  // two-hop allocations never create fresh (vertex, partition) pairs — both
  // endpoints already carry the chosen partition — so the size is stable.
  const std::size_t pending_size = pending_.size();
  for (std::size_t pi = 0; pi < pending_size; ++pi) {
    const VertexPartPair pair = pending_[pi];
    if (pair.v == last_v) continue;
    last_v = pair.v;
    const std::uint32_t lu = LocalIndex(pair.v);
    if (lu == UINT32_MAX) continue;
    vertex_parts_.CopyTo(lu, &scratch_u_);
    const auto& parts_u = scratch_u_;
    for (std::uint32_t i = offsets_[lu]; i < offsets_[lu + 1]; ++i) {
      const Arc& a = arcs_[i];
      *ops += 1;
      if (edge_done_[a.edge]) continue;
      vertex_parts_.CopyTo(a.to, &scratch_w_);
      const auto& parts_w = scratch_w_;
      // P_new = Parti(u) n Parti(w); allocate to the locally smallest
      // member with remaining budget (Alg. 3 lines 14-17).
      PartitionId best = kNoPartition;
      auto iu = parts_u.begin();
      auto iw = parts_w.begin();
      while (iu != parts_u.end() && iw != parts_w.end()) {
        if (*iu < *iw) {
          ++iu;
        } else if (*iw < *iu) {
          ++iw;
        } else {
          const bool has_budget = budget_.empty() || budget_[*iu] > 0;
          if (has_budget &&
              (best == kNoPartition ||
               local_count_per_part_[*iu] < local_count_per_part_[best])) {
            best = *iu;
          }
          ++iu;
          ++iw;
        }
        *ops += 1;
      }
      if (best != kNoPartition) {
        if (!budget_.empty()) --budget_[best];
        Allocate(a.edge, lu, a.to, best, assignment, nullptr);
        ++(*allocated_per_part)[best];
        ++(*two_hop_count);
      }
    }
  }
  // Note: Allocate() may have appended fresh pairs while iterating? No —
  // two-hop allocations only involve endpoints that already carry the
  // partition, so AddVertexPart never fires here. (Checked by tests.)
}

void AllocationProcess::DrainBoundaryReports(std::vector<BoundaryReport>* out,
                                             std::uint64_t* ops) {
  // Idempotent dedup (AllocateTwoHop already sorts, but the two-hop phase
  // may be disabled by the ablation options).
  std::sort(pending_.begin(), pending_.end());
  pending_.erase(std::unique(pending_.begin(), pending_.end()),
                 pending_.end());
  for (const VertexPartPair& pair : pending_) {
    const std::uint32_t lv = LocalIndex(pair.v);
    if (lv == UINT32_MAX) continue;
    *ops += 1;
    out->push_back(BoundaryReport{pair.v, pair.p, rest_degree_[lv]});
  }
  pending_.clear();
}

}  // namespace dne
