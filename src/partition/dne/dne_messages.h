// The POD message records of Distributed NE's data plane. Kept in a leaf
// header so both the algorithm processes (partition/dne) and the transport
// layer (runtime/communicator.h, runtime/process_cluster.cc) can name them
// without pulling each other in. All three are trivially copyable — the
// process transport serialises them by memcpy into checksummed frames.
#ifndef DNE_PARTITION_DNE_DNE_MESSAGES_H_
#define DNE_PARTITION_DNE_DNE_MESSAGES_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/types.h"

namespace dne {

/// Expansion request: partition p wants vertex v expanded (Alg. 1 line 8).
struct SelectRequest {
  VertexId v;
  PartitionId p;
};

/// Replica-synchronisation record: vertex v is now allocated to partition p
/// (Alg. 2 line 3, SyncVertexAllocations).
struct VertexPartPair {
  VertexId v;
  PartitionId p;
  friend bool operator<(const VertexPartPair& a, const VertexPartPair& b) {
    return a.v != b.v ? a.v < b.v : a.p < b.p;
  }
  friend bool operator==(const VertexPartPair& a, const VertexPartPair& b) {
    return a.v == b.v && a.p == b.p;
  }
};

/// New-boundary report sent back to expansion process p: v joined B_p with
/// this rank's local D_rest contribution (Alg. 2 lines 5-6).
struct BoundaryReport {
  VertexId v;
  PartitionId p;
  std::uint32_t local_drest;
};

/// Per-rank step-end summary broadcast in the fused end-of-superstep round:
/// the sender's next free-vertex peek (kNoVertex when exhausted) plus its
/// per-partition handoff counts, from which every rank derives the global
/// |E_p| growth without a separate all-gather, and the peek table replaces
/// next superstep's probe round. The record head is followed on the wire by
/// `num_counts` u64 values.
struct StepSummaryRecord {
  std::uint32_t rank;
  std::uint32_t num_counts;
  std::uint64_t peek;
};

static_assert(std::is_trivially_copyable_v<StepSummaryRecord>,
              "wire records must be memcpy-safe");
static_assert(std::is_trivially_copyable_v<SelectRequest> &&
                  std::is_trivially_copyable_v<VertexPartPair> &&
                  std::is_trivially_copyable_v<BoundaryReport> &&
                  std::is_trivially_copyable_v<Edge>,
              "wire records must be memcpy-safe");

// Layout freeze: the process transport memcpys these records (including
// padding) into checksummed frames, so any size or offset drift between two
// builds silently desyncs the stream past the checksum. Pinning the layout
// here turns drift into a build error instead. tools/dne_lint.py additionally
// requires every struct in this header to keep explicit-width fields and a
// trivially-copyable assert.
static_assert(sizeof(VertexId) == 8 && sizeof(PartitionId) == 4,
              "wire scalar widths are part of the frame format");
static_assert(sizeof(SelectRequest) == 16 &&
                  offsetof(SelectRequest, v) == 0 &&
                  offsetof(SelectRequest, p) == 8,
              "SelectRequest wire layout drifted");
static_assert(sizeof(VertexPartPair) == 16 &&
                  offsetof(VertexPartPair, v) == 0 &&
                  offsetof(VertexPartPair, p) == 8,
              "VertexPartPair wire layout drifted");
static_assert(sizeof(BoundaryReport) == 16 &&
                  offsetof(BoundaryReport, v) == 0 &&
                  offsetof(BoundaryReport, p) == 8 &&
                  offsetof(BoundaryReport, local_drest) == 12,
              "BoundaryReport wire layout drifted");
static_assert(sizeof(Edge) == 16 && offsetof(Edge, src) == 0 &&
                  offsetof(Edge, dst) == 8,
              "Edge wire layout drifted");
static_assert(sizeof(StepSummaryRecord) == 16 &&
                  offsetof(StepSummaryRecord, rank) == 0 &&
                  offsetof(StepSummaryRecord, num_counts) == 4 &&
                  offsetof(StepSummaryRecord, peek) == 8,
              "StepSummaryRecord wire layout drifted");

}  // namespace dne

#endif  // DNE_PARTITION_DNE_DNE_MESSAGES_H_
