// Options and run statistics of Distributed NE.
#ifndef DNE_PARTITION_DNE_DNE_OPTIONS_H_
#define DNE_PARTITION_DNE_DNE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "runtime/cost_model.h"

namespace dne {

/// How expansion processes pick a fresh vertex when their boundary is
/// empty (Alg. 1 line 7). The paper uses random selection; the degree
/// strategies are ablation knobs (low-degree seeds sit in the graph's
/// periphery, high-degree seeds in its core).
enum class SeedStrategy { kRandom, kMinDegree, kMaxDegree };

/// Which transport runs the superstep loop (see runtime/communicator.h):
/// in-process ranks over the modeled exchange, forked rank processes over
/// Unix-domain sockets, or forked rank processes over shared-memory SPSC
/// rings (same frames, no data-path syscalls) — the latter two with
/// observed byte accounting. The partition result is bit-identical across
/// all three.
enum class DneTransport { kInProcess, kProcess, kShm };

/// Upper bound on forked rank processes (`ranks` option). Above this the
/// fork fan-out and the O(n^2) socket mesh stop being a sensible single-host
/// configuration.
inline constexpr int kMaxRankProcesses = 64;

/// What a FaultAction does when its (rank process, superstep, epoch) key
/// matches (deterministic fault injection, process transport only).
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kCrash = 1,           ///< SIGKILL self — death without a goodbye
  kStall = 2,           ///< SIGSTOP self — alive but wedged past the deadline
  kDropFrame = 3,       ///< suppress the mesh frame to one peer for a round
  kFlipFrame = 4,       ///< flip a payload bit after the checksum is sealed
  kCheckpointFail = 5,  ///< fail the checkpoint write at that superstep
  kTornCheckpoint = 6,  ///< commit the checkpoint, then truncate its tail
};

/// Which mesh round of the superstep a round-keyed injection targets.
enum class FaultRound : std::uint8_t {
  kSuperstepStart = 0,  ///< before any round (crash/stall default)
  kSelect = 1,          ///< the expansion-request exchange (phase A)
  kSync = 2,            ///< the replica-sync exchange (phase B)
  kStepEnd = 3,         ///< the fused end-of-superstep round (phase C)
};

/// One keyed injection of the FaultPlan (`--opt fault=` spec): fire `kind`
/// on rank process `rank` when it reaches superstep `superstep` in recovery
/// epoch `epoch` (0 = the original attempt, each supervisor restart
/// increments it, -1 = every attempt). `round` scopes crash/stall inside
/// the superstep and names the round whose frame drop/flip corrupts; `peer`
/// picks the victim peer process for frame faults (-1 = lowest peer).
/// Shipped to rank processes inside DneOptions by memcpy — explicit-width
/// fields, trivially copyable, layout frozen below.
struct FaultAction {
  std::uint8_t kind = 0;   // FaultKind
  std::uint8_t round = 0;  // FaultRound
  std::int16_t peer = -1;
  std::int32_t rank = -1;
  std::uint32_t superstep = 0;
  std::int32_t epoch = 0;
};
static_assert(std::is_trivially_copyable_v<FaultAction>,
              "FaultAction rides inside DneOptions config frames");
static_assert(sizeof(FaultAction) == 16 && offsetof(FaultAction, kind) == 0 &&
                  offsetof(FaultAction, round) == 1 &&
                  offsetof(FaultAction, peer) == 2 &&
                  offsetof(FaultAction, rank) == 4 &&
                  offsetof(FaultAction, superstep) == 8 &&
                  offsetof(FaultAction, epoch) == 12,
              "FaultAction wire layout drifted");

struct DneOptions {
  /// Balance slack alpha of Eq. (2); the paper sets 1.1.
  double alpha = 1.1;
  /// Expansion factor lambda of Sec. 5: k = max(1, lambda * |B_p|) boundary
  /// vertices are expanded per iteration. The paper selects 0.1.
  double lambda = 0.1;
  std::uint64_t seed = 1;
  /// Simulated-cluster machine constants (see CostModelOptions).
  CostModelOptions cost;
  /// Ablation: disable the two-hop "free edge" allocation (Condition (5)).
  bool enable_two_hop = true;
  /// Ablation: select boundary vertices at random instead of min-D_rest.
  bool min_drest_selection = true;
  /// Ablation: seed-vertex policy for empty boundaries.
  SeedStrategy seed_strategy = SeedStrategy::kRandom;
  /// Safety valve; 0 = automatic (10 * |V| + 1000).
  std::uint64_t max_supersteps = 0;
  /// Host threads executing the simulated ranks' phases (per-rank state is
  /// independent, so results are bit-identical for any thread count).
  /// 1 = fully sequential. Bounded by kMaxPoolThreads.
  int num_threads = 1;
  /// Runs the pre-overhaul hot path: sequential Phase-A vertex selection,
  /// binary-heap boundary queues, per-superstep AllToAll construction and a
  /// sequential initial 2-D distribution. The partitioning result is
  /// bit-identical to the fast path; only the host-side execution shape
  /// differs. Exists for bench_dne_hotpath's old-vs-new comparison.
  bool legacy_hotpath = false;
  /// Transport under the superstep loop. kProcess forks rank processes and
  /// exchanges checksummed frames over socket pairs; kShm forks the same
  /// processes but moves the identical frames through mmap'd shared-memory
  /// rings. Either way comm/cost stats report *observed* wire traffic
  /// instead of the modeled volume.
  DneTransport transport = DneTransport::kInProcess;
  /// Process transport only: number of rank processes hosting the |P|
  /// simulated ranks (rank r lives on process r mod ranks). 0 = one process
  /// per simulated rank (capped at kMaxRankProcesses); values must be in
  /// [2, min(|P|, kMaxRankProcesses)] otherwise.
  int ranks = 0;
  /// Process transport only: fuse each superstep's boundary reports, edge
  /// hand-off and step summaries into one multi-channel frame per peer
  /// (wire.h ChannelDir directory, single checksum). Off = one frame per
  /// logical exchange — the legacy framing kept as the differential
  /// baseline. Inbox assembly and ledger data/control accounting are
  /// byte-identical either way; only frame count and header overhead move.
  bool coalesce_frames = true;
  /// Process transport only: checkpoint every K supersteps (0 = off). Each
  /// rank process serialises its full superstep-boundary state to
  /// `checkpoint_dir` so the supervisor can restart the cluster from the
  /// last complete checkpoint instead of losing the run.
  std::uint32_t checkpoint_every = 0;
  /// Process transport only: how many times the supervisor restarts the
  /// cluster after a recoverable failure (crash, stall, corrupted frame)
  /// before declaring the run dead. 0 = fail fast (pre-recovery behaviour).
  std::uint32_t max_recoveries = 0;
  /// Mesh-round stall deadline: how long an endpoint waits on a wedged (but
  /// not crashed) peer before giving up on the round.
  double stall_timeout_s = 600.0;
  /// Deterministic fault plan (process transport, tests/CI): up to
  /// kMaxFaultActions keyed injections, parsed from the `fault=` spec.
  static constexpr std::uint32_t kMaxFaultActions = 8;
  FaultAction faults[kMaxFaultActions] = {};
  std::uint32_t num_faults = 0;
  /// Directory for the per-process checkpoint files (fixed-size so
  /// DneOptions stays trivially copyable for the config frame).
  char checkpoint_dir[232] = {};
};

/// Detailed observability of a Distributed NE run (feeds Figs. 6, 9, 10).
struct DneStats {
  std::uint64_t iterations = 0;       ///< BSP supersteps executed
  std::uint64_t one_hop_edges = 0;    ///< edges placed by one-hop expansion
  std::uint64_t two_hop_edges = 0;    ///< edges placed by Condition (5)
  std::uint64_t random_restarts = 0;  ///< empty-boundary random selections
  std::uint64_t comm_bytes = 0;       ///< cross-rank bytes
  std::uint64_t comm_messages = 0;
  double sim_seconds = 0.0;           ///< CostModel elapsed time
  double selection_work_fraction = 0.0;  ///< share of work in vertex selection
  /// Host-side wall time of the driver, split by superstep phase: initial
  /// 2-D distribution, then A (selection + request exchange), B (one-hop +
  /// sync exchange), C (sync apply / two-hop / reports), D (boundary
  /// aggregation + termination). Feeds bench_dne_hotpath's breakdown.
  double host_distribute_seconds = 0.0;
  double host_phase_a_seconds = 0.0;
  double host_phase_b_seconds = 0.0;
  double host_phase_c_seconds = 0.0;
  double host_phase_d_seconds = 0.0;
  /// max/mean of the partitions' peak boundary sizes — the vertex-selection
  /// imbalance the paper names as the weak-scaling bottleneck (Sec. 7.4).
  double boundary_imbalance = 1.0;
  std::uint64_t peak_memory_bytes = 0;
  std::vector<std::uint64_t> edges_per_partition;
  /// Per-simulated-rank peak bytes (state the rank's algorithm structures
  /// occupy). Under the process transport these are reported by each rank
  /// process and aggregated at the terminal barrier.
  std::vector<std::uint64_t> rank_peak_bytes;
  /// Process transport only: observed wire totals — every frame actually
  /// sent between rank processes (payload + frame/sub-block headers) and
  /// the frame count. comm_bytes stays the data-plane payload, so
  /// wire_bytes - comm_bytes is the framing + control-plane overhead.
  std::uint64_t wire_bytes = 0;
  std::uint64_t wire_frames = 0;
  /// Process transport only: rank processes forked and each one's observed
  /// peak RSS (getrusage), indexed by process.
  int rank_processes = 0;
  /// The transport that actually ran (after `ranks=0`/NUMA auto-derivation
  /// resolves), so reporting surfaces name the mesh correctly.
  DneTransport transport_used = DneTransport::kInProcess;
  std::vector<std::uint64_t> process_rss_bytes;
  /// Process transport only: cluster restarts the supervisor performed to
  /// finish the run (0 on a fault-free run), and the checkpoint overhead —
  /// bytes written and wall seconds spent writing, summed over processes.
  std::uint32_t recoveries = 0;
  std::uint64_t checkpoint_bytes = 0;
  double checkpoint_seconds = 0.0;
};

}  // namespace dne

#endif  // DNE_PARTITION_DNE_DNE_OPTIONS_H_
