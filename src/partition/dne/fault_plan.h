// FaultPlan: the validated `--opt fault=` spec of the deterministic fault
// injection harness (process transport).
//
// Grammar (';'-separated entries):
//   entry  := kind '@r' RANK ':s' SUPERSTEP (':' modifier)*
//   kind   := 'crash' | 'stall' | 'drop' | 'flip' | 'ckptfail' | 'torn'
//   modifier := 'round=' ('select' | 'sync' | 'stepend')
//             | 'epoch=' INT        (-1 = every recovery attempt)
//             | 'peer=' UINT        (victim peer process of drop/flip)
//
// Examples:
//   fault=crash@r1:s3                 SIGKILL rank process 1 entering
//                                     superstep 3 (original attempt only)
//   fault=stall@r0:s2:round=sync      SIGSTOP rank process 0 as superstep
//                                     2's replica-sync round starts
//   fault=flip@r2:s1:peer=0           corrupt the superstep-1 select frame
//                                     rank process 2 sends to process 0
//   fault=torn@r0:s2;crash@r1:s4      tear the step-2 checkpoint, then
//                                     crash — recovery must fall back
//
// Every key (rank process, superstep, round, epoch) is explicit, so a given
// plan reproduces the same failure sequence on every run.
#ifndef DNE_PARTITION_DNE_FAULT_PLAN_H_
#define DNE_PARTITION_DNE_FAULT_PLAN_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "partition/dne/dne_options.h"

namespace dne {

/// Parses `spec` into at most `max_actions` FaultActions. Empty spec is a
/// valid empty plan. Syntax or range errors are InvalidArgument with the
/// offending entry and a grammar hint.
Status ParseFaultPlan(const std::string& spec, FaultAction* actions,
                      std::uint32_t max_actions, std::uint32_t* num_actions);

/// Spec spelling of a kind ("crash", "stall", ...), "none" for kNone.
const char* FaultKindName(FaultKind kind);

/// Human name of a round key ("superstep start", "select", ...).
const char* FaultRoundName(FaultRound round);

}  // namespace dne

#endif  // DNE_PARTITION_DNE_FAULT_PLAN_H_
