// 2-D hash initial distribution (Sec. 4 "Data Structure"): edges are
// uniquely owned by one allocation process; vertices are replicated across
// the owner grid row + column, and the replica set is *computed* from the
// vertex id — no stored metadata, the paper's trillion-edge-scale trick.
//
// Thread contract: immutable after construction (three scalar fields, never
// reassigned), so any number of threads may call the lookup methods
// concurrently with no synchronization — the parallel shard build in
// DneRankState leans on this, and the 8-thread determinism stress test
// (tests/tsan_stress_test.cc) pins it under TSan.
#ifndef DNE_PARTITION_DNE_TWO_D_DISTRIBUTION_H_
#define DNE_PARTITION_DNE_TWO_D_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/types.h"

namespace dne {

class TwoDDistribution {
 public:
  /// One allocation process per partition/machine; the grid is the largest
  /// R x C factorisation of that count with R <= C.
  TwoDDistribution(std::uint32_t num_ranks, std::uint64_t seed);

  std::uint32_t num_ranks() const { return rows_ * cols_; }
  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }

  std::uint32_t RowOf(VertexId v) const {
    return static_cast<std::uint32_t>(HashVertex(v, seed_) % rows_);
  }
  std::uint32_t ColOf(VertexId v) const {
    return static_cast<std::uint32_t>(HashVertex(v, seed_ + 1) % cols_);
  }

  /// Owner rank of canonical edge (u, v): the cell at (row(u), col(v)).
  /// Every edge incident to x lands inside x's replica set.
  int OwnerOf(VertexId u, VertexId v) const {
    return static_cast<int>(RowOf(u) * cols_ + ColOf(v));
  }

  /// Ranks holding a replica of vertex x: x's whole grid row plus grid
  /// column (R + C - 1 ranks, deduplicated), in ascending order.
  void ReplicaRanks(VertexId x, std::vector<int>* out) const;

 private:
  std::uint32_t rows_;
  std::uint32_t cols_;
  std::uint64_t seed_;
};

}  // namespace dne

#endif  // DNE_PARTITION_DNE_TWO_D_DISTRIBUTION_H_
