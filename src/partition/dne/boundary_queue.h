// Boundary queues for the expansion processes (Alg. 1 / Alg. 4).
//
// Two implementations of the same min-(score, vertex) contract:
//
//  - HeapBoundaryQueue: the classic binary heap (O(log |B_p|) per
//    operation). Kept as the pre-overhaul reference for the hot-path bench
//    and the legacy driver mode.
//  - BucketedBoundaryQueue: flat buckets keyed by the clamped score with
//    lazily sorted tails. Push is O(1); PopMin is O(1) amortized on the
//    min-D_rest workload (scores are small non-negative integers and the
//    selection sweep consumes buckets in increasing-score order). Entries
//    whose score exceeds the clamp share one overflow bucket that degrades
//    gracefully to sorted-vector behaviour.
//
// Both queues pop in exactly the same order — ascending (score, vertex),
// stale duplicates included — so swapping one for the other is
// bit-identical for the whole partitioner. Lazy deletion of already-
// expanded vertices stays in ExpansionProcess, as before.
//
// Thread contract: rank-confined. A queue belongs to exactly one
// DneRankState and is only touched while that rank's superstep phase runs,
// i.e. by whichever ThreadPool worker currently executes the rank — never
// by two threads at once. The phase barrier (ParallelFor join) publishes
// the state between workers across phases; no internal locking needed.
#ifndef DNE_PARTITION_DNE_BOUNDARY_QUEUE_H_
#define DNE_PARTITION_DNE_BOUNDARY_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <tuple>
#include <vector>

#include "common/types.h"

namespace dne {

struct BoundaryEntry {
  std::uint64_t score;
  VertexId vertex;
  friend bool operator>(const BoundaryEntry& a, const BoundaryEntry& b) {
    return std::tie(a.score, a.vertex) > std::tie(b.score, b.vertex);
  }
  friend bool operator<(const BoundaryEntry& a, const BoundaryEntry& b) {
    return std::tie(a.score, a.vertex) < std::tie(b.score, b.vertex);
  }
};

/// The pre-overhaul boundary structure: a std::priority_queue min-heap.
class HeapBoundaryQueue {
 public:
  void Push(std::uint64_t score, VertexId v) {
    heap_.push(BoundaryEntry{score, v});
  }

  /// Requires !empty().
  BoundaryEntry PopMin() {
    BoundaryEntry top = heap_.top();
    heap_.pop();
    return top;
  }

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Appends every live entry to *out (checkpoint snapshot). Pop order is a
  /// pure function of the entry multiset, so restoring via Push reproduces
  /// this queue bit-identically.
  void AppendEntries(std::vector<BoundaryEntry>* out) const {
    auto copy = heap_;
    while (!copy.empty()) {
      out->push_back(copy.top());
      copy.pop();
    }
  }

 private:
  std::priority_queue<BoundaryEntry, std::vector<BoundaryEntry>,
                      std::greater<>>
      heap_;
};

/// Monotone bucket queue over the clamped score. Bucket b holds entries with
/// min(score, kNumBuckets - 1) == b; within a bucket only the unconsumed
/// tail is kept sorted, and sorting is deferred until the bucket is popped
/// with fresh inserts outstanding. Consumed bucket storage is recycled in
/// place, so steady-state supersteps allocate nothing.
class BucketedBoundaryQueue {
 public:
  /// D_rest clamp. Scores are rest-degrees in the default configuration, so
  /// nearly all mass sits far below this; the random-selection ablation
  /// (32-bit hash scores) lands in the overflow bucket wholesale.
  static constexpr std::size_t kNumBuckets = 1024;

  void Push(std::uint64_t score, VertexId v);

  /// Pops the minimum (score, vertex) entry. Requires !empty().
  BoundaryEntry PopMin();

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Appends every live (unpopped) entry to *out (checkpoint snapshot); same
  /// restore-via-Push contract as HeapBoundaryQueue::AppendEntries.
  void AppendEntries(std::vector<BoundaryEntry>* out) const;

 private:
  struct Bucket {
    std::vector<BoundaryEntry> items;
    std::size_t head = 0;        // items[0, head) already popped
    std::size_t sorted_end = 0;  // items[head, sorted_end) is sorted
  };

  std::vector<Bucket> buckets_;  // sized on first push
  std::size_t min_bucket_ = kNumBuckets;
  std::size_t size_ = 0;
};

}  // namespace dne

#endif  // DNE_PARTITION_DNE_BOUNDARY_QUEUE_H_
