#include "partition/dne/dne_rank_state.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "runtime/thread_pool.h"

namespace dne {

std::uint64_t DneEdgeLimit(double alpha, std::uint64_t total_edges,
                           std::uint32_t num_partitions) {
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(alpha * static_cast<double>(total_edges) /
                       static_cast<double>(num_partitions))));
}

std::uint64_t DneMaxSupersteps(const DneOptions& options,
                               VertexId num_vertices) {
  return options.max_supersteps > 0 ? options.max_supersteps
                                    : 10 * num_vertices + 1000;
}

ExpansionProcess MakeDneExpansion(const DneOptions& options, int rank,
                                  VertexId num_vertices,
                                  std::uint64_t edge_limit,
                                  std::uint64_t seed) {
  // The bucket queue keys on the clamped D_rest; under the random-selection
  // ablation scores are 32-bit hashes that all clamp into the overflow
  // bucket, so the heap is the right structure there even on the fast path.
  const bool bucket_queue =
      !options.legacy_hotpath && options.min_drest_selection;
  return ExpansionProcess(
      static_cast<PartitionId>(rank), num_vertices, edge_limit,
      options.lambda, options.min_drest_selection,
      seed + 0x9e37 * (static_cast<std::uint64_t>(rank) + 1), bucket_queue);
}

namespace {

// Runs fn over every local slot — on the pool when this phase is parallel
// (each slot touches only its own rank's state), sequentially otherwise.
void ForEachSlot(ThreadPool* pool, bool parallel, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (parallel && pool != nullptr) {
    pool->ParallelFor(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

Status RunDneSuperstepLoop(const DneLoopEnv& env,
                           std::vector<DneRankState>* states,
                           DneLoopResult* result) {
  const DneOptions& opt = *env.options;
  // The hot-path split of PR 3 survives inside the rank loop: the fast
  // shape fans phases A/D out across the hosted ranks, the legacy shape
  // replays them sequentially (B/C were parallel before the overhaul and
  // stay so). Either way each slot only touches its own rank's state and
  // all ledger charges are flushed sequentially in rank order, so any
  // thread count — and any transport — produces bit-identical partitions.
  const bool fast = !opt.legacy_hotpath;
  const int ranks = env.comm->num_ranks();
  const std::size_t num_local = states->size();
  const std::uint32_t num_partitions = env.num_partitions;
  CommLedger* ledger = env.ledger;

  const std::uint64_t cores = static_cast<std::uint64_t>(
      std::max(1, opt.cost.cores_per_machine));
  auto parallel_ops = [cores](std::uint64_t ops) {
    return (ops + cores - 1) / cores;
  };
  auto flush_work = [&](bool scaled) {
    for (std::size_t l = 0; l < num_local; ++l) {
      DneRankState& st = (*states)[l];
      ledger->AddWork(st.rank, scaled ? parallel_ops(st.step_ops)
                                      : st.step_ops);
    }
  };

  // Persistent mailboxes: the exchanges run allocation-free in steady state
  // (the inbox arenas and outbox capacity survive across supersteps).
  RankMailboxes<SelectRequest> select_x;
  RankMailboxes<VertexPartPair> sync_x;
  RankMailboxes<BoundaryReport> report_x;
  RankMailboxes<Edge> handoff_x;
  select_x.Init(num_local, ranks);
  sync_x.Init(num_local, ranks);
  report_x.Init(num_local, ranks);
  handoff_x.Init(num_local, ranks);

  // Replicated cluster view, advanced identically on every endpoint by the
  // fused step-end round: per-partition totals and their sum, plus the
  // free-vertex peek table that answers random restarts without a probe
  // round trip.
  std::vector<std::uint64_t> allocated_vec(num_partitions, 0);
  std::vector<std::uint64_t> budgets(num_partitions, 0);
  std::vector<std::uint64_t> peek_local(num_local, 0);
  std::vector<std::uint64_t> all_peeks;
  std::vector<std::uint64_t> handoff_totals;

  std::uint64_t total_allocated = 0;
  std::uint64_t iterations = 0;
  WallTimer phase_timer;

  if (env.resume.active) {
    // Restored run: the replicated view — including the peek table the
    // seed round would have broadcast — comes from the checkpoint, and the
    // seed round's ledger charges already live in the restored tape.
    iterations = env.resume.iterations;
    total_allocated = env.resume.total_allocated;
    allocated_vec = env.resume.allocated_vec;
    all_peeks = env.resume.all_peeks;
  } else {
    // Seed the peek table with the initial allocation state: an empty
    // step-end round whose summaries broadcast every rank's first free
    // vertex — exactly what superstep 0's probes would have answered.
    for (std::size_t l = 0; l < num_local; ++l) {
      peek_local[l] = (*states)[l].alloc.PeekFreeVertex();
    }
    DNE_RETURN_IF_ERROR(env.comm->ExchangeStepEnd(
        &report_x, &handoff_x, peek_local, &all_peeks, &handoff_totals));
  }

  while (total_allocated < env.total_edges) {
    if (env.superstep_hook) {
      DNE_RETURN_IF_ERROR(env.superstep_hook(iterations));
    }
    if (env.ctx != nullptr) {
      DNE_RETURN_IF_ERROR(env.ctx->CheckCancelled());
      env.ctx->ReportProgress("superstep", iterations, 0);
    }
    if (iterations >= env.max_supersteps) {
      return Status::Internal("Distributed NE exceeded the superstep guard");
    }

    // ---- Phase A: vertex selection (Alg. 4) + random restarts -----------
    phase_timer.Reset();
    ForEachSlot(env.pool, fast, num_local, [&](std::size_t l) {
      DneRankState& st = (*states)[l];
      st.step_ops = 0;
      st.expansion.SelectVertices(&st.staged_selected, &st.step_ops);
      if (st.staged_selected.empty() && !st.expansion.terminated()) {
        // Alg. 1 line 7: fresh vertex — the local allocation process first,
        // other ranks only if necessary, answered from the replicated peek
        // table in the old sequential probe order ((rank + off) % ranks,
        // ascending off). The table was captured after the last allocation
        // mutation, so it holds exactly what a live probe would answer.
        const VertexId v = st.alloc.PeekFreeVertex();
        if (v != kNoVertex) {
          st.staged_selected.push_back(v);
          ++st.random_restarts;
        } else {
          for (int off = 1; off < ranks; ++off) {
            const int r = (st.rank + off) % ranks;
            if (all_peeks[r] != kNoVertex) {
              st.staged_selected.push_back(all_peeks[r]);
              ++st.random_restarts;
              break;
            }
          }
        }
      }
      st.step_ops += st.staged_selected.size();
      for (VertexId v : st.staged_selected) {
        env.dist->ReplicaRanks(v, &st.replica_scratch);
        for (int r : st.replica_scratch) {
          select_x.out[l][r].push_back(
              SelectRequest{v, static_cast<PartitionId>(st.rank)});
        }
      }
    });
    flush_work(/*scaled=*/false);
    DNE_RETURN_IF_ERROR(
        env.comm->Exchange(DneMsgKind::kSelectRequest, &select_x));
    ledger->EndPhase(/*selection=*/true);
    result->host_phase_seconds[0] += phase_timer.Seconds();

    // ---- Phase B: one-hop allocation (Alg. 3 lines 1-9) -----------------
    phase_timer.Reset();
    // Per-rank caps from the all-gathered |E_p| (Alg. 1 line 14): each
    // partition's remaining budget is split across all ranks, so one
    // superstep cannot blow through the limit by more than ~|P| stragglers.
    for (std::uint32_t p = 0; p < num_partitions; ++p) {
      const std::uint64_t allocated = allocated_vec[p];
      const std::uint64_t remaining =
          env.edge_limit > allocated ? env.edge_limit - allocated : 0;
      budgets[p] = remaining == 0
                       ? 0
                       : std::max<std::uint64_t>(
                             1, remaining / static_cast<std::uint64_t>(ranks));
    }
    ForEachSlot(env.pool, true, num_local, [&](std::size_t l) {
      DneRankState& st = (*states)[l];
      st.step_ops = 0;
      st.sync_buf.clear();
      std::fill(st.per_part_scratch.begin(), st.per_part_scratch.end(), 0);
      st.alloc.SetSuperstepBudgets(budgets);
      st.alloc.AllocateOneHop(select_x.in[l], &st.sync_buf,
                              &st.per_part_scratch, &st.step_ops);
      // Replica synchronisation (Alg. 2 line 3): fresh pairs go to every
      // replica rank of the vertex except this one.
      for (const VertexPartPair& pair : st.sync_buf) {
        env.dist->ReplicaRanks(pair.v, &st.replica_scratch);
        for (int to : st.replica_scratch) {
          if (to != st.rank) sync_x.out[l][to].push_back(pair);
        }
      }
    });
    flush_work(/*scaled=*/true);
    // Async sync round: the sends go out now; while the frames are in
    // flight, stage the one-hop hand-off records into their out boxes (a
    // different mailbox — the transport still owns sync_x until Finish).
    // FinishExchange is the completion barrier before phase C applies the
    // sync in-boxes.
    DNE_RETURN_IF_ERROR(env.comm->BeginExchange(DneMsgKind::kSyncPair,
                                                &sync_x));
    ForEachSlot(env.pool, fast, num_local, [&](std::size_t l) {
      DneRankState& st = (*states)[l];
      const auto& handoff = st.alloc.superstep_handoff();
      for (std::size_t i = 0; i < handoff.size(); ++i) {
        handoff_x.out[l][handoff[i].p].push_back(handoff[i].edge);
      }
      st.handoff_staged = handoff.size();
    });
    DNE_RETURN_IF_ERROR(env.comm->FinishExchange(DneMsgKind::kSyncPair,
                                                 &sync_x));
    ledger->EndPhase(/*selection=*/false);
    result->host_phase_seconds[1] += phase_timer.Seconds();

    // ---- Phase C: sync apply, two-hop allocation, local D_rest ----------
    phase_timer.Reset();
    ForEachSlot(env.pool, true, num_local, [&](std::size_t l) {
      DneRankState& st = (*states)[l];
      st.step_ops = 0;
      st.alloc.ApplySync(sync_x.in[l], &st.step_ops);
      if (opt.enable_two_hop) {
        std::uint64_t two = 0;
        st.alloc.AllocateTwoHop(&st.per_part_scratch, &two, &st.step_ops);
        st.two_hop_edges += two;
      }
      st.report_buf.clear();
      st.alloc.DrainBoundaryReports(&st.report_buf, &st.step_ops);
      // Boundary reports route home to the owning expansion process.
      for (const BoundaryReport& rep : st.report_buf) {
        report_x.out[l][rep.p].push_back(rep);
      }
      // Edge hand-off (Fig. 4's data flow): phase B already staged the
      // one-hop prefix during the sync round; append what two-hop
      // allocation added past the cursor. The expansion side only needs
      // the count for |E_p|; the payload still travels so observed wire
      // bytes match what the deployment would move.
      const auto& handoff = st.alloc.superstep_handoff();
      for (std::size_t i = st.handoff_staged; i < handoff.size(); ++i) {
        handoff_x.out[l][handoff[i].p].push_back(handoff[i].edge);
      }
      st.alloc.ClearSuperstepHandoff();
      st.handoff_staged = 0;
      // Capture the free-vertex peek for the step summary: this is the last
      // point this superstep that touches allocation state, so the
      // broadcast table equals next phase A's live probe answers.
      peek_local[l] = st.alloc.PeekFreeVertex();
    });
    flush_work(/*scaled=*/true);
    // Fused step-end round: boundary reports + edge hand-off + summaries
    // (peeks and per-partition |E_p| growth) in one frame per peer.
    DNE_RETURN_IF_ERROR(env.comm->ExchangeStepEnd(
        &report_x, &handoff_x, peek_local, &all_peeks, &handoff_totals));
    ledger->EndPhase(/*selection=*/false);
    result->host_phase_seconds[2] += phase_timer.Seconds();

    // ---- Phase D: |E_p| growth, boundary aggregation, termination -------
    phase_timer.Reset();
    for (std::size_t l = 0; l < num_local; ++l) {
      (*states)[l].expansion.AddAllocated(handoff_x.in[l].size());
    }
    // The summaries replace the separate |E_p| all-gather (Alg. 1 line 14):
    // every endpoint folds the same per-partition totals, advancing the
    // same replicated view.
    std::uint64_t newly_allocated = 0;
    for (std::uint32_t p = 0; p < num_partitions; ++p) {
      allocated_vec[p] += handoff_totals[p];
      newly_allocated += handoff_totals[p];
    }
    total_allocated += newly_allocated;

    // Aggregation of per-rank local D_rest into global scores,
    // boundary-queue inserts, termination (Alg. 1 lines 10-15).
    ForEachSlot(env.pool, fast, num_local, [&](std::size_t l) {
      DneRankState& st = (*states)[l];
      std::vector<BoundaryReport>& inbox = report_x.in[l];
      std::sort(inbox.begin(), inbox.end(),
                [](const BoundaryReport& a, const BoundaryReport& b) {
                  return a.v < b.v;
                });
      std::uint64_t ops = inbox.size();
      const std::uint64_t insert_cost = st.expansion.InsertCostOps();
      std::size_t i = 0;
      while (i < inbox.size()) {
        std::size_t j = i;
        std::uint64_t drest = 0;
        while (j < inbox.size() && inbox[j].v == inbox[i].v) {
          drest += inbox[j].local_drest;
          ++j;
        }
        st.expansion.InsertBoundary(inbox[i].v, drest);
        ops += insert_cost;
        i = j;
      }
      st.step_ops = ops;
      st.expansion.CheckTermination(total_allocated, env.total_edges);
    });
    flush_work(/*scaled=*/true);
    ledger->EndSuperstep();
    result->host_phase_seconds[3] += phase_timer.Seconds();
    ++iterations;

    if (env.checkpoint_every != 0 && env.checkpoint_hook &&
        iterations % env.checkpoint_every == 0 &&
        total_allocated < env.total_edges) {
      DNE_RETURN_IF_ERROR(env.checkpoint_hook(iterations, total_allocated,
                                              allocated_vec, all_peeks));
    }
  }

  result->iterations = iterations;
  result->total_allocated = total_allocated;
  return Status::OK();
}

}  // namespace dne
