#include "partition/dne/dne_rank_state.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "runtime/thread_pool.h"

namespace dne {

std::uint64_t DneEdgeLimit(double alpha, std::uint64_t total_edges,
                           std::uint32_t num_partitions) {
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(alpha * static_cast<double>(total_edges) /
                       static_cast<double>(num_partitions))));
}

std::uint64_t DneMaxSupersteps(const DneOptions& options,
                               VertexId num_vertices) {
  return options.max_supersteps > 0 ? options.max_supersteps
                                    : 10 * num_vertices + 1000;
}

ExpansionProcess MakeDneExpansion(const DneOptions& options, int rank,
                                  VertexId num_vertices,
                                  std::uint64_t edge_limit,
                                  std::uint64_t seed) {
  // The bucket queue keys on the clamped D_rest; under the random-selection
  // ablation scores are 32-bit hashes that all clamp into the overflow
  // bucket, so the heap is the right structure there even on the fast path.
  const bool bucket_queue =
      !options.legacy_hotpath && options.min_drest_selection;
  return ExpansionProcess(
      static_cast<PartitionId>(rank), num_vertices, edge_limit,
      options.lambda, options.min_drest_selection,
      seed + 0x9e37 * (static_cast<std::uint64_t>(rank) + 1), bucket_queue);
}

namespace {

// Runs fn over every local slot — on the pool when this phase is parallel
// (each slot touches only its own rank's state), sequentially otherwise.
void ForEachSlot(ThreadPool* pool, bool parallel, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (parallel && pool != nullptr) {
    pool->ParallelFor(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

Status RunDneSuperstepLoop(const DneLoopEnv& env,
                           std::vector<DneRankState>* states,
                           DneLoopResult* result) {
  const DneOptions& opt = *env.options;
  // The hot-path split of PR 3 survives inside the rank loop: the fast
  // shape fans phases A/D out across the hosted ranks, the legacy shape
  // replays them sequentially (B/C were parallel before the overhaul and
  // stay so). Either way each slot only touches its own rank's state and
  // all ledger charges are flushed sequentially in rank order, so any
  // thread count — and any transport — produces bit-identical partitions.
  const bool fast = !opt.legacy_hotpath;
  const int ranks = env.comm->num_ranks();
  const std::size_t num_local = states->size();
  const std::uint32_t num_partitions = env.num_partitions;
  CommLedger* ledger = env.ledger;

  const std::uint64_t cores = static_cast<std::uint64_t>(
      std::max(1, opt.cost.cores_per_machine));
  auto parallel_ops = [cores](std::uint64_t ops) {
    return (ops + cores - 1) / cores;
  };
  auto flush_work = [&](bool scaled) {
    for (std::size_t l = 0; l < num_local; ++l) {
      DneRankState& st = (*states)[l];
      ledger->AddWork(st.rank, scaled ? parallel_ops(st.step_ops)
                                      : st.step_ops);
    }
  };

  // Persistent mailboxes: the exchanges run allocation-free in steady state
  // (the inbox arenas and outbox capacity survive across supersteps).
  RankMailboxes<SelectRequest> select_x;
  RankMailboxes<VertexPartPair> sync_x;
  RankMailboxes<BoundaryReport> report_x;
  RankMailboxes<Edge> handoff_x;
  RankMailboxes<VertexId> probe_req_x, probe_resp_x;
  select_x.Init(num_local, ranks);
  sync_x.Init(num_local, ranks);
  report_x.Init(num_local, ranks);
  handoff_x.Init(num_local, ranks);
  probe_req_x.Init(num_local, ranks);
  probe_resp_x.Init(num_local, ranks);

  // Replicated cluster view, advanced identically on every endpoint by the
  // per-superstep |E_p| all-gather: per-partition totals and their sum.
  std::vector<std::uint64_t> allocated_vec(num_partitions, 0);
  std::vector<std::uint64_t> budgets(num_partitions, 0);
  std::vector<std::uint64_t> gather_local(num_local, 0);
  std::vector<std::uint64_t> gather_all;

  std::uint64_t total_allocated = 0;
  std::uint64_t iterations = 0;
  WallTimer phase_timer;

  while (total_allocated < env.total_edges) {
    if (env.superstep_hook) {
      DNE_RETURN_IF_ERROR(env.superstep_hook(iterations));
    }
    if (env.ctx != nullptr) {
      DNE_RETURN_IF_ERROR(env.ctx->CheckCancelled());
      env.ctx->ReportProgress("superstep", iterations, 0);
    }
    if (iterations >= env.max_supersteps) {
      return Status::Internal("Distributed NE exceeded the superstep guard");
    }

    // ---- Phase A: vertex selection (Alg. 4) + random restarts -----------
    phase_timer.Reset();
    ForEachSlot(env.pool, fast, num_local, [&](std::size_t l) {
      DneRankState& st = (*states)[l];
      st.step_ops = 0;
      st.expansion.SelectVertices(&st.staged_selected, &st.step_ops);
      st.want_probe = false;
      if (st.staged_selected.empty() && !st.expansion.terminated()) {
        // Alg. 1 line 7: fresh vertex — the local allocation process first,
        // other ranks only if necessary, via a probe round trip (the one
        // cross-rank read of the old driver, now a message like the rest).
        const VertexId v = st.alloc.PeekFreeVertex();
        if (v != kNoVertex) {
          st.staged_selected.push_back(v);
          ++st.random_restarts;
        } else if (ranks > 1) {
          st.want_probe = true;
          for (int off = 1; off < ranks; ++off) {
            const int r = (st.rank + off) % ranks;
            probe_req_x.out[l][r].push_back(
                static_cast<VertexId>(st.rank));
          }
        }
      }
    });
    DNE_RETURN_IF_ERROR(
        env.comm->Exchange(DneMsgKind::kProbeRequest, &probe_req_x));
    ForEachSlot(env.pool, fast, num_local, [&](std::size_t l) {
      DneRankState& st = (*states)[l];
      if (probe_req_x.in[l].empty()) return;
      // Non-consuming peek: every prober gets the same answer, exactly as
      // when the old driver peeked this rank's state directly.
      const VertexId v = st.alloc.PeekFreeVertex();
      for (int from = 0; from < ranks; ++from) {
        const std::size_t n = probe_req_x.InFrom(l, from).size();
        for (std::size_t k = 0; k < n; ++k) {
          probe_resp_x.out[l][from].push_back(v);
        }
      }
    });
    DNE_RETURN_IF_ERROR(
        env.comm->Exchange(DneMsgKind::kProbeResponse, &probe_resp_x));
    ForEachSlot(env.pool, fast, num_local, [&](std::size_t l) {
      DneRankState& st = (*states)[l];
      if (st.want_probe) {
        // First free vertex in the old sequential probe order
        // ((rank + off) % ranks, ascending off).
        for (int off = 1; off < ranks; ++off) {
          const int r = (st.rank + off) % ranks;
          const auto resp = probe_resp_x.InFrom(l, r);
          if (!resp.empty() && resp[0] != kNoVertex) {
            st.staged_selected.push_back(resp[0]);
            ++st.random_restarts;
            break;
          }
        }
      }
      st.step_ops += st.staged_selected.size();
      for (VertexId v : st.staged_selected) {
        env.dist->ReplicaRanks(v, &st.replica_scratch);
        for (int r : st.replica_scratch) {
          select_x.out[l][r].push_back(
              SelectRequest{v, static_cast<PartitionId>(st.rank)});
        }
      }
    });
    flush_work(/*scaled=*/false);
    DNE_RETURN_IF_ERROR(
        env.comm->Exchange(DneMsgKind::kSelectRequest, &select_x));
    ledger->EndPhase(/*selection=*/true);
    result->host_phase_seconds[0] += phase_timer.Seconds();

    // ---- Phase B: one-hop allocation (Alg. 3 lines 1-9) -----------------
    phase_timer.Reset();
    // Per-rank caps from the all-gathered |E_p| (Alg. 1 line 14): each
    // partition's remaining budget is split across all ranks, so one
    // superstep cannot blow through the limit by more than ~|P| stragglers.
    for (std::uint32_t p = 0; p < num_partitions; ++p) {
      const std::uint64_t allocated = allocated_vec[p];
      const std::uint64_t remaining =
          env.edge_limit > allocated ? env.edge_limit - allocated : 0;
      budgets[p] = remaining == 0
                       ? 0
                       : std::max<std::uint64_t>(
                             1, remaining / static_cast<std::uint64_t>(ranks));
    }
    ForEachSlot(env.pool, true, num_local, [&](std::size_t l) {
      DneRankState& st = (*states)[l];
      st.step_ops = 0;
      st.sync_buf.clear();
      std::fill(st.per_part_scratch.begin(), st.per_part_scratch.end(), 0);
      st.alloc.SetSuperstepBudgets(budgets);
      st.alloc.AllocateOneHop(select_x.in[l], &st.sync_buf,
                              &st.per_part_scratch, &st.step_ops);
      // Replica synchronisation (Alg. 2 line 3): fresh pairs go to every
      // replica rank of the vertex except this one.
      for (const VertexPartPair& pair : st.sync_buf) {
        env.dist->ReplicaRanks(pair.v, &st.replica_scratch);
        for (int to : st.replica_scratch) {
          if (to != st.rank) sync_x.out[l][to].push_back(pair);
        }
      }
    });
    flush_work(/*scaled=*/true);
    DNE_RETURN_IF_ERROR(env.comm->Exchange(DneMsgKind::kSyncPair, &sync_x));
    ledger->EndPhase(/*selection=*/false);
    result->host_phase_seconds[1] += phase_timer.Seconds();

    // ---- Phase C: sync apply, two-hop allocation, local D_rest ----------
    phase_timer.Reset();
    ForEachSlot(env.pool, true, num_local, [&](std::size_t l) {
      DneRankState& st = (*states)[l];
      st.step_ops = 0;
      st.alloc.ApplySync(sync_x.in[l], &st.step_ops);
      if (opt.enable_two_hop) {
        std::uint64_t two = 0;
        st.alloc.AllocateTwoHop(&st.per_part_scratch, &two, &st.step_ops);
        st.two_hop_edges += two;
      }
      st.report_buf.clear();
      st.alloc.DrainBoundaryReports(&st.report_buf, &st.step_ops);
      // Boundary reports route home to the owning expansion process.
      for (const BoundaryReport& rep : st.report_buf) {
        report_x.out[l][rep.p].push_back(rep);
      }
    });
    flush_work(/*scaled=*/true);
    DNE_RETURN_IF_ERROR(
        env.comm->Exchange(DneMsgKind::kBoundaryReport, &report_x));
    ledger->EndPhase(/*selection=*/false);
    result->host_phase_seconds[2] += phase_timer.Seconds();

    // ---- Edge hand-off + |E_p| all-gather + Phase D ---------------------
    phase_timer.Reset();
    // Allocated edges are copied from their allocation rank to the owning
    // expansion rank (Fig. 4's data flow). The expansion side only needs
    // the count for |E_p|; the payload still travels so observed wire
    // bytes match what the deployment would move.
    ForEachSlot(env.pool, fast, num_local, [&](std::size_t l) {
      DneRankState& st = (*states)[l];
      for (const HandoffRecord& h : st.alloc.superstep_handoff()) {
        handoff_x.out[l][h.p].push_back(h.edge);
      }
      st.alloc.ClearSuperstepHandoff();
    });
    DNE_RETURN_IF_ERROR(
        env.comm->Exchange(DneMsgKind::kEdgeHandoff, &handoff_x));
    for (std::size_t l = 0; l < num_local; ++l) {
      gather_local[l] = handoff_x.in[l].size();
      (*states)[l].expansion.AddAllocated(gather_local[l]);
    }
    // AllGather of |E_p| growth for the budgets and the termination test
    // (Alg. 1 line 14) — every endpoint advances the same replicated view.
    DNE_RETURN_IF_ERROR(env.comm->AllGatherU64(gather_local, &gather_all));
    std::uint64_t newly_allocated = 0;
    for (std::uint32_t p = 0; p < num_partitions; ++p) {
      allocated_vec[p] += gather_all[p];
      newly_allocated += gather_all[p];
    }
    total_allocated += newly_allocated;

    // Phase D: aggregation of per-rank local D_rest into global scores,
    // boundary-queue inserts, termination (Alg. 1 lines 10-15).
    ForEachSlot(env.pool, fast, num_local, [&](std::size_t l) {
      DneRankState& st = (*states)[l];
      std::vector<BoundaryReport>& inbox = report_x.in[l];
      std::sort(inbox.begin(), inbox.end(),
                [](const BoundaryReport& a, const BoundaryReport& b) {
                  return a.v < b.v;
                });
      std::uint64_t ops = inbox.size();
      const std::uint64_t insert_cost = st.expansion.InsertCostOps();
      std::size_t i = 0;
      while (i < inbox.size()) {
        std::size_t j = i;
        std::uint64_t drest = 0;
        while (j < inbox.size() && inbox[j].v == inbox[i].v) {
          drest += inbox[j].local_drest;
          ++j;
        }
        st.expansion.InsertBoundary(inbox[i].v, drest);
        ops += insert_cost;
        i = j;
      }
      st.step_ops = ops;
      st.expansion.CheckTermination(total_allocated, env.total_edges);
    });
    flush_work(/*scaled=*/true);
    ledger->EndSuperstep();
    result->host_phase_seconds[3] += phase_timer.Seconds();
    ++iterations;
  }

  result->iterations = iterations;
  result->total_allocated = total_allocated;
  return Status::OK();
}

}  // namespace dne
