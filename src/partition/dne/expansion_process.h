// ExpansionProcess: one per partition (Fig. 4). Manages the boundary
// queue and implements the vertex-selection side of Algorithm 1 and the
// k-min multi-expansion of Algorithm 4.
#ifndef DNE_PARTITION_DNE_EXPANSION_PROCESS_H_
#define DNE_PARTITION_DNE_EXPANSION_PROCESS_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "partition/dne/boundary_queue.h"
#include "runtime/wire.h"

namespace dne {

class ExpansionProcess {
 public:
  /// `edge_limit` is alpha * |E| / |P| (Alg. 1 line 15). `lambda` is the
  /// multi-expansion factor. When `min_drest` is false the process selects
  /// random boundary vertices (ablation of the greedy heuristic). The
  /// boundary lives in a bucketed O(1)-pop queue unless `bucket_queue` is
  /// false, which restores the pre-overhaul binary heap; both pop in the
  /// same order, so the partitioning result is identical either way.
  ExpansionProcess(PartitionId p, VertexId num_vertices,
                   std::uint64_t edge_limit, double lambda, bool min_drest,
                   std::uint64_t seed, bool bucket_queue = true);

  PartitionId partition() const { return partition_; }
  bool terminated() const { return terminated_; }
  std::uint64_t allocated() const { return allocated_; }
  std::size_t boundary_size() const {
    return bucket_queue_ ? buckets_.size() : heap_.size();
  }
  std::size_t peak_boundary_size() const { return peak_boundary_; }

  /// Simulated-cost charge for one boundary insert at the current size
  /// (constant for the bucket queue, log |B_p| for the heap).
  std::uint64_t InsertCostOps() const;

  /// Alg. 4 lines 3-6: pops k = max(1, lambda * |B_p|) minimum-D_rest
  /// vertices (insert-time scores, as in the paper). k is additionally
  /// clamped so the *expected* new edges stay within the remaining budget,
  /// keeping the edge balance near alpha. Returns the selected vertices;
  /// empty means the boundary is exhausted (caller falls back to a random
  /// vertex, Alg. 1 line 7). No-op once terminated.
  void SelectVertices(std::vector<VertexId>* out, std::uint64_t* ops);

  /// Phase D: a new boundary vertex with its aggregated global D_rest.
  /// Zero-D_rest vertices are skipped: allocation is monotone, so they can
  /// never contribute edges.
  void InsertBoundary(VertexId v, std::uint64_t global_drest);

  /// Phase D: |E_p| grew by `count` edges this superstep.
  void AddAllocated(std::uint64_t count) { allocated_ += count; }

  /// Alg. 1 line 15: stop when past the limit or everything is allocated.
  void CheckTermination(std::uint64_t total_allocated,
                        std::uint64_t total_edges);

  /// Checkpoint support: appends counters, the expanded bitmap and the live
  /// boundary entries. Queue pop order is a pure function of the entry
  /// multiset, so restore-via-Push is bit-identical.
  void SerializeState(std::vector<unsigned char>* out) const;

  /// Restores a SerializeState snapshot into this freshly constructed twin.
  /// False on any shape mismatch (queue kind, vertex count).
  bool RestoreState(wire::PayloadReader* reader);

 private:
  PartitionId partition_;
  std::uint64_t edge_limit_;
  double lambda_;
  bool min_drest_;
  bool bucket_queue_;
  std::uint64_t seed_;

  BucketedBoundaryQueue buckets_;
  HeapBoundaryQueue heap_;  // legacy mode only; empty otherwise
  std::vector<bool> expanded_;  // per-vertex: popped already
  std::uint64_t allocated_ = 0;
  std::uint64_t expanded_count_ = 0;
  std::size_t peak_boundary_ = 0;
  bool terminated_ = false;
};

}  // namespace dne

#endif  // DNE_PARTITION_DNE_EXPANSION_PROCESS_H_
