// DneRankState + the rank-local superstep loop.
//
// One DneRankState per simulated rank: the rank's allocation process (its
// unique 2-D edge shard, replica sets, live-arc windows), its expansion
// process (boundary queue, |E_p| accounting), and the rank's scratch
// buffers and counters. A state owns no other rank's memory — everything a
// rank learns about the rest of the cluster arrives through Communicator
// collectives, which is what lets the same loop run all ranks in one
// address space (InProcessCommunicator) or one-rank-per-process over
// sockets (SocketCommunicator).
//
// RunDneSuperstepLoop executes Algorithm 1 for the ranks hosted by the
// endpoint, in three communication rounds per superstep:
//   A: vertex selection (Alg. 4) + random restarts (Alg. 1 line 7) resolved
//      from the replicated free-vertex peek table (broadcast in the previous
//      step-end round — no probe round trip) + expansion-request fan-out
//                                                            [1 exchange]
//   B: one-hop allocation (Alg. 3) + replica sync fan-out, issued
//      asynchronously (BeginExchange) so staging the one-hop edge hand-off
//      overlaps the in-flight round; FinishExchange is the completion
//      barrier before phase C consumes the in-boxes          [1 exchange]
//   C: sync apply, two-hop allocation, boundary reports + edge hand-off +
//      step summaries (free-vertex peeks, per-partition hand-off counts),
//      all fused into the step-end round                     [1 exchange]
//   D: |E_p| growth folded from the summaries (no separate all-gather),
//      boundary aggregation, termination test.
// Every decision is a deterministic function of the exchanged data (inboxes
// are ordered by sending rank), so any transport, process count or host
// thread count produces bit-identical partitions. The peek table makes the
// retired probe round trip exact: a rank's PeekFreeVertex is non-consuming
// and its allocation state cannot change between the step-end capture and
// the next phase A (phase D only touches expansion state), so the table
// holds precisely what a live probe would have answered.
#ifndef DNE_PARTITION_DNE_DNE_RANK_STATE_H_
#define DNE_PARTITION_DNE_DNE_RANK_STATE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "core/partition_context.h"
#include "partition/dne/allocation_process.h"
#include "partition/dne/dne_options.h"
#include "partition/dne/expansion_process.h"
#include "partition/dne/two_d_distribution.h"
#include "runtime/communicator.h"

namespace dne {

class ThreadPool;

/// The complete per-rank state of Distributed NE (rank r drives both the
/// allocation process of machine r and the expansion process of partition
/// r, as in the paper's Fig. 4).
struct DneRankState {
  DneRankState(int rank_in, AllocationProcess&& alloc_in,
               ExpansionProcess&& expansion_in, std::uint32_t num_partitions)
      : rank(rank_in),
        alloc(std::move(alloc_in)),
        expansion(std::move(expansion_in)),
        per_part_scratch(num_partitions, 0) {}

  int rank;
  AllocationProcess alloc;
  ExpansionProcess expansion;

  // Superstep scratch, reused every iteration (no steady-state allocation).
  std::vector<VertexId> staged_selected;
  std::vector<int> replica_scratch;
  std::vector<VertexPartPair> sync_buf;
  std::vector<BoundaryReport> report_buf;
  std::vector<std::uint64_t> per_part_scratch;
  std::uint64_t step_ops = 0;
  /// Hand-off records already staged into the out boxes this superstep —
  /// phase B stages the one-hop prefix while the sync round is in flight,
  /// phase C stages whatever two-hop allocation appended after the cursor.
  std::size_t handoff_staged = 0;

  // Whole-run counters this rank accumulates locally.
  std::uint64_t two_hop_edges = 0;
  std::uint64_t random_restarts = 0;
};

/// Everything the loop needs besides the states; all pointers are borrowed.
struct DneLoopEnv {
  const DneOptions* options = nullptr;
  std::uint32_t num_partitions = 0;
  std::uint64_t total_edges = 0;
  std::uint64_t edge_limit = 0;
  std::uint64_t max_supersteps = 0;
  const TwoDDistribution* dist = nullptr;
  Communicator* comm = nullptr;
  CommLedger* ledger = nullptr;
  /// Host threads for the per-rank phases; null = sequential (rank
  /// processes host one rank each and need none).
  ThreadPool* pool = nullptr;
  /// Cancellation/progress; null inside rank processes (the coordinator
  /// owns cancellation there).
  const PartitionContext* ctx = nullptr;
  /// Invoked at the top of every superstep with the iteration index —
  /// fault injection and transport-side guards hook in here.
  std::function<Status(std::uint64_t)> superstep_hook;

  /// Checkpoint resume (process transport). When `active`, the loop starts
  /// at the restored superstep instead of 0: the seed step-end round is
  /// skipped — its ledger charges live in the restored tape, and the peek
  /// table comes from the checkpoint — and the replicated cluster view
  /// (per-partition totals, running sum, peeks) is taken verbatim.
  struct Resume {
    bool active = false;
    std::uint64_t iterations = 0;
    std::uint64_t total_allocated = 0;
    std::vector<std::uint64_t> allocated_vec;
    std::vector<std::uint64_t> all_peeks;
  };
  Resume resume;

  /// Checkpoint capture: every `checkpoint_every` supersteps (0 = never)
  /// the loop calls `checkpoint_hook` at the superstep boundary — after
  /// phase D, when the per-superstep mailboxes and queues are empty and the
  /// replicated view is exactly what a resume must restore. The hook's
  /// iteration count is the number of completed supersteps (== the resume
  /// superstep). Skipped once the run is about to terminate.
  std::uint32_t checkpoint_every = 0;
  std::function<Status(std::uint64_t iterations, std::uint64_t total_allocated,
                       const std::vector<std::uint64_t>& allocated_vec,
                       const std::vector<std::uint64_t>& all_peeks)>
      checkpoint_hook;
};

/// Whole-run outputs every endpoint derives identically from the exchanged
/// data (plus this endpoint's host-side phase timings).
struct DneLoopResult {
  std::uint64_t iterations = 0;
  std::uint64_t total_allocated = 0;
  double host_phase_seconds[4] = {0.0, 0.0, 0.0, 0.0};  // A, B, C, D
};

/// The edge cap per partition: ceil(alpha |E| / |P|), so |P| * limit >= |E|
/// and the caps can never strand edges with every partition full.
std::uint64_t DneEdgeLimit(double alpha, std::uint64_t total_edges,
                           std::uint32_t num_partitions);

/// The superstep guard: the configured value, or the automatic
/// 10 |V| + 1000 when unset.
std::uint64_t DneMaxSupersteps(const DneOptions& options,
                               VertexId num_vertices);

/// Builds partition `rank`'s expansion process. Every transport constructs
/// rank state through this one recipe — the per-partition seed mixing, the
/// bucket-queue choice and the limit wiring are exactly what the
/// cross-transport bit-identity guarantee rests on, so they live in one
/// place.
ExpansionProcess MakeDneExpansion(const DneOptions& options, int rank,
                                  VertexId num_vertices,
                                  std::uint64_t edge_limit,
                                  std::uint64_t seed);

/// Runs the superstep loop for the ranks in `*states` (which must be the
/// ranks of env.comm->local_ranks(), in order) until every edge is
/// allocated cluster-wide. On success, each state's allocation process
/// holds its shard's final assignment.
Status RunDneSuperstepLoop(const DneLoopEnv& env,
                           std::vector<DneRankState>* states,
                           DneLoopResult* result);

}  // namespace dne

#endif  // DNE_PARTITION_DNE_DNE_RANK_STATE_H_
