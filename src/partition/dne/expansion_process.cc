#include "partition/dne/expansion_process.h"

#include <algorithm>
#include <bit>

#include "common/hash.h"

namespace dne {

ExpansionProcess::ExpansionProcess(PartitionId p, VertexId num_vertices,
                                   std::uint64_t edge_limit, double lambda,
                                   bool min_drest, std::uint64_t seed,
                                   bool bucket_queue)
    : partition_(p),
      edge_limit_(edge_limit),
      lambda_(lambda),
      min_drest_(min_drest),
      bucket_queue_(bucket_queue),
      seed_(seed),
      expanded_(num_vertices, false) {}

std::uint64_t ExpansionProcess::InsertCostOps() const {
  if (bucket_queue_) return 2;  // O(1) bucket append
  return 1 + std::bit_width(heap_.size() + 1);
}

void ExpansionProcess::InsertBoundary(VertexId v, std::uint64_t global_drest) {
  if (terminated_ || global_drest == 0 || expanded_[v]) return;
  // Randomised score under the selection ablation: the queue degenerates to
  // a uniform sampler over the boundary.
  const std::uint64_t score =
      min_drest_ ? global_drest : Mix64(v ^ seed_) >> 32;
  if (bucket_queue_) {
    buckets_.Push(score, v);
  } else {
    heap_.Push(score, v);
  }
  peak_boundary_ = std::max(peak_boundary_, boundary_size());
}

void ExpansionProcess::SelectVertices(std::vector<VertexId>* out,
                                      std::uint64_t* ops) {
  out->clear();
  if (terminated_) return;
  std::uint64_t k = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(lambda_ *
                                    static_cast<double>(boundary_size())));
  // Budget clamp: past experience says each expanded vertex brings
  // allocated_/expanded_count_ edges; do not select far more vertices than
  // the remaining budget can absorb (keeps |E_p| <= ~alpha |E|/|P|).
  if (expanded_count_ > 0 && allocated_ > 0) {
    const std::uint64_t remaining =
        edge_limit_ > allocated_ ? edge_limit_ - allocated_ : 0;
    const std::uint64_t per_vertex =
        std::max<std::uint64_t>(1, allocated_ / expanded_count_);
    const std::uint64_t max_k =
        std::max<std::uint64_t>(1, remaining / per_vertex);
    k = std::min(k, max_k);
  }
  while (k > 0 && boundary_size() > 0) {
    BoundaryEntry top;
    if (bucket_queue_) {
      top = buckets_.PopMin();
      // Amortized O(1) bucket pop.
      *ops += 2;
    } else {
      top = heap_.PopMin();
      // Heap pop costs log |B_p| on the serial expansion process.
      *ops += 1 + std::bit_width(heap_.size());
    }
    if (expanded_[top.vertex]) continue;  // duplicate insert within a step
    expanded_[top.vertex] = true;
    out->push_back(top.vertex);
    ++expanded_count_;
    --k;
  }
}

void ExpansionProcess::CheckTermination(std::uint64_t total_allocated,
                                        std::uint64_t total_edges) {
  if (allocated_ >= edge_limit_ || total_allocated == total_edges) {
    terminated_ = true;
  }
}

}  // namespace dne
