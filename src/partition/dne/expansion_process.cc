#include "partition/dne/expansion_process.h"

#include <algorithm>
#include <bit>

#include "common/hash.h"

namespace dne {

ExpansionProcess::ExpansionProcess(PartitionId p, VertexId num_vertices,
                                   std::uint64_t edge_limit, double lambda,
                                   bool min_drest, std::uint64_t seed,
                                   bool bucket_queue)
    : partition_(p),
      edge_limit_(edge_limit),
      lambda_(lambda),
      min_drest_(min_drest),
      bucket_queue_(bucket_queue),
      seed_(seed),
      expanded_(num_vertices, false) {}

std::uint64_t ExpansionProcess::InsertCostOps() const {
  if (bucket_queue_) return 2;  // O(1) bucket append
  return 1 + std::bit_width(heap_.size() + 1);
}

void ExpansionProcess::InsertBoundary(VertexId v, std::uint64_t global_drest) {
  if (terminated_ || global_drest == 0 || expanded_[v]) return;
  // Randomised score under the selection ablation: the queue degenerates to
  // a uniform sampler over the boundary.
  const std::uint64_t score =
      min_drest_ ? global_drest : Mix64(v ^ seed_) >> 32;
  if (bucket_queue_) {
    buckets_.Push(score, v);
  } else {
    heap_.Push(score, v);
  }
  peak_boundary_ = std::max(peak_boundary_, boundary_size());
}

void ExpansionProcess::SelectVertices(std::vector<VertexId>* out,
                                      std::uint64_t* ops) {
  out->clear();
  if (terminated_) return;
  std::uint64_t k = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(lambda_ *
                                    static_cast<double>(boundary_size())));
  // Budget clamp: past experience says each expanded vertex brings
  // allocated_/expanded_count_ edges; do not select far more vertices than
  // the remaining budget can absorb (keeps |E_p| <= ~alpha |E|/|P|).
  if (expanded_count_ > 0 && allocated_ > 0) {
    const std::uint64_t remaining =
        edge_limit_ > allocated_ ? edge_limit_ - allocated_ : 0;
    const std::uint64_t per_vertex =
        std::max<std::uint64_t>(1, allocated_ / expanded_count_);
    const std::uint64_t max_k =
        std::max<std::uint64_t>(1, remaining / per_vertex);
    k = std::min(k, max_k);
  }
  while (k > 0 && boundary_size() > 0) {
    BoundaryEntry top;
    if (bucket_queue_) {
      top = buckets_.PopMin();
      // Amortized O(1) bucket pop.
      *ops += 2;
    } else {
      top = heap_.PopMin();
      // Heap pop costs log |B_p| on the serial expansion process.
      *ops += 1 + std::bit_width(heap_.size());
    }
    if (expanded_[top.vertex]) continue;  // duplicate insert within a step
    expanded_[top.vertex] = true;
    out->push_back(top.vertex);
    ++expanded_count_;
    --k;
  }
}

void ExpansionProcess::CheckTermination(std::uint64_t total_allocated,
                                        std::uint64_t total_edges) {
  if (allocated_ >= edge_limit_ || total_allocated == total_edges) {
    terminated_ = true;
  }
}

void ExpansionProcess::SerializeState(std::vector<unsigned char>* out) const {
  wire::AppendPod(out, static_cast<std::uint8_t>(bucket_queue_ ? 1 : 0));
  wire::AppendPod(out, allocated_);
  wire::AppendPod(out, expanded_count_);
  wire::AppendPod(out, static_cast<std::uint64_t>(peak_boundary_));
  wire::AppendPod(out, static_cast<std::uint8_t>(terminated_ ? 1 : 0));
  // Expanded bitmap, packed 64 vertices per word.
  const std::uint64_t num_vertices = expanded_.size();
  wire::AppendPod(out, num_vertices);
  std::uint64_t word = 0;
  for (std::uint64_t v = 0; v < num_vertices; ++v) {
    if (expanded_[v]) word |= 1ull << (v & 63);
    if ((v & 63) == 63 || v + 1 == num_vertices) {
      wire::AppendPod(out, word);
      word = 0;
    }
  }
  std::vector<BoundaryEntry> entries;
  if (bucket_queue_) {
    buckets_.AppendEntries(&entries);
  } else {
    heap_.AppendEntries(&entries);
  }
  wire::AppendPod(out, static_cast<std::uint64_t>(entries.size()));
  const auto* p = reinterpret_cast<const unsigned char*>(entries.data());
  out->insert(out->end(), p, p + entries.size() * sizeof(BoundaryEntry));
}

bool ExpansionProcess::RestoreState(wire::PayloadReader* reader) {
  std::uint8_t bucket = 0;
  if (!reader->Read(&bucket) || bucket != (bucket_queue_ ? 1 : 0)) {
    return false;
  }
  if (!reader->Read(&allocated_) || !reader->Read(&expanded_count_)) {
    return false;
  }
  std::uint64_t peak = 0;
  std::uint8_t terminated = 0;
  if (!reader->Read(&peak) || !reader->Read(&terminated)) return false;
  peak_boundary_ = static_cast<std::size_t>(peak);
  terminated_ = terminated != 0;
  std::uint64_t num_vertices = 0;
  if (!reader->Read(&num_vertices) || num_vertices != expanded_.size()) {
    return false;
  }
  for (std::uint64_t v = 0; v < num_vertices; v += 64) {
    std::uint64_t word = 0;
    if (!reader->Read(&word)) return false;
    for (std::uint64_t b = 0; b < 64 && v + b < num_vertices; ++b) {
      expanded_[v + b] = (word >> b) & 1;
    }
  }
  std::uint64_t num_entries = 0;
  if (!reader->Read(&num_entries)) return false;
  for (std::uint64_t i = 0; i < num_entries; ++i) {
    BoundaryEntry e;
    if (!reader->ReadBytes(&e, sizeof(e)) || e.vertex >= num_vertices) {
      return false;
    }
    if (bucket_queue_) {
      buckets_.Push(e.score, e.vertex);
    } else {
      heap_.Push(e.score, e.vertex);
    }
  }
  return true;
}

}  // namespace dne
