// Word-AND + bit-scan intersection kernels for the Phase-C two-hop hot loop
// (CompactPartSets::ForEachCommon, Alg. 3 line 14).
//
// Two implementations with *identical* emission order — ascending partition
// id, exactly the order the original scalar loop produced:
//  * AndScanWordsScalar: the reference loop, public so the micro benches and
//    the differential test can pin the baseline;
//  * AndScanWords: the dispatcher. On x86-64 builds with DNE_ENABLE_AVX2 it
//    ANDs the word vectors 4-at-a-time with AVX2 into a stack buffer (the
//    bitmap mode caps at kBitmapMaxPartitions = 512 partitions, i.e. 8
//    words), then bit-scans the buffer ascending; everywhere else — or when
//    the CPU lacks AVX2 at run time — it is exactly the scalar loop.
//
// Bit-identity contract: the AVX2 path changes only *where* the AND results
// live (a contiguous stack buffer instead of two strided reads per word);
// the scan that drives fn() is the same ascending countr_zero walk, so every
// caller sees the same ids in the same order on every build.
#ifndef DNE_PARTITION_DNE_PART_SET_SIMD_H_
#define DNE_PARTITION_DNE_PART_SET_SIMD_H_

#include <bit>
#include <cstdint>

#if defined(__x86_64__) && defined(DNE_ENABLE_AVX2)
#include <immintrin.h>
#endif

namespace dne::simd {

/// Largest word count the vectorized dispatcher handles on its fast path:
/// CompactPartSets::kBitmapMaxPartitions / 64. Longer inputs are legal and
/// simply take the scalar loop.
inline constexpr std::uint32_t kMaxAndScanWords = 8;

/// Reference kernel: visits every bit set in a[i] & b[i] for i in [0, n),
/// ascending — fn receives 64*i + bit. This is byte-for-byte the loop the
/// pre-SIMD ForEachCommon ran.
template <typename Fn>
inline void AndScanWordsScalar(const std::uint64_t* a, const std::uint64_t* b,
                               std::uint32_t n, Fn&& fn) {
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t common = a[i] & b[i];
    while (common != 0) {
      fn(static_cast<std::uint32_t>(64 * i + std::countr_zero(common)));
      common &= common - 1;
    }
  }
}

#if defined(__x86_64__) && defined(DNE_ENABLE_AVX2)

/// True when the running CPU supports AVX2 (probed once). The binary always
/// contains the scalar path, so a non-AVX2 machine runs the same build.
inline bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}

/// out[i] = a[i] & b[i] with 256-bit lanes; the sub-4-word tail is scalar.
/// Compiled for AVX2 via the target attribute so the rest of the translation
/// unit keeps the project's baseline ISA.
__attribute__((target("avx2"))) inline void AndWordsAvx2(
    const std::uint64_t* a, const std::uint64_t* b, std::uint32_t n,
    std::uint64_t* out) {
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) out[i] = a[i] & b[i];
}

#endif  // __x86_64__ && DNE_ENABLE_AVX2

/// Dispatching kernel: same contract as AndScanWordsScalar, vectorized AND
/// when the build and the CPU allow it. Single-word inputs (P <= 64, the
/// paper's setting) skip straight to the scalar loop — there is nothing to
/// vectorize below one 256-bit lane.
template <typename Fn>
inline void AndScanWords(const std::uint64_t* a, const std::uint64_t* b,
                         std::uint32_t n, Fn&& fn) {
#if defined(__x86_64__) && defined(DNE_ENABLE_AVX2)
  if (n >= 4 && n <= kMaxAndScanWords && HasAvx2()) {
    std::uint64_t common[kMaxAndScanWords];
    AndWordsAvx2(a, b, n, common);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t word = common[i];
      while (word != 0) {
        fn(static_cast<std::uint32_t>(64 * i + std::countr_zero(word)));
        word &= word - 1;
      }
    }
    return;
  }
#endif
  AndScanWordsScalar(a, b, n, static_cast<Fn&&>(fn));
}

}  // namespace dne::simd

#endif  // DNE_PARTITION_DNE_PART_SET_SIMD_H_
