#include "partition/dne/dne_partitioner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/timer.h"
#include "core/partitioner_registry.h"
#include "partition/dne/allocation_process.h"
#include "partition/dne/expansion_process.h"
#include "partition/dne/two_d_distribution.h"
#include "runtime/sim_cluster.h"
#include "runtime/thread_pool.h"

namespace dne {

// The driver maps one simulated rank to one partition (ranks ==
// num_partitions), so every per-rank and per-partition array below is
// indexed by the same range. The hot path exploits this: parallel sections
// only ever touch state owned by their own index (expansion[p], alloc[r],
// outbox row Out(i, *), staged scratch[i]), all cross-index merging happens
// sequentially in index order, and shared counters (CommStats, CostModel
// totals) are only updated from sequential code — which is why any thread
// count produces bit-identical partitions.
Status DnePartitioner::PartitionImpl(const Graph& g,
                                     std::uint32_t num_partitions,
                                     const PartitionContext& ctx,
                                     EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (options_.alpha < 1.0) {
    return Status::InvalidArgument("alpha must be >= 1.0");
  }
  if (options_.lambda <= 0.0 || options_.lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in (0, 1]");
  }
  if (options_.num_threads > kMaxPoolThreads) {
    return Status::InvalidArgument("threads exceeds the supported maximum");
  }
  const bool fast = !options_.legacy_hotpath;
  const std::uint64_t seed = ctx.EffectiveSeed(options_.seed);
  const int ranks = static_cast<int>(num_partitions);
  const EdgeId total_edges = g.NumEdges();
  const VertexId num_vertices = g.NumVertices();

  SimCluster cluster(ranks, options_.cost);
  TwoDDistribution dist(num_partitions, seed);

  // Host threads for the per-rank phases. Each simulated rank's state is
  // disjoint (edges are uniquely owned), so any thread count gives
  // bit-identical results.
  ThreadPool pool(std::max(1, options_.num_threads));

  // --- Initial 2-D hash distribution (Sec. 4) ----------------------------
  WallTimer phase_timer;
  std::vector<AllocationProcess> alloc;
  alloc.reserve(ranks);
  for (int r = 0; r < ranks; ++r) {
    alloc.emplace_back(r, num_partitions, options_.seed_strategy,
                       /*legacy_scan=*/!fast);
  }
  if (fast) {
    // Chunked two-pass ownership scatter: pass 1 counts owners per chunk,
    // a per-rank prefix sum over chunks turns the counts into slot ranges,
    // pass 2 scatter-writes each edge into its slot. Per rank the slots
    // follow (chunk, position-in-chunk) order, i.e. ascending global edge
    // id — exactly the sequential AddEdge order, for any thread count.
    const EdgeId chunk_edges = 1 << 16;
    const std::size_t num_chunks = static_cast<std::size_t>(
        (total_edges + chunk_edges - 1) / chunk_edges);
    std::vector<std::vector<std::uint64_t>> chunk_offset(
        num_chunks, std::vector<std::uint64_t>(ranks, 0));
    pool.ParallelFor(num_chunks, [&](std::size_t c) {
      const EdgeId lo = static_cast<EdgeId>(c) * chunk_edges;
      const EdgeId hi = std::min<EdgeId>(total_edges, lo + chunk_edges);
      std::vector<std::uint64_t>& count = chunk_offset[c];
      for (EdgeId e = lo; e < hi; ++e) {
        const Edge& ed = g.edge(e);
        ++count[dist.OwnerOf(ed.src, ed.dst)];
      }
    });
    for (int r = 0; r < ranks; ++r) {
      std::uint64_t running = 0;
      for (std::size_t c = 0; c < num_chunks; ++c) {
        const std::uint64_t count = chunk_offset[c][r];
        chunk_offset[c][r] = running;
        running += count;
      }
      alloc[r].PrepareBulkEdges(running);
    }
    pool.ParallelFor(num_chunks, [&](std::size_t c) {
      const EdgeId lo = static_cast<EdgeId>(c) * chunk_edges;
      const EdgeId hi = std::min<EdgeId>(total_edges, lo + chunk_edges);
      std::vector<std::uint64_t>& offset = chunk_offset[c];
      for (EdgeId e = lo; e < hi; ++e) {
        const Edge& ed = g.edge(e);
        const int r = dist.OwnerOf(ed.src, ed.dst);
        alloc[r].PlaceEdge(offset[r]++, e, ed.src, ed.dst);
      }
    });
    pool.ParallelFor(static_cast<std::size_t>(ranks),
                     [&](std::size_t r) { alloc[r].Finalize(); });
  } else {
    for (EdgeId e = 0; e < total_edges; ++e) {
      const Edge& ed = g.edge(e);
      alloc[dist.OwnerOf(ed.src, ed.dst)].AddEdge(e, ed.src, ed.dst);
    }
    for (int r = 0; r < ranks; ++r) alloc[r].Finalize();
  }
  for (int r = 0; r < ranks; ++r) {
    cluster.mem().Allocate(r, alloc[r].StaticMemoryBytes());
  }
  dne_stats_ = DneStats{};
  dne_stats_.host_distribute_seconds = phase_timer.Seconds();

  // Ceiling division so that |P| * limit >= alpha |E| >= |E|: the caps can
  // never leave edges stranded with every partition full.
  const std::uint64_t limit = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(options_.alpha * static_cast<double>(total_edges) /
                       static_cast<double>(num_partitions))));
  std::vector<ExpansionProcess> expansion;
  expansion.reserve(num_partitions);
  // The bucket queue keys on the clamped D_rest; under the random-selection
  // ablation scores are 32-bit hashes that all clamp into the overflow
  // bucket, so the heap is the right structure there even on the fast path.
  const bool bucket_queue = fast && options_.min_drest_selection;
  for (PartitionId p = 0; p < num_partitions; ++p) {
    expansion.emplace_back(p, num_vertices, limit, options_.lambda,
                           options_.min_drest_selection,
                           seed + 0x9e37 * (p + 1), bucket_queue);
  }

  *out = EdgePartition(num_partitions, total_edges);
  std::vector<PartitionId>& assignment = out->mutable_assignment();

  std::uint64_t total_allocated = 0;
  // Per-phase critical-path accounting: the slowest rank gates each phase
  // (the paper's vertex-selection bottleneck of Sec. 7.4 is the phase-A
  // straggler share of this critical path).
  std::uint64_t selection_critical_ops = 0;
  std::uint64_t total_critical_ops = 0;
  std::vector<std::uint64_t> phase_ops(ranks, 0);
  const std::uint64_t cores = static_cast<std::uint64_t>(
      std::max(1, options_.cost.cores_per_machine));
  auto parallel_ops = [cores](std::uint64_t ops) {
    return (ops + cores - 1) / cores;
  };
  auto close_phase = [&](bool is_selection) {
    std::uint64_t mx = 0;
    for (std::uint64_t& w : phase_ops) {
      mx = std::max(mx, w);
      w = 0;
    }
    if (is_selection) selection_critical_ops += mx;
    total_critical_ops += mx;
  };
  const std::uint64_t max_supersteps =
      options_.max_supersteps > 0 ? options_.max_supersteps
                                  : 10 * num_vertices + 1000;

  std::vector<int> replica_ranks;
  std::vector<std::vector<std::uint64_t>> allocated_per_part(
      ranks, std::vector<std::uint64_t>(num_partitions, 0));
  std::vector<std::uint64_t> rank_ops(ranks, 0);
  std::vector<std::vector<VertexPartPair>> rank_sync(ranks);
  std::vector<std::vector<BoundaryReport>> rank_reports(ranks);
  std::vector<std::uint64_t> rank_two_hop(ranks, 0);

  // Hot-path persistent state (fast mode): the exchanges, their inbox
  // arenas, the per-partition selection buffers and the per-index
  // ReplicaRanks scratch are created once and recycled every superstep, so
  // the four exchanges per superstep stop churning the allocator. The
  // legacy mode reconstructs its exchanges per superstep (the pre-overhaul
  // shape measured by bench_dne_hotpath).
  AllToAll<SelectRequest> select_x(ranks);
  AllToAll<VertexPartPair> sync_x(ranks);
  AllToAll<BoundaryReport> report_x(ranks);
  std::vector<std::vector<SelectRequest>> requests_in;
  std::vector<std::vector<VertexPartPair>> sync_in;
  std::vector<std::vector<BoundaryReport>> reports_in;
  std::vector<std::vector<VertexId>> staged_selected(num_partitions);
  std::vector<std::uint64_t> staged_ops(num_partitions, 0);
  std::vector<std::vector<int>> replica_scratch(ranks);
  std::vector<VertexId> selected;  // legacy-mode selection buffer

  while (total_allocated < total_edges) {
    DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
    ctx.ReportProgress("superstep", dne_stats_.iterations, 0);
    if (dne_stats_.iterations >= max_supersteps) {
      return Status::Internal("Distributed NE exceeded the superstep guard");
    }

    // ---- Phase A: vertex selection (expansion processes, Alg. 4) --------
    phase_timer.Reset();
    if (fast) {
      // Selection only reads/writes expansion[p]: all partitions run
      // concurrently into staged per-partition buffers.
      pool.ParallelFor(num_partitions, [&](std::size_t p) {
        staged_ops[p] = 0;
        expansion[p].SelectVertices(&staged_selected[p], &staged_ops[p]);
      });
      // The empty-boundary fallback probes *other* ranks and charges the
      // shared comm counters, so it stays sequential in partition order
      // (it is rare: only exhausted boundaries take it).
      for (PartitionId p = 0; p < num_partitions; ++p) {
        if (!staged_selected[p].empty() || expansion[p].terminated()) {
          continue;
        }
        // Alg. 1 line 7: random vertex, local allocation process first,
        // other machines only if necessary (one probe message each).
        VertexId v = alloc[p].PeekFreeVertex();
        if (v == kNoVertex) {
          for (int off = 1; off < ranks; ++off) {
            const int r = (static_cast<int>(p) + off) % ranks;
            cluster.comm().AddMessage(sizeof(VertexId));
            cluster.cost().AddBytes(static_cast<int>(p), sizeof(VertexId));
            v = alloc[r].PeekFreeVertex();
            if (v != kNoVertex) break;
          }
        }
        if (v != kNoVertex) {
          staged_selected[p].push_back(v);
          ++dne_stats_.random_restarts;
        }
      }
      // Request staging: partition p owns outbox row Out(p, *), so the fan
      // -out to replica ranks is parallel too.
      pool.ParallelFor(num_partitions, [&](std::size_t p) {
        staged_ops[p] += staged_selected[p].size();
        for (VertexId v : staged_selected[p]) {
          dist.ReplicaRanks(v, &replica_scratch[p]);
          for (int r : replica_scratch[p]) {
            select_x.Out(static_cast<int>(p), r).push_back(
                SelectRequest{v, static_cast<PartitionId>(p)});
          }
        }
      });
      for (PartitionId p = 0; p < num_partitions; ++p) {
        cluster.cost().AddWork(static_cast<int>(p), staged_ops[p]);
        phase_ops[p] += staged_ops[p];
      }
      select_x.DeliverInto(&cluster, &requests_in);
    } else {
      AllToAll<SelectRequest> legacy_select(ranks);
      for (PartitionId p = 0; p < num_partitions; ++p) {
        std::uint64_t ops = 0;
        expansion[p].SelectVertices(&selected, &ops);
        if (selected.empty() && !expansion[p].terminated()) {
          VertexId v = alloc[p].PeekFreeVertex();
          if (v == kNoVertex) {
            for (int off = 1; off < ranks; ++off) {
              const int r = (static_cast<int>(p) + off) % ranks;
              cluster.comm().AddMessage(sizeof(VertexId));
              cluster.cost().AddBytes(static_cast<int>(p), sizeof(VertexId));
              v = alloc[r].PeekFreeVertex();
              if (v != kNoVertex) break;
            }
          }
          if (v != kNoVertex) {
            selected.push_back(v);
            ++dne_stats_.random_restarts;
          }
        }
        ops += selected.size();
        cluster.cost().AddWork(static_cast<int>(p), ops);
        phase_ops[p] += ops;
        for (VertexId v : selected) {
          dist.ReplicaRanks(v, &replica_ranks);
          for (int r : replica_ranks) {
            legacy_select.Out(static_cast<int>(p), r).push_back(
                SelectRequest{v, p});
          }
        }
        selected.clear();
      }
      requests_in = legacy_select.Deliver(&cluster);
    }
    close_phase(/*is_selection=*/true);
    cluster.cost().EndSuperstep();
    dne_stats_.host_phase_a_seconds += phase_timer.Seconds();

    // ---- Phase B: one-hop allocation (Alg. 3 lines 1-9) -----------------
    phase_timer.Reset();
    // Per-rank allocation caps from the all-gathered |E_p| (Alg. 1 line
    // 14): each partition's remaining budget is split across all ranks
    // (any rank may own edges of the selected vertices), so one superstep
    // cannot blow through the limit by more than ~|P| stragglers of 1.
    std::vector<std::uint64_t> budgets(num_partitions, 0);
    for (PartitionId p = 0; p < num_partitions; ++p) {
      const std::uint64_t allocated = expansion[p].allocated();
      const std::uint64_t remaining =
          limit > allocated ? limit - allocated : 0;
      budgets[p] =
          remaining == 0
              ? 0
              : std::max<std::uint64_t>(
                    1, remaining / static_cast<std::uint64_t>(ranks));
    }
    if (fast) {
      // One-hop allocation and the replica-synchronisation fan-out run in
      // the same task: rank r owns alloc[r], rank_sync[r] and outbox row
      // Out(r, *).
      pool.ParallelFor(static_cast<std::size_t>(ranks), [&](std::size_t r) {
        rank_ops[r] = 0;
        rank_sync[r].clear();
        alloc[r].SetSuperstepBudgets(budgets);
        alloc[r].AllocateOneHop(requests_in[r], &assignment, &rank_sync[r],
                                &allocated_per_part[r], &rank_ops[r]);
        // Replica synchronisation (Alg. 2 line 3): fresh pairs go to every
        // replica rank of the vertex except this one.
        const int from = static_cast<int>(r);
        for (const VertexPartPair& pair : rank_sync[r]) {
          dist.ReplicaRanks(pair.v, &replica_scratch[r]);
          for (int to : replica_scratch[r]) {
            if (to != from) sync_x.Out(from, to).push_back(pair);
          }
        }
      });
      for (int r = 0; r < ranks; ++r) {
        cluster.cost().AddWork(r, parallel_ops(rank_ops[r]));
        phase_ops[r] += parallel_ops(rank_ops[r]);
      }
      sync_x.DeliverInto(&cluster, &sync_in);
    } else {
      AllToAll<VertexPartPair> legacy_sync(ranks);
      pool.ParallelFor(static_cast<std::size_t>(ranks), [&](std::size_t r) {
        rank_ops[r] = 0;
        rank_sync[r].clear();
        alloc[r].SetSuperstepBudgets(budgets);
        alloc[r].AllocateOneHop(requests_in[r], &assignment, &rank_sync[r],
                                &allocated_per_part[r], &rank_ops[r]);
      });
      for (int r = 0; r < ranks; ++r) {
        cluster.cost().AddWork(r, parallel_ops(rank_ops[r]));
        phase_ops[r] += parallel_ops(rank_ops[r]);
        for (const VertexPartPair& pair : rank_sync[r]) {
          dist.ReplicaRanks(pair.v, &replica_ranks);
          for (int to : replica_ranks) {
            if (to != r) legacy_sync.Out(r, to).push_back(pair);
          }
        }
      }
      sync_in = legacy_sync.Deliver(&cluster);
    }
    close_phase(/*is_selection=*/false);
    cluster.cost().EndSuperstep();
    dne_stats_.host_phase_b_seconds += phase_timer.Seconds();

    // ---- Phase C: sync apply, two-hop allocation, local D_rest ----------
    phase_timer.Reset();
    auto phase_c_rank = [&](std::size_t r) {
      rank_ops[r] = 0;
      rank_two_hop[r] = 0;
      alloc[r].ApplySync(sync_in[r], &rank_ops[r]);
      if (options_.enable_two_hop) {
        alloc[r].AllocateTwoHop(&assignment, &allocated_per_part[r],
                                &rank_two_hop[r], &rank_ops[r]);
      }
      rank_reports[r].clear();
      alloc[r].DrainBoundaryReports(&rank_reports[r], &rank_ops[r]);
    };
    if (fast) {
      pool.ParallelFor(static_cast<std::size_t>(ranks), [&](std::size_t r) {
        phase_c_rank(r);
        // Boundary reports route home to the owning expansion process;
        // rank r owns outbox row Out(r, *).
        for (const BoundaryReport& rep : rank_reports[r]) {
          report_x.Out(static_cast<int>(r), static_cast<int>(rep.p))
              .push_back(rep);
        }
      });
      for (int r = 0; r < ranks; ++r) {
        dne_stats_.two_hop_edges += rank_two_hop[r];
        cluster.cost().AddWork(r, parallel_ops(rank_ops[r]));
        phase_ops[r] += parallel_ops(rank_ops[r]);
      }
      report_x.DeliverInto(&cluster, &reports_in);
    } else {
      AllToAll<BoundaryReport> legacy_report(ranks);
      pool.ParallelFor(static_cast<std::size_t>(ranks), phase_c_rank);
      for (int r = 0; r < ranks; ++r) {
        dne_stats_.two_hop_edges += rank_two_hop[r];
        cluster.cost().AddWork(r, parallel_ops(rank_ops[r]));
        phase_ops[r] += parallel_ops(rank_ops[r]);
        for (const BoundaryReport& rep : rank_reports[r]) {
          legacy_report.Out(r, static_cast<int>(rep.p)).push_back(rep);
        }
      }
      reports_in = legacy_report.Deliver(&cluster);
    }
    close_phase(/*is_selection=*/false);
    cluster.cost().EndSuperstep();
    dne_stats_.host_phase_c_seconds += phase_timer.Seconds();

    phase_timer.Reset();
    // ---- Edge hand-off accounting: allocated edges are copied from their
    // allocation rank to the owning expansion rank (Fig. 4's data flow).
    std::uint64_t newly_allocated = 0;
    for (int r = 0; r < ranks; ++r) {
      for (PartitionId p = 0; p < num_partitions; ++p) {
        const std::uint64_t cnt = allocated_per_part[r][p];
        if (cnt == 0) continue;
        newly_allocated += cnt;
        expansion[p].AddAllocated(cnt);
        if (static_cast<int>(p) != r) {
          const std::uint64_t bytes = cnt * sizeof(Edge);
          cluster.comm().AddMessage(bytes);
          cluster.cost().AddBytes(r, bytes);
        }
        allocated_per_part[r][p] = 0;
      }
    }
    total_allocated += newly_allocated;
    dne_stats_.one_hop_edges =
        total_allocated - dne_stats_.two_hop_edges;

    // ---- Phase D: boundary updates + termination (Alg. 1 lines 10-15) ---
    // Aggregation of the per-rank local D_rest scores into global scores
    // plus the boundary-queue inserts; partition p owns its inbox and
    // expansion[p], so the fast path fans the loop out and merges only the
    // shared-counter accounting sequentially.
    auto phase_d_partition = [&](std::size_t p) {
      auto& inbox = reports_in[p];
      std::sort(inbox.begin(), inbox.end(),
                [](const BoundaryReport& a, const BoundaryReport& b) {
                  return a.v < b.v;
                });
      // Linear aggregation over the reports, plus one queue insert per
      // unique boundary vertex (O(1) bucket append on the fast path,
      // log |B_p| heap insert on the legacy path).
      std::uint64_t ops = inbox.size();
      const std::uint64_t insert_cost = expansion[p].InsertCostOps();
      std::size_t i = 0;
      while (i < inbox.size()) {
        std::size_t j = i;
        std::uint64_t drest = 0;
        while (j < inbox.size() && inbox[j].v == inbox[i].v) {
          drest += inbox[j].local_drest;
          ++j;
        }
        expansion[p].InsertBoundary(inbox[i].v, drest);
        ops += insert_cost;
        i = j;
      }
      staged_ops[p] = ops;
      // Alg. 1 line 14/15: the termination test over the all-gathered
      // |E_p| totals.
      expansion[p].CheckTermination(total_allocated, total_edges);
    };
    if (fast) {
      pool.ParallelFor(num_partitions, phase_d_partition);
    } else {
      for (PartitionId p = 0; p < num_partitions; ++p) phase_d_partition(p);
    }
    for (PartitionId p = 0; p < num_partitions; ++p) {
      // Aggregation + queue inserts pipeline with message arrival on the
      // expansion machine; charged as parallel background work. The serial
      // bottleneck the paper measures (Sec. 7.4) is the selection step
      // itself (phase A).
      cluster.cost().AddWork(static_cast<int>(p),
                             parallel_ops(staged_ops[p]));
      phase_ops[p] += parallel_ops(staged_ops[p]);
      // AllGather of |E_p| for the termination test (Alg. 1 line 14).
      const std::uint64_t allgather_bytes =
          (static_cast<std::uint64_t>(ranks) - 1) * sizeof(std::uint64_t);
      cluster.cost().AddBytes(static_cast<int>(p), allgather_bytes);
    }

    close_phase(/*is_selection=*/false);
    cluster.Barrier();
    dne_stats_.host_phase_d_seconds += phase_timer.Seconds();
    ++dne_stats_.iterations;
  }

  // Final memory census: vertex allocation-id sets grown during the run plus
  // the peak boundary queues.
  for (int r = 0; r < ranks; ++r) {
    cluster.mem().Allocate(r, alloc[r].DynamicMemoryBytes());
    cluster.mem().Allocate(
        r, expansion[r].peak_boundary_size() * (sizeof(std::uint64_t) * 2));
  }

  Status st = out->Validate(g);
  if (!st.ok()) return st;

  dne_stats_.comm_bytes = cluster.comm().bytes;
  dne_stats_.comm_messages = cluster.comm().messages;
  dne_stats_.sim_seconds = cluster.cost().SimSeconds();
  dne_stats_.selection_work_fraction =
      total_critical_ops == 0
          ? 0.0
          : static_cast<double>(selection_critical_ops) /
                static_cast<double>(total_critical_ops);
  dne_stats_.peak_memory_bytes = cluster.mem().peak_total();
  dne_stats_.edges_per_partition = out->PartitionSizes();
  {
    std::uint64_t max_b = 0, sum_b = 0;
    for (const ExpansionProcess& ep : expansion) {
      max_b = std::max<std::uint64_t>(max_b, ep.peak_boundary_size());
      sum_b += ep.peak_boundary_size();
    }
    dne_stats_.boundary_imbalance =
        sum_b == 0 ? 1.0
                   : static_cast<double>(max_b) * num_partitions /
                         static_cast<double>(sum_b);
  }

  stats_.sim_seconds = dne_stats_.sim_seconds;
  stats_.comm_bytes = dne_stats_.comm_bytes;
  stats_.supersteps = dne_stats_.iterations;
  stats_.peak_memory_bytes = dne_stats_.peak_memory_bytes;
  return Status::OK();
}

namespace {
OptionSchema DneSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "2-D distribution and expansion seed"),
      OptionSpec::Double("alpha", 1.1, 1.0, 10.0,
                         "balance slack of Eq. (2); the paper sets 1.1"),
      OptionSpec::Double("lambda", 0.1, 1e-6, 1.0,
                         "expansion factor of Sec. 5; the paper selects 0.1"),
      OptionSpec::Bool("two_hop", true,
                       "enable Condition-(5) two-hop free-edge allocation"),
      OptionSpec::Bool("min_drest", true,
                       "select boundary vertices by minimal D_rest"),
      OptionSpec::Enum("seed_strategy", {"random", "min_degree", "max_degree"},
                       "random", "fresh-vertex policy for empty boundaries"),
      OptionSpec::Uint("max_supersteps", 0,
                       "superstep guard; 0 = automatic (10|V| + 1000)"),
      OptionSpec::Int("threads", 1, 1, kMaxPoolThreads,
                      "host threads for the simulated ranks' phases"),
      OptionSpec::Bool("legacy_hotpath", false,
                       "pre-overhaul sequential hot path (bench reference; "
                       "bit-identical result)")};
}
}  // namespace

DNE_REGISTER_PARTITIONER(
    dne,
    PartitionerInfo{
        .name = "dne",
        .description =
            "Distributed Neighbor Expansion (the paper's algorithm)",
        .paper_order = 150,
        .schema = DneSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          const OptionSchema s = DneSchema();
          DneOptions o;
          o.seed = s.UintOr(c, "seed");
          o.alpha = s.DoubleOr(c, "alpha");
          o.lambda = s.DoubleOr(c, "lambda");
          o.enable_two_hop = s.BoolOr(c, "two_hop");
          o.min_drest_selection = s.BoolOr(c, "min_drest");
          const std::string strat = s.EnumOr(c, "seed_strategy");
          o.seed_strategy = strat == "min_degree" ? SeedStrategy::kMinDegree
                            : strat == "max_degree"
                                ? SeedStrategy::kMaxDegree
                                : SeedStrategy::kRandom;
          o.max_supersteps = s.UintOr(c, "max_supersteps");
          o.num_threads = static_cast<int>(s.IntOr(c, "threads"));
          o.legacy_hotpath = s.BoolOr(c, "legacy_hotpath");
          return std::make_unique<DnePartitioner>(o);
        }})

}  // namespace dne
