#include "partition/dne/dne_partitioner.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "core/partitioner_registry.h"
#include "partition/dne/fault_plan.h"
#include "partition/dne/dne_process_transport.h"
#include "partition/dne/dne_rank_state.h"
#include "partition/dne/two_d_distribution.h"
#include "runtime/communicator.h"
#include "runtime/host_topology.h"
#include "runtime/sim_cluster.h"
#include "runtime/thread_pool.h"

namespace dne {

namespace {

// Cross-option validation of the transport knobs; returns the resolved
// rank-process count for the process transport (0 for in-process).
Status ResolveTransport(const DneOptions& options,
                        std::uint32_t num_partitions, int* nproc) {
  *nproc = 0;
  if (options.transport == DneTransport::kInProcess) {
    if (options.ranks != 0) {
      return Status::InvalidArgument(
          "ranks requires transport=process (the in-process transport "
          "always hosts every simulated rank)");
    }
    if (options.checkpoint_every != 0) {
      return Status::InvalidArgument(
          "checkpoint_every requires transport=process (in-process runs "
          "have no rank processes to recover)");
    }
    if (options.checkpoint_dir[0] != '\0') {
      return Status::InvalidArgument(
          "checkpoint_dir requires transport=process");
    }
    if (options.max_recoveries != 0) {
      return Status::InvalidArgument(
          "max_recoveries requires transport=process");
    }
    if (options.stall_timeout_s != 600.0) {
      return Status::InvalidArgument(
          "stall_timeout_s requires transport=process (only mesh rounds "
          "have a stall deadline)");
    }
    if (options.num_faults > 0) {
      return Status::InvalidArgument("fault requires transport=process");
    }
    return Status::OK();
  }
  const bool shm = options.transport == DneTransport::kShm;
  if (num_partitions < 2) {
    return Status::InvalidArgument(
        std::string(shm ? "transport=shm" : "transport=process") +
        " needs at least 2 partitions (there is nothing "
        "to distribute across one rank)");
  }
  const int max_procs = static_cast<int>(
      std::min<std::uint32_t>(num_partitions, kMaxRankProcesses));
  int n = options.ranks;
  if (n == 0) {
    if (shm && CountNumaNodes() >= 2) {
      // Auto for shm: one rank process per NUMA node. The rings pin hot
      // cachelines per pair, so fewer, node-sized processes beat per-core
      // fan-out — each process's co-hosted ranks exchange in memory, and
      // the cross-node traffic rides the rings.
      n = std::clamp(CountNumaNodes(), 2, max_procs);
    } else {
      // Auto: one rank process per hardware core, not per simulated rank —
      // oversubscribing |P| processes onto few cores just multiplies context
      // switches and frames (the 2.3x process-transport slowdown). Co-hosted
      // ranks exchange in memory for free.
      const unsigned cores = std::thread::hardware_concurrency();
      n = std::clamp(static_cast<int>(cores == 0 ? 2 : cores), 2, max_procs);
    }
  }
  if (n < 2 || n > max_procs) {
    return Status::InvalidArgument(
        "ranks must be in [2, min(partitions, " +
        std::to_string(kMaxRankProcesses) + ")] for transport=" +
        (shm ? "shm" : "process") + "; got " + std::to_string(options.ranks));
  }
  if (options.checkpoint_every > 0 && options.checkpoint_dir[0] == '\0') {
    return Status::InvalidArgument(
        "checkpoint_every requires a checkpoint_dir to write into");
  }
  if (shm && options.checkpoint_dir[0] != '\0' &&
      !PathOnLocalFilesystem(options.checkpoint_dir)) {
    return Status::InvalidArgument(
        "transport=shm requires checkpoint_dir on a local filesystem "
        "(network mounts make the rename-commit protocol unreliable); " +
        std::string(options.checkpoint_dir) + " looks remote");
  }
  for (std::uint32_t i = 0; i < options.num_faults; ++i) {
    const FaultAction& a = options.faults[i];
    if (a.rank >= n) {
      return Status::InvalidArgument(
          "fault plan targets rank process " + std::to_string(a.rank) +
          " but only " + std::to_string(n) + " rank processes are configured");
    }
    if (a.peer >= n) {
      return Status::InvalidArgument(
          "fault plan targets peer process " + std::to_string(a.peer) +
          " but only " + std::to_string(n) + " rank processes are configured");
    }
  }
  *nproc = n;
  return Status::OK();
}

}  // namespace

// The driver proper is the rank-local superstep loop of dne_rank_state.cc,
// parameterized by a Communicator. This method only resolves options,
// dispatches the transport, and — for the in-process transport — builds the
// per-rank states (2-D distribution), runs the loop over an
// InProcessCommunicator, scatters the rank-local assignments into the
// shared output and derives the stats. Per-rank and per-partition arrays
// are indexed by the same range (one simulated rank per partition, as in
// the paper's Fig. 4).
Status DnePartitioner::PartitionImpl(const Graph& g,
                                     std::uint32_t num_partitions,
                                     const PartitionContext& ctx,
                                     EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (options_.alpha < 1.0) {
    return Status::InvalidArgument("alpha must be >= 1.0");
  }
  if (options_.lambda <= 0.0 || options_.lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in (0, 1]");
  }
  if (options_.num_threads > kMaxPoolThreads) {
    return Status::InvalidArgument("threads exceeds the supported maximum");
  }
  if (options_.stall_timeout_s <= 0.0) {
    return Status::InvalidArgument("stall_timeout_s must be positive");
  }
  // Fold the variable-length options into the fixed-size DneOptions POD the
  // config frame ships: here a bad value becomes a Status, not a silent
  // truncation.
  if (!checkpoint_dir_.empty()) {
    if (checkpoint_dir_.size() >= sizeof(options_.checkpoint_dir)) {
      return Status::InvalidArgument(
          "checkpoint_dir is too long (max " +
          std::to_string(sizeof(options_.checkpoint_dir) - 1) +
          " characters)");
    }
    std::memcpy(options_.checkpoint_dir, checkpoint_dir_.data(),
                checkpoint_dir_.size());
    options_.checkpoint_dir[checkpoint_dir_.size()] = '\0';
  }
  if (!fault_spec_.empty()) {
    DNE_RETURN_IF_ERROR(ParseFaultPlan(fault_spec_, options_.faults,
                                       DneOptions::kMaxFaultActions,
                                       &options_.num_faults));
  }
  int nproc = 0;
  DNE_RETURN_IF_ERROR(ResolveTransport(options_, num_partitions, &nproc));

  const bool fast = !options_.legacy_hotpath;
  const std::uint64_t seed = ctx.EffectiveSeed(options_.seed);
  const int ranks = static_cast<int>(num_partitions);
  const EdgeId total_edges = g.NumEdges();
  const VertexId num_vertices = g.NumVertices();

  // A caller-injected Communicator endpoint overrides the transport option
  // (it must host every rank, i.e. behave like the in-process transport).
  Communicator* injected = ctx.communicator;
  if (injected != nullptr &&
      (injected->num_ranks() != ranks ||
       injected->local_ranks().size() != static_cast<std::size_t>(ranks))) {
    return Status::InvalidArgument(
        "injected communicator must host all " + std::to_string(ranks) +
        " simulated ranks");
  }
  if (injected == nullptr && options_.transport != DneTransport::kInProcess) {
    dne_stats_ = DneStats{};
    DNE_RETURN_IF_ERROR(RunDneProcessTransport(
        g, num_partitions, options_, seed, nproc, ctx, out, &dne_stats_));
    DNE_RETURN_IF_ERROR(out->Validate(g));
    stats_.sim_seconds = dne_stats_.sim_seconds;
    stats_.comm_bytes = dne_stats_.comm_bytes;
    stats_.supersteps = dne_stats_.iterations;
    stats_.peak_memory_bytes = dne_stats_.peak_memory_bytes;
    return Status::OK();
  }

  SimCluster cluster(ranks, options_.cost);
  TwoDDistribution dist(num_partitions, seed);

  // Host threads for the per-rank phases. Each simulated rank's state is
  // disjoint (edges are uniquely owned), so any thread count gives
  // bit-identical results.
  ThreadPool pool(std::max(1, options_.num_threads));

  // --- Initial 2-D hash distribution (Sec. 4) ----------------------------
  WallTimer phase_timer;
  std::vector<AllocationProcess> alloc;
  alloc.reserve(ranks);
  for (int r = 0; r < ranks; ++r) {
    alloc.emplace_back(r, num_partitions, options_.seed_strategy,
                       /*legacy_scan=*/!fast);
  }
  if (fast) {
    // Chunked two-pass ownership scatter: pass 1 counts owners per chunk,
    // a per-rank prefix sum over chunks turns the counts into slot ranges,
    // pass 2 scatter-writes each edge into its slot. Per rank the slots
    // follow (chunk, position-in-chunk) order, i.e. ascending global edge
    // id — exactly the sequential AddEdge order, for any thread count.
    const EdgeId chunk_edges = 1 << 16;
    const std::size_t num_chunks = static_cast<std::size_t>(
        (total_edges + chunk_edges - 1) / chunk_edges);
    std::vector<std::vector<std::uint64_t>> chunk_offset(
        num_chunks, std::vector<std::uint64_t>(ranks, 0));
    pool.ParallelFor(num_chunks, [&](std::size_t c) {
      const EdgeId lo = static_cast<EdgeId>(c) * chunk_edges;
      const EdgeId hi = std::min<EdgeId>(total_edges, lo + chunk_edges);
      std::vector<std::uint64_t>& count = chunk_offset[c];
      for (EdgeId e = lo; e < hi; ++e) {
        const Edge& ed = g.edge(e);
        ++count[dist.OwnerOf(ed.src, ed.dst)];
      }
    });
    for (int r = 0; r < ranks; ++r) {
      std::uint64_t running = 0;
      for (std::size_t c = 0; c < num_chunks; ++c) {
        const std::uint64_t count = chunk_offset[c][r];
        chunk_offset[c][r] = running;
        running += count;
      }
      alloc[r].PrepareBulkEdges(running);
    }
    pool.ParallelFor(num_chunks, [&](std::size_t c) {
      const EdgeId lo = static_cast<EdgeId>(c) * chunk_edges;
      const EdgeId hi = std::min<EdgeId>(total_edges, lo + chunk_edges);
      std::vector<std::uint64_t>& offset = chunk_offset[c];
      for (EdgeId e = lo; e < hi; ++e) {
        const Edge& ed = g.edge(e);
        const int r = dist.OwnerOf(ed.src, ed.dst);
        alloc[r].PlaceEdge(offset[r]++, e, ed.src, ed.dst);
      }
    });
    pool.ParallelFor(static_cast<std::size_t>(ranks),
                     [&](std::size_t r) { alloc[r].Finalize(); });
  } else {
    for (EdgeId e = 0; e < total_edges; ++e) {
      const Edge& ed = g.edge(e);
      alloc[dist.OwnerOf(ed.src, ed.dst)].AddEdge(e, ed.src, ed.dst);
    }
    for (int r = 0; r < ranks; ++r) alloc[r].Finalize();
  }
  for (int r = 0; r < ranks; ++r) {
    cluster.mem().Allocate(r, alloc[r].StaticMemoryBytes());
  }

  const std::uint64_t limit =
      DneEdgeLimit(options_.alpha, total_edges, num_partitions);
  std::vector<DneRankState> states;
  states.reserve(ranks);
  for (int r = 0; r < ranks; ++r) {
    states.emplace_back(
        r, std::move(alloc[r]),
        MakeDneExpansion(options_, r, num_vertices, limit, seed),
        num_partitions);
  }
  alloc.clear();
  dne_stats_ = DneStats{};
  dne_stats_.host_distribute_seconds = phase_timer.Seconds();

  InProcessCommunicator own_comm(ranks);
  Communicator* comm = injected != nullptr ? injected : &own_comm;
  SimClusterLedger ledger(&cluster);
  comm->SetLedger(&ledger);

  DneLoopEnv env;
  env.options = &options_;
  env.num_partitions = num_partitions;
  env.total_edges = total_edges;
  env.edge_limit = limit;
  env.max_supersteps = DneMaxSupersteps(options_, num_vertices);
  env.dist = &dist;
  env.comm = comm;
  env.ledger = &ledger;
  env.pool = &pool;
  env.ctx = &ctx;

  DneLoopResult result;
  DNE_RETURN_IF_ERROR(RunDneSuperstepLoop(env, &states, &result));
  DNE_RETURN_IF_ERROR(comm->Barrier());

  // Final memory census: vertex allocation-id sets grown during the run
  // plus the peak boundary queues.
  for (int r = 0; r < ranks; ++r) {
    cluster.mem().Allocate(r, states[r].alloc.DynamicMemoryBytes());
    cluster.mem().Allocate(r, states[r].expansion.peak_boundary_size() *
                                  (sizeof(std::uint64_t) * 2));
  }

  // Scatter the rank-local assignments into the shared output; ranks own
  // disjoint global edge ids, so the parallel writes never collide.
  *out = EdgePartition(num_partitions, total_edges);
  std::vector<PartitionId>& assignment = out->mutable_assignment();
  pool.ParallelFor(static_cast<std::size_t>(ranks), [&](std::size_t r) {
    states[r].alloc.ForEachAssignment(
        [&](EdgeId gid, PartitionId p) { assignment[gid] = p; });
  });
  DNE_RETURN_IF_ERROR(out->Validate(g));

  dne_stats_.iterations = result.iterations;
  dne_stats_.host_phase_a_seconds = result.host_phase_seconds[0];
  dne_stats_.host_phase_b_seconds = result.host_phase_seconds[1];
  dne_stats_.host_phase_c_seconds = result.host_phase_seconds[2];
  dne_stats_.host_phase_d_seconds = result.host_phase_seconds[3];
  std::uint64_t max_b = 0, sum_b = 0;
  for (const DneRankState& st : states) {
    dne_stats_.two_hop_edges += st.two_hop_edges;
    dne_stats_.random_restarts += st.random_restarts;
    max_b = std::max<std::uint64_t>(max_b, st.expansion.peak_boundary_size());
    sum_b += st.expansion.peak_boundary_size();
  }
  dne_stats_.one_hop_edges = result.total_allocated - dne_stats_.two_hop_edges;
  dne_stats_.boundary_imbalance =
      sum_b == 0 ? 1.0
                 : static_cast<double>(max_b) * num_partitions /
                       static_cast<double>(sum_b);
  dne_stats_.comm_bytes = cluster.comm().bytes;
  dne_stats_.comm_messages = cluster.comm().messages;
  dne_stats_.sim_seconds = cluster.cost().SimSeconds();
  dne_stats_.selection_work_fraction =
      ledger.total_critical_ops() == 0
          ? 0.0
          : static_cast<double>(ledger.selection_critical_ops()) /
                static_cast<double>(ledger.total_critical_ops());
  dne_stats_.peak_memory_bytes = cluster.mem().peak_total();
  dne_stats_.rank_peak_bytes = cluster.mem().rank_peaks();
  dne_stats_.edges_per_partition = out->PartitionSizes();

  stats_.sim_seconds = dne_stats_.sim_seconds;
  stats_.comm_bytes = dne_stats_.comm_bytes;
  stats_.supersteps = dne_stats_.iterations;
  stats_.peak_memory_bytes = dne_stats_.peak_memory_bytes;
  return Status::OK();
}

namespace {
OptionSchema DneSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "2-D distribution and expansion seed"),
      OptionSpec::Double("alpha", 1.1, 1.0, 10.0,
                         "balance slack of Eq. (2); the paper sets 1.1"),
      OptionSpec::Double("lambda", 0.1, 1e-6, 1.0,
                         "expansion factor of Sec. 5; the paper selects 0.1"),
      OptionSpec::Bool("two_hop", true,
                       "enable Condition-(5) two-hop free-edge allocation"),
      OptionSpec::Bool("min_drest", true,
                       "select boundary vertices by minimal D_rest"),
      OptionSpec::Enum("seed_strategy", {"random", "min_degree", "max_degree"},
                       "random", "fresh-vertex policy for empty boundaries"),
      OptionSpec::Uint("max_supersteps", 0,
                       "superstep guard; 0 = automatic (10|V| + 1000)"),
      OptionSpec::Int("threads", 1, 1, kMaxPoolThreads,
                      "host threads for the simulated ranks' phases"),
      OptionSpec::Bool("legacy_hotpath", false,
                       "pre-overhaul sequential hot path (bench reference; "
                       "bit-identical result)"),
      OptionSpec::Enum("transport", {"inproc", "process", "shm"}, "inproc",
                       "superstep transport: in-process modeled exchange, "
                       "forked rank processes over socket frames, or the "
                       "same processes over shared-memory rings "
                       "(bit-identical partitions)"),
      OptionSpec::Int("ranks", 0, 0, kMaxRankProcesses,
                      "rank processes for transport=process/shm; 0 = one "
                      "per hardware core (shm: per NUMA node when the host "
                      "has several; clamped to [2, partitions]), otherwise "
                      ">= 2"),
      OptionSpec::Bool("coalesce", true,
                       "fuse step-end exchanges into one multi-channel "
                       "frame per peer (transport=process; off = legacy "
                       "per-exchange framing, bit-identical result)"),
      OptionSpec::Int("checkpoint_every", 0, 0, 1000000000,
                      "checkpoint rank state every K supersteps "
                      "(transport=process; 0 = off; requires "
                      "checkpoint_dir)"),
      OptionSpec::String("checkpoint_dir", "",
                         "directory for per-process superstep checkpoints "
                         "(transport=process)"),
      OptionSpec::Int("max_recoveries", 0, 0, 16,
                      "full-cluster restarts to attempt after a rank "
                      "failure before reporting it (transport=process)"),
      OptionSpec::Double("stall_timeout_s", 600.0, 0.1, 86400.0,
                         "mesh-round stall deadline: how long a rank waits "
                         "on a wedged peer before declaring the round dead "
                         "(transport=process)"),
      OptionSpec::String("fault", "",
                         "deterministic fault plan: "
                         "kind@rR:sS[:round=..][:epoch=N][:peer=N], "
                         "';'-separated; kinds crash|stall|drop|flip|"
                         "ckptfail|torn (transport=process, tests/CI)")};
}
}  // namespace

DNE_REGISTER_PARTITIONER(
    dne,
    PartitionerInfo{
        .name = "dne",
        .description =
            "Distributed Neighbor Expansion (the paper's algorithm)",
        .paper_order = 150,
        .schema = DneSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          const OptionSchema s = DneSchema();
          DneOptions o;
          o.seed = s.UintOr(c, "seed");
          o.alpha = s.DoubleOr(c, "alpha");
          o.lambda = s.DoubleOr(c, "lambda");
          o.enable_two_hop = s.BoolOr(c, "two_hop");
          o.min_drest_selection = s.BoolOr(c, "min_drest");
          const std::string strat = s.EnumOr(c, "seed_strategy");
          o.seed_strategy = strat == "min_degree" ? SeedStrategy::kMinDegree
                            : strat == "max_degree"
                                ? SeedStrategy::kMaxDegree
                                : SeedStrategy::kRandom;
          o.max_supersteps = s.UintOr(c, "max_supersteps");
          o.num_threads = static_cast<int>(s.IntOr(c, "threads"));
          o.legacy_hotpath = s.BoolOr(c, "legacy_hotpath");
          const std::string transport = s.EnumOr(c, "transport");
          o.transport = transport == "process" ? DneTransport::kProcess
                        : transport == "shm"   ? DneTransport::kShm
                                               : DneTransport::kInProcess;
          o.ranks = static_cast<int>(s.IntOr(c, "ranks"));
          o.coalesce_frames = s.BoolOr(c, "coalesce");
          o.checkpoint_every =
              static_cast<std::uint32_t>(s.IntOr(c, "checkpoint_every"));
          o.max_recoveries =
              static_cast<std::uint32_t>(s.IntOr(c, "max_recoveries"));
          o.stall_timeout_s = s.DoubleOr(c, "stall_timeout_s");
          auto p = std::make_unique<DnePartitioner>(o);
          p->SetCheckpointDir(s.StringOr(c, "checkpoint_dir"));
          p->SetFaultSpec(s.StringOr(c, "fault"));
          return p;
        }})

}  // namespace dne
