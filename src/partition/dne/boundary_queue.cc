#include "partition/dne/boundary_queue.h"

#include <algorithm>

namespace dne {

void BucketedBoundaryQueue::Push(std::uint64_t score, VertexId v) {
  if (buckets_.empty()) buckets_.resize(kNumBuckets);
  const std::size_t b = static_cast<std::size_t>(
      std::min<std::uint64_t>(score, kNumBuckets - 1));
  Bucket& bucket = buckets_[b];
  if (bucket.head == bucket.items.size()) {
    // Fully consumed: recycle the storage instead of growing forever.
    bucket.items.clear();
    bucket.head = 0;
    bucket.sorted_end = 0;
  }
  bucket.items.push_back(BoundaryEntry{score, v});
  min_bucket_ = std::min(min_bucket_, b);
  ++size_;
}

BoundaryEntry BucketedBoundaryQueue::PopMin() {
  while (min_bucket_ < buckets_.size()) {
    Bucket& bucket = buckets_[min_bucket_];
    if (bucket.head == bucket.items.size()) {
      ++min_bucket_;
      continue;
    }
    if (bucket.sorted_end != bucket.items.size()) {
      // Fresh inserts since the last pop: sort only the fresh suffix and
      // merge it into the already-sorted live tail. Within a non-overflow
      // bucket all scores are equal, so this orders by vertex id; the
      // overflow bucket orders by (score, vertex). Either way the global
      // pop order matches the heap exactly.
      const auto head_it = bucket.items.begin() + bucket.head;
      const auto mid_it =
          bucket.items.begin() + std::max(bucket.head, bucket.sorted_end);
      std::sort(mid_it, bucket.items.end());
      std::inplace_merge(head_it, mid_it, bucket.items.end());
      bucket.sorted_end = bucket.items.size();
    }
    --size_;
    return bucket.items[bucket.head++];
  }
  // Callers check empty() first; an unreachable fallback keeps this total.
  return BoundaryEntry{0, kNoVertex};
}

void BucketedBoundaryQueue::AppendEntries(
    std::vector<BoundaryEntry>* out) const {
  for (const Bucket& bucket : buckets_) {
    out->insert(out->end(), bucket.items.begin() + bucket.head,
                bucket.items.end());
  }
}

}  // namespace dne
