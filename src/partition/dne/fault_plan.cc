#include "partition/dne/fault_plan.h"

#include <charconv>
#include <string_view>
#include <vector>

namespace dne {

namespace {

constexpr char kGrammarHint[] =
    "grammar: kind@rR:sS[:round=select|sync|stepend][:epoch=N][:peer=N] with "
    "kind one of crash|stall|drop|flip|ckptfail|torn, entries ';'-separated";

Status Invalid(std::string_view entry, const std::string& why) {
  return Status::InvalidArgument("fault entry '" + std::string(entry) +
                                 "': " + why + "; " + kGrammarHint);
}

bool ParseNum(std::string_view text, std::int64_t* out) {
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

bool LookupKind(std::string_view name, FaultKind* out) {
  if (name == "crash") *out = FaultKind::kCrash;
  else if (name == "stall") *out = FaultKind::kStall;
  else if (name == "drop") *out = FaultKind::kDropFrame;
  else if (name == "flip") *out = FaultKind::kFlipFrame;
  else if (name == "ckptfail") *out = FaultKind::kCheckpointFail;
  else if (name == "torn") *out = FaultKind::kTornCheckpoint;
  else return false;
  return true;
}

bool LookupRound(std::string_view name, FaultRound* out) {
  if (name == "select") *out = FaultRound::kSelect;
  else if (name == "sync") *out = FaultRound::kSync;
  else if (name == "stepend") *out = FaultRound::kStepEnd;
  else return false;
  return true;
}

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  while (true) {
    const std::size_t pos = text.find(sep);
    if (pos == std::string_view::npos) {
      parts.push_back(text);
      return parts;
    }
    parts.push_back(text.substr(0, pos));
    text.remove_prefix(pos + 1);
  }
}

Status ParseEntry(std::string_view entry, FaultAction* out) {
  const std::size_t at = entry.find('@');
  if (at == std::string_view::npos) {
    return Invalid(entry, "missing '@'");
  }
  FaultKind kind = FaultKind::kNone;
  if (!LookupKind(entry.substr(0, at), &kind)) {
    return Invalid(entry, "unknown kind '" +
                              std::string(entry.substr(0, at)) + "'");
  }
  const std::vector<std::string_view> fields = Split(entry.substr(at + 1), ':');
  if (fields.size() < 2) {
    return Invalid(entry, "expected rR:sS after '@'");
  }
  std::int64_t rank = -1;
  if (fields[0].size() < 2 || fields[0][0] != 'r' ||
      !ParseNum(fields[0].substr(1), &rank) || rank < 0 ||
      rank >= kMaxRankProcesses) {
    return Invalid(entry, "bad rank field '" + std::string(fields[0]) +
                              "' (want r<0.." +
                              std::to_string(kMaxRankProcesses - 1) + ">)");
  }
  std::int64_t superstep = -1;
  if (fields[1].size() < 2 || fields[1][0] != 's' ||
      !ParseNum(fields[1].substr(1), &superstep) || superstep < 1 ||
      superstep > 0x7fffffff) {
    return Invalid(entry, "bad superstep field '" + std::string(fields[1]) +
                              "' (want s<N>, supersteps are 1-based)");
  }

  FaultAction action;
  action.kind = static_cast<std::uint8_t>(kind);
  action.rank = static_cast<std::int32_t>(rank);
  action.superstep = static_cast<std::uint32_t>(superstep);
  // Frame faults default to the sync round (the widest exchange); crash and
  // stall default to the superstep boundary, before any round starts.
  action.round = static_cast<std::uint8_t>(
      (kind == FaultKind::kDropFrame || kind == FaultKind::kFlipFrame)
          ? FaultRound::kSync
          : FaultRound::kSuperstepStart);

  for (std::size_t i = 2; i < fields.size(); ++i) {
    const std::string_view field = fields[i];
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      return Invalid(entry, "bad modifier '" + std::string(field) + "'");
    }
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    if (key == "round") {
      FaultRound round = FaultRound::kSuperstepStart;
      if (!LookupRound(value, &round)) {
        return Invalid(entry, "unknown round '" + std::string(value) + "'");
      }
      if (kind == FaultKind::kCheckpointFail ||
          kind == FaultKind::kTornCheckpoint) {
        return Invalid(entry, "round= does not apply to checkpoint faults");
      }
      action.round = static_cast<std::uint8_t>(round);
    } else if (key == "epoch") {
      std::int64_t epoch = 0;
      if (!ParseNum(value, &epoch) || epoch < -1 || epoch > 0x7fffffff) {
        return Invalid(entry, "bad epoch '" + std::string(value) + "'");
      }
      action.epoch = static_cast<std::int32_t>(epoch);
    } else if (key == "peer") {
      std::int64_t peer = -1;
      if (!ParseNum(value, &peer) || peer < 0 || peer >= kMaxRankProcesses) {
        return Invalid(entry, "bad peer '" + std::string(value) + "'");
      }
      if (kind != FaultKind::kDropFrame && kind != FaultKind::kFlipFrame) {
        return Invalid(entry, "peer= only applies to drop/flip");
      }
      action.peer = static_cast<std::int16_t>(peer);
    } else {
      return Invalid(entry, "unknown modifier '" + std::string(key) + "'");
    }
  }
  *out = action;
  return Status::OK();
}

}  // namespace

Status ParseFaultPlan(const std::string& spec, FaultAction* actions,
                      std::uint32_t max_actions, std::uint32_t* num_actions) {
  *num_actions = 0;
  if (spec.empty()) return Status::OK();
  for (std::string_view entry : Split(spec, ';')) {
    if (entry.empty()) {
      return Invalid(entry, "empty entry");
    }
    if (*num_actions == max_actions) {
      return Status::InvalidArgument(
          "fault plan has more than " + std::to_string(max_actions) +
          " entries");
    }
    DNE_RETURN_IF_ERROR(ParseEntry(entry, &actions[*num_actions]));
    ++*num_actions;
  }
  return Status::OK();
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDropFrame:
      return "drop";
    case FaultKind::kFlipFrame:
      return "flip";
    case FaultKind::kCheckpointFail:
      return "ckptfail";
    case FaultKind::kTornCheckpoint:
      return "torn";
  }
  return "?";
}

const char* FaultRoundName(FaultRound round) {
  switch (round) {
    case FaultRound::kSuperstepStart:
      return "superstep start";
    case FaultRound::kSelect:
      return "select";
    case FaultRound::kSync:
      return "sync";
    case FaultRound::kStepEnd:
      return "step-end";
  }
  return "?";
}

}  // namespace dne
