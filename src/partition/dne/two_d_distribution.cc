#include "partition/dne/two_d_distribution.h"

#include <algorithm>

namespace dne {

TwoDDistribution::TwoDDistribution(std::uint32_t num_ranks,
                                   std::uint64_t seed)
    : seed_(seed) {
  std::uint32_t r = 1;
  for (std::uint32_t d = 1;
       static_cast<std::uint64_t>(d) * d <= num_ranks; ++d) {
    if (num_ranks % d == 0) r = d;
  }
  rows_ = r;
  cols_ = num_ranks / r;
}

void TwoDDistribution::ReplicaRanks(VertexId x, std::vector<int>* out) const {
  out->clear();
  const std::uint32_t row = RowOf(x);
  const std::uint32_t col = ColOf(x);
  out->reserve(rows_ + cols_ - 1);
  for (std::uint32_t c = 0; c < cols_; ++c) {
    out->push_back(static_cast<int>(row * cols_ + c));
  }
  for (std::uint32_t r = 0; r < rows_; ++r) {
    if (r == row) continue;  // the (row, col) cell is already in the row span
    out->push_back(static_cast<int>(r * cols_ + col));
  }
  std::sort(out->begin(), out->end());
}

}  // namespace dne
