// CompactPartSets: per-vertex partition-id sets without hash maps or
// per-vertex heap containers (the paper's Sec. 4 memory requirement).
//
// Two storage modes, chosen at Init from the partition count:
//  * bitmap mode (P <= kBitmapMaxPartitions): ceil(P/64) words per vertex —
//    8 bytes/vertex at the paper's P = 64, constant-time Add/Contains,
//    no growth at run time;
//  * slot+arena mode (large P): two inline 32-bit slots per vertex and a
//    flat [capacity, size, ids...] arena for the rare wide sets.
#ifndef DNE_PARTITION_DNE_COMPACT_PART_SETS_H_
#define DNE_PARTITION_DNE_COMPACT_PART_SETS_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "partition/dne/part_set_simd.h"
#include "runtime/wire.h"

namespace dne {

class CompactPartSets {
 public:
  /// Largest partition count served by the bitmap mode (64 bytes/vertex).
  static constexpr std::uint32_t kBitmapMaxPartitions = 512;

  CompactPartSets() = default;

  void Init(std::uint32_t num_vertices, std::uint32_t num_partitions) {
    num_partitions_ = num_partitions;
    if (num_partitions <= kBitmapMaxPartitions) {
      words_ = (num_partitions + 63) / 64;
      bits_.assign(static_cast<std::size_t>(num_vertices) * words_, 0);
      slots_.clear();
      arena_.clear();
    } else {
      words_ = 0;
      bits_.clear();
      slots_.assign(2 * static_cast<std::size_t>(num_vertices),
                    kNoPartition);
      arena_.clear();
    }
  }

  /// Inserts p into vertex v's set; returns true if newly added.
  bool Add(std::uint32_t v, PartitionId p) {
    if (words_ > 0) {
      std::uint64_t& word = bits_[static_cast<std::size_t>(v) * words_ +
                                  (p >> 6)];
      const std::uint64_t mask = 1ULL << (p & 63);
      if (word & mask) return false;
      word |= mask;
      return true;
    }
    return SlotAdd(v, p);
  }

  bool Contains(std::uint32_t v, PartitionId p) const {
    if (words_ > 0) {
      return (bits_[static_cast<std::size_t>(v) * words_ + (p >> 6)] >>
              (p & 63)) &
             1ULL;
    }
    return SlotContains(v, p);
  }

  /// Copies v's (sorted) set into *out (cleared first).
  void CopyTo(std::uint32_t v, std::vector<PartitionId>* out) const {
    out->clear();
    if (words_ > 0) {
      for (std::uint32_t w = 0; w < words_; ++w) {
        std::uint64_t word = bits_[static_cast<std::size_t>(v) * words_ + w];
        while (word != 0) {
          const int bit = std::countr_zero(word);
          out->push_back(64 * w + static_cast<PartitionId>(bit));
          word &= word - 1;
        }
      }
      return;
    }
    SlotCopyTo(v, out);
  }

  /// Visits the ids common to u's and w's sets in ascending order. In
  /// bitmap mode this is a word-wise AND + bit scan — the two-hop hot loop
  /// (Alg. 3 line 14) runs on it without materialising either set. The AND
  /// is vectorized when the build and CPU allow (part_set_simd.h); emission
  /// order is bit-identical either way.
  template <typename Fn>
  void ForEachCommon(std::uint32_t u, std::uint32_t w, Fn&& fn) const {
    if (words_ > 0) {
      const std::uint64_t* bu = &bits_[static_cast<std::size_t>(u) * words_];
      const std::uint64_t* bw = &bits_[static_cast<std::size_t>(w) * words_];
      simd::AndScanWords(bu, bw, words_, [&fn](std::uint32_t id) {
        fn(static_cast<PartitionId>(id));
      });
      return;
    }
    PartitionId iu[2], iw[2];
    const PartitionId* du;
    const PartitionId* dw;
    const std::size_t su = SlotView(u, iu, &du);
    const std::size_t sw = SlotView(w, iw, &dw);
    std::size_t a = 0, b = 0;
    while (a < su && b < sw) {
      if (du[a] < dw[b]) {
        ++a;
      } else if (dw[b] < du[a]) {
        ++b;
      } else {
        fn(du[a]);
        ++a;
        ++b;
      }
    }
  }

  std::size_t size_of(std::uint32_t v) const {
    if (words_ > 0) {
      std::size_t n = 0;
      for (std::uint32_t w = 0; w < words_; ++w) {
        n += static_cast<std::size_t>(
            std::popcount(bits_[static_cast<std::size_t>(v) * words_ + w]));
      }
      return n;
    }
    return SlotSizeOf(v);
  }

  /// Fixed footprint (bitmap words or inline slots).
  std::size_t InlineBytes() const {
    return bits_.capacity() * sizeof(std::uint64_t) +
           slots_.capacity() * sizeof(PartitionId);
  }

  /// Bytes grown during the run (arena mode only; 0 in bitmap mode).
  std::size_t SpillBytes() const {
    return arena_.size() * sizeof(PartitionId);
  }

  /// Appends a checkpoint snapshot of every vertex's set. Bitmap mode dumps
  /// the raw words; slot mode writes each vertex's sorted id list (the
  /// arena's block layout is a pure function of the per-vertex final counts,
  /// so re-Add on restore reproduces it).
  void SerializeState(std::vector<unsigned char>* out) const {
    const std::uint8_t mode = words_ > 0 ? 1 : 0;
    wire::AppendPod(out, mode);
    if (mode != 0) {
      wire::AppendPod(out, static_cast<std::uint64_t>(bits_.size()));
      const auto* p = reinterpret_cast<const unsigned char*>(bits_.data());
      out->insert(out->end(), p, p + bits_.size() * sizeof(std::uint64_t));
      return;
    }
    const std::uint64_t num_vertices = slots_.size() / 2;
    wire::AppendPod(out, num_vertices);
    std::vector<PartitionId> scratch;
    for (std::uint64_t v = 0; v < num_vertices; ++v) {
      SlotCopyTo(static_cast<std::uint32_t>(v), &scratch);
      wire::AppendPod(out, static_cast<std::uint32_t>(scratch.size()));
      for (PartitionId p : scratch) wire::AppendPod(out, p);
      scratch.clear();
    }
  }

  /// Restores a SerializeState snapshot into this freshly Init()ed instance.
  /// The storage mode and vertex count must match the snapshot; false on any
  /// shape mismatch (the caller treats that as an unusable checkpoint).
  bool RestoreState(wire::PayloadReader* reader) {
    std::uint8_t mode = 0;
    if (!reader->Read(&mode) || mode != (words_ > 0 ? 1 : 0)) return false;
    if (mode != 0) {
      std::uint64_t num_words = 0;
      if (!reader->Read(&num_words) || num_words != bits_.size()) return false;
      return reader->ReadBytes(bits_.data(),
                               bits_.size() * sizeof(std::uint64_t));
    }
    std::uint64_t num_vertices = 0;
    if (!reader->Read(&num_vertices) || num_vertices != slots_.size() / 2) {
      return false;
    }
    for (std::uint64_t v = 0; v < num_vertices; ++v) {
      std::uint32_t count = 0;
      if (!reader->Read(&count)) return false;
      for (std::uint32_t i = 0; i < count; ++i) {
        PartitionId p = kNoPartition;
        if (!reader->Read(&p) || p >= num_partitions_ ||
            !Add(static_cast<std::uint32_t>(v), p)) {
          return false;
        }
      }
    }
    return true;
  }

 private:
  // kNoPartition - 1: an impossible partition id used to mark spilled rows.
  static constexpr PartitionId kSpillTag = kNoPartition - 1;

  bool SlotAdd(std::uint32_t v, PartitionId p) {
    PartitionId& s0 = slots_[2 * v];
    PartitionId& s1 = slots_[2 * v + 1];
    if (s0 != kSpillTag) {
      if (s0 == p || s1 == p) return false;
      if (s0 == kNoPartition) {
        s0 = p;
        return true;
      }
      if (s1 == kNoPartition) {
        if (p < s0) std::swap(s0, p);
        s1 = p;
        return true;
      }
      const std::uint32_t block = NewBlock(4);
      PartitionId three[3] = {s0, s1, p};
      std::sort(three, three + 3);
      arena_[block + 1] = 3;
      std::copy(three, three + 3, arena_.begin() + block + 2);
      s0 = kSpillTag;
      s1 = block;
      return true;
    }
    // Spilled: sorted insert, growing the block when full. Offsets are
    // re-derived after NewBlock, which may reallocate the arena.
    std::uint32_t block = s1;
    const std::uint32_t cap = arena_[block];
    const std::uint32_t size = arena_[block + 1];
    {
      const PartitionId* data = &arena_[block + 2];
      if (std::binary_search(data, data + size, p)) return false;
    }
    if (size == cap) {
      const std::uint32_t grown = NewBlock(2 * cap);
      std::copy(arena_.begin() + block + 2,
                arena_.begin() + block + 2 + size,
                arena_.begin() + grown + 2);
      arena_[grown + 1] = size;
      slots_[2 * v + 1] = grown;
      block = grown;
    }
    PartitionId* data = &arena_[block + 2];
    PartitionId* end = data + size;
    PartitionId* it = std::lower_bound(data, end, p);
    std::copy_backward(it, end, end + 1);
    *it = p;
    arena_[block + 1] = size + 1;
    return true;
  }

  bool SlotContains(std::uint32_t v, PartitionId p) const {
    const PartitionId s0 = slots_[2 * v];
    const PartitionId s1 = slots_[2 * v + 1];
    if (s0 != kSpillTag) return s0 == p || s1 == p;
    const PartitionId* data = &arena_[s1 + 2];
    return std::binary_search(data, data + arena_[s1 + 1], p);
  }

  void SlotCopyTo(std::uint32_t v, std::vector<PartitionId>* out) const {
    const PartitionId s0 = slots_[2 * v];
    const PartitionId s1 = slots_[2 * v + 1];
    if (s0 == kSpillTag) {
      const PartitionId* data = &arena_[s1 + 2];
      out->assign(data, data + arena_[s1 + 1]);
      return;
    }
    if (s0 != kNoPartition) out->push_back(s0);
    if (s1 != kNoPartition) out->push_back(s1);
  }

  /// Slot mode: exposes v's sorted ids either from the spill arena or via
  /// the caller-provided inline buffer; returns the count.
  std::size_t SlotView(std::uint32_t v, PartitionId inline_buf[2],
                       const PartitionId** data) const {
    const PartitionId s0 = slots_[2 * v];
    const PartitionId s1 = slots_[2 * v + 1];
    if (s0 == kSpillTag) {
      *data = &arena_[s1 + 2];
      return arena_[s1 + 1];
    }
    std::size_t n = 0;
    if (s0 != kNoPartition) inline_buf[n++] = s0;
    if (s1 != kNoPartition) inline_buf[n++] = s1;
    *data = inline_buf;
    return n;
  }

  std::size_t SlotSizeOf(std::uint32_t v) const {
    const PartitionId s0 = slots_[2 * v];
    const PartitionId s1 = slots_[2 * v + 1];
    if (s0 == kSpillTag) return arena_[s1 + 1];
    return (s0 != kNoPartition ? 1u : 0u) + (s1 != kNoPartition ? 1u : 0u);
  }

  /// Appends an empty block [cap, 0, cap slots] and returns its offset.
  std::uint32_t NewBlock(std::uint32_t cap) {
    const std::uint32_t offset = static_cast<std::uint32_t>(arena_.size());
    arena_.resize(arena_.size() + 2 + cap, kNoPartition);
    arena_[offset] = cap;
    arena_[offset + 1] = 0;
    return offset;
  }

  std::uint32_t num_partitions_ = 0;
  std::uint32_t words_ = 0;             // bitmap words/vertex; 0 = slot mode
  std::vector<std::uint64_t> bits_;     // bitmap mode storage
  std::vector<PartitionId> slots_;      // slot mode: 2 inline ids/vertex
  std::vector<PartitionId> arena_;      // slot mode spill blocks
};

}  // namespace dne

#endif  // DNE_PARTITION_DNE_COMPACT_PART_SETS_H_
