// XtraPuLP-like [42]: label propagation grown from BFS seeds (no random
// initial allocation) with edge-aware balancing, converted to edge
// partitions.
#ifndef DNE_PARTITION_XTRAPULP_PARTITIONER_H_
#define DNE_PARTITION_XTRAPULP_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace dne {

class XtraPulpPartitioner : public Partitioner {
 public:
  explicit XtraPulpPartitioner(int max_iterations = 20,
                               std::uint64_t seed = 1)
      : max_iterations_(max_iterations), seed_(seed) {}

  std::string name() const override { return "xtrapulp"; }

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  int max_iterations_;
  std::uint64_t seed_;
};

}  // namespace dne

#endif  // DNE_PARTITION_XTRAPULP_PARTITIONER_H_
