// DynamicEdgePartitioner: the paper's future-work direction ("the extension
// to more complicated graph structures, such as dynamic graphs [21]") —
// maintains a high-quality edge partition under a stream of edge insertions
// without re-running the offline algorithm.
//
// Design (Leopard-style [21], adapted to the NE family): the initial
// partition comes from any offline method (Distributed NE by default); new
// edges are placed greedily against the maintained vertex replica sets with
// a capacity guard, which is exactly the expansion heuristic's edge-
// allocation rule applied online. An optional repair pass re-establishes
// the alpha balance bound after bursts.
#ifndef DNE_PARTITION_DYNAMIC_PARTITIONER_H_
#define DNE_PARTITION_DYNAMIC_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/graph.h"
#include "partition/edge_partition.h"
#include "partition/replica_table.h"

namespace dne {

struct DynamicPartitionerOptions {
  /// Balance slack for the online capacity guard.
  double alpha = 1.1;
  std::uint64_t seed = 1;
};

class DynamicEdgePartitioner {
 public:
  /// Adopts an existing partition of `g` as the starting state. The graph
  /// is only read during construction; afterwards the partitioner is
  /// self-contained and edges may reference brand-new vertex ids.
  DynamicEdgePartitioner(const Graph& g, const EdgePartition& initial,
                         const DynamicPartitionerOptions& options);

  /// Starts empty with `num_partitions` partitions (pure online mode).
  DynamicEdgePartitioner(std::uint32_t num_partitions,
                         const DynamicPartitionerOptions& options);

  /// Places a new edge and returns its partition. Placement rule (the
  /// expansion allocation heuristic, online):
  ///   1. partitions containing BOTH endpoints -> least-loaded (free move,
  ///      Condition (5));
  ///   2. else partitions containing one endpoint -> least-loaded;
  ///   3. else the globally least-loaded partition.
  /// A partition at its capacity limit is skipped at every step.
  PartitionId AddEdge(VertexId u, VertexId v);

  std::uint32_t num_partitions() const {
    return static_cast<std::uint32_t>(load_.size());
  }
  std::uint64_t num_edges() const { return total_edges_; }
  const std::vector<std::uint64_t>& load() const { return load_; }

  /// Current replication factor over all vertices seen so far.
  double CurrentReplicationFactor() const;

  /// Current edge balance (max/mean load).
  double CurrentEdgeBalance() const;

  /// Share of inserted edges that were "free" (both endpoints already in
  /// the chosen partition) — the online analogue of the two-hop ratio.
  double FreeInsertionShare() const;

  /// Approximate resident bytes of the maintained state (replica sets +
  /// loads), for streaming peak-memory accounting.
  std::size_t MemoryBytes() const {
    return replicas_.MemoryBytes() +
           load_.capacity() * sizeof(std::uint64_t);
  }

 private:
  PartitionId PlaceEdge(VertexId u, VertexId v);
  void EnsureVertex(VertexId v);

  DynamicPartitionerOptions options_;
  ReplicaTable replicas_;
  std::vector<std::uint64_t> load_;
  std::uint64_t total_edges_ = 0;
  std::uint64_t free_insertions_ = 0;
  std::uint64_t inserted_edges_ = 0;
  VertexId max_vertex_ = 0;
};

}  // namespace dne

#endif  // DNE_PARTITION_DYNAMIC_PARTITIONER_H_
