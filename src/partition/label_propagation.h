// Shared label-propagation engine behind the Spinner [36] and XtraPuLP [42]
// vertex partitioners.
#ifndef DNE_PARTITION_LABEL_PROPAGATION_H_
#define DNE_PARTITION_LABEL_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace dne {

struct LabelPropagationOptions {
  /// Maximum refinement sweeps.
  int max_iterations = 20;
  /// Stop when fewer than this fraction of vertices changed label in a sweep.
  double convergence_fraction = 0.001;
  /// Per-partition capacity slack (on the balanced resource).
  double capacity_slack = 1.05;
  /// Balance vertices (Spinner) or edges-incident (PuLP-style) per partition.
  bool balance_edges = false;
  /// true: random initial labels (Spinner). false: labels grown from BFS
  /// seeds, "without initial random allocation" (XtraPuLP).
  bool random_init = true;
  std::uint64_t seed = 1;
};

/// Runs capacity-aware label propagation and returns a per-vertex partition
/// label in [0, num_partitions).
std::vector<PartitionId> RunLabelPropagation(
    const Graph& g, std::uint32_t num_partitions,
    const LabelPropagationOptions& options);

}  // namespace dne

#endif  // DNE_PARTITION_LABEL_PROPAGATION_H_
