// ReplicaTable: per-vertex partition sets A(v) maintained by the greedy and
// streaming partitioners (Oblivious, HDRF, Ginger, SNE).
#ifndef DNE_PARTITION_REPLICA_TABLE_H_
#define DNE_PARTITION_REPLICA_TABLE_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/types.h"

namespace dne {

/// Sorted small-vector set of partitions per vertex. Partition counts in the
/// paper's experiments are <= 1024, and per-vertex replica sets are tiny (the
/// replication factor itself!), so sorted vectors beat hash sets by a wide
/// margin in both space and time.
class ReplicaTable {
 public:
  explicit ReplicaTable(VertexId num_vertices = 0) : sets_(num_vertices) {}

  /// Grows the table so that vertex v is addressable (streaming callers see
  /// the vertex universe only as edges arrive). Never shrinks.
  void EnsureVertex(VertexId v) {
    if (v >= sets_.size()) sets_.resize(v + 1);
  }

  VertexId NumVertices() const { return sets_.size(); }

  bool Contains(VertexId v, PartitionId p) const {
    const auto& s = sets_[v];
    return std::binary_search(s.begin(), s.end(), p);
  }

  /// Inserts p into A(v); returns true if newly added.
  bool Add(VertexId v, PartitionId p) {
    auto& s = sets_[v];
    auto it = std::lower_bound(s.begin(), s.end(), p);
    if (it != s.end() && *it == p) return false;
    s.insert(it, p);
    return true;
  }

  const std::vector<PartitionId>& of(VertexId v) const { return sets_[v]; }

  std::size_t TotalReplicas() const {
    std::size_t n = 0;
    for (const auto& s : sets_) n += s.size();
    return n;
  }

  /// Approximate resident bytes (for mem-score accounting).
  std::size_t MemoryBytes() const {
    std::size_t bytes = sets_.capacity() * sizeof(sets_[0]);
    for (const auto& s : sets_) bytes += s.capacity() * sizeof(PartitionId);
    return bytes;
  }

 private:
  std::vector<std::vector<PartitionId>> sets_;
};

}  // namespace dne

#endif  // DNE_PARTITION_REPLICA_TABLE_H_
