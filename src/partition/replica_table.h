// ReplicaTable: per-vertex partition sets A(v) maintained by the greedy and
// streaming partitioners (Oblivious, HDRF, Ginger, SNE, Dynamic).
//
// v2 — no per-vertex heap containers. Two storage modes, chosen from the
// partition count at construction (mirroring dne/compact_part_sets):
//
//  * bitmap mode (1 <= |P| <= 64): one 64-bit word per vertex. Add and
//    Contains are single bit operations, and the union/common iteration the
//    scoring engine runs per edge is word-wise (OR/AND + bit scan) — no
//    materialised candidate vectors.
//  * slot mode (|P| unknown or > 64): kInlineSlots sorted partition ids
//    inline per vertex; the rare set that outgrows them (replica sets are
//    RF-sized, i.e. tiny) moves wholesale to an overflow vector. Union and
//    common iteration merge two sorted spans.
//
// Iteration order is ascending partition id in both modes, which is what
// keeps every candidate-scoring tie-break identical to the legacy full-scan
// scorers. `of(v)` (a contiguous sorted view) is only available in slot
// mode; bitmap-mode callers use the visitors.
#ifndef DNE_PARTITION_REPLICA_TABLE_H_
#define DNE_PARTITION_REPLICA_TABLE_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "common/types.h"
#include "partition/dne/part_set_simd.h"

namespace dne {

class ReplicaTable {
 public:
  /// Largest partition count served by the single-word bitmap mode.
  static constexpr std::uint32_t kBitmapMaxPartitions = 64;
  /// Sorted partition ids stored inline per vertex in slot mode.
  static constexpr std::uint32_t kInlineSlots = 4;

  /// `num_partitions == 0` (the default, and the legacy one-argument form)
  /// selects slot mode, which serves any partition count.
  explicit ReplicaTable(VertexId num_vertices = 0,
                        std::uint32_t num_partitions = 0)
      : bitmap_(num_partitions >= 1 &&
                num_partitions <= kBitmapMaxPartitions) {
    if (bitmap_) {
      bits_.assign(num_vertices, 0);
    } else {
      rows_.assign(num_vertices, Row{});
    }
  }

  /// Grows the table so that vertex v is addressable (streaming callers see
  /// the vertex universe only as edges arrive). Never shrinks; growth is
  /// geometric so per-edge callers stay amortized O(1).
  void EnsureVertex(VertexId v) {
    const VertexId n = NumVertices();
    if (v < n) return;
    const VertexId grown = std::max<VertexId>(v + 1, n + n / 2 + 1);
    if (bitmap_) {
      bits_.resize(grown, 0);
    } else {
      rows_.resize(grown, Row{});
    }
  }

  VertexId NumVertices() const {
    return bitmap_ ? bits_.size() : rows_.size();
  }

  bool Contains(VertexId v, PartitionId p) const {
    if (bitmap_) return (bits_[v] >> p) & 1ULL;
    const Row& r = rows_[v];
    if (r.count <= kInlineSlots) {
      for (std::uint32_t i = 0; i < r.count; ++i) {
        if (r.slots[i] == p) return true;
      }
      return false;
    }
    const std::vector<PartitionId>& o = overflow_[r.slots[0]];
    return std::binary_search(o.begin(), o.end(), p);
  }

  /// Inserts p into A(v); returns true if newly added.
  bool Add(VertexId v, PartitionId p) {
    if (bitmap_) {
      const std::uint64_t mask = 1ULL << p;
      if (bits_[v] & mask) return false;
      bits_[v] |= mask;
      return true;
    }
    return SlotAdd(v, p);
  }

  /// Sorted view of A(v). Slot mode only (bitmap mode has no materialised
  /// id array — use the visitors); the view is invalidated by any Add or
  /// EnsureVertex. Aborts loudly on bitmap-mode misuse — silent UB in
  /// NDEBUG builds is worse than a crash.
  std::span<const PartitionId> of(VertexId v) const {
    if (bitmap_) std::abort();
    return SlotView(v);
  }

  std::size_t SetSize(VertexId v) const {
    if (bitmap_) return static_cast<std::size_t>(std::popcount(bits_[v]));
    return rows_[v].count;
  }

  /// Visits A(u) ∪ A(v) in ascending partition order; fn(p, in_u, in_v)
  /// tells which side(s) contain p. Word-wise in bitmap mode, a sorted-span
  /// merge in slot mode. u == v is allowed (every p reports both flags).
  template <typename Fn>
  void ForEachUnion(VertexId u, VertexId v, Fn&& fn) const {
    if (bitmap_) {
      const std::uint64_t wu = bits_[u];
      const std::uint64_t wv = bits_[v];
      std::uint64_t both = wu | wv;
      while (both != 0) {
        const int b = std::countr_zero(both);
        fn(static_cast<PartitionId>(b), ((wu >> b) & 1ULL) != 0,
           ((wv >> b) & 1ULL) != 0);
        both &= both - 1;
      }
      return;
    }
    const std::span<const PartitionId> su = SlotView(u);
    const std::span<const PartitionId> sv = SlotView(v);
    std::size_t a = 0, b = 0;
    while (a < su.size() && b < sv.size()) {
      if (su[a] < sv[b]) {
        fn(su[a++], true, false);
      } else if (sv[b] < su[a]) {
        fn(sv[b++], false, true);
      } else {
        fn(su[a], true, true);
        ++a;
        ++b;
      }
    }
    while (a < su.size()) fn(su[a++], true, false);
    while (b < sv.size()) fn(sv[b++], false, true);
  }

  /// Visits A(u) ∩ A(v) in ascending partition order (word-wise AND in
  /// bitmap mode, routed through the shared part_set_simd kernel — a
  /// single-word input, so it inlines to the plain scalar bit scan).
  template <typename Fn>
  void ForEachCommon(VertexId u, VertexId v, Fn&& fn) const {
    if (bitmap_) {
      simd::AndScanWords(&bits_[u], &bits_[v], 1, [&fn](std::uint32_t id) {
        fn(static_cast<PartitionId>(id));
      });
      return;
    }
    ForEachUnion(u, v, [&fn](PartitionId p, bool in_u, bool in_v) {
      if (in_u && in_v) fn(p);
    });
  }

  std::size_t TotalReplicas() const {
    std::size_t n = 0;
    if (bitmap_) {
      for (const std::uint64_t w : bits_) {
        n += static_cast<std::size_t>(std::popcount(w));
      }
    } else {
      for (const Row& r : rows_) n += r.count;
    }
    return n;
  }

  /// Approximate resident bytes (for mem-score accounting).
  std::size_t MemoryBytes() const {
    std::size_t bytes = bits_.capacity() * sizeof(std::uint64_t) +
                        rows_.capacity() * sizeof(Row) +
                        overflow_.capacity() * sizeof(overflow_[0]);
    for (const auto& o : overflow_) bytes += o.capacity() * sizeof(PartitionId);
    return bytes;
  }

 private:
  struct Row {
    /// Sorted ids while count <= kInlineSlots; slots[0] is the overflow_
    /// index once the set has spilled.
    PartitionId slots[kInlineSlots] = {};
    std::uint32_t count = 0;
  };

  std::span<const PartitionId> SlotView(VertexId v) const {
    const Row& r = rows_[v];
    if (r.count <= kInlineSlots) return {r.slots, r.count};
    const std::vector<PartitionId>& o = overflow_[r.slots[0]];
    return {o.data(), o.size()};
  }

  bool SlotAdd(VertexId v, PartitionId p) {
    Row& r = rows_[v];
    if (r.count <= kInlineSlots) {
      std::uint32_t i = 0;
      while (i < r.count && r.slots[i] < p) ++i;
      if (i < r.count && r.slots[i] == p) return false;
      if (r.count < kInlineSlots) {
        for (std::uint32_t j = r.count; j > i; --j) {
          r.slots[j] = r.slots[j - 1];
        }
        r.slots[i] = p;
        ++r.count;
        return true;
      }
      // Inline full: the whole set (plus p) moves to the overflow vector.
      std::vector<PartitionId> spilled;
      spilled.reserve(2 * kInlineSlots);
      spilled.assign(r.slots, r.slots + kInlineSlots);
      spilled.insert(spilled.begin() + i, p);
      r.slots[0] = static_cast<PartitionId>(overflow_.size());
      r.count = kInlineSlots + 1;
      overflow_.push_back(std::move(spilled));
      return true;
    }
    std::vector<PartitionId>& o = overflow_[r.slots[0]];
    const auto it = std::lower_bound(o.begin(), o.end(), p);
    if (it != o.end() && *it == p) return false;
    o.insert(it, p);
    ++r.count;
    return true;
  }

  bool bitmap_ = false;
  std::vector<std::uint64_t> bits_;      ///< bitmap mode: one word per vertex
  std::vector<Row> rows_;                ///< slot mode: inline ids per vertex
  std::vector<std::vector<PartitionId>> overflow_;  ///< slot mode spills
};

}  // namespace dne

#endif  // DNE_PARTITION_REPLICA_TABLE_H_
