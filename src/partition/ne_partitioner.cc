#include "partition/ne_partitioner.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <queue>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "core/partitioner_registry.h"

namespace dne {

namespace {

/// Min-heap entry: (D_rest score at push time, vertex). Lazy decrease-key:
/// stale entries are re-pushed with the current score when popped.
struct HeapEntry {
  std::uint64_t score;
  VertexId vertex;
  friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
    return std::tie(a.score, a.vertex) > std::tie(b.score, b.vertex);
  }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

OptionSchema NeSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "expansion seed-vertex RNG seed"),
      OptionSpec::Double("alpha", 1.1, 1.0, 10.0,
                         "balance slack of Eq. (2)")};
}

}  // namespace

Status NePartitioner::PartitionImpl(const Graph& g,
                                    std::uint32_t num_partitions,
                                    const PartitionContext& ctx,
                                    EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (options_.alpha < 1.0) {
    return Status::InvalidArgument("alpha must be >= 1.0");
  }
  const EdgeId num_edges = g.NumEdges();
  const VertexId n = g.NumVertices();
  *out = EdgePartition(num_partitions, num_edges);
  if (num_edges == 0) {
    return Status::OK();
  }

  std::vector<std::uint32_t> rest_degree(n);
  for (VertexId v = 0; v < n; ++v) {
    rest_degree[v] = static_cast<std::uint32_t>(g.degree(v));
  }
  std::vector<bool> allocated(num_edges, false);
  EdgeId total_allocated = 0;

  // Epoch-stamped membership in V(E_p) of the partition under construction.
  std::vector<std::uint32_t> vx_epoch(n, 0);
  std::uint32_t epoch = 0;

  // Deterministic random-vertex source: a hash-shuffled vertex order with a
  // global cursor; a few random probes first keep the choice near-uniform.
  std::vector<VertexId> shuffled(n);
  std::iota(shuffled.begin(), shuffled.end(), VertexId{0});
  const std::uint64_t seed = ctx.EffectiveSeed(options_.seed);
  std::sort(shuffled.begin(), shuffled.end(), [seed](VertexId a, VertexId b) {
    return Mix64(a ^ seed) < Mix64(b ^ seed);
  });
  std::size_t cursor = 0;
  SplitMix64 rng(seed);
  auto next_free_vertex = [&]() -> VertexId {
    for (int probe = 0; probe < 16; ++probe) {
      VertexId v = shuffled[rng.Below(n)];
      if (rest_degree[v] > 0) return v;
    }
    while (cursor < n && rest_degree[shuffled[cursor]] == 0) ++cursor;
    return cursor < n ? shuffled[cursor] : kNoVertex;
  };

  const std::uint64_t base_limit = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(options_.alpha *
                                    static_cast<double>(num_edges) /
                                    static_cast<double>(num_partitions)));

  for (PartitionId p = 0; p < num_partitions; ++p) {
    if (total_allocated == num_edges) break;
    DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
    ctx.ReportProgress("partition", p, num_partitions);
    const bool last = (p + 1 == num_partitions);
    const std::uint64_t limit =
        last ? num_edges : base_limit;  // last partition absorbs the rest
    ++epoch;
    MinHeap boundary;
    std::uint64_t size = 0;

    // Allocates edge `eid` to p and maintains D_rest. Returns false if the
    // partition is full.
    auto allocate_edge = [&](EdgeId eid, VertexId a, VertexId b) {
      allocated[eid] = true;
      out->Set(eid, p);
      --rest_degree[a];
      --rest_degree[b];
      ++total_allocated;
      ++size;
    };

    while (size < limit && total_allocated < num_edges) {
      VertexId v = kNoVertex;
      while (!boundary.empty()) {
        HeapEntry top = boundary.top();
        boundary.pop();
        if (rest_degree[top.vertex] == 0) continue;  // fully allocated
        if (top.score != rest_degree[top.vertex]) {
          boundary.push(HeapEntry{rest_degree[top.vertex], top.vertex});
          continue;  // stale score: reinsert with the current D_rest
        }
        v = top.vertex;
        break;
      }
      if (v == kNoVertex) {
        v = next_free_vertex();
        if (v == kNoVertex) break;  // no free edges anywhere
      }
      vx_epoch[v] = epoch;

      // One-hop allocation: all of v's remaining edges join E_p.
      for (const Adjacency& a : g.neighbors(v)) {
        if (size >= limit) break;
        if (allocated[a.edge]) continue;
        allocate_edge(a.edge, v, a.to);
        const VertexId u = a.to;
        if (vx_epoch[u] != epoch) {
          vx_epoch[u] = epoch;
          // Two-hop allocation (Condition (5)): edges from the new boundary
          // vertex u to any w already in V(E_p) are free of new replicas.
          for (const Adjacency& b : g.neighbors(u)) {
            if (size >= limit) break;
            if (allocated[b.edge] || vx_epoch[b.to] != epoch) continue;
            allocate_edge(b.edge, u, b.to);
          }
          if (rest_degree[u] > 0) {
            boundary.push(HeapEntry{rest_degree[u], u});
          }
        }
      }
    }
  }

  stats_.peak_memory_bytes =
      g.MemoryBytes() + n * (sizeof(std::uint32_t) * 2) + num_edges / 8 +
      n * sizeof(VertexId);
  Status st = out->Validate(g);
  if (!st.ok()) return st;
  return Status::OK();
}

DNE_REGISTER_PARTITIONER(
    ne,
    PartitionerInfo{
        .name = "ne",
        .description = "sequential neighbour expansion (quality gold standard)",
        .paper_order = 90,
        .schema = NeSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          const OptionSchema s = NeSchema();
          NeOptions o;
          o.seed = s.UintOr(c, "seed");
          o.alpha = s.DoubleOr(c, "alpha");
          return std::make_unique<NePartitioner>(o);
        }})

}  // namespace dne
