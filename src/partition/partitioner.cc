#include "partition/partitioner.h"

#include "common/timer.h"

namespace dne {

Status Partitioner::Partition(const Graph& g, std::uint32_t num_partitions,
                              const PartitionContext& ctx,
                              EdgePartition* out) {
  stats_ = PartitionRunStats{};
  Status st = ctx.CheckCancelled();
  WallTimer timer;
  if (st.ok()) {
    st = PartitionImpl(g, num_partitions, ctx, out);
  }
  // Uniform wall-time accounting: every algorithm — including the hash
  // baselines that historically reported 0 — gets the measured time.
  stats_.wall_seconds = timer.Seconds();
  if (ctx.stats_sink != nullptr) {
    ctx.stats_sink->Add(RunStatsSink::Record{name(), stats_, st});
  }
  return st;
}

}  // namespace dne
