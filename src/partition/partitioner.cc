#include "partition/partitioner.h"

// Interface-only TU; anchors the vtable.
namespace dne {}  // namespace dne
