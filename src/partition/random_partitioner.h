// Random (1-D hash) edge partitioning: the simplest scalable baseline.
#ifndef DNE_PARTITION_RANDOM_PARTITIONER_H_
#define DNE_PARTITION_RANDOM_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "partition/partitioner.h"
#include "partition/streaming_partitioner.h"

namespace dne {

/// Assigns each edge to hash(edge) mod |P| — the paper's "Random" baseline.
/// Stateless per edge, so the streaming facet assigns chunks on arrival and
/// reproduces the batch assignment bit-for-bit.
class RandomPartitioner : public Partitioner, public StreamingPartitioner {
 public:
  explicit RandomPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  std::string name() const override { return "random"; }
  StreamingPartitioner* streaming() override { return this; }

  Status BeginStream(std::uint32_t num_partitions,
                     const PartitionContext& ctx) override;
  using StreamingPartitioner::BeginStream;
  Status AddEdges(std::span<const Edge> edges) override;
  Status Finish(EdgePartition* out) override;

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  std::uint64_t seed_;

  bool stream_open_ = false;
  std::uint32_t stream_k_ = 0;
  std::uint64_t stream_seed_ = 0;
  PartitionContext stream_ctx_;
  std::vector<PartitionId> stream_assign_;
};

}  // namespace dne

#endif  // DNE_PARTITION_RANDOM_PARTITIONER_H_
