// Random (1-D hash) edge partitioning: the simplest scalable baseline.
#ifndef DNE_PARTITION_RANDOM_PARTITIONER_H_
#define DNE_PARTITION_RANDOM_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace dne {

/// Assigns each edge to hash(edge) mod |P| — the paper's "Random" baseline.
class RandomPartitioner : public Partitioner {
 public:
  explicit RandomPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  std::string name() const override { return "random"; }
  Status Partition(const Graph& g, std::uint32_t num_partitions,
                   EdgePartition* out) override;
  PartitionRunStats run_stats() const override { return stats_; }

 private:
  std::uint64_t seed_;
  PartitionRunStats stats_;
};

}  // namespace dne

#endif  // DNE_PARTITION_RANDOM_PARTITIONER_H_
