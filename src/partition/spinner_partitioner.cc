#include "partition/spinner_partitioner.h"

#include "core/partitioner_registry.h"
#include "partition/label_propagation.h"
#include "partition/vertex_to_edge.h"

namespace dne {

namespace {
OptionSchema SpinnerSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "random-init and tie-break seed"),
      OptionSpec::Int("iterations", 20, 1, 100000,
                      "label-propagation sweeps")};
}
}  // namespace

Status SpinnerPartitioner::PartitionImpl(const Graph& g,
                                         std::uint32_t num_partitions,
                                         const PartitionContext& ctx,
                                         EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const std::uint64_t seed = ctx.EffectiveSeed(seed_);
  LabelPropagationOptions lp;
  lp.max_iterations = max_iterations_;
  lp.random_init = true;  // Spinner's defining trait: random start
  lp.balance_edges = false;
  lp.seed = seed;
  std::vector<PartitionId> labels =
      RunLabelPropagation(g, num_partitions, lp);
  DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
  *out = VertexToEdgePartition(g, labels, num_partitions, seed);
  // Label propagation keeps the full bidirectional adjacency resident
  // (edges visible from both endpoints — the vertex-partitioning memory
  // profile Fig. 9 highlights) plus label and load arrays.
  stats_.peak_memory_bytes = g.MemoryBytes() +
                             g.NumVertices() * 2 * sizeof(PartitionId) +
                             num_partitions * sizeof(double);
  return Status::OK();
}

DNE_REGISTER_PARTITIONER(
    spinner,
    PartitionerInfo{
        .name = "spinner",
        .description = "capacity-aware label propagation from random labels",
        .paper_order = 110,
        .schema = SpinnerSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          const OptionSchema s = SpinnerSchema();
          return std::make_unique<SpinnerPartitioner>(
              static_cast<int>(s.IntOr(c, "iterations")),
              s.UintOr(c, "seed"));
        }})

}  // namespace dne
