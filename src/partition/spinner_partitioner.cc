#include "partition/spinner_partitioner.h"

#include "common/timer.h"
#include "partition/label_propagation.h"
#include "partition/vertex_to_edge.h"

namespace dne {

Status SpinnerPartitioner::Partition(const Graph& g,
                                     std::uint32_t num_partitions,
                                     EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  WallTimer timer;
  LabelPropagationOptions lp;
  lp.max_iterations = max_iterations_;
  lp.random_init = true;  // Spinner's defining trait: random start
  lp.balance_edges = false;
  lp.seed = seed_;
  std::vector<PartitionId> labels =
      RunLabelPropagation(g, num_partitions, lp);
  *out = VertexToEdgePartition(g, labels, num_partitions, seed_);
  stats_ = PartitionRunStats{};
  stats_.wall_seconds = timer.Seconds();
  // Label propagation keeps the full bidirectional adjacency resident
  // (edges visible from both endpoints — the vertex-partitioning memory
  // profile Fig. 9 highlights) plus label and load arrays.
  stats_.peak_memory_bytes = g.MemoryBytes() +
                             g.NumVertices() * 2 * sizeof(PartitionId) +
                             num_partitions * sizeof(double);
  return Status::OK();
}

}  // namespace dne
