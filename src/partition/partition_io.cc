#include "partition/partition_io.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

namespace dne {

namespace {
constexpr std::uint64_t kPartitionMagic = 0x444e455f50415254ULL;  // DNE_PART
}  // namespace

Status SavePartitionText(const std::string& path,
                         const EdgePartition& partition) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "# " << partition.num_partitions() << " " << partition.num_edges()
      << "\n";
  for (EdgeId e = 0; e < partition.num_edges(); ++e) {
    out << partition.Get(e) << "\n";
  }
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Status LoadPartitionText(const std::string& path, EdgePartition* out) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line.size() < 2 || line[0] != '#') {
    return Status::IOError(path + ": missing header");
  }
  std::istringstream header(line.substr(1));
  std::uint32_t num_partitions = 0;
  std::uint64_t num_edges = 0;
  if (!(header >> num_partitions >> num_edges) || num_partitions == 0) {
    return Status::IOError(path + ": malformed header");
  }
  EdgePartition partition(num_partitions, num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    std::uint32_t p;
    if (!(in >> p)) return Status::IOError(path + ": truncated assignment");
    if (p >= num_partitions) {
      return Status::IOError(path + ": partition id out of range");
    }
    partition.Set(e, p);
  }
  *out = std::move(partition);
  return Status::OK();
}

Status SavePartitionBinary(const std::string& path,
                           const EdgePartition& partition) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  const std::uint64_t magic = kPartitionMagic;
  const std::uint32_t parts = partition.num_partitions();
  const std::uint64_t edges = partition.num_edges();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&parts), sizeof(parts));
  out.write(reinterpret_cast<const char*>(&edges), sizeof(edges));
  out.write(reinterpret_cast<const char*>(partition.assignment().data()),
            static_cast<std::streamsize>(edges * sizeof(PartitionId)));
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Status LoadPartitionBinary(const std::string& path, EdgePartition* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::uint64_t magic = 0, edges = 0;
  std::uint32_t parts = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&parts), sizeof(parts));
  in.read(reinterpret_cast<char*>(&edges), sizeof(edges));
  if (!in || magic != kPartitionMagic || parts == 0) {
    return Status::IOError(path + ": bad magic or header");
  }
  EdgePartition partition(parts, edges);
  in.read(reinterpret_cast<char*>(partition.mutable_assignment().data()),
          static_cast<std::streamsize>(edges * sizeof(PartitionId)));
  if (!in) return Status::IOError(path + ": truncated assignment");
  for (EdgeId e = 0; e < edges; ++e) {
    if (partition.Get(e) >= parts) {
      return Status::IOError(path + ": partition id out of range");
    }
  }
  *out = std::move(partition);
  return Status::OK();
}

Status WritePartitionShards(const std::string& directory, const Graph& g,
                            const EdgePartition& partition) {
  if (partition.num_edges() != g.NumEdges()) {
    return Status::InvalidArgument("partition does not match graph");
  }
  PartitionShardWriter writer(directory, partition.num_partitions());
  DNE_RETURN_IF_ERROR(writer.Open());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    DNE_RETURN_IF_ERROR(writer.Append(g.edge(e), partition.Get(e)));
  }
  return writer.Finish();
}

// ---- PartitionShardWriter ---------------------------------------------------

PartitionShardWriter::PartitionShardWriter(std::string directory,
                                           std::uint32_t num_partitions,
                                           std::size_t buffer_edges,
                                           MemTracker* mem_tracker)
    : directory_(std::move(directory)),
      num_partitions_(num_partitions),
      buffer_edges_(buffer_edges == 0 ? 1 : buffer_edges),
      mem_tracker_(mem_tracker) {}

PartitionShardWriter::~PartitionShardWriter() {
  if (mem_tracker_ != nullptr && tracked_bytes_ > 0) {
    mem_tracker_->Release(0, tracked_bytes_);
  }
}

std::string PartitionShardWriter::ShardPath(std::uint32_t partition) const {
  return directory_ + "/part-" + std::to_string(partition) + ".txt";
}

Status PartitionShardWriter::Open() {
  if (open_) return Status::InvalidArgument("shard writer already open");
  if (num_partitions_ == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    return Status::IOError("cannot create shard directory " + directory_ +
                           ": " + ec.message());
  }
  for (std::uint32_t p = 0; p < num_partitions_; ++p) {
    std::ofstream shard(ShardPath(p), std::ios::trunc);
    if (!shard) {
      return Status::IOError("cannot open shard " + std::to_string(p) +
                             " in " + directory_);
    }
  }
  buffers_.assign(num_partitions_, {});
  for (auto& buffer : buffers_) buffer.reserve(buffer_edges_);
  partition_counts_.assign(num_partitions_, 0);
  edges_written_ = 0;
  if (mem_tracker_ != nullptr) {
    tracked_bytes_ = num_partitions_ * buffer_edges_ * sizeof(Edge);
    mem_tracker_->Allocate(0, tracked_bytes_);
  }
  open_ = true;
  return Status::OK();
}

Status PartitionShardWriter::Flush(std::uint32_t partition) {
  std::vector<Edge>& buffer = buffers_[partition];
  if (buffer.empty()) return Status::OK();
  std::ofstream shard(ShardPath(partition), std::ios::app);
  if (!shard) {
    return Status::IOError("cannot append to shard " +
                           std::to_string(partition) + " in " + directory_);
  }
  std::string lines;
  lines.reserve(buffer.size() * 16);
  for (const Edge& e : buffer) {
    lines += std::to_string(e.src);
    lines += ' ';
    lines += std::to_string(e.dst);
    lines += '\n';
  }
  shard.write(lines.data(), static_cast<std::streamsize>(lines.size()));
  if (!shard) {
    return Status::IOError("shard write failed in " + directory_);
  }
  buffer.clear();
  return Status::OK();
}

Status PartitionShardWriter::Append(const Edge& edge, PartitionId partition) {
  if (!open_) return Status::InvalidArgument("shard writer is not open");
  if (partition >= num_partitions_) {
    return Status::OutOfRange("partition id " + std::to_string(partition) +
                              " out of range");
  }
  buffers_[partition].push_back(edge);
  ++partition_counts_[partition];
  ++edges_written_;
  if (buffers_[partition].size() >= buffer_edges_) {
    return Flush(partition);
  }
  return Status::OK();
}

Status PartitionShardWriter::AppendBatch(std::span<const Edge> edges,
                                         std::span<const PartitionId> parts) {
  if (edges.size() != parts.size()) {
    return Status::InvalidArgument("edge/assignment span size mismatch");
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    DNE_RETURN_IF_ERROR(Append(edges[i], parts[i]));
  }
  return Status::OK();
}

Status PartitionShardWriter::Finish() {
  if (!open_) return Status::InvalidArgument("shard writer is not open");
  open_ = false;
  for (std::uint32_t p = 0; p < num_partitions_; ++p) {
    DNE_RETURN_IF_ERROR(Flush(p));
  }
  if (mem_tracker_ != nullptr && tracked_bytes_ > 0) {
    mem_tracker_->Release(0, tracked_bytes_);
    tracked_bytes_ = 0;
  }
  return Status::OK();
}

}  // namespace dne
