#include "partition/partition_io.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

namespace dne {

namespace {
constexpr std::uint64_t kPartitionMagic = 0x444e455f50415254ULL;  // DNE_PART
}  // namespace

Status SavePartitionText(const std::string& path,
                         const EdgePartition& partition) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "# " << partition.num_partitions() << " " << partition.num_edges()
      << "\n";
  for (EdgeId e = 0; e < partition.num_edges(); ++e) {
    out << partition.Get(e) << "\n";
  }
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Status LoadPartitionText(const std::string& path, EdgePartition* out) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line.size() < 2 || line[0] != '#') {
    return Status::IOError(path + ": missing header");
  }
  std::istringstream header(line.substr(1));
  std::uint32_t num_partitions = 0;
  std::uint64_t num_edges = 0;
  if (!(header >> num_partitions >> num_edges) || num_partitions == 0) {
    return Status::IOError(path + ": malformed header");
  }
  EdgePartition partition(num_partitions, num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    std::uint32_t p;
    if (!(in >> p)) return Status::IOError(path + ": truncated assignment");
    if (p >= num_partitions) {
      return Status::IOError(path + ": partition id out of range");
    }
    partition.Set(e, p);
  }
  *out = std::move(partition);
  return Status::OK();
}

Status SavePartitionBinary(const std::string& path,
                           const EdgePartition& partition) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  const std::uint64_t magic = kPartitionMagic;
  const std::uint32_t parts = partition.num_partitions();
  const std::uint64_t edges = partition.num_edges();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&parts), sizeof(parts));
  out.write(reinterpret_cast<const char*>(&edges), sizeof(edges));
  out.write(reinterpret_cast<const char*>(partition.assignment().data()),
            static_cast<std::streamsize>(edges * sizeof(PartitionId)));
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Status LoadPartitionBinary(const std::string& path, EdgePartition* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::uint64_t magic = 0, edges = 0;
  std::uint32_t parts = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&parts), sizeof(parts));
  in.read(reinterpret_cast<char*>(&edges), sizeof(edges));
  if (!in || magic != kPartitionMagic || parts == 0) {
    return Status::IOError(path + ": bad magic or header");
  }
  EdgePartition partition(parts, edges);
  in.read(reinterpret_cast<char*>(partition.mutable_assignment().data()),
          static_cast<std::streamsize>(edges * sizeof(PartitionId)));
  if (!in) return Status::IOError(path + ": truncated assignment");
  for (EdgeId e = 0; e < edges; ++e) {
    if (partition.Get(e) >= parts) {
      return Status::IOError(path + ": partition id out of range");
    }
  }
  *out = std::move(partition);
  return Status::OK();
}

Status WritePartitionShards(const std::string& directory, const Graph& g,
                            const EdgePartition& partition) {
  if (partition.num_edges() != g.NumEdges()) {
    return Status::InvalidArgument("partition does not match graph");
  }
  std::vector<std::ofstream> shards;
  shards.reserve(partition.num_partitions());
  for (std::uint32_t p = 0; p < partition.num_partitions(); ++p) {
    shards.emplace_back(directory + "/part-" + std::to_string(p) + ".txt");
    if (!shards.back()) {
      return Status::IOError("cannot open shard " + std::to_string(p) +
                             " in " + directory);
    }
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.edge(e);
    shards[partition.Get(e)] << ed.src << " " << ed.dst << "\n";
  }
  for (auto& s : shards) {
    if (!s) return Status::IOError("shard write failed in " + directory);
  }
  return Status::OK();
}

}  // namespace dne
