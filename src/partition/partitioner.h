// Partitioner: the public interface every edge-partitioning algorithm
// implements (the paper's f : E -> {E_p}, Eq. (2)).
//
// The public entry point is the non-virtual Partition(), a template method
// that resets the run stats, times the run, forwards to the algorithm's
// PartitionImpl(), stamps the measured wall time into the stats (uniformly,
// for every algorithm — hash partitioners included) and publishes the record
// to the context's RunStatsSink. Algorithms only implement PartitionImpl()
// and fill the stats fields they actually know (sim time, comm bytes, peak
// memory, supersteps).
#ifndef DNE_PARTITION_PARTITIONER_H_
#define DNE_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/partition_context.h"
#include "graph/graph.h"
#include "partition/edge_partition.h"

namespace dne {

class StreamingPartitioner;  // partition/streaming_partitioner.h

/// Performance/footprint numbers a partitioner reports after a run. The
/// wall_seconds field is always populated by the Partition() harness; the
/// distributed algorithms (DNE, multilevel, LP, Sheep) additionally fill the
/// simulated-cluster fields.
struct PartitionRunStats {
  double wall_seconds = 0.0;      ///< measured wall-clock partitioning time
  double sim_seconds = 0.0;       ///< CostModel time on the simulated cluster
  std::uint64_t comm_bytes = 0;   ///< cross-rank traffic during partitioning
  std::uint64_t supersteps = 0;   ///< BSP iterations executed
  std::uint64_t peak_memory_bytes = 0;  ///< cluster-wide high-water mark
  /// Mem score as defined in Sec. 7.3: peak bytes / |E|.
  double MemScore(std::uint64_t num_edges) const {
    return num_edges == 0 ? 0.0
                          : static_cast<double>(peak_memory_bytes) /
                                static_cast<double>(num_edges);
  }
};

/// Uniform per-run stats collection across algorithms: hand one sink to a
/// PartitionContext, run any number of partitioners, read the records back.
class RunStatsSink {
 public:
  struct Record {
    std::string partitioner;   ///< Partitioner::name() of the run
    PartitionRunStats stats;   ///< wall time always populated
    Status status;             ///< outcome of the run
  };

  void Add(Record record) { records_.push_back(std::move(record)); }
  const std::vector<Record>& records() const { return records_; }
  const Record* last() const {
    return records_.empty() ? nullptr : &records_.back();
  }
  void Clear() { records_.clear(); }

 private:
  std::vector<Record> records_;
};

/// Abstract |P|-way edge partitioner.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Short identifier, e.g. "dne", "hdrf", "grid".
  virtual std::string name() const = 0;

  /// Partitions g into num_partitions edge sets under the given run
  /// context. Implementations must leave *out in a Validate()-clean state
  /// on OK. Non-virtual: resets + times the run and publishes stats.
  Status Partition(const Graph& g, std::uint32_t num_partitions,
                   const PartitionContext& ctx, EdgePartition* out);

  /// Convenience overload with a default (inert) context.
  Status Partition(const Graph& g, std::uint32_t num_partitions,
                   EdgePartition* out) {
    return Partition(g, num_partitions, PartitionContext{}, out);
  }

  /// Stats of the most recent Partition() call. wall_seconds is populated
  /// for every algorithm by the Partition() harness.
  PartitionRunStats run_stats() const { return stats_; }

  /// The streaming facet of this algorithm, or nullptr if it only supports
  /// batch partitioning. Never owning; valid for this object's lifetime.
  virtual StreamingPartitioner* streaming() { return nullptr; }

 protected:
  /// The algorithm. May fill every stats_ field except wall_seconds (the
  /// harness overwrites it with the measured time).
  virtual Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                               const PartitionContext& ctx,
                               EdgePartition* out) = 0;

  PartitionRunStats stats_;
};

}  // namespace dne

#endif  // DNE_PARTITION_PARTITIONER_H_
