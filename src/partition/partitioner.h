// Partitioner: the public interface every edge-partitioning algorithm
// implements (the paper's f : E -> {E_p}, Eq. (2)).
#ifndef DNE_PARTITION_PARTITIONER_H_
#define DNE_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "graph/graph.h"
#include "partition/edge_partition.h"

namespace dne {

/// Performance/footprint numbers a partitioner reports after a run. Hash
/// partitioners fill only the trivially-known fields; the distributed
/// algorithms (DNE, multilevel, LP, Sheep) fill all of them.
struct PartitionRunStats {
  double wall_seconds = 0.0;      ///< measured wall-clock partitioning time
  double sim_seconds = 0.0;       ///< CostModel time on the simulated cluster
  std::uint64_t comm_bytes = 0;   ///< cross-rank traffic during partitioning
  std::uint64_t supersteps = 0;   ///< BSP iterations executed
  std::uint64_t peak_memory_bytes = 0;  ///< cluster-wide high-water mark
  /// Mem score as defined in Sec. 7.3: peak bytes / |E|.
  double MemScore(std::uint64_t num_edges) const {
    return num_edges == 0 ? 0.0
                          : static_cast<double>(peak_memory_bytes) /
                                static_cast<double>(num_edges);
  }
};

/// Abstract |P|-way edge partitioner.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Short identifier, e.g. "dne", "hdrf", "grid".
  virtual std::string name() const = 0;

  /// Partitions g into num_partitions edge sets. Implementations must leave
  /// *out in a Validate()-clean state on OK.
  virtual Status Partition(const Graph& g, std::uint32_t num_partitions,
                           EdgePartition* out) = 0;

  /// Stats of the most recent Partition() call.
  virtual PartitionRunStats run_stats() const { return PartitionRunStats{}; }
};

}  // namespace dne

#endif  // DNE_PARTITION_PARTITIONER_H_
