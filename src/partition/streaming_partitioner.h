// StreamingPartitioner: one-pass chunked edge ingestion as a first-class
// scenario. A caller opens a stream for |P| partitions, feeds edges in any
// number of chunks (without ever materialising a Graph), and collects an
// EdgePartition indexed by arrival order:
//
//   StreamingPartitioner* s = partitioner->streaming();
//   s->BeginStream(k, ctx);
//   while (more edges) s->AddEdges(chunk);
//   s->Finish(&partition);   // partition.Get(i) = i-th streamed edge
//
// Two implementation families exist behind the same interface: the online
// methods (random, grid, oblivious, hdrf, sne, dynamic) decide placements as
// chunks arrive and hold only per-vertex state, while the degree-dependent
// hash methods (dbh, hybrid, ginger) buffer the stream and place edges at
// Finish() once the final degrees are known — exactly reproducing their
// batch assignment when fed a graph's canonical edge array.
#ifndef DNE_PARTITION_STREAMING_PARTITIONER_H_
#define DNE_PARTITION_STREAMING_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/status.h"
#include "common/types.h"
#include "core/partition_context.h"
#include "partition/edge_partition.h"

namespace dne {

class Graph;

/// Rough resident bytes of an unordered_map<VertexId, uint64_t> with
/// `entries` nodes (key + value + ~2 pointers of node/bucket overhead) —
/// shared by the degree-buffering hash partitioners' streaming peak-memory
/// accounting so the estimate cannot drift between them.
inline std::size_t ApproxDegreeMapBytes(std::size_t entries) {
  return entries *
         (sizeof(VertexId) + sizeof(std::uint64_t) + 2 * sizeof(void*));
}

class StreamingPartitioner {
 public:
  virtual ~StreamingPartitioner() = default;

  /// Opens a stream for num_partitions partitions under the given context
  /// (seed override, cancellation, progress). Discards any previous stream.
  virtual Status BeginStream(std::uint32_t num_partitions,
                             const PartitionContext& ctx) = 0;

  /// Convenience overload with an inert context.
  Status BeginStream(std::uint32_t num_partitions) {
    return BeginStream(num_partitions, PartitionContext{});
  }

  /// Ingests one chunk. Edges are identified by global arrival index:
  /// the j-th edge of the i-th chunk follows all edges of chunks < i.
  virtual Status AddEdges(std::span<const Edge> edges) = 0;

  /// Closes the stream and emits the assignment, indexed by arrival order.
  /// The stream must be re-opened with BeginStream before further use.
  virtual Status Finish(EdgePartition* out) = 0;
};

/// Streams g's canonical edge array through `streaming` in `num_chunks`
/// roughly equal contiguous chunks — the reference driver for tests, benches
/// and the CLI's chunked-ingestion mode. The result is indexed by EdgeId
/// (arrival order == canonical order), so it is Validate()-comparable with
/// the batch path.
Status StreamPartitionGraph(StreamingPartitioner* streaming, const Graph& g,
                            std::uint32_t num_partitions, int num_chunks,
                            const PartitionContext& ctx, EdgePartition* out);

}  // namespace dne

#endif  // DNE_PARTITION_STREAMING_PARTITIONER_H_
