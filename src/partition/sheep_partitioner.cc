#include "partition/sheep_partitioner.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/partitioner_registry.h"

namespace dne {

namespace {

OptionSchema SheepSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "reserved (sheep is order-deterministic)")};
}

// Union-find with path halving, used for elimination-tree construction.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), VertexId{0});
  }
  VertexId Find(VertexId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Link(VertexId child_root, VertexId new_root) {
    parent_[child_root] = new_root;
  }

 private:
  std::vector<VertexId> parent_;
};

}  // namespace

std::vector<VertexId> SheepPartitioner::BuildEliminationTree(
    const Graph& g, const std::vector<std::uint32_t>& rank) {
  // Liu's elimination-tree algorithm: process vertices in rank order; each
  // lower-ranked neighbour's current tree root becomes a child of v.
  const VertexId n = g.NumVertices();
  std::vector<VertexId> by_rank(n);
  for (VertexId v = 0; v < n; ++v) by_rank[rank[v]] = v;

  std::vector<VertexId> parent(n, kNoVertex);
  DisjointSet ds(n);
  for (VertexId r = 0; r < n; ++r) {
    const VertexId v = by_rank[r];
    for (const Adjacency& a : g.neighbors(v)) {
      if (rank[a.to] >= rank[v]) continue;
      VertexId root = ds.Find(a.to);
      if (root != v) {
        parent[root] = v;
        ds.Link(root, v);
      }
    }
  }
  return parent;
}

Status SheepPartitioner::PartitionImpl(const Graph& g,
                                       std::uint32_t num_partitions,
                                       const PartitionContext& ctx,
                                       EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const VertexId n = g.NumVertices();
  const EdgeId m = g.NumEdges();

  // 1. Degree ordering (Sheep's parallel sort stage): ascending degree, ties
  //    by id. The low-degree fringe is eliminated first; hubs end near roots.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&g](VertexId a, VertexId b) {
    const std::size_t da = g.degree(a), db = g.degree(b);
    return da != db ? da < db : a < b;
  });
  std::vector<std::uint32_t> rank(n);
  for (VertexId i = 0; i < n; ++i) {
    rank[order[i]] = static_cast<std::uint32_t>(i);
  }

  DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
  ctx.ReportProgress("stage", 1, 4);

  // 2. Elimination tree.
  std::vector<VertexId> parent = BuildEliminationTree(g, rank);
  DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
  ctx.ReportProgress("stage", 2, 4);

  // 3. Map each edge onto the tree node of its lower-ranked endpoint (the
  //    vertex whose elimination consumes the edge); accumulate node weights.
  std::vector<std::uint64_t> weight(n, 0);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& ed = g.edge(e);
    const VertexId node = rank[ed.src] < rank[ed.dst] ? ed.src : ed.dst;
    ++weight[node];
  }

  // 4. Tree partitioning by subtree accumulation: walk in rank order
  //    (children strictly precede parents); whenever the weight pending
  //    under v reaches |E|/|P|, cut v's pending subtree into a new part and
  //    stop propagating its weight upward.
  const std::uint64_t target = std::max<std::uint64_t>(1, m / num_partitions);
  std::vector<std::uint64_t> acc(n, 0);
  std::vector<PartitionId> cut_part(n, kNoPartition);
  PartitionId next_part = 0;
  for (VertexId r = 0; r < n; ++r) {
    const VertexId v = order[r];
    acc[v] += weight[v];
    if (acc[v] >= target && next_part + 1 < num_partitions) {
      cut_part[v] = next_part++;
      continue;
    }
    if (parent[v] != kNoVertex) acc[parent[v]] += acc[v];
  }

  // 5. Resolve per-vertex parts top-down: parents have higher rank, so a
  //    reverse-rank sweep sees every parent before its children. A vertex
  //    takes its own cut if present, else inherits; uncut roots take the
  //    last part.
  std::vector<PartitionId> vertex_part(n, kNoPartition);
  for (VertexId i = n; i-- > 0;) {
    const VertexId v = order[i];
    if (cut_part[v] != kNoPartition) {
      vertex_part[v] = cut_part[v];
    } else if (parent[v] != kNoVertex) {
      vertex_part[v] = vertex_part[parent[v]];
    } else {
      vertex_part[v] = num_partitions - 1;
    }
  }

  DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
  ctx.ReportProgress("stage", 3, 4);

  // 6. Edge partition: each edge follows its tree node.
  *out = EdgePartition(num_partitions, m);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& ed = g.edge(e);
    const VertexId node = rank[ed.src] < rank[ed.dst] ? ed.src : ed.dst;
    out->Set(e, vertex_part[node]);
  }

  ctx.ReportProgress("stage", 4, 4);
  // Sheep keeps the graph, the elimination tree and several words of
  // per-vertex bookkeeping resident — the mem profile Fig. 9 reports.
  stats_.peak_memory_bytes =
      g.MemoryBytes() +
      n * (sizeof(VertexId) * 3 + sizeof(std::uint64_t) * 2);
  return Status::OK();
}

DNE_REGISTER_PARTITIONER(
    sheep,
    PartitionerInfo{
        .name = "sheep",
        .description = "elimination-tree translation + balanced subtree cuts",
        .paper_order = 130,
        .schema = SheepSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          return std::make_unique<SheepPartitioner>(
              SheepSchema().UintOr(c, "seed"));
        }})

}  // namespace dne
