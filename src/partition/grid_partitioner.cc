#include "partition/grid_partitioner.h"

#include "common/hash.h"
#include "common/timer.h"

namespace dne {

void GridPartitioner::GridShape(std::uint32_t num_partitions,
                                std::uint32_t* rows, std::uint32_t* cols) {
  std::uint32_t r = 1;
  for (std::uint32_t d = 1;
       static_cast<std::uint64_t>(d) * d <= num_partitions; ++d) {
    if (num_partitions % d == 0) r = d;
  }
  *rows = r;
  *cols = num_partitions / r;
}

Status GridPartitioner::Partition(const Graph& g,
                                  std::uint32_t num_partitions,
                                  EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  WallTimer timer;
  std::uint32_t rows, cols;
  GridShape(num_partitions, &rows, &cols);
  *out = EdgePartition(num_partitions, g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.edge(e);
    const std::uint32_t r = HashVertex(ed.src, seed_) % rows;
    const std::uint32_t c = HashVertex(ed.dst, seed_ + 1) % cols;
    out->Set(e, r * cols + c);
  }
  stats_ = PartitionRunStats{};
  stats_.wall_seconds = timer.Seconds();
  stats_.peak_memory_bytes = g.NumEdges() * sizeof(Edge);
  return Status::OK();
}

}  // namespace dne
