#include "partition/grid_partitioner.h"

#include "common/hash.h"
#include "core/partitioner_registry.h"

namespace dne {

namespace {
constexpr EdgeId kCheckStride = 8192;

PartitionId GridCell(const Edge& ed, std::uint64_t seed, std::uint32_t rows,
                     std::uint32_t cols) {
  const std::uint32_t r = HashVertex(ed.src, seed) % rows;
  const std::uint32_t c = HashVertex(ed.dst, seed + 1) % cols;
  return r * cols + c;
}

OptionSchema GridSchema() {
  return OptionSchema{OptionSpec::Uint("seed", 1, "vertex hash seed")};
}
}  // namespace

void GridPartitioner::GridShape(std::uint32_t num_partitions,
                                std::uint32_t* rows, std::uint32_t* cols) {
  std::uint32_t r = 1;
  for (std::uint32_t d = 1;
       static_cast<std::uint64_t>(d) * d <= num_partitions; ++d) {
    if (num_partitions % d == 0) r = d;
  }
  *rows = r;
  *cols = num_partitions / r;
}

Status GridPartitioner::PartitionImpl(const Graph& g,
                                      std::uint32_t num_partitions,
                                      const PartitionContext& ctx,
                                      EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const std::uint64_t seed = ctx.EffectiveSeed(seed_);
  std::uint32_t rows, cols;
  GridShape(num_partitions, &rows, &cols);
  const EdgeId m = g.NumEdges();
  *out = EdgePartition(num_partitions, m);
  for (EdgeId e = 0; e < m; ++e) {
    if (e % kCheckStride == 0) {
      DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
      ctx.ReportProgress("edges", e, m);
    }
    out->Set(e, GridCell(g.edge(e), seed, rows, cols));
  }
  ctx.ReportProgress("edges", m, m);
  stats_.peak_memory_bytes = m * sizeof(Edge);
  return Status::OK();
}

Status GridPartitioner::BeginStream(std::uint32_t num_partitions,
                                    const PartitionContext& ctx) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  stream_open_ = true;
  stream_k_ = num_partitions;
  GridShape(num_partitions, &stream_rows_, &stream_cols_);
  stream_seed_ = ctx.EffectiveSeed(seed_);
  stream_ctx_ = ctx;
  stream_assign_.clear();
  return Status::OK();
}

Status GridPartitioner::AddEdges(std::span<const Edge> edges) {
  if (!stream_open_) {
    return Status::InvalidArgument("AddEdges before BeginStream");
  }
  DNE_RETURN_IF_ERROR(stream_ctx_.CheckCancelled());
  // No per-chunk exact reserve: it would defeat push_back's geometric
  // growth and re-copy the whole assignment every chunk.
  for (const Edge& ed : edges) {
    stream_assign_.push_back(
        GridCell(ed, stream_seed_, stream_rows_, stream_cols_));
  }
  stream_ctx_.ReportProgress("edges", stream_assign_.size(), 0);
  return Status::OK();
}

Status GridPartitioner::Finish(EdgePartition* out) {
  if (!stream_open_) {
    return Status::InvalidArgument("Finish before BeginStream");
  }
  stream_open_ = false;
  const std::uint64_t m = stream_assign_.size();
  stream_ctx_.ReportProgress("edges", m, m);
  stats_.peak_memory_bytes = stream_assign_.capacity() * sizeof(PartitionId);
  *out = EdgePartition(stream_k_, std::move(stream_assign_));
  stream_assign_.clear();
  return Status::OK();
}

DNE_REGISTER_PARTITIONER(
    grid,
    PartitionerInfo{
        .name = "grid",
        .description = "2-D grid hashing, replicas confined to row+column",
        .paper_order = 20,
        .schema = GridSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          return std::make_unique<GridPartitioner>(
              GridSchema().UintOr(c, "seed"));
        },
        .streaming = true})

}  // namespace dne
