#include "partition/random_partitioner.h"

#include "common/hash.h"
#include "core/partitioner_registry.h"

namespace dne {

namespace {
// Cooperative-cancellation poll interval for tight per-edge loops.
constexpr EdgeId kCheckStride = 8192;

OptionSchema RandomSchema() {
  return OptionSchema{OptionSpec::Uint("seed", 1, "edge hash seed")};
}
}  // namespace

Status RandomPartitioner::PartitionImpl(const Graph& g,
                                        std::uint32_t num_partitions,
                                        const PartitionContext& ctx,
                                        EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const std::uint64_t seed = ctx.EffectiveSeed(seed_);
  const EdgeId m = g.NumEdges();
  *out = EdgePartition(num_partitions, m);
  for (EdgeId e = 0; e < m; ++e) {
    if (e % kCheckStride == 0) {
      DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
      ctx.ReportProgress("edges", e, m);
    }
    const Edge& ed = g.edge(e);
    out->Set(e, static_cast<PartitionId>(HashEdge(ed.src, ed.dst, seed) %
                                         num_partitions));
  }
  ctx.ReportProgress("edges", m, m);
  stats_.peak_memory_bytes = m * sizeof(Edge);
  return Status::OK();
}

Status RandomPartitioner::BeginStream(std::uint32_t num_partitions,
                                      const PartitionContext& ctx) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  stream_open_ = true;
  stream_k_ = num_partitions;
  stream_seed_ = ctx.EffectiveSeed(seed_);
  stream_ctx_ = ctx;
  stream_assign_.clear();
  return Status::OK();
}

Status RandomPartitioner::AddEdges(std::span<const Edge> edges) {
  if (!stream_open_) {
    return Status::InvalidArgument("AddEdges before BeginStream");
  }
  DNE_RETURN_IF_ERROR(stream_ctx_.CheckCancelled());
  // No per-chunk exact reserve: it would defeat push_back's geometric
  // growth and re-copy the whole assignment every chunk.
  for (const Edge& ed : edges) {
    stream_assign_.push_back(static_cast<PartitionId>(
        HashEdge(ed.src, ed.dst, stream_seed_) % stream_k_));
  }
  stream_ctx_.ReportProgress("edges", stream_assign_.size(), 0);
  return Status::OK();
}

Status RandomPartitioner::Finish(EdgePartition* out) {
  if (!stream_open_) {
    return Status::InvalidArgument("Finish before BeginStream");
  }
  stream_open_ = false;
  const std::uint64_t m = stream_assign_.size();
  stream_ctx_.ReportProgress("edges", m, m);
  stats_.peak_memory_bytes = stream_assign_.capacity() * sizeof(PartitionId);
  *out = EdgePartition(stream_k_, std::move(stream_assign_));
  stream_assign_.clear();
  return Status::OK();
}

DNE_REGISTER_PARTITIONER(
    random,
    PartitionerInfo{
        .name = "random",
        .description = "1-D edge hashing, hash(e) mod P (Sec. 7 baseline)",
        .paper_order = 10,
        .schema = RandomSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          return std::make_unique<RandomPartitioner>(
              RandomSchema().UintOr(c, "seed"));
        },
        .streaming = true})

}  // namespace dne
