#include "partition/random_partitioner.h"

#include "common/hash.h"
#include "common/timer.h"

namespace dne {

Status RandomPartitioner::Partition(const Graph& g,
                                    std::uint32_t num_partitions,
                                    EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  WallTimer timer;
  *out = EdgePartition(num_partitions, g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.edge(e);
    out->Set(e, static_cast<PartitionId>(HashEdge(ed.src, ed.dst, seed_) %
                                         num_partitions));
  }
  stats_ = PartitionRunStats{};
  stats_.wall_seconds = timer.Seconds();
  stats_.peak_memory_bytes = g.NumEdges() * sizeof(Edge);
  return Status::OK();
}

}  // namespace dne
