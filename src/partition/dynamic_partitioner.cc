#include "partition/dynamic_partitioner.h"

#include <algorithm>

namespace dne {

namespace {
// The replica table needs a vertex universe; dynamic streams may exceed the
// initial graph, so reserve generous headroom and grow by re-construction
// only in EnsureVertex (rare).
constexpr VertexId kInitialHeadroom = 1024;
}  // namespace

DynamicEdgePartitioner::DynamicEdgePartitioner(
    const Graph& g, const EdgePartition& initial,
    const DynamicPartitionerOptions& options)
    : options_(options),
      replicas_(g.NumVertices() + kInitialHeadroom),
      load_(initial.num_partitions(), 0),
      max_vertex_(g.NumVertices() + kInitialHeadroom) {
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.edge(e);
    const PartitionId p = initial.Get(e);
    replicas_.Add(ed.src, p);
    replicas_.Add(ed.dst, p);
    ++load_[p];
    ++total_edges_;
  }
}

DynamicEdgePartitioner::DynamicEdgePartitioner(
    std::uint32_t num_partitions, const DynamicPartitionerOptions& options)
    : options_(options),
      replicas_(kInitialHeadroom),
      load_(num_partitions, 0),
      max_vertex_(kInitialHeadroom) {}

void DynamicEdgePartitioner::EnsureVertex(VertexId v) {
  if (v < max_vertex_) return;
  // ReplicaTable v2 grows geometrically in place (no per-vertex heap
  // containers to rebuild), so the old copy-rebuild is gone.
  replicas_.EnsureVertex(v);
  max_vertex_ = replicas_.NumVertices();
}

PartitionId DynamicEdgePartitioner::PlaceEdge(VertexId u, VertexId v) {
  const std::uint64_t limit = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             options_.alpha * static_cast<double>(total_edges_ + 1) /
             static_cast<double>(load_.size())));
  const auto& au = replicas_.of(u);
  const auto& av = replicas_.of(v);

  PartitionId best = kNoPartition;
  bool best_is_free = false;
  auto consider = [&](PartitionId p, bool is_free) {
    if (load_[p] >= limit) return;
    if (best == kNoPartition || (is_free && !best_is_free) ||
        (is_free == best_is_free && load_[p] < load_[best])) {
      best = p;
      best_is_free = is_free;
    }
  };
  // Rule 1: intersection (free move — no new replica, Condition (5)).
  {
    auto iu = au.begin();
    auto iv = av.begin();
    while (iu != au.end() && iv != av.end()) {
      if (*iu < *iv) {
        ++iu;
      } else if (*iv < *iu) {
        ++iv;
      } else {
        consider(*iu, /*is_free=*/true);
        ++iu;
        ++iv;
      }
    }
  }
  // Rule 2: single-endpoint homes.
  if (best == kNoPartition || !best_is_free) {
    for (PartitionId p : au) consider(p, false);
    for (PartitionId p : av) consider(p, false);
  }
  // Rule 3: global least-loaded (ignoring the limit as the final fallback —
  // the limit itself grows with every insertion, so this stays bounded).
  if (best == kNoPartition) {
    best = 0;
    for (PartitionId p = 1; p < load_.size(); ++p) {
      if (load_[p] < load_[best]) best = p;
    }
    best_is_free = false;
  }
  if (best_is_free) ++free_insertions_;
  return best;
}

PartitionId DynamicEdgePartitioner::AddEdge(VertexId u, VertexId v) {
  EnsureVertex(std::max(u, v));
  const PartitionId p = PlaceEdge(u, v);
  replicas_.Add(u, p);
  replicas_.Add(v, p);
  ++load_[p];
  ++total_edges_;
  ++inserted_edges_;
  return p;
}

double DynamicEdgePartitioner::CurrentReplicationFactor() const {
  std::uint64_t replicas = 0, vertices = 0;
  for (VertexId v = 0; v < max_vertex_; ++v) {
    const std::size_t k = replicas_.of(v).size();
    if (k == 0) continue;
    replicas += k;
    ++vertices;
  }
  return vertices == 0 ? 0.0
                       : static_cast<double>(replicas) /
                             static_cast<double>(vertices);
}

double DynamicEdgePartitioner::CurrentEdgeBalance() const {
  std::uint64_t mx = 0, sum = 0;
  for (std::uint64_t l : load_) {
    mx = std::max(mx, l);
    sum += l;
  }
  if (sum == 0) return 0.0;
  return static_cast<double>(mx) * static_cast<double>(load_.size()) /
         static_cast<double>(sum);
}

double DynamicEdgePartitioner::FreeInsertionShare() const {
  return inserted_edges_ == 0
             ? 0.0
             : static_cast<double>(free_insertions_) /
                   static_cast<double>(inserted_edges_);
}

}  // namespace dne
