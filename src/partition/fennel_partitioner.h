// FENNEL-based edge partitioning [45, 10]: single-pass streaming *vertex*
// placement with the Fennel objective, converted to an edge partition — the
// streaming family's vertex-partitioning representative in the paper's
// related work (Sec. 2.2).
#ifndef DNE_PARTITION_FENNEL_PARTITIONER_H_
#define DNE_PARTITION_FENNEL_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace dne {

struct FennelOptions {
  /// Fennel's gamma exponent in the load penalty (the paper value 1.5).
  double gamma = 1.5;
  /// Capacity slack: a partition may not exceed slack * |V| / |P| vertices.
  double capacity_slack = 1.10;
  std::uint64_t seed = 1;
  /// Reference mode: per-vertex min_element load scans instead of the
  /// LoadTracker (bit-identical; kept as the differential-test oracle).
  bool legacy_scorer = false;
};

/// Streams vertices in a deterministic shuffled order; each is placed at
///   argmax_p |N(v) n V_p| - alpha_f * gamma * |V_p|^{gamma-1},
/// with alpha_f = m * P^{gamma-1} / n^gamma (the Fennel paper's balanced
/// scaling). Edges then follow their endpoints via the random-adjacent rule.
class FennelPartitioner : public Partitioner {
 public:
  explicit FennelPartitioner(const FennelOptions& options = FennelOptions{})
      : options_(options) {}

  std::string name() const override { return "fennel"; }

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  FennelOptions options_;
};

}  // namespace dne

#endif  // DNE_PARTITION_FENNEL_PARTITIONER_H_
