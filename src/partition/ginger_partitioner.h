// Hybrid Ginger (PowerLyra [13]): hybrid hashing followed by Fennel-style
// greedy refinement of the low-degree vertices' placement.
#ifndef DNE_PARTITION_GINGER_PARTITIONER_H_
#define DNE_PARTITION_GINGER_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace dne {

struct GingerOptions {
  /// PowerLyra degree threshold theta: only vertices with degree <= theta
  /// are re-placed (hub edges stay hashed).
  std::size_t degree_threshold = 100;
  /// Refinement sweeps over the low-degree vertices.
  int rounds = 3;
  /// Weight of the Fennel balance penalty.
  double balance_weight = 1.0;
  std::uint64_t seed = 0;
};

/// Refinement objective for moving low-degree vertex v to partition p
/// (Fennel/Ginger): |N(v) in p| - balance_weight * load_penalty(p), where
/// the penalty mixes vertex and edge loads as in the Ginger heuristic.
class GingerPartitioner : public Partitioner {
 public:
  explicit GingerPartitioner(const GingerOptions& options = GingerOptions{})
      : options_(options) {}

  std::string name() const override { return "ginger"; }
  Status Partition(const Graph& g, std::uint32_t num_partitions,
                   EdgePartition* out) override;
  PartitionRunStats run_stats() const override { return stats_; }

 private:
  GingerOptions options_;
  PartitionRunStats stats_;
};

}  // namespace dne

#endif  // DNE_PARTITION_GINGER_PARTITIONER_H_
