// Hybrid Ginger (PowerLyra [13]): hybrid hashing followed by Fennel-style
// greedy refinement of the low-degree vertices' placement.
#ifndef DNE_PARTITION_GINGER_PARTITIONER_H_
#define DNE_PARTITION_GINGER_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "partition/partitioner.h"
#include "partition/streaming_partitioner.h"

namespace dne {

struct GingerOptions {
  /// PowerLyra degree threshold theta: only vertices with degree <= theta
  /// are re-placed (hub edges stay hashed).
  std::size_t degree_threshold = 100;
  /// Refinement sweeps over the low-degree vertices.
  int rounds = 3;
  /// Weight of the Fennel balance penalty.
  double balance_weight = 1.0;
  std::uint64_t seed = 0;
  /// Reference mode: the hand-rolled affinity accumulator instead of the
  /// shared greedy::NeighborAffinity (bit-identical; differential oracle).
  bool legacy_scorer = false;
};

/// Refinement objective for moving low-degree vertex v to partition p
/// (Fennel/Ginger): |N(v) in p| - balance_weight * load_penalty(p), where
/// the penalty mixes vertex and edge loads as in the Ginger heuristic.
///
/// The streaming facet buffers the stream (the refinement needs whole
/// neighbourhoods), rebuilds the graph at Finish(), runs the same home
/// placement + refinement, and emits assignments in arrival order.
class GingerPartitioner : public Partitioner, public StreamingPartitioner {
 public:
  explicit GingerPartitioner(const GingerOptions& options = GingerOptions{})
      : options_(options) {}

  std::string name() const override { return "ginger"; }
  StreamingPartitioner* streaming() override { return this; }

  Status BeginStream(std::uint32_t num_partitions,
                     const PartitionContext& ctx) override;
  using StreamingPartitioner::BeginStream;
  Status AddEdges(std::span<const Edge> edges) override;
  Status Finish(EdgePartition* out) override;

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  /// Hybrid-cut home assignment + Fennel refinement (the algorithm's core),
  /// shared by the batch and streaming paths.
  Status ComputeHomes(const Graph& g, std::uint32_t num_partitions,
                      std::uint64_t seed, const PartitionContext& ctx,
                      std::vector<PartitionId>* home) const;

  GingerOptions options_;

  bool stream_open_ = false;
  std::uint32_t stream_k_ = 0;
  std::uint64_t stream_seed_ = 0;
  PartitionContext stream_ctx_;
  std::vector<Edge> stream_buffer_;
  std::size_t stream_peak_bytes_ = 0;
};

}  // namespace dne

#endif  // DNE_PARTITION_GINGER_PARTITIONER_H_
