// EdgePartition: the output of every edge partitioner — a disjoint cover of
// E by |P| edge sets (Sec. 2.1).
#ifndef DNE_PARTITION_EDGE_PARTITION_H_
#define DNE_PARTITION_EDGE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/graph.h"

namespace dne {

/// Assignment of every canonical edge of a Graph to exactly one partition.
class EdgePartition {
 public:
  EdgePartition() = default;
  EdgePartition(std::uint32_t num_partitions, EdgeId num_edges)
      : num_partitions_(num_partitions),
        assignment_(num_edges, kNoPartition) {}
  /// Adopts a fully built assignment without copying — the streaming
  /// Finish() path, where the arrival-order assignment already exists.
  EdgePartition(std::uint32_t num_partitions,
                std::vector<PartitionId> assignment)
      : num_partitions_(num_partitions), assignment_(std::move(assignment)) {}

  std::uint32_t num_partitions() const { return num_partitions_; }
  EdgeId num_edges() const { return assignment_.size(); }

  PartitionId Get(EdgeId e) const { return assignment_[e]; }
  void Set(EdgeId e, PartitionId p) { assignment_[e] = p; }

  const std::vector<PartitionId>& assignment() const { return assignment_; }
  std::vector<PartitionId>& mutable_assignment() { return assignment_; }

  /// Edge counts per partition (|E_p|).
  std::vector<std::uint64_t> PartitionSizes() const;

  /// Verifies the disjoint-cover invariant: every edge of g is assigned and
  /// all ids are < num_partitions.
  Status Validate(const Graph& g) const;

 private:
  std::uint32_t num_partitions_ = 0;
  std::vector<PartitionId> assignment_;
};

}  // namespace dne

#endif  // DNE_PARTITION_EDGE_PARTITION_H_
