// DynamicStreamPartitioner: adapts DynamicEdgePartitioner (the Leopard-style
// online maintainer, which lives outside the Partitioner hierarchy) to both
// the Partitioner and StreamingPartitioner interfaces, so the dynamic
// placement rule participates in the registry, the CLI, benches and the
// unified chunked-ingestion scenario like every offline algorithm.
#ifndef DNE_PARTITION_STREAMING_ADAPTER_H_
#define DNE_PARTITION_STREAMING_ADAPTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "partition/dynamic_partitioner.h"
#include "partition/partitioner.h"
#include "partition/streaming_partitioner.h"

namespace dne {

/// Registry name: "dynamic". The batch path simply streams the graph's
/// canonical edge array through the online placement rule in one chunk.
class DynamicStreamPartitioner : public Partitioner,
                                 public StreamingPartitioner {
 public:
  explicit DynamicStreamPartitioner(
      const DynamicPartitionerOptions& options = DynamicPartitionerOptions{})
      : options_(options) {}

  std::string name() const override { return "dynamic"; }
  StreamingPartitioner* streaming() override { return this; }

  Status BeginStream(std::uint32_t num_partitions,
                     const PartitionContext& ctx) override;
  using StreamingPartitioner::BeginStream;
  Status AddEdges(std::span<const Edge> edges) override;
  Status Finish(EdgePartition* out) override;

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  DynamicPartitionerOptions options_;

  bool stream_open_ = false;
  std::uint32_t stream_k_ = 0;
  PartitionContext stream_ctx_;
  std::unique_ptr<DynamicEdgePartitioner> stream_state_;
  std::vector<PartitionId> stream_assign_;
};

}  // namespace dne

#endif  // DNE_PARTITION_STREAMING_ADAPTER_H_
