#include "partition/label_propagation.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/hash.h"
#include "common/random.h"

namespace dne {

namespace {

// Multi-source BFS from `num_partitions` hash-chosen seeds; ties go to the
// earlier frontier. Unreached vertices fall back to hashed labels.
std::vector<PartitionId> BfsSeedInit(const Graph& g,
                                     std::uint32_t num_partitions,
                                     std::uint64_t seed) {
  const VertexId n = g.NumVertices();
  std::vector<PartitionId> label(n, kNoPartition);
  std::deque<VertexId> frontier;
  SplitMix64 rng(seed ^ 0xb5026f5aa96619e9ULL);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    // Rejection-sample a distinct seed vertex.
    for (int probe = 0; probe < 64; ++probe) {
      VertexId v = rng.Below(n);
      if (label[v] == kNoPartition) {
        label[v] = p;
        frontier.push_back(v);
        break;
      }
    }
  }
  while (!frontier.empty()) {
    VertexId v = frontier.front();
    frontier.pop_front();
    for (const Adjacency& a : g.neighbors(v)) {
      if (label[a.to] == kNoPartition) {
        label[a.to] = label[v];
        frontier.push_back(a.to);
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (label[v] == kNoPartition) {
      label[v] = static_cast<PartitionId>(HashVertex(v, seed) %
                                          num_partitions);
    }
  }
  return label;
}

}  // namespace

std::vector<PartitionId> RunLabelPropagation(
    const Graph& g, std::uint32_t num_partitions,
    const LabelPropagationOptions& options) {
  const VertexId n = g.NumVertices();
  if (n == 0) return {};
  std::vector<PartitionId> label;
  if (options.random_init) {
    label.resize(n);
    for (VertexId v = 0; v < n; ++v) {
      label[v] = static_cast<PartitionId>(HashVertex(v, options.seed) %
                                          num_partitions);
    }
  } else {
    label = BfsSeedInit(g, num_partitions, options.seed);
  }

  // Resource loads: vertex count (Spinner) or incident-edge count (PuLP).
  std::vector<double> load(num_partitions, 0.0);
  double total_load = 0.0;
  auto weight = [&](VertexId v) {
    return options.balance_edges ? static_cast<double>(g.degree(v)) : 1.0;
  };
  for (VertexId v = 0; v < n; ++v) {
    load[label[v]] += weight(v);
    total_load += weight(v);
  }
  const double capacity = options.capacity_slack * total_load /
                          static_cast<double>(num_partitions);

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  const std::uint64_t seed = options.seed;
  std::sort(order.begin(), order.end(), [seed](VertexId a, VertexId b) {
    return Mix64(a ^ seed) < Mix64(b ^ seed);
  });

  std::vector<double> neighbor_count(num_partitions, 0.0);
  std::vector<PartitionId> touched;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    VertexId moved = 0;
    for (VertexId v : order) {
      if (g.degree(v) == 0) continue;
      touched.clear();
      for (const Adjacency& a : g.neighbors(v)) {
        PartitionId lp = label[a.to];
        if (neighbor_count[lp] == 0.0) touched.push_back(lp);
        neighbor_count[lp] += 1.0;
      }
      const PartitionId cur = label[v];
      PartitionId best = cur;
      // Spinner score: neighbour affinity damped by remaining capacity.
      double best_score = -1.0;
      for (PartitionId p : touched) {
        const double headroom =
            std::max(0.0, 1.0 - load[p] / capacity);
        double score = neighbor_count[p] * headroom;
        if (p == cur) score *= 1.0 + 1e-9;  // stickiness breaks oscillation
        if (score > best_score) {
          best_score = score;
          best = p;
        }
      }
      for (PartitionId p : touched) neighbor_count[p] = 0.0;
      if (best != cur && load[best] + weight(v) <= capacity) {
        load[cur] -= weight(v);
        load[best] += weight(v);
        label[v] = best;
        ++moved;
      }
    }
    if (static_cast<double>(moved) <
        options.convergence_fraction * static_cast<double>(n)) {
      break;
    }
  }
  return label;
}

}  // namespace dne
