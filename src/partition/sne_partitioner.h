// SNE: streaming neighbour expansion [54] — NE restricted to a bounded
// in-memory window of the edge stream, trading quality for memory.
#ifndef DNE_PARTITION_SNE_PARTITIONER_H_
#define DNE_PARTITION_SNE_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "partition/greedy/load_tracker.h"
#include "partition/partitioner.h"
#include "partition/replica_table.h"
#include "partition/streaming_partitioner.h"

namespace dne {

struct SneOptions {
  /// Balance slack alpha of Eq. (2).
  double alpha = 1.1;
  /// Number of stream chunks (the inverse of the memory budget: the window
  /// holds |E|/chunks edges). 8 mimics the paper's "part of the entire graph
  /// on main memory" regime at our scales.
  int chunks = 8;
  std::uint64_t seed = 1;
  /// Reference mode: plain load vector + per-decision min_element scans.
  bool legacy_scorer = false;
};

/// Processes the edge stream chunk by chunk; inside each chunk runs
/// NE-style expansion seeded from vertices already bound to each partition
/// by earlier chunks (a global replica table), honouring global capacities.
///
/// The streaming facet treats every AddEdges() chunk as one expansion
/// window — SNE is the natural chunked-ingestion algorithm. Since the total
/// edge count is unknown mid-stream, per-partition capacity grows with the
/// ingested prefix (alpha * seen / |P|); edges a window cannot place within
/// the current capacity spill to the least-loaded partition, keeping the
/// balance near alpha instead of dumping the stream's tail into one sink.
class SnePartitioner : public Partitioner, public StreamingPartitioner {
 public:
  explicit SnePartitioner(const SneOptions& options = SneOptions{})
      : options_(options) {}

  std::string name() const override { return "sne"; }
  StreamingPartitioner* streaming() override { return this; }

  Status BeginStream(std::uint32_t num_partitions,
                     const PartitionContext& ctx) override;
  using StreamingPartitioner::BeginStream;
  Status AddEdges(std::span<const Edge> edges) override;
  Status Finish(EdgePartition* out) override;

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  /// Resident bytes of the open stream's state (peak-memory accounting).
  std::size_t StreamStateBytes() const;

  SneOptions options_;

  bool stream_open_ = false;
  std::uint32_t stream_k_ = 0;
  PartitionContext stream_ctx_;
  ReplicaTable stream_replicas_;
  LoadTracker stream_loads_;                // engine scorer
  std::vector<std::uint64_t> stream_load_;  // legacy scorer
  PartitionId stream_current_ = 0;
  std::uint64_t stream_seen_ = 0;
  std::vector<PartitionId> stream_assign_;
  std::size_t stream_window_bytes_ = 0;
  std::size_t stream_peak_bytes_ = 0;
};

}  // namespace dne

#endif  // DNE_PARTITION_SNE_PARTITIONER_H_
