// SNE: streaming neighbour expansion [54] — NE restricted to a bounded
// in-memory window of the edge stream, trading quality for memory.
#ifndef DNE_PARTITION_SNE_PARTITIONER_H_
#define DNE_PARTITION_SNE_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace dne {

struct SneOptions {
  /// Balance slack alpha of Eq. (2).
  double alpha = 1.1;
  /// Number of stream chunks (the inverse of the memory budget: the window
  /// holds |E|/chunks edges). 8 mimics the paper's "part of the entire graph
  /// on main memory" regime at our scales.
  int chunks = 8;
  std::uint64_t seed = 1;
};

/// Processes the edge stream chunk by chunk; inside each chunk runs
/// NE-style expansion seeded from vertices already bound to each partition
/// by earlier chunks (a global replica table), honouring global capacities.
class SnePartitioner : public Partitioner {
 public:
  explicit SnePartitioner(const SneOptions& options = SneOptions{})
      : options_(options) {}

  std::string name() const override { return "sne"; }
  Status Partition(const Graph& g, std::uint32_t num_partitions,
                   EdgePartition* out) override;
  PartitionRunStats run_stats() const override { return stats_; }

 private:
  SneOptions options_;
  PartitionRunStats stats_;
};

}  // namespace dne

#endif  // DNE_PARTITION_SNE_PARTITIONER_H_
