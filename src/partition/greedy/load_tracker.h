// LoadTracker: per-partition load counters for the greedy/streaming scorer
// family, replacing the per-edge `std::min_element` scan over all |P| loads.
//
// Loads only ever grow by 1 (one placed edge / vertex at a time), which a
// monotone min-level structure exploits — the same monotonicity idea as
// dne/boundary_queue, applied to load values instead of D_rest scores:
//
//  * Increment(p) is O(1) amortized: a count of the partitions sitting at
//    the current minimum detects when the min level empties; only then are
//    the k loads rescanned for the new minimum. The min of k counters
//    summing to N is <= N/k, so the O(k) rescans amortize to O(1) per
//    increment over any increment sequence.
//  * MinLoad()/MaxLoad() are O(1) reads.
//  * ArgMinPartition() — the *lowest-index* partition at the minimum load,
//    i.e. exactly what `std::min_element` returns — is O(1) amortized: a
//    bitmask over the partitions at the min level is consumed bit by bit
//    between rescans.
//
// Auxiliary state is O(|P|) regardless of how skewed the loads get (an
// SNE-style fill that drives one partition to m/k while the min stays 0
// costs nothing extra). All tie-breaks are index-ascending, matching every
// legacy call site (`std::min_element` and first-strictly-greater argmax
// loops), so swapping the tracker in is bit-identical for the whole
// partitioner family.
#ifndef DNE_PARTITION_GREEDY_LOAD_TRACKER_H_
#define DNE_PARTITION_GREEDY_LOAD_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dne {

class LoadTracker {
 public:
  LoadTracker() = default;
  explicit LoadTracker(std::uint32_t num_partitions) {
    Reset(num_partitions);
  }

  /// Re-initialises for `num_partitions` partitions, all loads zero.
  void Reset(std::uint32_t num_partitions);

  std::uint32_t num_partitions() const {
    return static_cast<std::uint32_t>(loads_.size());
  }

  std::uint64_t load(PartitionId p) const { return loads_[p]; }
  std::uint64_t MinLoad() const { return min_; }
  std::uint64_t MaxLoad() const { return max_; }

  /// load[p] += 1. O(1) amortized.
  void Increment(PartitionId p);

  /// The lowest-index partition whose load equals MinLoad() — bit-identical
  /// to `std::min_element(load.begin(), load.end()) - load.begin()`.
  /// Requires num_partitions() > 0. O(1) amortized.
  PartitionId ArgMinPartition() const;

  /// Approximate resident bytes (for mem-score accounting).
  std::size_t MemoryBytes() const;

 private:
  /// Rescans the loads for the new minimum, its population count and its
  /// bitmask. O(k); runs only when the min level empties.
  void RecomputeMinLevel();

  std::vector<std::uint64_t> loads_;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint32_t count_at_min_ = 0;  ///< partitions whose load == min_

  // "Is at min load" bitmask; bits are only cleared between rescans, so
  // the first-set-bit cursor never moves backwards.
  mutable std::vector<std::uint64_t> min_mask_;
  mutable std::size_t min_mask_cursor_ = 0;
};

}  // namespace dne

#endif  // DNE_PARTITION_GREEDY_LOAD_TRACKER_H_
