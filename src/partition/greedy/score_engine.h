// Candidate-set scoring engine for the one-pass greedy partitioner family
// (HDRF, Oblivious, Ginger, SNE spill path, Fennel).
//
// Every legacy scorer walks all |P| partitions per edge although only the
// endpoint replica sets A(u), A(v) — whose sizes are the replication factor,
// i.e. tiny — plus the least-loaded partition can win the argmax. The engine
// evaluates exactly that candidate set, taking the per-edge cost from
// O(|P|) to O(|A(u)| + |A(v)|) with the LoadTracker closing the balance-only
// case in O(1), and reproduces the legacy result bit for bit:
//
//  * candidates are visited in ascending partition order and compared with
//    the same strict `>` / `<` updates, so index tie-breaks are unchanged;
//  * score expressions are evaluated with the identical operation order, so
//    IEEE rounding is unchanged;
//  * a partition outside the candidate set scores only the balance term,
//    which is monotone non-increasing in its load, so the overall
//    lowest-index argmax provably lies in A(u) ∪ A(v) ∪ {argmin-load}. (The
//    monotonicity argument is exact as long as distinct integer loads map
//    to distinct balance scores, which holds for any lambda > 0 and
//    |E| < ~4.6e15 — comfortably past trillion-edge streams. lambda == 0
//    flattens the balance term entirely; there the closing candidate is
//    partition 0, the legacy scan's first-win tie-break.)
//
// The legacy full-scan scorers stay runnable behind each algorithm's
// `legacy_scorer` option; `tests/greedy_engine_test.cc` holds the
// differential matrix.
//
// Thread contract: the engine's shared state (ReplicaTable + LoadTracker)
// is single-writer by construction — the streaming partitioners consume
// edges strictly sequentially on the caller's thread, and every Best()
// lookup reads state produced by earlier edges on that same thread. None
// of these types are internally synchronized; sharing one across threads
// would also break determinism (assignment depends on processing order),
// so the linter-enforced rule is: one engine per stream, one stream per
// thread.
#ifndef DNE_PARTITION_GREEDY_SCORE_ENGINE_H_
#define DNE_PARTITION_GREEDY_SCORE_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "partition/greedy/load_tracker.h"
#include "partition/replica_table.h"

namespace dne::greedy {

/// HDRF's balance-term epsilon (the published algorithm's constant); shared
/// by the engine and the legacy scorer so the two stay bit-identical.
inline constexpr double kHdrfEps = 1e-3;

/// argmax_p C_rep(p) + C_bal(p) over the candidate set, lowest index on
/// ties — bit-identical to the legacy O(|P|) scan for any stream.
PartitionId HdrfBest(const ReplicaTable& replicas, const LoadTracker& loads,
                     double lambda, VertexId u, VertexId v, double du,
                     double dv);

/// The PowerGraph greedy rules (least-loaded common partition, else
/// least-loaded home of either endpoint, else least-loaded overall) in one
/// pass over A(u) ∪ A(v) — bit-identical to the legacy candidate-vector
/// construction, without materialising it.
PartitionId ObliviousBest(const ReplicaTable& replicas,
                          const LoadTracker& loads, VertexId u, VertexId v);

/// Dense per-partition affinity accumulator with a touched list — the
/// candidate-set half of the Fennel/Ginger vertex scores. Reset once per
/// run (O(|P|)); per vertex the cost is O(degree) to fill and O(touched)
/// to clear.
class NeighborAffinity {
 public:
  void Reset(std::uint32_t num_partitions) {
    values_.assign(num_partitions, 0.0);
    touched_.clear();
  }

  void Add(PartitionId p, double w = 1.0) {
    if (values_[p] == 0.0) touched_.push_back(p);
    values_[p] += w;
  }

  double value(PartitionId p) const { return values_[p]; }
  const std::vector<PartitionId>& touched() const { return touched_; }

  void Clear() {
    for (const PartitionId p : touched_) values_[p] = 0.0;
    touched_.clear();
  }

  std::size_t MemoryBytes() const {
    return values_.capacity() * sizeof(double) +
           touched_.capacity() * sizeof(PartitionId);
  }

 private:
  std::vector<double> values_;
  std::vector<PartitionId> touched_;
};

}  // namespace dne::greedy

#endif  // DNE_PARTITION_GREEDY_SCORE_ENGINE_H_
