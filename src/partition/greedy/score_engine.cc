#include "partition/greedy/score_engine.h"

namespace dne::greedy {

PartitionId HdrfBest(const ReplicaTable& replicas, const LoadTracker& loads,
                     double lambda, VertexId u, VertexId v, double du,
                     double dv) {
  const double theta_u = du / (du + dv);
  const double theta_v = 1.0 - theta_u;
  const double max_load = static_cast<double>(loads.MaxLoad());
  const double spread =
      kHdrfEps + max_load - static_cast<double>(loads.MinLoad());
  // Same initial state and strict `>` update as the legacy scan: scores are
  // all >= 0, so the first candidate always displaces the sentinel and the
  // lowest-index argmax wins.
  double best_score = -1.0;
  PartitionId best = 0;
  const auto eval = [&](PartitionId p, bool in_u, bool in_v) {
    double c_rep = 0.0;
    if (in_u) c_rep += 1.0 + (1.0 - theta_u);
    if (in_v) c_rep += 1.0 + (1.0 - theta_v);
    const double c_bal =
        lambda * (max_load - static_cast<double>(loads.load(p))) / spread;
    const double score = c_rep + c_bal;
    if (score > best_score) {
      best_score = score;
      best = p;
    }
  };
  // Merge the min-load candidate into the ascending union sweep so the
  // visit order matches the legacy index order exactly. lambda == 0 zeroes
  // the balance term, so every partition outside the union ties at 0.0 and
  // the legacy scan keeps the first one — partition 0 — not the argmin.
  const PartitionId pmin = lambda > 0.0 ? loads.ArgMinPartition() : 0;
  bool pmin_done = false;
  replicas.ForEachUnion(u, v, [&](PartitionId p, bool in_u, bool in_v) {
    if (!pmin_done && pmin <= p) {
      if (pmin < p) eval(pmin, false, false);
      pmin_done = true;  // pmin == p is scored with its replica flags below
    }
    eval(p, in_u, in_v);
  });
  if (!pmin_done) eval(pmin, false, false);
  return best;
}

PartitionId ObliviousBest(const ReplicaTable& replicas,
                          const LoadTracker& loads, VertexId u, VertexId v) {
  PartitionId best_common = kNoPartition;
  PartitionId best_union = kNoPartition;
  replicas.ForEachUnion(u, v, [&](PartitionId p, bool in_u, bool in_v) {
    if (best_union == kNoPartition ||
        loads.load(p) < loads.load(best_union)) {
      best_union = p;
    }
    if (in_u && in_v &&
        (best_common == kNoPartition ||
         loads.load(p) < loads.load(best_common))) {
      best_common = p;
    }
  });
  // Rule 1: least-loaded common partition. Rules 2+3 collapse: with no
  // common partition, the union *is* the candidate set whether one or both
  // endpoints have homes. Rule 4: least-loaded overall.
  if (best_common != kNoPartition) return best_common;
  if (best_union != kNoPartition) return best_union;
  return loads.ArgMinPartition();
}

}  // namespace dne::greedy
