#include "partition/greedy/load_tracker.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace dne {

void LoadTracker::Reset(std::uint32_t num_partitions) {
  loads_.assign(num_partitions, 0);
  min_ = 0;
  max_ = 0;
  count_at_min_ = num_partitions;
  min_mask_.assign((static_cast<std::size_t>(num_partitions) + 63) / 64,
                   ~0ULL);
  if (num_partitions % 64 != 0 && !min_mask_.empty()) {
    min_mask_.back() = (1ULL << (num_partitions % 64)) - 1;
  }
  min_mask_cursor_ = 0;
}

void LoadTracker::Increment(PartitionId p) {
  const std::uint64_t old_load = loads_[p]++;
  if (old_load + 1 > max_) max_ = old_load + 1;
  if (old_load == min_) {
    min_mask_[p >> 6] &= ~(1ULL << (p & 63));
    if (--count_at_min_ == 0) RecomputeMinLevel();
  }
}

PartitionId LoadTracker::ArgMinPartition() const {
  // count_at_min_ > 0 is an invariant, so a set bit always exists; bits
  // are only cleared between rescans, so the cursor never moves backwards.
  while (min_mask_[min_mask_cursor_] == 0) ++min_mask_cursor_;
  return static_cast<PartitionId>(
      64 * min_mask_cursor_ + std::countr_zero(min_mask_[min_mask_cursor_]));
}

void LoadTracker::RecomputeMinLevel() {
  min_ = std::numeric_limits<std::uint64_t>::max();
  for (const std::uint64_t l : loads_) min_ = std::min(min_, l);
  std::fill(min_mask_.begin(), min_mask_.end(), 0);
  count_at_min_ = 0;
  for (std::size_t p = 0; p < loads_.size(); ++p) {
    if (loads_[p] == min_) {
      min_mask_[p >> 6] |= 1ULL << (p & 63);
      ++count_at_min_;
    }
  }
  min_mask_cursor_ = 0;
}

std::size_t LoadTracker::MemoryBytes() const {
  return loads_.capacity() * sizeof(std::uint64_t) +
         min_mask_.capacity() * sizeof(std::uint64_t);
}

}  // namespace dne
