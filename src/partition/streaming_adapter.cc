#include "partition/streaming_adapter.h"

#include "core/partitioner_registry.h"
#include "graph/graph.h"

namespace dne {

namespace {
constexpr EdgeId kCheckStride = 8192;

OptionSchema DynamicSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "placement tie-break seed"),
      OptionSpec::Double("alpha", 1.1, 1.0, 10.0,
                         "balance slack for the online capacity guard")};
}
}  // namespace

Status DynamicStreamPartitioner::PartitionImpl(const Graph& g,
                                               std::uint32_t num_partitions,
                                               const PartitionContext& ctx,
                                               EdgePartition* out) {
  DNE_RETURN_IF_ERROR(
      StreamPartitionGraph(this, g, num_partitions, /*num_chunks=*/1, ctx,
                           out));
  stats_.peak_memory_bytes =
      g.NumEdges() * sizeof(PartitionId) +
      g.NumVertices() * sizeof(std::vector<PartitionId>);
  return Status::OK();
}

Status DynamicStreamPartitioner::BeginStream(std::uint32_t num_partitions,
                                             const PartitionContext& ctx) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  stream_open_ = true;
  stream_k_ = num_partitions;
  stream_ctx_ = ctx;
  DynamicPartitionerOptions o = options_;
  o.seed = ctx.EffectiveSeed(options_.seed);
  stream_state_ = std::make_unique<DynamicEdgePartitioner>(num_partitions, o);
  stream_assign_.clear();
  return Status::OK();
}

Status DynamicStreamPartitioner::AddEdges(std::span<const Edge> edges) {
  if (!stream_open_) {
    return Status::InvalidArgument("AddEdges before BeginStream");
  }
  std::size_t i = 0;
  for (const Edge& ed : edges) {
    if (i++ % kCheckStride == 0) {
      DNE_RETURN_IF_ERROR(stream_ctx_.CheckCancelled());
      stream_ctx_.ReportProgress("edges", stream_assign_.size(), 0);
    }
    stream_assign_.push_back(stream_state_->AddEdge(ed.src, ed.dst));
  }
  return Status::OK();
}

Status DynamicStreamPartitioner::Finish(EdgePartition* out) {
  if (!stream_open_) {
    return Status::InvalidArgument("Finish before BeginStream");
  }
  stream_open_ = false;
  const std::uint64_t m = stream_assign_.size();
  stream_ctx_.ReportProgress("edges", m, m);
  stats_.peak_memory_bytes =
      stream_assign_.capacity() * sizeof(PartitionId) +
      (stream_state_ != nullptr ? stream_state_->MemoryBytes() : 0);
  *out = EdgePartition(stream_k_, std::move(stream_assign_));
  stream_state_.reset();
  stream_assign_.clear();
  return Status::OK();
}

DNE_REGISTER_PARTITIONER(
    dynamic,
    PartitionerInfo{
        .name = "dynamic",
        .description = "online greedy placement (Leopard-style maintainer)",
        .paper_order = 160,
        .schema = DynamicSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          const OptionSchema s = DynamicSchema();
          DynamicPartitionerOptions o;
          o.seed = s.UintOr(c, "seed");
          o.alpha = s.DoubleOr(c, "alpha");
          return std::make_unique<DynamicStreamPartitioner>(o);
        },
        .streaming = true})

}  // namespace dne
