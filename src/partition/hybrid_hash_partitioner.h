// Hybrid hashing (PowerLyra [13] hybrid-cut): low-degree vertices keep all
// their edges on one partition (edge-cut-like locality); edges incident to a
// high-degree endpoint are spread by hashing the *other* endpoint.
#ifndef DNE_PARTITION_HYBRID_HASH_PARTITIONER_H_
#define DNE_PARTITION_HYBRID_HASH_PARTITIONER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "partition/partitioner.h"
#include "partition/streaming_partitioner.h"

namespace dne {

/// The streaming facet buffers the stream and counts degrees as chunks
/// arrive (the low/high-degree split is a whole-stream property), then
/// applies the hybrid-cut rule at Finish() — matching the batch assignment
/// exactly on a canonical edge stream.
class HybridHashPartitioner : public Partitioner, public StreamingPartitioner {
 public:
  /// `degree_threshold` is PowerLyra's theta: vertices with degree above it
  /// are treated as high-degree (default 100, the PowerLyra default).
  explicit HybridHashPartitioner(std::size_t degree_threshold = 100,
                                 std::uint64_t seed = 0)
      : threshold_(degree_threshold), seed_(seed) {}

  std::string name() const override { return "hybrid"; }
  StreamingPartitioner* streaming() override { return this; }

  Status BeginStream(std::uint32_t num_partitions,
                     const PartitionContext& ctx) override;
  using StreamingPartitioner::BeginStream;
  Status AddEdges(std::span<const Edge> edges) override;
  Status Finish(EdgePartition* out) override;

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  std::size_t threshold_;
  std::uint64_t seed_;

  bool stream_open_ = false;
  std::uint32_t stream_k_ = 0;
  std::uint64_t stream_seed_ = 0;
  PartitionContext stream_ctx_;
  std::vector<Edge> stream_buffer_;
  std::unordered_map<VertexId, std::uint64_t> stream_degree_;
};

}  // namespace dne

#endif  // DNE_PARTITION_HYBRID_HASH_PARTITIONER_H_
