// Hybrid hashing (PowerLyra [13] hybrid-cut): low-degree vertices keep all
// their edges on one partition (edge-cut-like locality); edges incident to a
// high-degree endpoint are spread by hashing the *other* endpoint.
#ifndef DNE_PARTITION_HYBRID_HASH_PARTITIONER_H_
#define DNE_PARTITION_HYBRID_HASH_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace dne {

class HybridHashPartitioner : public Partitioner {
 public:
  /// `degree_threshold` is PowerLyra's theta: vertices with degree above it
  /// are treated as high-degree (default 100, the PowerLyra default).
  explicit HybridHashPartitioner(std::size_t degree_threshold = 100,
                                 std::uint64_t seed = 0)
      : threshold_(degree_threshold), seed_(seed) {}

  std::string name() const override { return "hybrid"; }
  Status Partition(const Graph& g, std::uint32_t num_partitions,
                   EdgePartition* out) override;
  PartitionRunStats run_stats() const override { return stats_; }

 private:
  std::size_t threshold_;
  std::uint64_t seed_;
  PartitionRunStats stats_;
};

}  // namespace dne

#endif  // DNE_PARTITION_HYBRID_HASH_PARTITIONER_H_
