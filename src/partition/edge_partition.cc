#include "partition/edge_partition.h"

#include <string>

namespace dne {

std::vector<std::uint64_t> EdgePartition::PartitionSizes() const {
  std::vector<std::uint64_t> sizes(num_partitions_, 0);
  for (PartitionId p : assignment_) {
    if (p != kNoPartition) ++sizes[p];
  }
  return sizes;
}

Status EdgePartition::Validate(const Graph& g) const {
  if (assignment_.size() != g.NumEdges()) {
    return Status::Internal("assignment size " +
                            std::to_string(assignment_.size()) +
                            " != edge count " + std::to_string(g.NumEdges()));
  }
  for (EdgeId e = 0; e < assignment_.size(); ++e) {
    const PartitionId p = assignment_[e];
    if (p == kNoPartition) {
      return Status::Internal("edge " + std::to_string(e) + " unassigned");
    }
    if (p >= num_partitions_) {
      return Status::Internal("edge " + std::to_string(e) +
                              " has out-of-range partition " +
                              std::to_string(p));
    }
  }
  return Status::OK();
}

}  // namespace dne
