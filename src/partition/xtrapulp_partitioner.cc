#include "partition/xtrapulp_partitioner.h"

#include "common/timer.h"
#include "partition/label_propagation.h"
#include "partition/vertex_to_edge.h"

namespace dne {

Status XtraPulpPartitioner::Partition(const Graph& g,
                                      std::uint32_t num_partitions,
                                      EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  WallTimer timer;
  LabelPropagationOptions lp;
  lp.max_iterations = max_iterations_;
  lp.random_init = false;  // BFS-seed growth, "no initial random allocation"
  lp.balance_edges = true;  // PuLP balances edges as well as vertices
  lp.capacity_slack = 1.10;
  lp.seed = seed_;
  std::vector<PartitionId> labels =
      RunLabelPropagation(g, num_partitions, lp);
  *out = VertexToEdgePartition(g, labels, num_partitions, seed_);
  stats_ = PartitionRunStats{};
  stats_.wall_seconds = timer.Seconds();
  // Full bidirectional adjacency + label/load arrays (see Spinner).
  stats_.peak_memory_bytes = g.MemoryBytes() +
                             g.NumVertices() * 2 * sizeof(PartitionId) +
                             num_partitions * sizeof(double);
  return Status::OK();
}

}  // namespace dne
