#include "partition/xtrapulp_partitioner.h"

#include "core/partitioner_registry.h"
#include "partition/label_propagation.h"
#include "partition/vertex_to_edge.h"

namespace dne {

namespace {
OptionSchema XtraPulpSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "BFS-seed and tie-break seed"),
      OptionSpec::Int("iterations", 20, 1, 100000,
                      "label-propagation sweeps")};
}
}  // namespace

Status XtraPulpPartitioner::PartitionImpl(const Graph& g,
                                          std::uint32_t num_partitions,
                                          const PartitionContext& ctx,
                                          EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const std::uint64_t seed = ctx.EffectiveSeed(seed_);
  LabelPropagationOptions lp;
  lp.max_iterations = max_iterations_;
  lp.random_init = false;  // BFS-seed growth, "no initial random allocation"
  lp.balance_edges = true;  // PuLP balances edges as well as vertices
  lp.capacity_slack = 1.10;
  lp.seed = seed;
  std::vector<PartitionId> labels =
      RunLabelPropagation(g, num_partitions, lp);
  DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
  *out = VertexToEdgePartition(g, labels, num_partitions, seed);
  // Full bidirectional adjacency + label/load arrays (see Spinner).
  stats_.peak_memory_bytes = g.MemoryBytes() +
                             g.NumVertices() * 2 * sizeof(PartitionId) +
                             num_partitions * sizeof(double);
  return Status::OK();
}

DNE_REGISTER_PARTITIONER(
    xtrapulp,
    PartitionerInfo{
        .name = "xtrapulp",
        .description = "edge-balanced label propagation from BFS seeds",
        .paper_order = 120,
        .schema = XtraPulpSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          const OptionSchema s = XtraPulpSchema();
          return std::make_unique<XtraPulpPartitioner>(
              static_cast<int>(s.IntOr(c, "iterations")),
              s.UintOr(c, "seed"));
        }})

}  // namespace dne
