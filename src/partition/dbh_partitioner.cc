#include "partition/dbh_partitioner.h"

#include "common/hash.h"
#include "common/timer.h"

namespace dne {

Status DbhPartitioner::Partition(const Graph& g, std::uint32_t num_partitions,
                                 EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  WallTimer timer;
  *out = EdgePartition(num_partitions, g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.edge(e);
    const std::size_t du = g.degree(ed.src);
    const std::size_t dv = g.degree(ed.dst);
    // Hash by the lower-degree endpoint; break degree ties by vertex hash so
    // the choice stays symmetric and deterministic.
    VertexId key;
    if (du != dv) {
      key = du < dv ? ed.src : ed.dst;
    } else {
      key = HashVertex(ed.src, seed_) < HashVertex(ed.dst, seed_) ? ed.src
                                                                  : ed.dst;
    }
    out->Set(e,
             static_cast<PartitionId>(HashVertex(key, seed_) % num_partitions));
  }
  stats_ = PartitionRunStats{};
  stats_.wall_seconds = timer.Seconds();
  stats_.peak_memory_bytes =
      g.NumEdges() * sizeof(Edge) + g.NumVertices() * sizeof(std::uint32_t);
  return Status::OK();
}

}  // namespace dne
