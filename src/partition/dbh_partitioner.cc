#include "partition/dbh_partitioner.h"

#include "common/hash.h"
#include "core/partitioner_registry.h"

namespace dne {

namespace {
constexpr EdgeId kCheckStride = 8192;

// Hash by the lower-degree endpoint; break degree ties by vertex hash so
// the choice stays symmetric and deterministic.
PartitionId DbhAssign(const Edge& ed, std::uint64_t du, std::uint64_t dv,
                      std::uint64_t seed, std::uint32_t num_partitions) {
  VertexId key;
  if (du != dv) {
    key = du < dv ? ed.src : ed.dst;
  } else {
    key = HashVertex(ed.src, seed) < HashVertex(ed.dst, seed) ? ed.src
                                                              : ed.dst;
  }
  return static_cast<PartitionId>(HashVertex(key, seed) % num_partitions);
}

OptionSchema DbhSchema() {
  return OptionSchema{OptionSpec::Uint("seed", 1, "vertex hash seed")};
}
}  // namespace

Status DbhPartitioner::PartitionImpl(const Graph& g,
                                     std::uint32_t num_partitions,
                                     const PartitionContext& ctx,
                                     EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const std::uint64_t seed = ctx.EffectiveSeed(seed_);
  const EdgeId m = g.NumEdges();
  *out = EdgePartition(num_partitions, m);
  for (EdgeId e = 0; e < m; ++e) {
    if (e % kCheckStride == 0) {
      DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
      ctx.ReportProgress("edges", e, m);
    }
    const Edge& ed = g.edge(e);
    out->Set(e, DbhAssign(ed, g.degree(ed.src), g.degree(ed.dst), seed,
                          num_partitions));
  }
  ctx.ReportProgress("edges", m, m);
  stats_.peak_memory_bytes =
      m * sizeof(Edge) + g.NumVertices() * sizeof(std::uint32_t);
  return Status::OK();
}

Status DbhPartitioner::BeginStream(std::uint32_t num_partitions,
                                   const PartitionContext& ctx) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  stream_open_ = true;
  stream_k_ = num_partitions;
  stream_seed_ = ctx.EffectiveSeed(seed_);
  stream_ctx_ = ctx;
  stream_buffer_.clear();
  stream_degree_.clear();
  return Status::OK();
}

Status DbhPartitioner::AddEdges(std::span<const Edge> edges) {
  if (!stream_open_) {
    return Status::InvalidArgument("AddEdges before BeginStream");
  }
  DNE_RETURN_IF_ERROR(stream_ctx_.CheckCancelled());
  stream_buffer_.insert(stream_buffer_.end(), edges.begin(), edges.end());
  for (const Edge& ed : edges) {
    ++stream_degree_[ed.src];
    ++stream_degree_[ed.dst];
  }
  stream_ctx_.ReportProgress("edges", stream_buffer_.size(), 0);
  return Status::OK();
}

Status DbhPartitioner::Finish(EdgePartition* out) {
  if (!stream_open_) {
    return Status::InvalidArgument("Finish before BeginStream");
  }
  stats_.peak_memory_bytes = stream_buffer_.capacity() * sizeof(Edge) +
                             ApproxDegreeMapBytes(stream_degree_.size()) +
                             stream_buffer_.size() * sizeof(PartitionId);
  *out = EdgePartition(stream_k_, stream_buffer_.size());
  for (EdgeId e = 0; e < stream_buffer_.size(); ++e) {
    if (e % kCheckStride == 0) {
      DNE_RETURN_IF_ERROR(stream_ctx_.CheckCancelled());
      stream_ctx_.ReportProgress("edges", e, stream_buffer_.size());
    }
    const Edge& ed = stream_buffer_[e];
    out->Set(e, DbhAssign(ed, stream_degree_[ed.src], stream_degree_[ed.dst],
                          stream_seed_, stream_k_));
  }
  stream_ctx_.ReportProgress("edges", stream_buffer_.size(),
                             stream_buffer_.size());
  // The stream only closes once the placement loop survives cancellation,
  // so a cancelled Finish() can be retried with the buffer intact.
  stream_open_ = false;
  stream_buffer_.clear();
  stream_degree_.clear();
  return Status::OK();
}

DNE_REGISTER_PARTITIONER(
    dbh,
    PartitionerInfo{
        .name = "dbh",
        .description = "degree-based hashing by the lower-degree endpoint",
        .paper_order = 30,
        .schema = DbhSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          return std::make_unique<DbhPartitioner>(
              DbhSchema().UintOr(c, "seed"));
        },
        .streaming = true})

}  // namespace dne
