#include "partition/fennel_partitioner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/hash.h"
#include "core/partitioner_registry.h"
#include "partition/vertex_to_edge.h"

namespace dne {

namespace {
constexpr VertexId kCheckStride = 8192;

OptionSchema FennelSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "vertex stream shuffle seed"),
      OptionSpec::Double("gamma", 1.5, 1.0, 4.0,
                         "load-penalty exponent (paper value 1.5)"),
      OptionSpec::Double("capacity_slack", 1.1, 1.0, 10.0,
                         "vertex capacity slack per partition")};
}
}  // namespace

Status FennelPartitioner::PartitionImpl(const Graph& g,
                                        std::uint32_t num_partitions,
                                        const PartitionContext& ctx,
                                        EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const VertexId n = g.NumVertices();
  const double nd = static_cast<double>(std::max<VertexId>(1, n));
  const double md = static_cast<double>(g.NumEdges());
  const double pd = static_cast<double>(num_partitions);
  const double gamma = options_.gamma;
  // Fennel's load-penalty scale: alpha_f = m P^{gamma-1} / n^gamma.
  const double alpha_f = md * std::pow(pd, gamma - 1.0) / std::pow(nd, gamma);
  const double capacity = options_.capacity_slack * nd / pd;

  std::vector<PartitionId> label(n, kNoPartition);
  std::vector<double> vload(num_partitions, 0.0);

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  const std::uint64_t seed = ctx.EffectiveSeed(options_.seed);
  std::sort(order.begin(), order.end(), [seed](VertexId a, VertexId b) {
    return Mix64(a ^ seed) < Mix64(b ^ seed);
  });

  std::vector<double> neighbor_count(num_partitions, 0.0);
  std::vector<PartitionId> touched;
  VertexId processed = 0;
  for (VertexId v : order) {
    if (processed % kCheckStride == 0) {
      DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
      ctx.ReportProgress("vertices", processed, n);
    }
    ++processed;
    touched.clear();
    for (const Adjacency& a : g.neighbors(v)) {
      const PartitionId lp = label[a.to];
      if (lp == kNoPartition) continue;  // not yet streamed
      if (neighbor_count[lp] == 0.0) touched.push_back(lp);
      neighbor_count[lp] += 1.0;
    }
    PartitionId best = kNoPartition;
    double best_score = -1e300;
    auto consider = [&](PartitionId p) {
      if (vload[p] + 1.0 > capacity) return;
      const double score =
          neighbor_count[p] -
          alpha_f * gamma * std::pow(vload[p], gamma - 1.0);
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    };
    for (PartitionId p : touched) consider(p);
    // Also consider the emptiest partition (the stream may bring a vertex
    // with no placed neighbours, and the penalty term needs a base case).
    consider(static_cast<PartitionId>(
        std::min_element(vload.begin(), vload.end()) - vload.begin()));
    if (best == kNoPartition) {
      // Everything at capacity (can only happen with tight slack): spill to
      // the least-loaded partition.
      best = static_cast<PartitionId>(
          std::min_element(vload.begin(), vload.end()) - vload.begin());
    }
    label[v] = best;
    vload[best] += 1.0;
    for (PartitionId p : touched) neighbor_count[p] = 0.0;
  }

  ctx.ReportProgress("vertices", n, n);
  *out = VertexToEdgePartition(g, label, num_partitions, seed);
  stats_.peak_memory_bytes = g.MemoryBytes() + n * sizeof(PartitionId) +
                             num_partitions * sizeof(double);
  return Status::OK();
}

DNE_REGISTER_PARTITIONER(
    fennel,
    PartitionerInfo{
        .name = "fennel",
        .description = "Fennel streaming vertex placement, edges follow",
        .paper_order = 80,
        .schema = FennelSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          const OptionSchema s = FennelSchema();
          FennelOptions o;
          o.seed = s.UintOr(c, "seed");
          o.gamma = s.DoubleOr(c, "gamma");
          o.capacity_slack = s.DoubleOr(c, "capacity_slack");
          return std::make_unique<FennelPartitioner>(o);
        }})

}  // namespace dne
