#include "partition/fennel_partitioner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/hash.h"
#include "core/partitioner_registry.h"
#include "partition/greedy/load_tracker.h"
#include "partition/greedy/score_engine.h"
#include "partition/vertex_to_edge.h"

namespace dne {

namespace {
constexpr VertexId kCheckStride = 8192;

OptionSchema FennelSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "vertex stream shuffle seed"),
      OptionSpec::Double("gamma", 1.5, 1.0, 4.0,
                         "load-penalty exponent (paper value 1.5)"),
      OptionSpec::Double("capacity_slack", 1.1, 1.0, 10.0,
                         "vertex capacity slack per partition"),
      OptionSpec::Bool("legacy_scorer", false,
                       "use the pre-engine min_element load scans")};
}
}  // namespace

Status FennelPartitioner::PartitionImpl(const Graph& g,
                                        std::uint32_t num_partitions,
                                        const PartitionContext& ctx,
                                        EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const VertexId n = g.NumVertices();
  const double nd = static_cast<double>(std::max<VertexId>(1, n));
  const double md = static_cast<double>(g.NumEdges());
  const double pd = static_cast<double>(num_partitions);
  const double gamma = options_.gamma;
  // Fennel's load-penalty scale: alpha_f = m P^{gamma-1} / n^gamma.
  const double alpha_f = md * std::pow(pd, gamma - 1.0) / std::pow(nd, gamma);
  const double capacity = options_.capacity_slack * nd / pd;

  std::vector<PartitionId> label(n, kNoPartition);
  // The engine path keeps the (integer) vertex loads in a LoadTracker: the
  // legacy path's two min_element scans per vertex become O(1) argmin
  // queries. Loads are whole counts, so the double casts reproduce the
  // legacy accumulate-by-1.0 values bit for bit.
  std::vector<double> vload_legacy;
  LoadTracker vload;
  if (options_.legacy_scorer) {
    vload_legacy.assign(num_partitions, 0.0);
  } else {
    vload.Reset(num_partitions);
  }
  const auto load_of = [&](PartitionId p) {
    return options_.legacy_scorer ? vload_legacy[p]
                                  : static_cast<double>(vload.load(p));
  };
  const auto least_loaded = [&]() {
    if (options_.legacy_scorer) {
      return static_cast<PartitionId>(
          std::min_element(vload_legacy.begin(), vload_legacy.end()) -
          vload_legacy.begin());
    }
    return vload.ArgMinPartition();
  };

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  const std::uint64_t seed = ctx.EffectiveSeed(options_.seed);
  std::sort(order.begin(), order.end(), [seed](VertexId a, VertexId b) {
    return Mix64(a ^ seed) < Mix64(b ^ seed);
  });

  greedy::NeighborAffinity affinity;
  affinity.Reset(num_partitions);
  VertexId processed = 0;
  for (VertexId v : order) {
    if (processed % kCheckStride == 0) {
      DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
      ctx.ReportProgress("vertices", processed, n);
    }
    ++processed;
    for (const Adjacency& a : g.neighbors(v)) {
      const PartitionId lp = label[a.to];
      if (lp == kNoPartition) continue;  // not yet streamed
      affinity.Add(lp);
    }
    PartitionId best = kNoPartition;
    double best_score = -1e300;
    auto consider = [&](PartitionId p) {
      if (load_of(p) + 1.0 > capacity) return;
      const double score =
          affinity.value(p) -
          alpha_f * gamma * std::pow(load_of(p), gamma - 1.0);
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    };
    for (PartitionId p : affinity.touched()) consider(p);
    // Also consider the emptiest partition (the stream may bring a vertex
    // with no placed neighbours, and the penalty term needs a base case).
    consider(least_loaded());
    if (best == kNoPartition) {
      // Everything at capacity (can only happen with tight slack): spill to
      // the least-loaded partition.
      best = least_loaded();
    }
    label[v] = best;
    if (options_.legacy_scorer) {
      vload_legacy[best] += 1.0;
    } else {
      vload.Increment(best);
    }
    affinity.Clear();
  }

  ctx.ReportProgress("vertices", n, n);
  *out = VertexToEdgePartition(g, label, num_partitions, seed);
  stats_.peak_memory_bytes = g.MemoryBytes() + n * sizeof(PartitionId) +
                             (options_.legacy_scorer
                                  ? num_partitions * sizeof(double)
                                  : vload.MemoryBytes()) +
                             affinity.MemoryBytes();
  return Status::OK();
}

DNE_REGISTER_PARTITIONER(
    fennel,
    PartitionerInfo{
        .name = "fennel",
        .description = "Fennel streaming vertex placement, edges follow",
        .paper_order = 80,
        .schema = FennelSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          const OptionSchema s = FennelSchema();
          FennelOptions o;
          o.seed = s.UintOr(c, "seed");
          o.gamma = s.DoubleOr(c, "gamma");
          o.capacity_slack = s.DoubleOr(c, "capacity_slack");
          o.legacy_scorer = s.BoolOr(c, "legacy_scorer");
          return std::make_unique<FennelPartitioner>(o);
        }})

}  // namespace dne
