#include "partition/multilevel_partitioner.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <vector>

#include "common/hash.h"
#include "core/partitioner_registry.h"
#include "partition/vertex_to_edge.h"

namespace dne {

namespace {

OptionSchema MultilevelSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "matching / initial-partition seed"),
      OptionSpec::Double("balance_slack", 1.05, 1.0, 10.0,
                         "vertex-weight balance slack during refinement"),
      OptionSpec::Int("refine_passes", 4, 0, 1000,
                      "boundary-refinement sweeps per level"),
      OptionSpec::Int("coarsest_vertices_per_part", 30, 1, 100000,
                      "coarsening stops near P * this many vertices")};
}

// Weighted graph used across coarsening levels.
struct WGraph {
  struct Arc {
    std::uint32_t to;
    std::uint32_t weight;
  };
  std::vector<std::uint64_t> vweight;
  std::vector<std::uint32_t> offsets;
  std::vector<Arc> arcs;

  std::uint32_t n() const {
    return static_cast<std::uint32_t>(vweight.size());
  }
  std::size_t MemoryBytes() const {
    return vweight.capacity() * sizeof(std::uint64_t) +
           offsets.capacity() * sizeof(std::uint32_t) +
           arcs.capacity() * sizeof(Arc);
  }
};

WGraph FromGraph(const Graph& g) {
  WGraph w;
  const std::uint32_t n = static_cast<std::uint32_t>(g.NumVertices());
  w.vweight.assign(n, 1);
  w.offsets.assign(n + 1, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    w.offsets[v + 1] =
        w.offsets[v] + static_cast<std::uint32_t>(g.degree(v));
  }
  w.arcs.resize(w.offsets[n]);
  std::uint32_t k = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    for (const Adjacency& a : g.neighbors(v)) {
      w.arcs[k++] = WGraph::Arc{static_cast<std::uint32_t>(a.to), 1};
    }
  }
  return w;
}

// Heavy-edge matching: visit vertices in shuffled order; each unmatched
// vertex pairs with its heaviest unmatched neighbour.
std::vector<std::uint32_t> HeavyEdgeMatch(const WGraph& g,
                                          std::uint64_t seed) {
  const std::uint32_t n = g.n();
  std::vector<std::uint32_t> match(n, UINT32_MAX);
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [seed](std::uint32_t a,
                                               std::uint32_t b) {
    return Mix64(a ^ seed) < Mix64(b ^ seed);
  });
  for (std::uint32_t v : order) {
    if (match[v] != UINT32_MAX) continue;
    std::uint32_t best = UINT32_MAX, best_w = 0;
    for (std::uint32_t i = g.offsets[v]; i < g.offsets[v + 1]; ++i) {
      const auto& a = g.arcs[i];
      if (a.to == v || match[a.to] != UINT32_MAX) continue;
      if (a.weight > best_w) {
        best_w = a.weight;
        best = a.to;
      }
    }
    if (best != UINT32_MAX) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays single
    }
  }
  return match;
}

// Contracts matched pairs; fills map fine-vertex -> coarse-vertex.
WGraph Contract(const WGraph& g, const std::vector<std::uint32_t>& match,
                std::vector<std::uint32_t>* fine_to_coarse) {
  const std::uint32_t n = g.n();
  fine_to_coarse->assign(n, UINT32_MAX);
  std::uint32_t nc = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if ((*fine_to_coarse)[v] != UINT32_MAX) continue;
    (*fine_to_coarse)[v] = nc;
    if (match[v] != v) (*fine_to_coarse)[match[v]] = nc;
    ++nc;
  }
  WGraph c;
  c.vweight.assign(nc, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    c.vweight[(*fine_to_coarse)[v]] += g.vweight[v];
  }
  // Combine arcs per coarse vertex with a sort-based merge (no hash maps).
  c.offsets.assign(nc + 1, 0);
  std::vector<std::vector<WGraph::Arc>> rows(nc);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t cv = (*fine_to_coarse)[v];
    for (std::uint32_t i = g.offsets[v]; i < g.offsets[v + 1]; ++i) {
      const std::uint32_t ct = (*fine_to_coarse)[g.arcs[i].to];
      if (ct == cv) continue;  // contracted edge disappears
      rows[cv].push_back(WGraph::Arc{ct, g.arcs[i].weight});
    }
  }
  std::size_t total = 0;
  for (auto& row : rows) {
    std::sort(row.begin(), row.end(),
              [](const WGraph::Arc& a, const WGraph::Arc& b) {
                return a.to < b.to;
              });
    std::size_t w = 0;
    for (std::size_t r = 0; r < row.size(); ++r) {
      if (w > 0 && row[w - 1].to == row[r].to) {
        row[w - 1].weight += row[r].weight;
      } else {
        row[w++] = row[r];
      }
    }
    row.resize(w);
    total += w;
  }
  c.arcs.reserve(total);
  for (std::uint32_t cv = 0; cv < nc; ++cv) {
    c.offsets[cv + 1] = c.offsets[cv] +
                        static_cast<std::uint32_t>(rows[cv].size());
    c.arcs.insert(c.arcs.end(), rows[cv].begin(), rows[cv].end());
  }
  return c;
}

// Greedy region growing on the coarsest graph: BFS from fresh seeds until
// each part holds ~1/P of the vertex weight.
std::vector<PartitionId> InitialPartition(const WGraph& g,
                                          std::uint32_t num_parts,
                                          std::uint64_t seed) {
  const std::uint32_t n = g.n();
  std::uint64_t total_w = 0;
  for (std::uint64_t w : g.vweight) total_w += w;
  const std::uint64_t target = std::max<std::uint64_t>(1, total_w / num_parts);

  std::vector<PartitionId> part(n, kNoPartition);
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [seed](std::uint32_t a,
                                               std::uint32_t b) {
    return Mix64(a ^ seed) < Mix64(b ^ seed);
  });
  std::size_t cursor = 0;
  for (PartitionId p = 0; p + 1 < num_parts; ++p) {
    std::uint64_t grown = 0;
    std::deque<std::uint32_t> frontier;
    while (grown < target) {
      if (frontier.empty()) {
        while (cursor < n && part[order[cursor]] != kNoPartition) ++cursor;
        if (cursor >= n) break;
        frontier.push_back(order[cursor]);
        part[order[cursor]] = p;
        grown += g.vweight[order[cursor]];
        continue;
      }
      const std::uint32_t v = frontier.front();
      frontier.pop_front();
      for (std::uint32_t i = g.offsets[v];
           i < g.offsets[v + 1] && grown < target; ++i) {
        const std::uint32_t u = g.arcs[i].to;
        if (part[u] != kNoPartition) continue;
        part[u] = p;
        grown += g.vweight[u];
        frontier.push_back(u);
      }
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (part[v] == kNoPartition) part[v] = num_parts - 1;
  }
  return part;
}

// Boundary refinement: greedy connectivity-gain moves under a balance cap.
void Refine(const WGraph& g, std::uint32_t num_parts, double slack,
            int passes, std::uint64_t seed, std::vector<PartitionId>* part) {
  const std::uint32_t n = g.n();
  std::vector<std::uint64_t> load(num_parts, 0);
  std::uint64_t total_w = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    load[(*part)[v]] += g.vweight[v];
    total_w += g.vweight[v];
  }
  const double capacity =
      slack * static_cast<double>(total_w) / static_cast<double>(num_parts);

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [seed](std::uint32_t a,
                                               std::uint32_t b) {
    return Mix64(a ^ seed) < Mix64(b ^ seed);
  });

  std::vector<std::uint64_t> conn(num_parts, 0);
  std::vector<PartitionId> touched;
  for (int pass = 0; pass < passes; ++pass) {
    std::uint64_t moves = 0;
    for (std::uint32_t v : order) {
      touched.clear();
      for (std::uint32_t i = g.offsets[v]; i < g.offsets[v + 1]; ++i) {
        const PartitionId p = (*part)[g.arcs[i].to];
        if (conn[p] == 0) touched.push_back(p);
        conn[p] += g.arcs[i].weight;
      }
      const PartitionId cur = (*part)[v];
      PartitionId best = cur;
      std::uint64_t best_conn = conn[cur];
      for (PartitionId p : touched) {
        if (conn[p] > best_conn &&
            static_cast<double>(load[p] + g.vweight[v]) <= capacity) {
          best_conn = conn[p];
          best = p;
        }
      }
      for (PartitionId p : touched) conn[p] = 0;
      if (best != cur) {
        load[cur] -= g.vweight[v];
        load[best] += g.vweight[v];
        (*part)[v] = best;
        ++moves;
      }
    }
    if (moves == 0) break;
  }
}

}  // namespace

Status MultilevelPartitioner::PartitionImpl(const Graph& g,
                                            std::uint32_t num_partitions,
                                            const PartitionContext& ctx,
                                            EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (g.NumVertices() >= UINT32_MAX) {
    return Status::NotSupported("multilevel limited to < 2^32 vertices");
  }
  const std::uint64_t seed = ctx.EffectiveSeed(options_.seed);

  // --- Coarsening ---------------------------------------------------------
  std::vector<WGraph> levels;
  std::vector<std::vector<std::uint32_t>> maps;  // fine -> coarse per level
  levels.push_back(FromGraph(g));
  std::size_t mem_all_levels = levels.back().MemoryBytes();
  const std::uint32_t coarsest =
      std::max<std::uint32_t>(64, num_partitions *
                                      options_.coarsest_vertices_per_part);
  while (levels.back().n() > coarsest) {
    DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
    ctx.ReportProgress("coarsen", levels.size(), 0);
    const WGraph& fine = levels.back();
    std::vector<std::uint32_t> match =
        HeavyEdgeMatch(fine, seed + levels.size());
    std::vector<std::uint32_t> fine_to_coarse;
    WGraph coarse = Contract(fine, match, &fine_to_coarse);
    if (coarse.n() > fine.n() * 95 / 100) break;  // diminishing returns
    maps.push_back(std::move(fine_to_coarse));
    levels.push_back(std::move(coarse));
    mem_all_levels += levels.back().MemoryBytes();
  }

  // --- Initial partition + uncoarsening with refinement -------------------
  std::vector<PartitionId> part =
      InitialPartition(levels.back(), num_partitions, seed);
  Refine(levels.back(), num_partitions, options_.balance_slack,
         options_.refine_passes, seed, &part);
  for (std::size_t lvl = maps.size(); lvl-- > 0;) {
    DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
    ctx.ReportProgress("uncoarsen", maps.size() - lvl, maps.size());
    const std::vector<std::uint32_t>& map = maps[lvl];
    std::vector<PartitionId> finer(map.size());
    for (std::uint32_t v = 0; v < map.size(); ++v) finer[v] = part[map[v]];
    part = std::move(finer);
    Refine(levels[lvl], num_partitions, options_.balance_slack,
           options_.refine_passes, seed + lvl, &part);
  }

  labels_.assign(part.begin(), part.end());
  *out = VertexToEdgePartition(g, labels_, num_partitions, seed);

  // The coarsening hierarchy keeps every level resident — the memory
  // multiplier the paper calls out for ParMETIS in Sec. 7.3.
  stats_.peak_memory_bytes = g.MemoryBytes() + mem_all_levels;
  return Status::OK();
}

DNE_REGISTER_PARTITIONER(
    multilevel,
    PartitionerInfo{
        .name = "multilevel",
        .description = "ParMETIS-style multilevel k-way vertex partitioning",
        .paper_order = 140,
        .schema = MultilevelSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          const OptionSchema s = MultilevelSchema();
          MultilevelOptions o;
          o.seed = s.UintOr(c, "seed");
          o.balance_slack = s.DoubleOr(c, "balance_slack");
          o.refine_passes = static_cast<int>(s.IntOr(c, "refine_passes"));
          o.coarsest_vertices_per_part =
              static_cast<int>(s.IntOr(c, "coarsest_vertices_per_part"));
          return std::make_unique<MultilevelPartitioner>(o);
        }})

}  // namespace dne
