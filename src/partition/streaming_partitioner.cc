#include "partition/streaming_partitioner.h"

#include <algorithm>

#include "graph/graph.h"

namespace dne {

Status StreamPartitionGraph(StreamingPartitioner* streaming, const Graph& g,
                            std::uint32_t num_partitions, int num_chunks,
                            const PartitionContext& ctx, EdgePartition* out) {
  if (streaming == nullptr) {
    return Status::InvalidArgument("partitioner has no streaming facet");
  }
  if (num_chunks < 1) {
    return Status::InvalidArgument("num_chunks must be >= 1");
  }
  DNE_RETURN_IF_ERROR(streaming->BeginStream(num_partitions, ctx));
  const std::vector<Edge>& edges = g.edges().edges();
  const std::size_t m = edges.size();
  const std::size_t chunks = static_cast<std::size_t>(num_chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = m * c / chunks;
    const std::size_t hi = m * (c + 1) / chunks;
    if (lo == hi) continue;
    DNE_RETURN_IF_ERROR(streaming->AddEdges(
        std::span<const Edge>(edges.data() + lo, hi - lo)));
    ctx.ReportProgress("chunk", c + 1, chunks);
  }
  return streaming->Finish(out);
}

}  // namespace dne
