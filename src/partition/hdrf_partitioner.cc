#include "partition/hdrf_partitioner.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/hash.h"
#include "core/partitioner_registry.h"
#include "partition/greedy/score_engine.h"

namespace dne {

namespace {
constexpr EdgeId kCheckStride = 8192;

// The pre-engine reference scorer: one HDRF placement decision by scanning
// every partition. Kept runnable behind the `legacy_scorer` option as the
// oracle for the engine's differential tests.
PartitionId LegacyHdrfBest(const ReplicaTable& replicas,
                           const std::vector<std::uint64_t>& load,
                           std::uint64_t max_load, std::uint64_t min_load,
                           double lambda, VertexId u, VertexId v, double du,
                           double dv, std::uint32_t num_partitions) {
  const double theta_u = du / (du + dv);
  const double theta_v = 1.0 - theta_u;
  double best_score = -1.0;
  PartitionId best = 0;
  const double spread = greedy::kHdrfEps + static_cast<double>(max_load) -
                        static_cast<double>(min_load);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    double c_rep = 0.0;
    if (replicas.Contains(u, p)) c_rep += 1.0 + (1.0 - theta_u);
    if (replicas.Contains(v, p)) c_rep += 1.0 + (1.0 - theta_v);
    const double c_bal =
        lambda *
        (static_cast<double>(max_load) - static_cast<double>(load[p])) /
        spread;
    const double score = c_rep + c_bal;
    if (score > best_score) {
      best_score = score;
      best = p;
    }
  }
  return best;
}

OptionSchema HdrfSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "stream shuffle seed (batch path)"),
      OptionSpec::Double("lambda", 1.1, 0.0, 1e6,
                         "balance weight; > 1 tightens balance"),
      OptionSpec::Bool("legacy_scorer", false,
                       "use the pre-engine O(P)-per-edge reference scorer")};
}
}  // namespace

Status HdrfPartitioner::PartitionImpl(const Graph& g,
                                      std::uint32_t num_partitions,
                                      const PartitionContext& ctx,
                                      EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const EdgeId m = g.NumEdges();
  *out = EdgePartition(num_partitions, m);

  std::vector<EdgeId> order(m);
  std::iota(order.begin(), order.end(), EdgeId{0});
  const std::uint64_t seed = ctx.EffectiveSeed(options_.seed);
  std::sort(order.begin(), order.end(), [seed](EdgeId a, EdgeId b) {
    return Mix64(a ^ seed) < Mix64(b ^ seed);
  });

  if (options_.legacy_scorer) {
    ReplicaTable replicas(g.NumVertices());
    std::vector<std::uint64_t> load(num_partitions, 0);
    std::uint64_t max_load = 0, min_load = 0;
    EdgeId processed = 0;
    for (EdgeId e : order) {
      if (processed % kCheckStride == 0) {
        DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
        ctx.ReportProgress("edges", processed, m);
      }
      ++processed;
      const Edge& ed = g.edge(e);
      const PartitionId best = LegacyHdrfBest(
          replicas, load, max_load, min_load, options_.lambda, ed.src,
          ed.dst, static_cast<double>(g.degree(ed.src)),
          static_cast<double>(g.degree(ed.dst)), num_partitions);
      out->Set(e, best);
      ++load[best];
      replicas.Add(ed.src, best);
      replicas.Add(ed.dst, best);
      max_load = std::max(max_load, load[best]);
      min_load = *std::min_element(load.begin(), load.end());
    }
    ctx.ReportProgress("edges", m, m);
    stats_.peak_memory_bytes = m * sizeof(Edge) + replicas.MemoryBytes() +
                               load.size() * sizeof(std::uint64_t);
    return Status::OK();
  }

  ReplicaTable replicas(g.NumVertices(), num_partitions);
  LoadTracker loads(num_partitions);
  EdgeId processed = 0;
  for (EdgeId e : order) {
    if (processed % kCheckStride == 0) {
      DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
      ctx.ReportProgress("edges", processed, m);
    }
    ++processed;
    const Edge& ed = g.edge(e);
    const PartitionId best = greedy::HdrfBest(
        replicas, loads, options_.lambda, ed.src, ed.dst,
        static_cast<double>(g.degree(ed.src)),
        static_cast<double>(g.degree(ed.dst)));
    out->Set(e, best);
    loads.Increment(best);
    replicas.Add(ed.src, best);
    replicas.Add(ed.dst, best);
  }
  ctx.ReportProgress("edges", m, m);

  stats_.peak_memory_bytes =
      m * sizeof(Edge) + replicas.MemoryBytes() + loads.MemoryBytes();
  return Status::OK();
}

Status HdrfPartitioner::BeginStream(std::uint32_t num_partitions,
                                    const PartitionContext& ctx) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  stream_open_ = true;
  stream_k_ = num_partitions;
  stream_ctx_ = ctx;
  stream_replicas_ = ReplicaTable(
      0, options_.legacy_scorer ? 0 : num_partitions);
  stream_partial_degree_.clear();
  stream_loads_.Reset(options_.legacy_scorer ? 0 : num_partitions);
  stream_load_.assign(options_.legacy_scorer ? num_partitions : 0, 0);
  stream_max_load_ = 0;
  stream_min_load_ = 0;
  stream_assign_.clear();
  stream_seen_ = 0;
  stream_peak_bytes_ = 0;
  return Status::OK();
}

Status HdrfPartitioner::AddEdges(std::span<const Edge> edges) {
  if (!stream_open_) {
    return Status::InvalidArgument("AddEdges before BeginStream");
  }
  if (edges.empty()) return Status::OK();
  // Chunk-level batching: one replica-table growth and one degree resize
  // per chunk instead of per edge.
  VertexId hi = 0;
  for (const Edge& ed : edges) {
    hi = std::max(hi, std::max(ed.src, ed.dst));
  }
  stream_replicas_.EnsureVertex(hi);
  if (hi >= stream_partial_degree_.size()) {
    stream_partial_degree_.resize(hi + 1, 0);
  }

  std::size_t i = 0;
  for (const Edge& ed : edges) {
    if (i++ % kCheckStride == 0) {
      DNE_RETURN_IF_ERROR(stream_ctx_.CheckCancelled());
      stream_ctx_.ReportProgress("edges", stream_seen_ + i - 1, 0);
    }
    // The original streaming HDRF: score with the partial degrees seen so
    // far (incremented before scoring so both endpoints count this edge).
    const double du =
        static_cast<double>(++stream_partial_degree_[ed.src]);
    const double dv =
        static_cast<double>(++stream_partial_degree_[ed.dst]);
    PartitionId best;
    if (options_.legacy_scorer) {
      best = LegacyHdrfBest(stream_replicas_, stream_load_, stream_max_load_,
                            stream_min_load_, options_.lambda, ed.src,
                            ed.dst, du, dv, stream_k_);
      ++stream_load_[best];
      stream_max_load_ = std::max(stream_max_load_, stream_load_[best]);
      stream_min_load_ =
          *std::min_element(stream_load_.begin(), stream_load_.end());
    } else {
      best = greedy::HdrfBest(stream_replicas_, stream_loads_,
                              options_.lambda, ed.src, ed.dst, du, dv);
      stream_loads_.Increment(best);
    }
    stream_assign_.push_back(best);
    stream_replicas_.Add(ed.src, best);
    stream_replicas_.Add(ed.dst, best);
  }
  stream_seen_ += edges.size();
  stream_peak_bytes_ = std::max(stream_peak_bytes_, StreamStateBytes());
  return Status::OK();
}

Status HdrfPartitioner::Finish(EdgePartition* out) {
  if (!stream_open_) {
    return Status::InvalidArgument("Finish before BeginStream");
  }
  stream_open_ = false;
  stream_ctx_.ReportProgress("edges", stream_seen_, stream_seen_);
  stats_.peak_memory_bytes =
      std::max(stream_peak_bytes_, StreamStateBytes());
  *out = EdgePartition(stream_k_, std::move(stream_assign_));
  stream_replicas_ = ReplicaTable(0);
  stream_partial_degree_.clear();
  stream_assign_.clear();
  return Status::OK();
}

std::size_t HdrfPartitioner::StreamStateBytes() const {
  return stream_replicas_.MemoryBytes() +
         stream_partial_degree_.capacity() * sizeof(std::uint64_t) +
         stream_loads_.MemoryBytes() +
         stream_load_.capacity() * sizeof(std::uint64_t) +
         stream_assign_.capacity() * sizeof(PartitionId);
}

DNE_REGISTER_PARTITIONER(
    hdrf,
    PartitionerInfo{
        .name = "hdrf",
        .description = "high-degree-replicated-first greedy streaming",
        .paper_order = 70,
        .schema = HdrfSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          const OptionSchema s = HdrfSchema();
          HdrfOptions o;
          o.seed = s.UintOr(c, "seed");
          o.lambda = s.DoubleOr(c, "lambda");
          o.legacy_scorer = s.BoolOr(c, "legacy_scorer");
          return std::make_unique<HdrfPartitioner>(o);
        },
        .streaming = true})

}  // namespace dne
