#include "partition/hdrf_partitioner.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/hash.h"
#include "common/timer.h"
#include "partition/replica_table.h"

namespace dne {

Status HdrfPartitioner::Partition(const Graph& g,
                                  std::uint32_t num_partitions,
                                  EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  WallTimer timer;
  *out = EdgePartition(num_partitions, g.NumEdges());
  ReplicaTable replicas(g.NumVertices());
  std::vector<std::uint64_t> load(num_partitions, 0);
  std::uint64_t max_load = 0, min_load = 0;

  std::vector<EdgeId> order(g.NumEdges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  const std::uint64_t seed = options_.seed;
  std::sort(order.begin(), order.end(), [seed](EdgeId a, EdgeId b) {
    return Mix64(a ^ seed) < Mix64(b ^ seed);
  });

  constexpr double kEps = 1e-3;
  for (EdgeId e : order) {
    const Edge& ed = g.edge(e);
    const double du = static_cast<double>(g.degree(ed.src));
    const double dv = static_cast<double>(g.degree(ed.dst));
    const double theta_u = du / (du + dv);
    const double theta_v = 1.0 - theta_u;

    double best_score = -1.0;
    PartitionId best = 0;
    const double spread =
        kEps + static_cast<double>(max_load) - static_cast<double>(min_load);
    for (PartitionId p = 0; p < num_partitions; ++p) {
      double c_rep = 0.0;
      if (replicas.Contains(ed.src, p)) c_rep += 1.0 + (1.0 - theta_u);
      if (replicas.Contains(ed.dst, p)) c_rep += 1.0 + (1.0 - theta_v);
      const double c_bal =
          options_.lambda *
          (static_cast<double>(max_load) - static_cast<double>(load[p])) /
          spread;
      const double score = c_rep + c_bal;
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    }
    out->Set(e, best);
    ++load[best];
    replicas.Add(ed.src, best);
    replicas.Add(ed.dst, best);
    max_load = std::max(max_load, load[best]);
    min_load = *std::min_element(load.begin(), load.end());
  }

  stats_ = PartitionRunStats{};
  stats_.wall_seconds = timer.Seconds();
  stats_.peak_memory_bytes = g.NumEdges() * sizeof(Edge) +
                             replicas.MemoryBytes() +
                             load.size() * sizeof(std::uint64_t);
  return Status::OK();
}

}  // namespace dne
