// Oblivious: PowerGraph's coordination-free greedy edge placement [16] —
// the paper's "hash-based with iterative refinement" representative.
#ifndef DNE_PARTITION_OBLIVIOUS_PARTITIONER_H_
#define DNE_PARTITION_OBLIVIOUS_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace dne {

/// Streams edges (in a deterministic shuffled order) applying the PowerGraph
/// greedy rules:
///   1. A(u) and A(v) intersect            -> least-loaded common partition
///   2. both non-empty, no intersection    -> least-loaded in A(u) u A(v)
///   3. exactly one non-empty              -> least-loaded in that set
///   4. both empty                         -> least-loaded overall
class ObliviousPartitioner : public Partitioner {
 public:
  explicit ObliviousPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  std::string name() const override { return "oblivious"; }
  Status Partition(const Graph& g, std::uint32_t num_partitions,
                   EdgePartition* out) override;
  PartitionRunStats run_stats() const override { return stats_; }

 private:
  std::uint64_t seed_;
  PartitionRunStats stats_;
};

}  // namespace dne

#endif  // DNE_PARTITION_OBLIVIOUS_PARTITIONER_H_
