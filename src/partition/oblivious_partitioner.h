// Oblivious: PowerGraph's coordination-free greedy edge placement [16] —
// the paper's "hash-based with iterative refinement" representative.
#ifndef DNE_PARTITION_OBLIVIOUS_PARTITIONER_H_
#define DNE_PARTITION_OBLIVIOUS_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "partition/partitioner.h"
#include "partition/replica_table.h"
#include "partition/streaming_partitioner.h"

namespace dne {

/// Streams edges (in a deterministic shuffled order) applying the PowerGraph
/// greedy rules:
///   1. A(u) and A(v) intersect            -> least-loaded common partition
///   2. both non-empty, no intersection    -> least-loaded in A(u) u A(v)
///   3. exactly one non-empty              -> least-loaded in that set
///   4. both empty                         -> least-loaded overall
///
/// The streaming facet is the same greedy applied in arrival order (a true
/// online algorithm: per-vertex replica sets plus loads, nothing buffered),
/// so it diverges from the batch path's shuffled order by design.
class ObliviousPartitioner : public Partitioner, public StreamingPartitioner {
 public:
  explicit ObliviousPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  std::string name() const override { return "oblivious"; }
  StreamingPartitioner* streaming() override { return this; }

  Status BeginStream(std::uint32_t num_partitions,
                     const PartitionContext& ctx) override;
  using StreamingPartitioner::BeginStream;
  Status AddEdges(std::span<const Edge> edges) override;
  Status Finish(EdgePartition* out) override;

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  std::uint64_t seed_;

  bool stream_open_ = false;
  std::uint32_t stream_k_ = 0;
  PartitionContext stream_ctx_;
  ReplicaTable stream_replicas_;
  std::vector<std::uint64_t> stream_load_;
  std::vector<PartitionId> stream_assign_;
  std::vector<PartitionId> stream_scratch_;
};

}  // namespace dne

#endif  // DNE_PARTITION_OBLIVIOUS_PARTITIONER_H_
