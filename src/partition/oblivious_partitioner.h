// Oblivious: PowerGraph's coordination-free greedy edge placement [16] —
// the paper's "hash-based with iterative refinement" representative.
#ifndef DNE_PARTITION_OBLIVIOUS_PARTITIONER_H_
#define DNE_PARTITION_OBLIVIOUS_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "partition/greedy/load_tracker.h"
#include "partition/partitioner.h"
#include "partition/replica_table.h"
#include "partition/streaming_partitioner.h"

namespace dne {

struct ObliviousOptions {
  std::uint64_t seed = 0;
  /// Reference mode: the pre-engine candidate-vector scorer.
  bool legacy_scorer = false;
};

/// Streams edges (in a deterministic shuffled order) applying the PowerGraph
/// greedy rules:
///   1. A(u) and A(v) intersect            -> least-loaded common partition
///   2. both non-empty, no intersection    -> least-loaded in A(u) u A(v)
///   3. exactly one non-empty              -> least-loaded in that set
///   4. both empty                         -> least-loaded overall
///
/// The streaming facet is the same greedy applied in arrival order (a true
/// online algorithm: per-vertex replica sets plus loads, nothing buffered),
/// so it diverges from the batch path's shuffled order by design.
class ObliviousPartitioner : public Partitioner, public StreamingPartitioner {
 public:
  explicit ObliviousPartitioner(
      const ObliviousOptions& options = ObliviousOptions{})
      : options_(options) {}
  explicit ObliviousPartitioner(std::uint64_t seed)
      : options_{.seed = seed} {}

  std::string name() const override { return "oblivious"; }
  StreamingPartitioner* streaming() override { return this; }

  Status BeginStream(std::uint32_t num_partitions,
                     const PartitionContext& ctx) override;
  using StreamingPartitioner::BeginStream;
  Status AddEdges(std::span<const Edge> edges) override;
  Status Finish(EdgePartition* out) override;

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  /// Resident bytes of the open stream's state (peak-memory accounting).
  std::size_t StreamStateBytes() const;

  ObliviousOptions options_;

  bool stream_open_ = false;
  std::uint32_t stream_k_ = 0;
  PartitionContext stream_ctx_;
  ReplicaTable stream_replicas_;
  LoadTracker stream_loads_;                // engine scorer
  std::vector<std::uint64_t> stream_load_;  // legacy scorer
  std::vector<PartitionId> stream_assign_;
  std::vector<PartitionId> stream_scratch_;  // legacy scorer
  std::uint64_t stream_seen_ = 0;
  std::size_t stream_peak_bytes_ = 0;
};

}  // namespace dne

#endif  // DNE_PARTITION_OBLIVIOUS_PARTITIONER_H_
