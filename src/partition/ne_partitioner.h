// NE: sequential neighbour-expansion edge partitioning (Zhang et al. [54]),
// the offline single-machine algorithm Distributed NE parallelises. Serves
// as the quality gold standard in Table 4.
#ifndef DNE_PARTITION_NE_PARTITIONER_H_
#define DNE_PARTITION_NE_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace dne {

struct NeOptions {
  /// Balance slack alpha of Eq. (2): |E_p| < alpha * |E| / |P|.
  double alpha = 1.1;
  std::uint64_t seed = 1;
};

/// Grows the partitions one at a time: each starts from a random vertex and
/// repeatedly (i) moves the boundary vertex with minimal remaining degree
/// D_rest into the core, (ii) allocates its one-hop remaining edges, and
/// (iii) allocates two-hop edges whose endpoints are both inside V(E_p)
/// (Condition (5) — these never increase replication). The last partition
/// absorbs any remaining edges so the result always covers E.
class NePartitioner : public Partitioner {
 public:
  explicit NePartitioner(const NeOptions& options = NeOptions{})
      : options_(options) {}

  std::string name() const override { return "ne"; }

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  NeOptions options_;
};

}  // namespace dne

#endif  // DNE_PARTITION_NE_PARTITIONER_H_
