#include "partition/vertex_to_edge.h"

#include "common/hash.h"

namespace dne {

EdgePartition VertexToEdgePartition(const Graph& g,
                                    const std::vector<PartitionId>& labels,
                                    std::uint32_t num_partitions,
                                    std::uint64_t seed) {
  EdgePartition out(num_partitions, g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.edge(e);
    const bool pick_src = (HashEdge(ed.src, ed.dst, seed) & 1) == 0;
    out.Set(e, labels[pick_src ? ed.src : ed.dst]);
  }
  return out;
}

}  // namespace dne
