#include "partition/oblivious_partitioner.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/hash.h"
#include "common/timer.h"
#include "partition/replica_table.h"

namespace dne {

Status ObliviousPartitioner::Partition(const Graph& g,
                                       std::uint32_t num_partitions,
                                       EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  WallTimer timer;
  *out = EdgePartition(num_partitions, g.NumEdges());
  ReplicaTable replicas(g.NumVertices());
  std::vector<std::uint64_t> load(num_partitions, 0);

  // Deterministic shuffled streaming order.
  std::vector<EdgeId> order(g.NumEdges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(), [this](EdgeId a, EdgeId b) {
    return Mix64(a ^ seed_) < Mix64(b ^ seed_);
  });

  auto least_loaded_in = [&](const std::vector<PartitionId>& cands) {
    PartitionId best = cands[0];
    for (PartitionId p : cands) {
      if (load[p] < load[best]) best = p;
    }
    return best;
  };

  std::vector<PartitionId> candidates;
  for (EdgeId e : order) {
    const Edge& ed = g.edge(e);
    const auto& au = replicas.of(ed.src);
    const auto& av = replicas.of(ed.dst);

    candidates.clear();
    std::set_intersection(au.begin(), au.end(), av.begin(), av.end(),
                          std::back_inserter(candidates));
    if (candidates.empty()) {
      if (!au.empty() && !av.empty()) {
        std::set_union(au.begin(), au.end(), av.begin(), av.end(),
                       std::back_inserter(candidates));
      } else if (!au.empty()) {
        candidates = au;
      } else if (!av.empty()) {
        candidates = av;
      } else {
        candidates.resize(num_partitions);
        std::iota(candidates.begin(), candidates.end(), PartitionId{0});
      }
    }
    const PartitionId p = least_loaded_in(candidates);
    out->Set(e, p);
    ++load[p];
    replicas.Add(ed.src, p);
    replicas.Add(ed.dst, p);
  }

  stats_ = PartitionRunStats{};
  stats_.wall_seconds = timer.Seconds();
  stats_.peak_memory_bytes = g.NumEdges() * sizeof(Edge) +
                             replicas.MemoryBytes() +
                             load.size() * sizeof(std::uint64_t);
  return Status::OK();
}

}  // namespace dne
