#include "partition/oblivious_partitioner.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/hash.h"
#include "core/partitioner_registry.h"
#include "partition/greedy/score_engine.h"

namespace dne {

namespace {
constexpr EdgeId kCheckStride = 8192;

// The pre-engine reference: materialises the PowerGraph candidate vector
// per edge (`scratch` avoids re-allocating it). Kept runnable behind the
// `legacy_scorer` option as the differential-test oracle. Requires a
// slot-mode replica table (it reads the sorted id spans directly).
PartitionId LegacyPlaceGreedy(const ReplicaTable& replicas,
                              const std::vector<std::uint64_t>& load,
                              VertexId u, VertexId v,
                              std::uint32_t num_partitions,
                              std::vector<PartitionId>* scratch) {
  const std::span<const PartitionId> au = replicas.of(u);
  const std::span<const PartitionId> av = replicas.of(v);
  std::vector<PartitionId>& candidates = *scratch;
  candidates.clear();
  std::set_intersection(au.begin(), au.end(), av.begin(), av.end(),
                        std::back_inserter(candidates));
  if (candidates.empty()) {
    if (!au.empty() && !av.empty()) {
      std::set_union(au.begin(), au.end(), av.begin(), av.end(),
                     std::back_inserter(candidates));
    } else if (!au.empty()) {
      candidates.assign(au.begin(), au.end());
    } else if (!av.empty()) {
      candidates.assign(av.begin(), av.end());
    } else {
      candidates.resize(num_partitions);
      std::iota(candidates.begin(), candidates.end(), PartitionId{0});
    }
  }
  PartitionId best = candidates[0];
  for (PartitionId p : candidates) {
    if (load[p] < load[best]) best = p;
  }
  return best;
}

OptionSchema ObliviousSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "stream shuffle seed (batch path)"),
      OptionSpec::Bool("legacy_scorer", false,
                       "use the pre-engine candidate-vector scorer")};
}
}  // namespace

Status ObliviousPartitioner::PartitionImpl(const Graph& g,
                                           std::uint32_t num_partitions,
                                           const PartitionContext& ctx,
                                           EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const std::uint64_t seed = ctx.EffectiveSeed(options_.seed);
  const EdgeId m = g.NumEdges();
  *out = EdgePartition(num_partitions, m);

  // Deterministic shuffled streaming order.
  std::vector<EdgeId> order(m);
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(), [seed](EdgeId a, EdgeId b) {
    return Mix64(a ^ seed) < Mix64(b ^ seed);
  });

  if (options_.legacy_scorer) {
    ReplicaTable replicas(g.NumVertices());
    std::vector<std::uint64_t> load(num_partitions, 0);
    std::vector<PartitionId> scratch;
    EdgeId processed = 0;
    for (EdgeId e : order) {
      if (processed % kCheckStride == 0) {
        DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
        ctx.ReportProgress("edges", processed, m);
      }
      ++processed;
      const Edge& ed = g.edge(e);
      const PartitionId p = LegacyPlaceGreedy(replicas, load, ed.src, ed.dst,
                                              num_partitions, &scratch);
      out->Set(e, p);
      ++load[p];
      replicas.Add(ed.src, p);
      replicas.Add(ed.dst, p);
    }
    ctx.ReportProgress("edges", m, m);
    stats_.peak_memory_bytes = m * sizeof(Edge) + replicas.MemoryBytes() +
                               load.size() * sizeof(std::uint64_t);
    return Status::OK();
  }

  ReplicaTable replicas(g.NumVertices(), num_partitions);
  LoadTracker loads(num_partitions);
  EdgeId processed = 0;
  for (EdgeId e : order) {
    if (processed % kCheckStride == 0) {
      DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
      ctx.ReportProgress("edges", processed, m);
    }
    ++processed;
    const Edge& ed = g.edge(e);
    const PartitionId p =
        greedy::ObliviousBest(replicas, loads, ed.src, ed.dst);
    out->Set(e, p);
    loads.Increment(p);
    replicas.Add(ed.src, p);
    replicas.Add(ed.dst, p);
  }
  ctx.ReportProgress("edges", m, m);

  stats_.peak_memory_bytes =
      m * sizeof(Edge) + replicas.MemoryBytes() + loads.MemoryBytes();
  return Status::OK();
}

Status ObliviousPartitioner::BeginStream(std::uint32_t num_partitions,
                                         const PartitionContext& ctx) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  stream_open_ = true;
  stream_k_ = num_partitions;
  stream_ctx_ = ctx;
  stream_replicas_ = ReplicaTable(
      0, options_.legacy_scorer ? 0 : num_partitions);
  stream_loads_.Reset(options_.legacy_scorer ? 0 : num_partitions);
  stream_load_.assign(options_.legacy_scorer ? num_partitions : 0, 0);
  stream_assign_.clear();
  stream_seen_ = 0;
  stream_peak_bytes_ = 0;
  return Status::OK();
}

Status ObliviousPartitioner::AddEdges(std::span<const Edge> edges) {
  if (!stream_open_) {
    return Status::InvalidArgument("AddEdges before BeginStream");
  }
  if (edges.empty()) return Status::OK();
  // Chunk-level batching: one replica-table growth per chunk.
  VertexId hi = 0;
  for (const Edge& ed : edges) {
    hi = std::max(hi, std::max(ed.src, ed.dst));
  }
  stream_replicas_.EnsureVertex(hi);

  std::size_t i = 0;
  for (const Edge& ed : edges) {
    if (i++ % kCheckStride == 0) {
      DNE_RETURN_IF_ERROR(stream_ctx_.CheckCancelled());
      stream_ctx_.ReportProgress("edges", stream_seen_ + i - 1, 0);
    }
    PartitionId p;
    if (options_.legacy_scorer) {
      p = LegacyPlaceGreedy(stream_replicas_, stream_load_, ed.src, ed.dst,
                            stream_k_, &stream_scratch_);
      ++stream_load_[p];
    } else {
      p = greedy::ObliviousBest(stream_replicas_, stream_loads_, ed.src,
                                ed.dst);
      stream_loads_.Increment(p);
    }
    stream_assign_.push_back(p);
    stream_replicas_.Add(ed.src, p);
    stream_replicas_.Add(ed.dst, p);
  }
  stream_seen_ += edges.size();
  stream_peak_bytes_ = std::max(stream_peak_bytes_, StreamStateBytes());
  return Status::OK();
}

Status ObliviousPartitioner::Finish(EdgePartition* out) {
  if (!stream_open_) {
    return Status::InvalidArgument("Finish before BeginStream");
  }
  stream_open_ = false;
  stream_ctx_.ReportProgress("edges", stream_seen_, stream_seen_);
  stats_.peak_memory_bytes =
      std::max(stream_peak_bytes_, StreamStateBytes());
  *out = EdgePartition(stream_k_, std::move(stream_assign_));
  stream_replicas_ = ReplicaTable(0);
  stream_assign_.clear();
  return Status::OK();
}

std::size_t ObliviousPartitioner::StreamStateBytes() const {
  return stream_replicas_.MemoryBytes() + stream_loads_.MemoryBytes() +
         stream_load_.capacity() * sizeof(std::uint64_t) +
         stream_assign_.capacity() * sizeof(PartitionId);
}

DNE_REGISTER_PARTITIONER(
    oblivious,
    PartitionerInfo{
        .name = "oblivious",
        .description = "PowerGraph coordination-free greedy edge placement",
        .paper_order = 50,
        .schema = ObliviousSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          const OptionSchema s = ObliviousSchema();
          ObliviousOptions o;
          o.seed = s.UintOr(c, "seed");
          o.legacy_scorer = s.BoolOr(c, "legacy_scorer");
          return std::make_unique<ObliviousPartitioner>(o);
        },
        .streaming = true})

}  // namespace dne
