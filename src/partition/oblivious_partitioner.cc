#include "partition/oblivious_partitioner.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/hash.h"
#include "core/partitioner_registry.h"

namespace dne {

namespace {
constexpr EdgeId kCheckStride = 8192;

// The PowerGraph candidate rules over the current replica sets; `scratch`
// avoids re-allocating the candidate vector per edge.
PartitionId PlaceGreedy(const ReplicaTable& replicas,
                        const std::vector<std::uint64_t>& load, VertexId u,
                        VertexId v, std::uint32_t num_partitions,
                        std::vector<PartitionId>* scratch) {
  const auto& au = replicas.of(u);
  const auto& av = replicas.of(v);
  std::vector<PartitionId>& candidates = *scratch;
  candidates.clear();
  std::set_intersection(au.begin(), au.end(), av.begin(), av.end(),
                        std::back_inserter(candidates));
  if (candidates.empty()) {
    if (!au.empty() && !av.empty()) {
      std::set_union(au.begin(), au.end(), av.begin(), av.end(),
                     std::back_inserter(candidates));
    } else if (!au.empty()) {
      candidates = au;
    } else if (!av.empty()) {
      candidates = av;
    } else {
      candidates.resize(num_partitions);
      std::iota(candidates.begin(), candidates.end(), PartitionId{0});
    }
  }
  PartitionId best = candidates[0];
  for (PartitionId p : candidates) {
    if (load[p] < load[best]) best = p;
  }
  return best;
}

OptionSchema ObliviousSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "stream shuffle seed (batch path)")};
}
}  // namespace

Status ObliviousPartitioner::PartitionImpl(const Graph& g,
                                           std::uint32_t num_partitions,
                                           const PartitionContext& ctx,
                                           EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const std::uint64_t seed = ctx.EffectiveSeed(seed_);
  const EdgeId m = g.NumEdges();
  *out = EdgePartition(num_partitions, m);
  ReplicaTable replicas(g.NumVertices());
  std::vector<std::uint64_t> load(num_partitions, 0);

  // Deterministic shuffled streaming order.
  std::vector<EdgeId> order(m);
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(), [seed](EdgeId a, EdgeId b) {
    return Mix64(a ^ seed) < Mix64(b ^ seed);
  });

  std::vector<PartitionId> scratch;
  EdgeId processed = 0;
  for (EdgeId e : order) {
    if (processed % kCheckStride == 0) {
      DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
      ctx.ReportProgress("edges", processed, m);
    }
    ++processed;
    const Edge& ed = g.edge(e);
    const PartitionId p = PlaceGreedy(replicas, load, ed.src, ed.dst,
                                      num_partitions, &scratch);
    out->Set(e, p);
    ++load[p];
    replicas.Add(ed.src, p);
    replicas.Add(ed.dst, p);
  }
  ctx.ReportProgress("edges", m, m);

  stats_.peak_memory_bytes = m * sizeof(Edge) + replicas.MemoryBytes() +
                             load.size() * sizeof(std::uint64_t);
  return Status::OK();
}

Status ObliviousPartitioner::BeginStream(std::uint32_t num_partitions,
                                         const PartitionContext& ctx) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  stream_open_ = true;
  stream_k_ = num_partitions;
  stream_ctx_ = ctx;
  stream_replicas_ = ReplicaTable(0);
  stream_load_.assign(num_partitions, 0);
  stream_assign_.clear();
  return Status::OK();
}

Status ObliviousPartitioner::AddEdges(std::span<const Edge> edges) {
  if (!stream_open_) {
    return Status::InvalidArgument("AddEdges before BeginStream");
  }
  std::size_t i = 0;
  for (const Edge& ed : edges) {
    if (i++ % kCheckStride == 0) {
      DNE_RETURN_IF_ERROR(stream_ctx_.CheckCancelled());
    }
    stream_replicas_.EnsureVertex(std::max(ed.src, ed.dst));
    const PartitionId p =
        PlaceGreedy(stream_replicas_, stream_load_, ed.src, ed.dst, stream_k_,
                    &stream_scratch_);
    stream_assign_.push_back(p);
    ++stream_load_[p];
    stream_replicas_.Add(ed.src, p);
    stream_replicas_.Add(ed.dst, p);
  }
  return Status::OK();
}

Status ObliviousPartitioner::Finish(EdgePartition* out) {
  if (!stream_open_) {
    return Status::InvalidArgument("Finish before BeginStream");
  }
  stream_open_ = false;
  *out = EdgePartition(stream_k_, stream_assign_.size());
  for (EdgeId e = 0; e < stream_assign_.size(); ++e) {
    out->Set(e, stream_assign_[e]);
  }
  stream_replicas_ = ReplicaTable(0);
  stream_assign_.clear();
  return Status::OK();
}

DNE_REGISTER_PARTITIONER(
    oblivious,
    PartitionerInfo{
        .name = "oblivious",
        .description = "PowerGraph coordination-free greedy edge placement",
        .paper_order = 50,
        .schema = ObliviousSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          return std::make_unique<ObliviousPartitioner>(
              ObliviousSchema().UintOr(c, "seed"));
        },
        .streaming = true})

}  // namespace dne
