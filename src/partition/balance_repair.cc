#include "partition/balance_repair.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/hash.h"
#include "metrics/partition_metrics.h"
#include "partition/replica_table.h"

namespace dne {

Status RepairBalance(const Graph& g, const BalanceRepairOptions& options,
                     EdgePartition* partition, BalanceRepairStats* stats) {
  if (options.alpha < 1.0) {
    return Status::InvalidArgument("alpha must be >= 1.0");
  }
  DNE_RETURN_IF_ERROR(partition->Validate(g));
  const std::uint32_t num_parts = partition->num_partitions();
  const std::uint64_t limit = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(options.alpha * static_cast<double>(g.NumEdges()) /
                       static_cast<double>(num_parts))));

  if (stats != nullptr) {
    PartitionMetrics before = ComputePartitionMetrics(g, *partition);
    stats->rf_before = before.replication_factor;
    stats->eb_before = before.edge_balance;
    stats->moved_edges = 0;
  }

  // Replica sets let us price each candidate move: a destination containing
  // both endpoints costs 0 new replicas, one endpoint costs 1, neither 2
  // (minus replicas freed at the source, which we approximate as 0 — the
  // conservative choice).
  ReplicaTable replicas(g.NumVertices());
  std::vector<std::uint64_t> load(num_parts, 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.edge(e);
    const PartitionId p = partition->Get(e);
    replicas.Add(ed.src, p);
    replicas.Add(ed.dst, p);
    ++load[p];
  }

  // Destination order: always the currently least-loaded partition below
  // the limit; tie-break by id for determinism.
  auto least_loaded = [&]() {
    PartitionId best = 0;
    for (PartitionId p = 1; p < num_parts; ++p) {
      if (load[p] < load[best]) best = p;
    }
    return best;
  };

  std::uint64_t moved = 0;
  for (PartitionId src = 0; src < num_parts; ++src) {
    if (load[src] <= limit) continue;
    // Gather this partition's edges and sort them so the cheapest moves go
    // first: edges whose endpoints already replicate widely lose nothing.
    std::vector<EdgeId> own;
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      if (partition->Get(e) == src) own.push_back(e);
    }
    auto move_cost = [&](EdgeId e, PartitionId dst) {
      const Edge& ed = g.edge(e);
      int cost = 0;
      if (!replicas.Contains(ed.src, dst)) ++cost;
      if (!replicas.Contains(ed.dst, dst)) ++cost;
      return cost;
    };
    // Three passes of increasing cost; stop as soon as the load fits.
    for (int max_cost = 0; max_cost <= 2 && load[src] > limit; ++max_cost) {
      for (EdgeId e : own) {
        if (load[src] <= limit) break;
        if (partition->Get(e) != src) continue;  // already moved
        const PartitionId dst = least_loaded();
        if (dst == src || load[dst] >= limit) break;  // nowhere to go
        if (move_cost(e, dst) > max_cost) continue;
        partition->Set(e, dst);
        const Edge& ed = g.edge(e);
        replicas.Add(ed.src, dst);
        replicas.Add(ed.dst, dst);
        --load[src];
        ++load[dst];
        ++moved;
      }
    }
  }

  if (stats != nullptr) {
    PartitionMetrics after = ComputePartitionMetrics(g, *partition);
    stats->rf_after = after.replication_factor;
    stats->eb_after = after.edge_balance;
    stats->moved_edges = moved;
  }
  return Status::OK();
}

}  // namespace dne
