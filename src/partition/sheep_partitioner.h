// Sheep [35]: the "indirect" distributed edge partitioner — translates the
// graph into an elimination tree (degree ordering), maps every edge onto a
// tree node, and partitions the tree by balanced subtree accumulation.
#ifndef DNE_PARTITION_SHEEP_PARTITIONER_H_
#define DNE_PARTITION_SHEEP_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "partition/partitioner.h"

namespace dne {

class SheepPartitioner : public Partitioner {
 public:
  explicit SheepPartitioner(std::uint64_t seed = 1) : seed_(seed) {}

  std::string name() const override { return "sheep"; }

  /// Exposed for tests: elimination-tree parent of each vertex under the
  /// degree ordering (kNoVertex for roots). parent rank is always higher.
  static std::vector<VertexId> BuildEliminationTree(
      const Graph& g, const std::vector<std::uint32_t>& rank);

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  std::uint64_t seed_;
};

}  // namespace dne

#endif  // DNE_PARTITION_SHEEP_PARTITIONER_H_
