// Vertex-partition -> edge-partition conversion, as used by the paper to
// compare against vertex partitioners (Sec. 7.1): "each edge is randomly
// assigned to one of its adjacent vertices' partitions" [10].
#ifndef DNE_PARTITION_VERTEX_TO_EDGE_H_
#define DNE_PARTITION_VERTEX_TO_EDGE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "partition/edge_partition.h"

namespace dne {

/// Converts a per-vertex labelling into an EdgePartition: each edge flips a
/// deterministic hash-coin between its endpoints' labels.
EdgePartition VertexToEdgePartition(const Graph& g,
                                    const std::vector<PartitionId>& labels,
                                    std::uint32_t num_partitions,
                                    std::uint64_t seed = 0);

}  // namespace dne

#endif  // DNE_PARTITION_VERTEX_TO_EDGE_H_
