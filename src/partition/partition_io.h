// Persistence for EdgePartition results: whole-assignment files (text and
// binary) and per-partition edge shards — the hand-off format a distributed
// graph engine ingests.
#ifndef DNE_PARTITION_PARTITION_IO_H_
#define DNE_PARTITION_PARTITION_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"
#include "partition/edge_partition.h"

namespace dne {

/// Text format: "# num_partitions num_edges" header, then one partition id
/// per line, in edge-id order.
Status SavePartitionText(const std::string& path,
                         const EdgePartition& partition);
Status LoadPartitionText(const std::string& path, EdgePartition* out);

/// Binary format: u64 magic, u32 num_partitions, u64 num_edges, then
/// num_edges * u32 partition ids.
Status SavePartitionBinary(const std::string& path,
                           const EdgePartition& partition);
Status LoadPartitionBinary(const std::string& path, EdgePartition* out);

/// Writes one "part-<i>.txt" edge list per partition into `directory`
/// (created by the caller). Each shard holds the canonical "u v" lines of
/// its edges — exactly what each machine of a distributed engine loads.
Status WritePartitionShards(const std::string& directory, const Graph& g,
                            const EdgePartition& partition);

}  // namespace dne

#endif  // DNE_PARTITION_PARTITION_IO_H_
