// Persistence for EdgePartition results: whole-assignment files (text and
// binary) and per-partition edge shards — the hand-off format a distributed
// graph engine ingests.
#ifndef DNE_PARTITION_PARTITION_IO_H_
#define DNE_PARTITION_PARTITION_IO_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "partition/edge_partition.h"
#include "runtime/mem_tracker.h"

namespace dne {

/// Text format: "# num_partitions num_edges" header, then one partition id
/// per line, in edge-id order.
Status SavePartitionText(const std::string& path,
                         const EdgePartition& partition);
Status LoadPartitionText(const std::string& path, EdgePartition* out);

/// Binary format: u64 magic, u32 num_partitions, u64 num_edges, then
/// num_edges * u32 partition ids.
Status SavePartitionBinary(const std::string& path,
                           const EdgePartition& partition);
Status LoadPartitionBinary(const std::string& path, EdgePartition* out);

/// Writes one "part-<i>.txt" edge list per partition into `directory`
/// (created if absent). Each shard holds the canonical "u v" lines of
/// its edges — exactly what each machine of a distributed engine loads.
Status WritePartitionShards(const std::string& directory, const Graph& g,
                            const EdgePartition& partition);

/// Incremental spiller behind WritePartitionShards and the out-of-core
/// PartitionStream path: edges are buffered per partition and appended to
/// that partition's "part-<i>.txt" whenever a buffer fills, so the writer's
/// footprint stays O(num_partitions * buffer_edges) no matter how long the
/// stream is. Shard files are opened in append mode per flush, keeping the
/// number of simultaneously open descriptors at one.
///
///   PartitionShardWriter writer(dir, k);
///   DNE_RETURN_IF_ERROR(writer.Open());
///   for (...) DNE_RETURN_IF_ERROR(writer.Append(edge, partition_id));
///   DNE_RETURN_IF_ERROR(writer.Finish());
class PartitionShardWriter {
 public:
  /// The optional MemTracker accounts the writer's buffer capacity on rank 0
  /// between Open and Finish.
  PartitionShardWriter(std::string directory, std::uint32_t num_partitions,
                       std::size_t buffer_edges = 4096,
                       MemTracker* mem_tracker = nullptr);
  ~PartitionShardWriter();

  PartitionShardWriter(const PartitionShardWriter&) = delete;
  PartitionShardWriter& operator=(const PartitionShardWriter&) = delete;

  /// Creates the directory if needed and truncates the shard files.
  Status Open();

  Status Append(const Edge& edge, PartitionId partition);

  /// Appends edges[i] to parts[i] for every i; the spans must be equal size.
  Status AppendBatch(std::span<const Edge> edges,
                     std::span<const PartitionId> parts);

  /// Flushes every buffer and seals the writer; Append afterwards fails.
  Status Finish();

  std::uint64_t edges_written() const { return edges_written_; }
  /// Per-partition edge counts, |E_p| as spilled so far.
  const std::vector<std::uint64_t>& partition_counts() const {
    return partition_counts_;
  }

 private:
  Status Flush(std::uint32_t partition);
  std::string ShardPath(std::uint32_t partition) const;

  std::string directory_;
  std::uint32_t num_partitions_;
  std::size_t buffer_edges_;
  MemTracker* mem_tracker_;
  bool open_ = false;
  std::vector<std::vector<Edge>> buffers_;
  std::vector<std::uint64_t> partition_counts_;
  std::uint64_t edges_written_ = 0;
  std::size_t tracked_bytes_ = 0;
};

}  // namespace dne

#endif  // DNE_PARTITION_PARTITION_IO_H_
