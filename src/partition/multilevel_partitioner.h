// Multilevel k-way vertex partitioning in the ParMETIS [23] mould:
// heavy-edge-matching coarsening, greedy region-growing initial partition,
// and boundary refinement on the way back up. The vertex partition is
// converted to an edge partition for comparison (Sec. 7.1).
#ifndef DNE_PARTITION_MULTILEVEL_PARTITIONER_H_
#define DNE_PARTITION_MULTILEVEL_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "partition/partitioner.h"

namespace dne {

struct MultilevelOptions {
  /// Vertex-weight balance slack during refinement.
  double balance_slack = 1.05;
  /// Boundary-refinement sweeps per level.
  int refine_passes = 4;
  /// Coarsening stops near num_partitions * this many vertices.
  int coarsest_vertices_per_part = 30;
  std::uint64_t seed = 1;
};

class MultilevelPartitioner : public Partitioner {
 public:
  explicit MultilevelPartitioner(
      const MultilevelOptions& options = MultilevelOptions{})
      : options_(options) {}

  std::string name() const override { return "multilevel"; }

  /// The underlying vertex labelling of the last run (for tests).
  const std::vector<PartitionId>& vertex_labels() const { return labels_; }

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  MultilevelOptions options_;
  std::vector<PartitionId> labels_;
};

}  // namespace dne

#endif  // DNE_PARTITION_MULTILEVEL_PARTITIONER_H_
