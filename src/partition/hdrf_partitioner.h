// HDRF: High-Degree (are) Replicated First streaming partitioning [39].
#ifndef DNE_PARTITION_HDRF_PARTITIONER_H_
#define DNE_PARTITION_HDRF_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "partition/greedy/load_tracker.h"
#include "partition/partitioner.h"
#include "partition/replica_table.h"
#include "partition/streaming_partitioner.h"

namespace dne {

struct HdrfOptions {
  /// Balance weight lambda; > 1 tightens balance (HDRF paper notation).
  double lambda = 1.1;
  std::uint64_t seed = 0;
  /// Reference mode: the pre-engine O(|P|)-per-edge scorer (bit-identical
  /// to the candidate engine; kept as the differential-test oracle).
  bool legacy_scorer = false;
};

/// For each streamed edge (u, v), picks argmax_p C_rep(p) + C_bal(p) where
///   C_rep(p) = g(u, p) + g(v, p),
///   g(v, p)  = [p in A(v)] * (1 + (1 - theta_v)),  theta_v = d_v/(d_u+d_v),
///   C_bal(p) = lambda * (maxload - load_p) / (eps + maxload - minload).
/// Low-degree endpoints dominate the score, so hubs get replicated first —
/// the right choice on skewed graphs.
///
/// The batch path scores with exact degrees from the Graph; the streaming
/// facet is the original one-pass HDRF, scoring with *partial* degrees
/// counted over the prefix of the stream seen so far.
class HdrfPartitioner : public Partitioner, public StreamingPartitioner {
 public:
  explicit HdrfPartitioner(const HdrfOptions& options = HdrfOptions{})
      : options_(options) {}

  std::string name() const override { return "hdrf"; }
  StreamingPartitioner* streaming() override { return this; }

  Status BeginStream(std::uint32_t num_partitions,
                     const PartitionContext& ctx) override;
  using StreamingPartitioner::BeginStream;
  Status AddEdges(std::span<const Edge> edges) override;
  Status Finish(EdgePartition* out) override;

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  /// Resident bytes of the open stream's state (replica sets, degrees,
  /// loads, collected assignment) — the streaming peak-memory accounting.
  std::size_t StreamStateBytes() const;

  HdrfOptions options_;

  bool stream_open_ = false;
  std::uint32_t stream_k_ = 0;
  PartitionContext stream_ctx_;
  ReplicaTable stream_replicas_;
  std::vector<std::uint64_t> stream_partial_degree_;
  LoadTracker stream_loads_;                   // engine scorer
  std::vector<std::uint64_t> stream_load_;     // legacy scorer
  std::uint64_t stream_max_load_ = 0;          // legacy scorer
  std::uint64_t stream_min_load_ = 0;          // legacy scorer
  std::vector<PartitionId> stream_assign_;
  std::uint64_t stream_seen_ = 0;
  std::size_t stream_peak_bytes_ = 0;
};

}  // namespace dne

#endif  // DNE_PARTITION_HDRF_PARTITIONER_H_
