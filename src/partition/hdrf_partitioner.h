// HDRF: High-Degree (are) Replicated First streaming partitioning [39].
#ifndef DNE_PARTITION_HDRF_PARTITIONER_H_
#define DNE_PARTITION_HDRF_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace dne {

struct HdrfOptions {
  /// Balance weight lambda; > 1 tightens balance (HDRF paper notation).
  double lambda = 1.1;
  std::uint64_t seed = 0;
};

/// For each streamed edge (u, v), picks argmax_p C_rep(p) + C_bal(p) where
///   C_rep(p) = g(u, p) + g(v, p),
///   g(v, p)  = [p in A(v)] * (1 + (1 - theta_v)),  theta_v = d_v/(d_u+d_v),
///   C_bal(p) = lambda * (maxload - load_p) / (eps + maxload - minload).
/// Low-degree endpoints dominate the score, so hubs get replicated first —
/// the right choice on skewed graphs.
class HdrfPartitioner : public Partitioner {
 public:
  explicit HdrfPartitioner(const HdrfOptions& options = HdrfOptions{})
      : options_(options) {}

  std::string name() const override { return "hdrf"; }
  Status Partition(const Graph& g, std::uint32_t num_partitions,
                   EdgePartition* out) override;
  PartitionRunStats run_stats() const override { return stats_; }

 private:
  HdrfOptions options_;
  PartitionRunStats stats_;
};

}  // namespace dne

#endif  // DNE_PARTITION_HDRF_PARTITIONER_H_
