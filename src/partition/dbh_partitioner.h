// DBH: degree-based hashing [49] — each edge is hashed by its lower-degree
// endpoint so that high-degree vertices (cheap to replicate relative to
// their edge count) absorb the cuts.
#ifndef DNE_PARTITION_DBH_PARTITIONER_H_
#define DNE_PARTITION_DBH_PARTITIONER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "partition/partitioner.h"
#include "partition/streaming_partitioner.h"

namespace dne {

/// The streaming facet buffers the stream and counts degrees as chunks
/// arrive, then hashes every edge by its final lower-degree endpoint at
/// Finish() — reproducing the batch assignment exactly when fed a graph's
/// canonical edge array (degrees are a whole-stream property, so a true
/// single-pass variant would diverge from the offline algorithm).
class DbhPartitioner : public Partitioner, public StreamingPartitioner {
 public:
  explicit DbhPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  std::string name() const override { return "dbh"; }
  StreamingPartitioner* streaming() override { return this; }

  Status BeginStream(std::uint32_t num_partitions,
                     const PartitionContext& ctx) override;
  using StreamingPartitioner::BeginStream;
  Status AddEdges(std::span<const Edge> edges) override;
  Status Finish(EdgePartition* out) override;

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  std::uint64_t seed_;

  bool stream_open_ = false;
  std::uint32_t stream_k_ = 0;
  std::uint64_t stream_seed_ = 0;
  PartitionContext stream_ctx_;
  std::vector<Edge> stream_buffer_;
  std::unordered_map<VertexId, std::uint64_t> stream_degree_;
};

}  // namespace dne

#endif  // DNE_PARTITION_DBH_PARTITIONER_H_
