// DBH: degree-based hashing [49] — each edge is hashed by its lower-degree
// endpoint so that high-degree vertices (cheap to replicate relative to
// their edge count) absorb the cuts.
#ifndef DNE_PARTITION_DBH_PARTITIONER_H_
#define DNE_PARTITION_DBH_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace dne {

class DbhPartitioner : public Partitioner {
 public:
  explicit DbhPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  std::string name() const override { return "dbh"; }
  Status Partition(const Graph& g, std::uint32_t num_partitions,
                   EdgePartition* out) override;
  PartitionRunStats run_stats() const override { return stats_; }

 private:
  std::uint64_t seed_;
  PartitionRunStats stats_;
};

}  // namespace dne

#endif  // DNE_PARTITION_DBH_PARTITIONER_H_
