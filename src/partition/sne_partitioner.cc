#include "partition/sne_partitioner.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <vector>

#include "common/hash.h"
#include "common/timer.h"
#include "partition/replica_table.h"

namespace dne {

namespace {

struct HeapEntry {
  std::uint32_t score;
  std::uint32_t vertex;  // chunk-local index
  friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
    return std::tie(a.score, a.vertex) > std::tie(b.score, b.vertex);
  }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

// Chunk-local CSR over the window's edges.
struct ChunkGraph {
  std::vector<VertexId> vertices;       // sorted global ids
  std::vector<std::uint32_t> offsets;   // local CSR
  struct Arc {
    std::uint32_t to;    // local index
    std::uint32_t edge;  // window-local edge index
  };
  std::vector<Arc> arcs;

  std::uint32_t LocalId(VertexId v) const {
    return static_cast<std::uint32_t>(
        std::lower_bound(vertices.begin(), vertices.end(), v) -
        vertices.begin());
  }
};

ChunkGraph BuildChunk(const Graph& g, const std::vector<EdgeId>& window) {
  ChunkGraph cg;
  cg.vertices.reserve(window.size() * 2);
  for (EdgeId e : window) {
    cg.vertices.push_back(g.edge(e).src);
    cg.vertices.push_back(g.edge(e).dst);
  }
  std::sort(cg.vertices.begin(), cg.vertices.end());
  cg.vertices.erase(std::unique(cg.vertices.begin(), cg.vertices.end()),
                    cg.vertices.end());
  const std::uint32_t nv = static_cast<std::uint32_t>(cg.vertices.size());
  cg.offsets.assign(nv + 1, 0);
  std::vector<std::uint32_t> lu(window.size()), lv(window.size());
  for (std::uint32_t i = 0; i < window.size(); ++i) {
    lu[i] = cg.LocalId(g.edge(window[i]).src);
    lv[i] = cg.LocalId(g.edge(window[i]).dst);
    ++cg.offsets[lu[i] + 1];
    ++cg.offsets[lv[i] + 1];
  }
  for (std::uint32_t v = 0; v < nv; ++v) cg.offsets[v + 1] += cg.offsets[v];
  cg.arcs.resize(2 * window.size());
  std::vector<std::uint32_t> cursor(cg.offsets.begin(), cg.offsets.end() - 1);
  for (std::uint32_t i = 0; i < window.size(); ++i) {
    cg.arcs[cursor[lu[i]]++] = ChunkGraph::Arc{lv[i], i};
    cg.arcs[cursor[lv[i]]++] = ChunkGraph::Arc{lu[i], i};
  }
  return cg;
}

}  // namespace

Status SnePartitioner::Partition(const Graph& g, std::uint32_t num_partitions,
                                 EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (options_.chunks < 1) {
    return Status::InvalidArgument("chunks must be >= 1");
  }
  WallTimer timer;
  const EdgeId m = g.NumEdges();
  *out = EdgePartition(num_partitions, m);
  ReplicaTable replicas(g.NumVertices());
  std::vector<std::uint64_t> load(num_partitions, 0);
  const std::uint64_t base_limit = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(options_.alpha * static_cast<double>(m) /
                                    num_partitions));

  // The stream is the canonical (source-sorted) edge array, split into
  // contiguous windows: each window then contains whole forward
  // neighbourhoods of a source-vertex range, which is what lets in-window
  // expansion behave like NE (a uniformly sampled window would be a sparse
  // subgraph with no expandable structure).
  std::vector<EdgeId> order(m);
  std::iota(order.begin(), order.end(), EdgeId{0});

  // SNE fills partitions to completion in sequence, exactly like NE, but
  // only the current window of the stream is materialised. The partition
  // under construction carries over between windows, its boundary re-seeded
  // from the replica table (vertices already in V(E_p)).
  PartitionId current = 0;
  const int chunks = options_.chunks;
  std::size_t peak_window_bytes = 0;
  for (int c = 0; c < chunks; ++c) {
    const std::size_t lo = static_cast<std::size_t>(m) * c / chunks;
    const std::size_t hi = static_cast<std::size_t>(m) * (c + 1) / chunks;
    std::vector<EdgeId> window(order.begin() + lo, order.begin() + hi);
    if (window.empty()) continue;
    ChunkGraph cg = BuildChunk(g, window);
    peak_window_bytes = std::max(
        peak_window_bytes, cg.vertices.size() * sizeof(VertexId) +
                               cg.arcs.size() * sizeof(ChunkGraph::Arc) +
                               cg.offsets.size() * sizeof(std::uint32_t));
    const std::uint32_t nv = static_cast<std::uint32_t>(cg.vertices.size());

    std::vector<bool> edge_done(window.size(), false);
    std::vector<std::uint32_t> rest(nv, 0);
    for (std::uint32_t v = 0; v < nv; ++v) {
      rest[v] = cg.offsets[v + 1] - cg.offsets[v];
    }
    std::uint32_t chunk_remaining =
        static_cast<std::uint32_t>(window.size());

    std::vector<std::uint32_t> vx_epoch(nv, UINT32_MAX);
    std::uint32_t free_cursor = 0;

    while (chunk_remaining > 0) {
      const bool last_partition = (current + 1 == num_partitions);
      const std::uint64_t limit = last_partition ? m : base_limit;
      if (load[current] >= limit && !last_partition) {
        ++current;
        continue;
      }
      const PartitionId p = current;
      // (Re)build p's boundary for this window: window vertices already in
      // V(E_p) with unallocated window edges.
      MinHeap boundary;
      for (std::uint32_t v = 0; v < nv; ++v) {
        if (rest[v] > 0 && replicas.Contains(cg.vertices[v], p)) {
          vx_epoch[v] = p;
          boundary.push(HeapEntry{rest[v], v});
        }
      }
      auto allocate = [&](std::uint32_t widx, std::uint32_t a,
                          std::uint32_t b) {
        edge_done[widx] = true;
        out->Set(window[widx], p);
        --rest[a];
        --rest[b];
        --chunk_remaining;
        ++load[p];
        replicas.Add(cg.vertices[a], p);
        replicas.Add(cg.vertices[b], p);
      };
      while (load[p] < limit && chunk_remaining > 0) {
        std::uint32_t v = UINT32_MAX;
        while (!boundary.empty()) {
          HeapEntry top = boundary.top();
          boundary.pop();
          if (rest[top.vertex] == 0) continue;
          if (top.score != rest[top.vertex]) {
            boundary.push(HeapEntry{rest[top.vertex], top.vertex});
            continue;
          }
          v = top.vertex;
          break;
        }
        if (v == UINT32_MAX) {
          while (free_cursor < nv && rest[free_cursor] == 0) ++free_cursor;
          if (free_cursor >= nv) break;  // window exhausted
          v = static_cast<std::uint32_t>(free_cursor);
        }
        vx_epoch[v] = p;
        for (std::uint32_t i = cg.offsets[v];
             i < cg.offsets[v + 1] && load[p] < limit; ++i) {
          const auto& arc = cg.arcs[i];
          if (edge_done[arc.edge]) continue;
          allocate(arc.edge, v, arc.to);
          const std::uint32_t u = arc.to;
          if (vx_epoch[u] != p) {
            vx_epoch[u] = p;
            // Two-hop allocation (Condition (5)) within the window.
            for (std::uint32_t j = cg.offsets[u];
                 j < cg.offsets[u + 1] && load[p] < limit; ++j) {
              const auto& arc2 = cg.arcs[j];
              if (edge_done[arc2.edge] || vx_epoch[arc2.to] != p) continue;
              allocate(arc2.edge, u, arc2.to);
            }
            if (rest[u] > 0) boundary.push(HeapEntry{rest[u], u});
          }
        }
      }
      if (load[current] >= limit && !last_partition) {
        ++current;
      } else if (chunk_remaining > 0 && boundary.empty() &&
                 free_cursor >= nv) {
        break;  // defensive: nothing reachable (cannot normally happen)
      }
    }
  }

  stats_ = PartitionRunStats{};
  stats_.wall_seconds = timer.Seconds();
  // SNE's defining property: only the window (not the whole graph) plus the
  // replica table is resident.
  stats_.peak_memory_bytes = peak_window_bytes + replicas.MemoryBytes() +
                             m * sizeof(PartitionId);
  return out->Validate(g);
}

}  // namespace dne
