#include "partition/sne_partitioner.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <span>
#include <vector>

#include "common/hash.h"
#include "core/partitioner_registry.h"

namespace dne {

namespace {

struct HeapEntry {
  std::uint32_t score;
  std::uint32_t vertex;  // chunk-local index
  friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
    return std::tie(a.score, a.vertex) > std::tie(b.score, b.vertex);
  }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

// The two load-bookkeeping policies ProcessSneWindow is instantiated with:
// the legacy plain vector (min_element per decision at the call sites) and
// the engine's LoadTracker (O(1) argmin). Placement decisions are identical
// either way — the policy only changes how the loads are maintained.
struct VectorLoads {
  std::vector<std::uint64_t>* v;
  std::uint64_t load(PartitionId p) const { return (*v)[p]; }
  void Increment(PartitionId p) const { ++(*v)[p]; }
  PartitionId ArgMin() const {
    return static_cast<PartitionId>(
        std::min_element(v->begin(), v->end()) - v->begin());
  }
};

struct TrackerLoads {
  LoadTracker* t;
  std::uint64_t load(PartitionId p) const { return t->load(p); }
  void Increment(PartitionId p) const { t->Increment(p); }
  PartitionId ArgMin() const { return t->ArgMinPartition(); }
};

// Chunk-local CSR over the window's edges.
struct ChunkGraph {
  std::vector<VertexId> vertices;       // sorted global ids
  std::vector<std::uint32_t> offsets;   // local CSR
  struct Arc {
    std::uint32_t to;    // local index
    std::uint32_t edge;  // window-local edge index
  };
  std::vector<Arc> arcs;

  std::uint32_t LocalId(VertexId v) const {
    return static_cast<std::uint32_t>(
        std::lower_bound(vertices.begin(), vertices.end(), v) -
        vertices.begin());
  }

  std::size_t MemoryBytes() const {
    return vertices.size() * sizeof(VertexId) + arcs.size() * sizeof(Arc) +
           offsets.size() * sizeof(std::uint32_t);
  }
};

ChunkGraph BuildChunk(std::span<const Edge> window) {
  ChunkGraph cg;
  cg.vertices.reserve(window.size() * 2);
  for (const Edge& ed : window) {
    cg.vertices.push_back(ed.src);
    cg.vertices.push_back(ed.dst);
  }
  std::sort(cg.vertices.begin(), cg.vertices.end());
  cg.vertices.erase(std::unique(cg.vertices.begin(), cg.vertices.end()),
                    cg.vertices.end());
  const std::uint32_t nv = static_cast<std::uint32_t>(cg.vertices.size());
  cg.offsets.assign(nv + 1, 0);
  std::vector<std::uint32_t> lu(window.size()), lv(window.size());
  for (std::uint32_t i = 0; i < window.size(); ++i) {
    lu[i] = cg.LocalId(window[i].src);
    lv[i] = cg.LocalId(window[i].dst);
    ++cg.offsets[lu[i] + 1];
    ++cg.offsets[lv[i] + 1];
  }
  for (std::uint32_t v = 0; v < nv; ++v) cg.offsets[v + 1] += cg.offsets[v];
  cg.arcs.resize(2 * window.size());
  std::vector<std::uint32_t> cursor(cg.offsets.begin(), cg.offsets.end() - 1);
  for (std::uint32_t i = 0; i < window.size(); ++i) {
    cg.arcs[cursor[lu[i]]++] = ChunkGraph::Arc{lv[i], i};
    cg.arcs[cursor[lv[i]]++] = ChunkGraph::Arc{lu[i], i};
  }
  return cg;
}

// Allocates every edge of `window`, writing window-local partition ids to
// out_assign[0..window.size()). SNE fills partitions to completion in
// sequence, exactly like NE, but only the current window is materialised;
// the partition under construction carries over between windows via
// *current, its boundary re-seeded from the replica table (vertices already
// in V(E_p)). The partition limit is base_limit, except the last partition
// which gets last_limit: the batch path passes |E| (the final partition
// absorbs the remainder), while the streaming path passes base_limit too and
// spills whatever a window cannot place (left kNoPartition here) onto the
// least-loaded partitions itself.
template <typename Loads>
void ProcessSneWindow(std::span<const Edge> window,
                      std::uint32_t num_partitions, std::uint64_t base_limit,
                      std::uint64_t last_limit, ReplicaTable* replica_table,
                      Loads loads, PartitionId* current,
                      PartitionId* out_assign,
                      std::size_t* peak_window_bytes) {
  if (window.empty()) return;
  ReplicaTable& replicas = *replica_table;
  ChunkGraph cg = BuildChunk(window);
  *peak_window_bytes = std::max(*peak_window_bytes, cg.MemoryBytes());
  const std::uint32_t nv = static_cast<std::uint32_t>(cg.vertices.size());
  if (nv > 0) replicas.EnsureVertex(cg.vertices.back());

  std::vector<bool> edge_done(window.size(), false);
  std::vector<std::uint32_t> rest(nv, 0);
  for (std::uint32_t v = 0; v < nv; ++v) {
    rest[v] = cg.offsets[v + 1] - cg.offsets[v];
  }
  std::uint32_t chunk_remaining = static_cast<std::uint32_t>(window.size());

  std::vector<std::uint32_t> vx_epoch(nv, UINT32_MAX);
  std::uint32_t free_cursor = 0;

  while (chunk_remaining > 0) {
    const bool last_partition = (*current + 1 == num_partitions);
    const std::uint64_t limit = last_partition ? last_limit : base_limit;
    if (loads.load(*current) >= limit) {
      if (!last_partition) {
        ++*current;
        continue;
      }
      break;  // every partition at capacity: the caller spills the remainder
    }
    const PartitionId p = *current;
    // (Re)build p's boundary for this window: window vertices already in
    // V(E_p) with unallocated window edges.
    MinHeap boundary;
    for (std::uint32_t v = 0; v < nv; ++v) {
      if (rest[v] > 0 && replicas.Contains(cg.vertices[v], p)) {
        vx_epoch[v] = p;
        boundary.push(HeapEntry{rest[v], v});
      }
    }
    auto allocate = [&](std::uint32_t widx, std::uint32_t a,
                        std::uint32_t b) {
      edge_done[widx] = true;
      out_assign[widx] = p;
      --rest[a];
      --rest[b];
      --chunk_remaining;
      loads.Increment(p);
      replicas.Add(cg.vertices[a], p);
      replicas.Add(cg.vertices[b], p);
    };
    while (loads.load(p) < limit && chunk_remaining > 0) {
      std::uint32_t v = UINT32_MAX;
      while (!boundary.empty()) {
        HeapEntry top = boundary.top();
        boundary.pop();
        if (rest[top.vertex] == 0) continue;
        if (top.score != rest[top.vertex]) {
          boundary.push(HeapEntry{rest[top.vertex], top.vertex});
          continue;
        }
        v = top.vertex;
        break;
      }
      if (v == UINT32_MAX) {
        while (free_cursor < nv && rest[free_cursor] == 0) ++free_cursor;
        if (free_cursor >= nv) break;  // window exhausted
        v = static_cast<std::uint32_t>(free_cursor);
      }
      vx_epoch[v] = p;
      for (std::uint32_t i = cg.offsets[v];
           i < cg.offsets[v + 1] && loads.load(p) < limit; ++i) {
        const auto& arc = cg.arcs[i];
        if (edge_done[arc.edge]) continue;
        allocate(arc.edge, v, arc.to);
        const std::uint32_t u = arc.to;
        if (vx_epoch[u] != p) {
          vx_epoch[u] = p;
          // Two-hop allocation (Condition (5)) within the window.
          for (std::uint32_t j = cg.offsets[u];
               j < cg.offsets[u + 1] && loads.load(p) < limit; ++j) {
            const auto& arc2 = cg.arcs[j];
            if (edge_done[arc2.edge] || vx_epoch[arc2.to] != p) continue;
            allocate(arc2.edge, u, arc2.to);
          }
          if (rest[u] > 0) boundary.push(HeapEntry{rest[u], u});
        }
      }
    }
    if (loads.load(*current) >= limit && !last_partition) {
      ++*current;
    } else if (chunk_remaining > 0 && boundary.empty() &&
               free_cursor >= nv) {
      break;  // defensive: nothing reachable (cannot normally happen)
    }
  }
}

OptionSchema SneSchema() {
  return OptionSchema{
      OptionSpec::Uint("seed", 1, "reserved (SNE is order-deterministic)"),
      OptionSpec::Double("alpha", 1.1, 1.0, 10.0,
                         "balance slack of Eq. (2)"),
      OptionSpec::Int("chunks", 8, 1, 1 << 20,
                      "stream chunk count (batch path; inverse memory "
                      "budget)"),
      OptionSpec::Bool("legacy_scorer", false,
                       "use the pre-engine load vector + min_element scans")};
}

}  // namespace

Status SnePartitioner::PartitionImpl(const Graph& g,
                                     std::uint32_t num_partitions,
                                     const PartitionContext& ctx,
                                     EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (options_.chunks < 1) {
    return Status::InvalidArgument("chunks must be >= 1");
  }
  const EdgeId m = g.NumEdges();
  *out = EdgePartition(num_partitions, m);
  ReplicaTable replicas(g.NumVertices(),
                        options_.legacy_scorer ? 0 : num_partitions);
  std::vector<std::uint64_t> load_vec;
  LoadTracker loads;
  if (options_.legacy_scorer) {
    load_vec.assign(num_partitions, 0);
  } else {
    loads.Reset(num_partitions);
  }
  const std::uint64_t base_limit = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(options_.alpha * static_cast<double>(m) /
                                    num_partitions));

  // The stream is the canonical (source-sorted) edge array, split into
  // contiguous windows: each window then contains whole forward
  // neighbourhoods of a source-vertex range, which is what lets in-window
  // expansion behave like NE (a uniformly sampled window would be a sparse
  // subgraph with no expandable structure).
  const std::vector<Edge>& edges = g.edges().edges();
  PartitionId current = 0;
  const int chunks = options_.chunks;
  std::size_t peak_window_bytes = 0;
  for (int c = 0; c < chunks; ++c) {
    DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
    ctx.ReportProgress("window", static_cast<std::uint64_t>(c),
                       static_cast<std::uint64_t>(chunks));
    const std::size_t lo = static_cast<std::size_t>(m) * c / chunks;
    const std::size_t hi = static_cast<std::size_t>(m) * (c + 1) / chunks;
    if (lo == hi) continue;
    const std::span<const Edge> window(edges.data() + lo, hi - lo);
    PartitionId* out_assign = &out->mutable_assignment()[lo];
    if (options_.legacy_scorer) {
      ProcessSneWindow(window, num_partitions, base_limit, /*last_limit=*/m,
                       &replicas, VectorLoads{&load_vec}, &current,
                       out_assign, &peak_window_bytes);
    } else {
      ProcessSneWindow(window, num_partitions, base_limit, /*last_limit=*/m,
                       &replicas, TrackerLoads{&loads}, &current, out_assign,
                       &peak_window_bytes);
    }
  }
  ctx.ReportProgress("window", static_cast<std::uint64_t>(chunks),
                     static_cast<std::uint64_t>(chunks));

  // SNE's defining property: only the window (not the whole graph) plus the
  // replica table is resident.
  stats_.peak_memory_bytes = peak_window_bytes + replicas.MemoryBytes() +
                             m * sizeof(PartitionId);
  return out->Validate(g);
}

Status SnePartitioner::BeginStream(std::uint32_t num_partitions,
                                   const PartitionContext& ctx) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  stream_open_ = true;
  stream_k_ = num_partitions;
  stream_ctx_ = ctx;
  stream_replicas_ = ReplicaTable(
      0, options_.legacy_scorer ? 0 : num_partitions);
  stream_loads_.Reset(options_.legacy_scorer ? 0 : num_partitions);
  stream_load_.assign(options_.legacy_scorer ? num_partitions : 0, 0);
  stream_current_ = 0;
  stream_seen_ = 0;
  stream_assign_.clear();
  stream_window_bytes_ = 0;
  stream_peak_bytes_ = 0;
  return Status::OK();
}

Status SnePartitioner::AddEdges(std::span<const Edge> edges) {
  if (!stream_open_) {
    return Status::InvalidArgument("AddEdges before BeginStream");
  }
  DNE_RETURN_IF_ERROR(stream_ctx_.CheckCancelled());
  if (edges.empty()) return Status::OK();
  stream_seen_ += edges.size();
  // Capacity grows with the ingested prefix: alpha * seen / |P|. Unlike the
  // batch path, the last partition is NOT unbounded (the stream length is
  // unknown, and an open-ended sink would swallow every later chunk);
  // whatever a window cannot place within the current capacity is spilled
  // to the least-loaded partitions below.
  const std::uint64_t base_limit = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(options_.alpha *
                                    static_cast<double>(stream_seen_) /
                                    stream_k_));
  const VectorLoads legacy_loads{&stream_load_};
  const TrackerLoads engine_loads{&stream_loads_};
  const auto least_loaded = [&]() {
    return options_.legacy_scorer ? legacy_loads.ArgMin()
                                  : engine_loads.ArgMin();
  };
  // Earlier partitions regain capacity as the limit grows: resume expansion
  // from the least-loaded one instead of camping on the last.
  if (stream_current_ + 1 == stream_k_) {
    stream_current_ = least_loaded();
  }
  const std::size_t offset = stream_assign_.size();
  stream_assign_.resize(offset + edges.size(), kNoPartition);
  if (options_.legacy_scorer) {
    ProcessSneWindow(edges, stream_k_, base_limit, /*last_limit=*/base_limit,
                     &stream_replicas_, legacy_loads, &stream_current_,
                     &stream_assign_[offset], &stream_window_bytes_);
  } else {
    ProcessSneWindow(edges, stream_k_, base_limit, /*last_limit=*/base_limit,
                     &stream_replicas_, engine_loads, &stream_current_,
                     &stream_assign_[offset], &stream_window_bytes_);
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (stream_assign_[offset + i] != kNoPartition) continue;
    const PartitionId p = least_loaded();
    stream_assign_[offset + i] = p;
    if (options_.legacy_scorer) {
      legacy_loads.Increment(p);
    } else {
      engine_loads.Increment(p);
    }
    stream_replicas_.EnsureVertex(std::max(edges[i].src, edges[i].dst));
    stream_replicas_.Add(edges[i].src, p);
    stream_replicas_.Add(edges[i].dst, p);
  }
  stream_peak_bytes_ = std::max(stream_peak_bytes_, StreamStateBytes());
  // Stage name matches the rest of the streaming family (the batch path
  // keeps "window", where windows are the real unit of a known total).
  stream_ctx_.ReportProgress("edges", stream_seen_, 0);
  return Status::OK();
}

Status SnePartitioner::Finish(EdgePartition* out) {
  if (!stream_open_) {
    return Status::InvalidArgument("Finish before BeginStream");
  }
  stream_open_ = false;
  stream_ctx_.ReportProgress("edges", stream_seen_, stream_seen_);
  stats_.peak_memory_bytes =
      std::max(stream_peak_bytes_, StreamStateBytes());
  *out = EdgePartition(stream_k_, std::move(stream_assign_));
  stream_replicas_ = ReplicaTable(0);
  stream_assign_.clear();
  return Status::OK();
}

std::size_t SnePartitioner::StreamStateBytes() const {
  return stream_window_bytes_ + stream_replicas_.MemoryBytes() +
         stream_loads_.MemoryBytes() +
         stream_load_.capacity() * sizeof(std::uint64_t) +
         stream_assign_.capacity() * sizeof(PartitionId);
}

DNE_REGISTER_PARTITIONER(
    sne,
    PartitionerInfo{
        .name = "sne",
        .description = "streaming neighbour expansion over bounded windows",
        .paper_order = 100,
        .schema = SneSchema(),
        .factory =
            [](const PartitionConfig& c) -> std::unique_ptr<Partitioner> {
          const OptionSchema s = SneSchema();
          SneOptions o;
          o.seed = s.UintOr(c, "seed");
          o.alpha = s.DoubleOr(c, "alpha");
          o.chunks = static_cast<int>(s.IntOr(c, "chunks"));
          o.legacy_scorer = s.BoolOr(c, "legacy_scorer");
          return std::make_unique<SnePartitioner>(o);
        },
        .streaming = true})

}  // namespace dne
