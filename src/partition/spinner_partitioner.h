// Spinner [36]: hash-random initial vertex labels refined by capacity-aware
// label propagation, converted to an edge partition for comparison.
#ifndef DNE_PARTITION_SPINNER_PARTITIONER_H_
#define DNE_PARTITION_SPINNER_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace dne {

class SpinnerPartitioner : public Partitioner {
 public:
  explicit SpinnerPartitioner(int max_iterations = 20, std::uint64_t seed = 1)
      : max_iterations_(max_iterations), seed_(seed) {}

  std::string name() const override { return "spinner"; }

 protected:
  Status PartitionImpl(const Graph& g, std::uint32_t num_partitions,
                       const PartitionContext& ctx,
                       EdgePartition* out) override;

 private:
  int max_iterations_;
  std::uint64_t seed_;
};

}  // namespace dne

#endif  // DNE_PARTITION_SPINNER_PARTITIONER_H_
