#include "partition/hybrid_hash_partitioner.h"

#include "common/hash.h"
#include "common/timer.h"

namespace dne {

Status HybridHashPartitioner::Partition(const Graph& g,
                                        std::uint32_t num_partitions,
                                        EdgePartition* out) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  WallTimer timer;
  *out = EdgePartition(num_partitions, g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.edge(e);
    const bool src_low = g.degree(ed.src) <= threshold_;
    const bool dst_low = g.degree(ed.dst) <= threshold_;
    VertexId key;
    if (src_low && dst_low) {
      // Both low: co-locate with the lower-degree endpoint (keeps small
      // vertices whole).
      key = g.degree(ed.src) <= g.degree(ed.dst) ? ed.src : ed.dst;
    } else if (src_low) {
      key = ed.src;  // dst is a hub: spread its edges by the low side
    } else if (dst_low) {
      key = ed.dst;
    } else {
      // Hub-hub edge: fall back to edge hashing.
      out->Set(e, static_cast<PartitionId>(HashEdge(ed.src, ed.dst, seed_) %
                                           num_partitions));
      continue;
    }
    out->Set(e,
             static_cast<PartitionId>(HashVertex(key, seed_) % num_partitions));
  }
  stats_ = PartitionRunStats{};
  stats_.wall_seconds = timer.Seconds();
  stats_.peak_memory_bytes =
      g.NumEdges() * sizeof(Edge) + g.NumVertices() * sizeof(std::uint32_t);
  return Status::OK();
}

}  // namespace dne
