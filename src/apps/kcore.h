// k-core decomposition: per-vertex core numbers via bucket peeling — a
// further analytics workload over the library's graph substrate.
#ifndef DNE_APPS_KCORE_H_
#define DNE_APPS_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dne {

/// Core number of every vertex (the largest k such that the vertex belongs
/// to a subgraph of minimum degree k). O(|E|) bucket peeling.
std::vector<std::uint32_t> CoreNumbers(const Graph& g);

/// The graph's degeneracy: max over vertices of the core number.
std::uint32_t Degeneracy(const Graph& g);

}  // namespace dne

#endif  // DNE_APPS_KCORE_H_
