#include "apps/serve_engine.h"

#include <algorithm>
#include <string>

#include "common/hash.h"

namespace dne {

namespace {

constexpr double kDamping = 0.85;
// SSSP distances are u32 on the result surface; widened to u64 bits on the
// wire so one record kind serves all algorithms.
constexpr std::uint64_t kUnreachableBits = 0xFFFFFFFFull;
constexpr std::size_t kNotLocal = static_cast<std::size_t>(-1);

std::size_t LocalIndexOf(const std::vector<ServeVertexRecord>& verts,
                         VertexId v) {
  auto it = std::lower_bound(
      verts.begin(), verts.end(), v,
      [](const ServeVertexRecord& rec, VertexId x) { return rec.v < x; });
  if (it == verts.end() || it->v != v) return kNotLocal;
  return static_cast<std::size_t>(it - verts.begin());
}

void ResetState(const ServeRequest& req, std::uint64_t n,
                ServeRankState* s) {
  const std::size_t nv = s->shard->verts.size();
  s->acc.assign(nv, 0.0);
  s->active.assign(nv, 0);
  s->changed.assign(nv, 0);
  switch (req.algo) {
    case ServeAlgo::kPageRank:
      s->value.assign(nv, PackDouble(1.0 / static_cast<double>(n)));
      break;
    case ServeAlgo::kSssp: {
      s->value.assign(nv, kUnreachableBits);
      const std::size_t li = LocalIndexOf(s->shard->verts, req.source);
      if (li != kNotLocal) {
        s->value[li] = 0;
        s->active[li] = 1;
      }
      break;
    }
    case ServeAlgo::kWcc:
      s->value.resize(nv);
      for (std::size_t i = 0; i < nv; ++i) s->value[i] = s->shard->verts[i].v;
      break;
  }
}

/// Phase A: local compute over the shard's edges + gather-box fill. Returns
/// the work units to charge (edges scanned; +1 for the SSSP frontier scan,
/// matching the single-node engine's charging).
std::uint64_t ComputeAndGather(const ServeRequest& req, ServeRankState* s,
                               std::vector<std::vector<SyncValueRecord>>* out,
                               int own_rank) {
  const ServeShard& shard = *s->shard;
  const std::size_t num_edges = shard.edges.size();
  std::uint64_t work = 0;
  switch (req.algo) {
    case ServeAlgo::kPageRank: {
      std::fill(s->acc.begin(), s->acc.end(), 0.0);
      for (std::size_t e = 0; e < num_edges; ++e) {
        const std::size_t si = s->src_ix[e];
        const std::size_t di = s->dst_ix[e];
        s->acc[si] += UnpackDouble(s->value[di]) /
                      static_cast<double>(shard.verts[di].degree);
        s->acc[di] += UnpackDouble(s->value[si]) /
                      static_cast<double>(shard.verts[si].degree);
      }
      work = num_edges;
      // Every local vertex contributes its partial to the master each
      // round (PageRank is the all-to-all heavy workload); the master's own
      // partial rides a free self-send so the fold order is uniformly
      // ascending sender rank on every transport.
      for (std::size_t li = 0; li < shard.verts.size(); ++li) {
        (*out)[shard.verts[li].master].push_back(
            SyncValueRecord{shard.verts[li].v, PackDouble(s->acc[li])});
      }
      break;
    }
    case ServeAlgo::kSssp: {
      for (std::size_t e = 0; e < num_edges; ++e) {
        const std::size_t si = s->src_ix[e];
        const std::size_t di = s->dst_ix[e];
        if (!s->active[si] && !s->active[di]) continue;
        ++work;
        const std::uint64_t via_src =
            s->value[si] == kUnreachableBits ? kUnreachableBits
                                             : s->value[si] + 1;
        const std::uint64_t via_dst =
            s->value[di] == kUnreachableBits ? kUnreachableBits
                                             : s->value[di] + 1;
        if (via_src < s->value[di]) {
          s->value[di] = via_src;
          s->changed[di] = 1;
        }
        if (via_dst < s->value[si]) {
          s->value[si] = via_dst;
          s->changed[si] = 1;
        }
      }
      work += 1;
      break;
    }
    case ServeAlgo::kWcc: {
      for (std::size_t e = 0; e < num_edges; ++e) {
        const std::size_t si = s->src_ix[e];
        const std::size_t di = s->dst_ix[e];
        const std::uint64_t lo = std::min(s->value[si], s->value[di]);
        if (s->value[si] != lo) {
          s->value[si] = lo;
          s->changed[si] = 1;
        }
        if (s->value[di] != lo) {
          s->value[di] = lo;
          s->changed[di] = 1;
        }
      }
      work = num_edges;
      break;
    }
  }
  if (req.algo != ServeAlgo::kPageRank) {
    // Gather: locally-lowered values head to their master; the master's own
    // relax result is already in place, so no self-send is needed.
    for (std::size_t li = 0; li < shard.verts.size(); ++li) {
      if (!s->changed[li]) continue;
      const int master = static_cast<int>(shard.verts[li].master);
      if (master != own_rank) {
        (*out)[master].push_back(
            SyncValueRecord{shard.verts[li].v, s->value[li]});
      }
    }
    // The old frontier is consumed; the fold/scatter builds the next one.
    std::fill(s->active.begin(), s->active.end(), 0);
  }
  return work;
}

/// Phase B at one rank: fold the gather inbox at the master vertices
/// (ascending sender order — the inbox concatenation order, identical on
/// every transport), refill the out boxes with the masters->mirrors scatter
/// and return the count of master vertices whose value changed (the rank's
/// frontier contribution).
std::uint64_t FoldAtMasters(const ServeRequest& req, std::uint64_t n,
                            ServeRankState* s,
                            const std::vector<SyncValueRecord>& inbox,
                            std::vector<std::vector<SyncValueRecord>>* out,
                            int own_rank) {
  const ServeShard& shard = *s->shard;
  std::uint64_t frontier = 0;
  if (req.algo == ServeAlgo::kPageRank) {
    std::fill(s->acc.begin(), s->acc.end(), 0.0);
    for (const SyncValueRecord& rec : inbox) {
      const std::size_t li = LocalIndexOf(shard.verts, rec.v);
      if (li == kNotLocal) continue;
      s->acc[li] += UnpackDouble(rec.bits);
    }
    for (std::size_t li = 0; li < shard.verts.size(); ++li) {
      const ServeVertexRecord& vr = shard.verts[li];
      if (static_cast<int>(vr.master) != own_rank) continue;
      const double nv = (1.0 - kDamping) / static_cast<double>(n) +
                        kDamping * s->acc[li];
      s->value[li] = PackDouble(nv);
      ++frontier;
      const std::uint64_t rb = s->rep_begin[li];
      const std::uint64_t re = s->rep_begin[li + 1];
      for (std::uint64_t r = rb; r < re; ++r) {
        const int rep = static_cast<int>(shard.replica_ranks[r]);
        if (rep == own_rank) continue;
        (*out)[rep].push_back(SyncValueRecord{vr.v, s->value[li]});
      }
    }
    return frontier;
  }
  // SSSP / WCC: min-fold the candidates into the master copy; a vertex
  // changed globally iff its master's value dropped below the last-synced
  // one (a local relax marked `changed`, or an incoming candidate won).
  for (const SyncValueRecord& rec : inbox) {
    const std::size_t li = LocalIndexOf(shard.verts, rec.v);
    if (li == kNotLocal) continue;
    if (rec.bits < s->value[li]) {
      s->value[li] = rec.bits;
      s->changed[li] = 1;
    }
  }
  for (std::size_t li = 0; li < shard.verts.size(); ++li) {
    const ServeVertexRecord& vr = shard.verts[li];
    if (static_cast<int>(vr.master) == own_rank && s->changed[li]) {
      ++frontier;
      s->active[li] = 1;
      const std::uint64_t rb = s->rep_begin[li];
      const std::uint64_t re = s->rep_begin[li + 1];
      for (std::uint64_t r = rb; r < re; ++r) {
        const int rep = static_cast<int>(shard.replica_ranks[r]);
        if (rep == own_rank) continue;
        (*out)[rep].push_back(SyncValueRecord{vr.v, s->value[li]});
      }
    }
    s->changed[li] = 0;
  }
  return frontier;
}

/// Phase C: mirrors take the folded value (and join the next frontier).
void ApplyScatter(const ServeRequest& req, ServeRankState* s,
                  const std::vector<SyncValueRecord>& inbox) {
  const bool frontier = req.algo != ServeAlgo::kPageRank;
  for (const SyncValueRecord& rec : inbox) {
    const std::size_t li = LocalIndexOf(s->shard->verts, rec.v);
    if (li == kNotLocal) continue;
    s->value[li] = rec.bits;
    if (frontier) s->active[li] = 1;
  }
}

}  // namespace

const char* ServeAlgoName(ServeAlgo algo) {
  switch (algo) {
    case ServeAlgo::kPageRank:
      return "pagerank";
    case ServeAlgo::kSssp:
      return "sssp";
    case ServeAlgo::kWcc:
      return "wcc";
  }
  return "unknown";
}

std::vector<ServeShard> BuildServeShards(
    const Graph& g, const EdgePartition& partition,
    const VertexReplicaSets& replicas,
    const std::vector<PartitionId>& master) {
  const std::uint32_t num_partitions = partition.num_partitions();
  std::vector<ServeShard> shards(num_partitions);
  for (std::uint32_t p = 0; p < num_partitions; ++p) {
    shards[p].rank = static_cast<int>(p);
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    shards[partition.Get(e)].edges.push_back(g.edge(e));
  }
  std::vector<VertexId> ids;
  for (std::uint32_t p = 0; p < num_partitions; ++p) {
    ServeShard& shard = shards[p];
    ids.clear();
    ids.reserve(shard.edges.size() * 2);
    for (const Edge& ed : shard.edges) {
      ids.push_back(ed.src);
      ids.push_back(ed.dst);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    shard.verts.reserve(ids.size());
    for (VertexId v : ids) {
      auto reps = replicas.of(v);
      ServeVertexRecord rec;
      rec.v = v;
      rec.degree = g.degree(v);
      rec.master = master[v];
      rec.num_replicas = static_cast<std::uint32_t>(reps.size());
      shard.verts.push_back(rec);
      for (PartitionId r : reps) shard.replica_ranks.push_back(r);
    }
  }
  return shards;
}

std::vector<ServeShard> BuildServeShards(const Graph& g,
                                         const EdgePartition& partition) {
  const VertexReplicaSets replicas = ComputeVertexReplicaSets(g, partition);
  std::vector<PartitionId> master(g.NumVertices(), kNoPartition);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto reps = replicas.of(v);
    if (reps.empty()) continue;
    // PowerGraph picks the master uniformly among a vertex's replicas —
    // the same choice the single-node engine makes, by the same hash.
    master[v] = reps[HashVertex(v, 0x5eed) % reps.size()];
  }
  return BuildServeShards(g, partition, replicas, master);
}

std::vector<ServeRankState> MakeServeRankStates(
    const std::vector<ServeShard>& shards) {
  std::vector<ServeRankState> states(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    ServeRankState& s = states[i];
    s.shard = &shards[i];
    const ServeShard& shard = shards[i];
    s.src_ix.resize(shard.edges.size());
    s.dst_ix.resize(shard.edges.size());
    for (std::size_t e = 0; e < shard.edges.size(); ++e) {
      s.src_ix[e] =
          static_cast<std::uint32_t>(LocalIndexOf(shard.verts,
                                                  shard.edges[e].src));
      s.dst_ix[e] =
          static_cast<std::uint32_t>(LocalIndexOf(shard.verts,
                                                  shard.edges[e].dst));
    }
    s.rep_begin.assign(shard.verts.size() + 1, 0);
    for (std::size_t li = 0; li < shard.verts.size(); ++li) {
      s.rep_begin[li + 1] = s.rep_begin[li] + shard.verts[li].num_replicas;
    }
  }
  return states;
}

Status RunServeRequest(const ServeRequest& req, const ServeRunEnv& env,
                       std::vector<ServeRankState>* states,
                       ServeRunStats* stats) {
  Communicator* comm = env.comm;
  const int num_ranks = comm->num_ranks();
  const std::uint64_t n = env.num_vertices;
  stats->supersteps = 0;
  stats->abort_flags = 0;
  for (ServeRankState& s : *states) ResetState(req, n, &s);
  const std::uint64_t default_valve =
      req.algo == ServeAlgo::kPageRank
          ? static_cast<std::uint64_t>(req.iterations)
          : 10 * n + 100;
  const std::uint64_t max_steps =
      req.max_supersteps != 0 ? req.max_supersteps : default_valve;
  if (max_steps == 0) return Status::OK();  // zero-iteration PageRank

  RankMailboxes<SyncValueRecord> sync;
  sync.Init(states->size(), num_ranks);
  const std::vector<int>& locals = comm->local_ranks();
  std::vector<ServeStepSummary> local(states->size());
  std::vector<ServeStepSummary> all;

  for (std::uint64_t superstep = 1;; ++superstep) {
    std::uint32_t abort_flags = 0;
    if (env.step_hook) {
      DNE_RETURN_IF_ERROR(env.step_hook(superstep, &abort_flags));
    }
    for (std::size_t l = 0; l < states->size(); ++l) {
      const std::uint64_t work =
          ComputeAndGather(req, &(*states)[l], &sync.out[l], locals[l]);
      if (env.ledger != nullptr) env.ledger->AddWork(locals[l], work);
    }
    DNE_RETURN_IF_ERROR(comm->Exchange(DneMsgKind::kServeSync, &sync));
    for (std::size_t l = 0; l < states->size(); ++l) {
      const std::uint64_t frontier = FoldAtMasters(
          req, n, &(*states)[l], sync.in[l], &sync.out[l], locals[l]);
      local[l].rank = static_cast<std::uint32_t>(locals[l]);
      local[l].flags = abort_flags;
      local[l].active = frontier;
    }
    DNE_RETURN_IF_ERROR(comm->ExchangeServeStep(&sync, local, &all));
    for (std::size_t l = 0; l < states->size(); ++l) {
      ApplyScatter(req, &(*states)[l], sync.in[l]);
    }
    std::uint64_t total_active = 0;
    std::uint32_t flags = 0;
    for (const ServeStepSummary& s : all) {
      total_active += s.active;
      flags |= s.flags;
    }
    if (env.ledger != nullptr) env.ledger->EndSuperstep();
    stats->supersteps = superstep;
    const bool done = req.algo == ServeAlgo::kPageRank
                          ? superstep >= req.iterations
                          : total_active == 0;
    if (done) break;  // natural completion wins over a same-step abort
    if (flags != 0) {
      stats->abort_flags = flags;
      const std::string after =
          " after " + std::to_string(superstep) + " superstep(s)";
      if ((flags & kServeAbortDeadline) != 0) {
        return Status::DeadlineExceeded(std::string(ServeAlgoName(req.algo)) +
                                        " deadline exceeded" + after);
      }
      return Status::Cancelled(std::string(ServeAlgoName(req.algo)) +
                               " cancelled" + after);
    }
    if (superstep >= max_steps) break;  // safety valve
  }
  return Status::OK();
}

void CollectMasterValues(const ServeRankState& state,
                         std::vector<SyncValueRecord>* out) {
  const ServeShard& shard = *state.shard;
  for (std::size_t li = 0; li < shard.verts.size(); ++li) {
    if (static_cast<int>(shard.verts[li].master) != shard.rank) continue;
    out->push_back(SyncValueRecord{shard.verts[li].v, state.value[li]});
  }
}

void InitServeResultBits(const ServeRequest& req, std::uint64_t n,
                         std::vector<std::uint64_t>* bits) {
  switch (req.algo) {
    case ServeAlgo::kPageRank:
      // Vertices no shard hosts are isolated: they keep the uniform prior,
      // exactly like the single-node engine's degree-0 skip.
      bits->assign(n, PackDouble(1.0 / static_cast<double>(n)));
      break;
    case ServeAlgo::kSssp:
      bits->assign(n, kUnreachableBits);
      if (req.source < n) (*bits)[req.source] = 0;
      break;
    case ServeAlgo::kWcc:
      bits->resize(n);
      for (std::uint64_t v = 0; v < n; ++v) (*bits)[v] = v;
      break;
  }
}

std::uint64_t PredictPageRankSyncBytesPerSuperstep(
    const VertexReplicaSets& replicas) {
  const std::uint64_t num_vertices = replicas.offsets.size() - 1;
  std::uint64_t mirrors = 0;
  for (std::uint64_t v = 0; v < num_vertices; ++v) {
    const std::uint64_t reps = replicas.offsets[v + 1] - replicas.offsets[v];
    if (reps > 1) mirrors += reps - 1;
  }
  return 2 * mirrors * sizeof(SyncValueRecord);
}

}  // namespace dne
