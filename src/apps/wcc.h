// Single-machine weakly-connected-components reference (union-find).
#ifndef DNE_APPS_WCC_H_
#define DNE_APPS_WCC_H_

#include <vector>

#include "graph/graph.h"

namespace dne {

/// Component labels: every vertex maps to the minimum vertex id in its
/// component (matching the engine's min-label propagation output).
std::vector<VertexId> WccReference(const Graph& g);

/// Number of components among non-isolated vertices plus isolated singletons.
std::size_t CountComponents(const std::vector<VertexId>& labels);

}  // namespace dne

#endif  // DNE_APPS_WCC_H_
