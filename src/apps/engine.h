// VertexCutEngine: a PowerLyra/PowerGraph-style substrate for running graph
// applications over an *edge partition* (Sec. 7.6). Each partition owns its
// edge set; vertices incident to several partitions are replicated with one
// master and k-1 mirrors; per-superstep mirror synchronisation is the
// communication the partition quality controls.
//
// The superstep loop itself lives in apps/serve_engine.h and runs over a
// Communicator — this class is the single-node harness around it: it builds
// the resident shards once, executes each request over an
// InProcessCommunicator backed by a SimCluster (modeled charging), and
// decodes the raw result bits into the typed per-algorithm outputs.
#ifndef DNE_APPS_ENGINE_H_
#define DNE_APPS_ENGINE_H_

#include <cstdint>
#include <vector>

#include "apps/serve_engine.h"
#include "common/status.h"
#include "core/partition_context.h"
#include "graph/graph.h"
#include "metrics/partition_metrics.h"
#include "partition/edge_partition.h"
#include "runtime/cost_model.h"
#include "runtime/sim_cluster.h"

namespace dne {

/// Performance summary of one application run (Table 5's ET / COM / WB).
struct AppStats {
  double wall_seconds = 0.0;  ///< measured wall-clock of the simulation
  double sim_seconds = 0.0;   ///< cost-model elapsed time (the paper's ET)
  std::uint64_t comm_bytes = 0;   ///< mirror-sync traffic (the paper's COM)
  std::uint64_t supersteps = 0;
  double work_balance = 1.0;  ///< max/mean per-partition work (the paper's WB)
};

class VertexCutEngine {
 public:
  /// Builds the replica topology for `partition` over `g`. The partition
  /// must satisfy EdgePartition::Validate.
  VertexCutEngine(const Graph& g, const EdgePartition& partition,
                  const CostModelOptions& cost = CostModelOptions{});

  // States hold pointers into shards; moving/copying would dangle them.
  VertexCutEngine(const VertexCutEngine&) = delete;
  VertexCutEngine& operator=(const VertexCutEngine&) = delete;

  std::uint32_t num_partitions() const { return num_partitions_; }
  const std::vector<std::vector<EdgeId>>& local_edges() const {
    return local_edges_;
  }
  const std::vector<ServeShard>& shards() const { return shards_; }
  const VertexReplicaSets& replicas() const { return replicas_; }

  /// Optional execution context (borrowed). When its cancel flag is set, any
  /// in-flight Run* stops cooperatively at the next superstep boundary: the
  /// Status overloads return Cancelled with the partially-converged values
  /// decoded (all replicas consistent through the last completed superstep).
  void set_context(const PartitionContext* ctx) { ctx_ = ctx; }

  /// Synchronous PageRank, `iterations` rounds, damping 0.85. `ranks` gets
  /// the final (degree-normalised, undirected) scores.
  AppStats RunPageRank(int iterations, std::vector<double>* ranks);
  Status RunPageRank(int iterations, std::vector<double>* ranks,
                     AppStats* stats);

  /// Single-source shortest paths with unit weights (= BFS levels), Bellman-
  /// Ford supersteps. Unreachable vertices get kUnreachable.
  static constexpr std::uint32_t kUnreachable = UINT32_MAX;
  AppStats RunSssp(VertexId source, std::vector<std::uint32_t>* dist);
  Status RunSssp(VertexId source, std::vector<std::uint32_t>* dist,
                 AppStats* stats);

  /// Weakly connected components by min-label propagation; `labels` maps
  /// every vertex to its component's minimum vertex id.
  AppStats RunWcc(std::vector<VertexId>* labels);
  Status RunWcc(std::vector<VertexId>* labels, AppStats* stats);

 private:
  /// Runs `req` over the resident shards on a fresh simulated cluster and
  /// leaves the decoded per-vertex result bits in `bits`.
  Status RunServe(const ServeRequest& req, std::vector<std::uint64_t>* bits,
                  AppStats* stats);

  const Graph& g_;
  std::uint32_t num_partitions_;
  std::vector<std::vector<EdgeId>> local_edges_;
  VertexReplicaSets replicas_;
  std::vector<PartitionId> master_;  // master partition per vertex
  CostModelOptions cost_options_;
  std::vector<ServeShard> shards_;
  std::vector<ServeRankState> states_;
  const PartitionContext* ctx_ = nullptr;
};

}  // namespace dne

#endif  // DNE_APPS_ENGINE_H_
