// ProcessServeBackend: the multi-process ServeBackend with supervised
// rank-failure recovery. The coordinator forks one process per rank group
// (ProcessCluster), ships each its resident shards ONCE per cluster launch,
// then runs many requests against the standing cluster — per request the
// only traffic is a 32-byte request frame down, the replica-sync mesh rounds
// between the rank processes, and the per-rank result + stats frames back.
//
// Failure model (the PR-8 recovery pattern extended to the data plane): a
// rank process dying mid-query closes its socket ends; every peer's mesh
// round turns into kUnavailable and the survivors park (mesh closed, parked
// report sent, waiting for SIGKILL) — the cluster drains instead of
// deadlocking. The coordinator tears the cluster down, relaunches it at
// recovery epoch+1 (which disarms the one-shot fault plan entries of the
// dead epoch), re-ships the cached shard frames and transparently re-runs
// the in-flight request — the BSP loop is deterministic, so the retried
// result is bit-identical to the fault-free run. Exponential backoff between
// relaunches, up to max_recoveries per request; completed requests are never
// re-run.
//
// Deadlines and cancellation cross the process boundary as a tiny
// ServeCancelRecord frame to rank process 0, whose superstep hook folds the
// abort flags into its step summary — every rank observes them through the
// summary channel and stops at the same superstep boundary.
#ifndef DNE_APPS_SERVE_TRANSPORT_H_
#define DNE_APPS_SERVE_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/serve_server.h"
#include "common/status.h"
#include "graph/graph.h"
#include "partition/dne/dne_options.h"
#include "partition/edge_partition.h"
#include "runtime/process_cluster.h"

namespace dne {

struct ProcessServeOptions {
  int nproc = 2;
  /// Mesh-round deadline inside the rank processes; the coordinator's
  /// cluster-stall watchdog fires at twice this.
  double stall_timeout_s = 600.0;
  /// Supervised relaunches a single request may consume before its failure
  /// becomes terminal.
  std::uint32_t max_recoveries = 2;
  /// Deterministic fault plan (the `fault=` grammar of the partitioning
  /// transport, reused verbatim — see partition/dne/fault_plan.h).
  FaultAction faults[DneOptions::kMaxFaultActions] = {};
  std::uint32_t num_faults = 0;

  Status Validate() const;
};

class ProcessServeBackend final : public ServeBackend {
 public:
  /// Builds (and caches, serialised) the per-rank shards; the cluster itself
  /// launches lazily on the first Execute. `g` is only read here.
  ProcessServeBackend(const Graph& g, const EdgePartition& partition,
                      const ProcessServeOptions& opts);
  ~ProcessServeBackend() override;  ///< graceful Shutdown

  ProcessServeBackend(const ProcessServeBackend&) = delete;
  ProcessServeBackend& operator=(const ProcessServeBackend&) = delete;

  std::uint64_t num_vertices() const override { return num_vertices_; }

  /// Runs one request on the standing cluster (launching it if needed),
  /// recovering from rank failures as described above. Serialised by the
  /// ServeServer worker; not internally synchronised.
  Status Execute(const ServeRequest& req, const std::atomic<bool>* cancel,
                 const std::chrono::steady_clock::time_point* deadline,
                 ServeResponse* resp) override;

  /// Graceful teardown: a shutdown frame to every rank process, then a
  /// blocking reap. Idempotent; the next Execute relaunches.
  void Shutdown();

  /// Supervised relaunches across all requests so far.
  std::uint32_t total_recoveries() const { return total_recoveries_; }
  /// High-water peak RSS any rank process self-reported in a stats frame.
  std::uint64_t peak_child_rss_bytes() const { return peak_child_rss_; }

 private:
  Status EnsureCluster();
  /// One attempt on the live cluster. On failure `*recoverable` says whether
  /// a relaunch may retry and `*detail` carries the structured coordinates.
  Status ExecuteOnce(const ServeRequest& req, const std::atomic<bool>* cancel,
                     const std::chrono::steady_clock::time_point* deadline,
                     ServeResponse* resp, bool* recoverable,
                     std::string* detail);
  void KillCluster();

  std::uint64_t num_vertices_;
  std::uint32_t num_ranks_;
  ProcessServeOptions opts_;
  /// Serialised kServeCtrlShard payload per rank, built once in the
  /// constructor and re-shipped verbatim on every (re)launch.
  std::vector<std::vector<unsigned char>> shard_frames_;
  std::unique_ptr<ProcessCluster> cluster_;
  std::int32_t epoch_ = 0;  ///< bumped on every supervised relaunch
  std::uint32_t total_recoveries_ = 0;
  std::uint64_t peak_child_rss_ = 0;
};

}  // namespace dne

#endif  // DNE_APPS_SERVE_TRANSPORT_H_
