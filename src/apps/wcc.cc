#include "apps/wcc.h"

#include <algorithm>
#include <numeric>

namespace dne {

std::vector<VertexId> WccReference(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), VertexId{0});
  // Union by min id with path halving.
  auto find = [&](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : g.edges().edges()) {
    VertexId a = find(e.src), b = find(e.dst);
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    parent[b] = a;  // min-id root
  }
  std::vector<VertexId> labels(n);
  for (VertexId v = 0; v < n; ++v) labels[v] = find(v);
  return labels;
}

std::size_t CountComponents(const std::vector<VertexId>& labels) {
  std::size_t count = 0;
  for (VertexId v = 0; v < labels.size(); ++v) {
    if (labels[v] == v) ++count;
  }
  return count;
}

}  // namespace dne
