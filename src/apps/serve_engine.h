// ServeEngine: the Communicator-hosted execution core of the serving
// runtime. Each algorithm (PageRank / SSSP / WCC) runs rank-local over a
// resident partition shard; the ONLY cross-rank traffic is replica
// synchronisation — a gather of per-replica contributions to each vertex's
// master (kServeSync) and a fused end-of-superstep round (kServeStepEnd)
// that scatters the folded values back to the mirrors and broadcasts the
// per-rank ServeStepSummary from which every rank derives the same
// termination / cooperative-abort decision.
//
// One superstep:
//   A. local compute over the shard's edges (in-place relax for SSSP/WCC,
//      partial PageRank accumulation), work charged per rank;
//   B. gather: per-vertex records to the master rank (Exchange kServeSync);
//   C. fold at masters (ascending sender-rank order — deterministic and
//      identical across transports), refill the mailboxes with the scatter,
//      and ExchangeServeStep — the scatter and summaries ride one frame;
//   D. apply the scatter at mirrors, fold the summary table, EndSuperstep.
//
// The same code drives the in-process backend (all ranks in one address
// space, modeled charging) and each forked rank process (socket mesh,
// observed charging) — that symmetry is what makes serve-mode results
// bit-identical across transports and across fault-recovery retries.
#ifndef DNE_APPS_SERVE_ENGINE_H_
#define DNE_APPS_SERVE_ENGINE_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/graph.h"
#include "metrics/partition_metrics.h"
#include "partition/edge_partition.h"
#include "runtime/communicator.h"
#include "runtime/serve_messages.h"

namespace dne {

/// The served algorithms; values match ServeRequestRecord::algo on the wire.
enum class ServeAlgo : std::uint32_t {
  kPageRank = 0,
  kSssp = 1,
  kWcc = 2,
};

const char* ServeAlgoName(ServeAlgo algo);

/// The immutable resident state of one rank: its edge set plus a descriptor
/// per incident vertex (global degree, master rank, replica set). Built once
/// per partition, shipped once per cluster (re)launch — requests reuse it.
struct ServeShard {
  int rank = 0;
  std::vector<Edge> edges;                   ///< ascending global edge order
  std::vector<ServeVertexRecord> verts;      ///< ascending vertex id
  std::vector<std::uint32_t> replica_ranks;  ///< concatenated per-vertex sets
};

/// Builds the per-rank shards for `partition` over `g`, with the replica
/// topology (and master choice) supplied by the caller so the serve path and
/// the single-node engine agree by construction.
std::vector<ServeShard> BuildServeShards(const Graph& g,
                                         const EdgePartition& partition,
                                         const VertexReplicaSets& replicas,
                                         const std::vector<PartitionId>& master);

/// Convenience overload computing the replica topology the engine's way
/// (ComputeVertexReplicaSets + uniform-hash master choice).
std::vector<ServeShard> BuildServeShards(const Graph& g,
                                         const EdgePartition& partition);

/// Mutable per-rank run state over an immutable shard. Reset per request;
/// buffers retain capacity so steady-state serving is allocation-light.
struct ServeRankState {
  const ServeShard* shard = nullptr;
  // Precomputed local endpoint indices, one pair per shard edge.
  std::vector<std::uint32_t> src_ix;
  std::vector<std::uint32_t> dst_ix;
  // Offsets into shard->replica_ranks, one per local vertex (+1 sentinel).
  std::vector<std::uint64_t> rep_begin;
  // Per-request values (raw bits), PageRank partials, frontier marks.
  std::vector<std::uint64_t> value;
  std::vector<double> acc;
  std::vector<std::uint8_t> active;
  std::vector<std::uint8_t> changed;
};

/// Builds run states (with the index precomputation) over borrowed shards;
/// `shards` must outlive the states.
std::vector<ServeRankState> MakeServeRankStates(
    const std::vector<ServeShard>& shards);

/// One query.
struct ServeRequest {
  std::uint64_t req_id = 0;
  ServeAlgo algo = ServeAlgo::kPageRank;
  std::uint32_t iterations = 10;     ///< PageRank rounds
  VertexId source = 0;               ///< SSSP source
  std::uint64_t max_supersteps = 0;  ///< 0 = algorithm default safety valve
};

/// Execution environment of one request on one endpoint.
struct ServeRunEnv {
  Communicator* comm = nullptr;
  CommLedger* ledger = nullptr;  ///< may be null
  std::uint64_t num_vertices = 0;
  /// Called at the top of each superstep (1-based). OR kServeAbort* bits
  /// into *abort_flags to request a cooperative stop — the flags ride the
  /// summary channel, so every rank stops at the same superstep boundary. A
  /// non-OK return aborts the endpoint immediately (transport failure).
  std::function<Status(std::uint64_t superstep, std::uint32_t* abort_flags)>
      step_hook;
};

/// Progress of one request on one endpoint; valid even when the run ends
/// early (deadline / cancellation / transport failure) — the partial
/// progress the deadline path reports.
struct ServeRunStats {
  std::uint64_t supersteps = 0;
  std::uint32_t abort_flags = 0;
};

/// Runs one request over the hosted rank states. Returns OK on normal
/// completion; DeadlineExceeded / Cancelled when an abort flag stopped the
/// loop (all replicas are still consistently synced through the last
/// completed superstep); any transport error as-is (kUnavailable = park and
/// let the supervisor recover).
Status RunServeRequest(const ServeRequest& req, const ServeRunEnv& env,
                       std::vector<ServeRankState>* states,
                       ServeRunStats* stats);

/// Appends (v, bits) for every master-owned vertex of `state` — the rank's
/// contribution to the request's result.
void CollectMasterValues(const ServeRankState& state,
                         std::vector<SyncValueRecord>* out);

/// Fills `bits` with the request's default result (vertices no shard hosts):
/// PageRank 1/n, SSSP unreachable with dist[source] = 0, WCC own label.
void InitServeResultBits(const ServeRequest& req, std::uint64_t n,
                         std::vector<std::uint64_t>* bits);

/// Bit-packing helpers shared by the kernels and the result decoders.
inline std::uint64_t PackDouble(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}
inline double UnpackDouble(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

/// Predicted cross-rank replica-sync payload per PageRank superstep: every
/// mirror sends one 16-byte gather record and receives one 16-byte scatter
/// record, so the traffic is 2 * 16 * (total replicas - replicated vertices)
/// — the replication-factor measurement the serve bench reconciles observed
/// wire bytes against.
std::uint64_t PredictPageRankSyncBytesPerSuperstep(
    const VertexReplicaSets& replicas);

/// Totals-only accounting sink for per-request serve stats (the process
/// backend ships one ServeStatsRecord per request instead of a full tape).
class ServeTotalsLedger final : public CommLedger {
 public:
  void AddWork(int, std::uint64_t ops) override { work_ += ops; }
  void AddDataMessage(int, std::uint64_t payload_bytes) override {
    data_bytes_ += payload_bytes;
    ++data_messages_;
  }
  void AddControlBytes(int, std::uint64_t bytes) override {
    control_bytes_ += bytes;
  }
  void AddWireOverhead(int, std::uint64_t bytes,
                       std::uint64_t frames) override {
    wire_bytes_ += bytes;
    wire_frames_ += frames;
  }
  void EndPhase(bool) override {}
  void EndSuperstep() override { ++supersteps_; }

  std::uint64_t work() const { return work_; }
  std::uint64_t data_bytes() const { return data_bytes_; }
  std::uint64_t data_messages() const { return data_messages_; }
  std::uint64_t control_bytes() const { return control_bytes_; }
  std::uint64_t wire_bytes() const { return wire_bytes_; }
  std::uint64_t wire_frames() const { return wire_frames_; }
  std::uint64_t supersteps() const { return supersteps_; }

 private:
  std::uint64_t work_ = 0;
  std::uint64_t data_bytes_ = 0;
  std::uint64_t data_messages_ = 0;
  std::uint64_t control_bytes_ = 0;
  std::uint64_t wire_bytes_ = 0;
  std::uint64_t wire_frames_ = 0;
  std::uint64_t supersteps_ = 0;
};

}  // namespace dne

#endif  // DNE_APPS_SERVE_ENGINE_H_
