#include "apps/serve_transport.h"

#include <poll.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "runtime/fault_injector.h"
#include "runtime/wire.h"

namespace dne {
namespace {

// Serve control-channel frame kinds — disjoint from DneMsgKind and from the
// partitioning transport's CtrlKind (32-38) so a crossed wire is caught as a
// protocol desync, not misparsed.
enum ServeCtrlKind : std::uint8_t {
  kServeCtrlConfig = 48,      ///< ServeConfigRecord + FaultAction records
  kServeCtrlShard = 49,       ///< ServeShardHead + edges + verts + replicas
  kServeCtrlShardsDone = 50,  ///< end of the shard shipment
  kServeCtrlRequest = 51,     ///< ServeRequestRecord, broadcast to all procs
  kServeCtrlCancel = 52,      ///< ServeCancelRecord, to rank process 0 only
  kServeCtrlResult = 53,      ///< ServeResultHead + SyncValueRecords
  kServeCtrlStats = 54,       ///< one ServeStatsRecord per rank process
  kServeCtrlError = 55,       ///< hard child failure, message payload
  kServeCtrlParked = 56,      ///< ServeParkedHead + message (recoverable)
  kServeCtrlShutdown = 57,    ///< graceful drain: child exits 0
};

constexpr const char* kCoordinator = "serve coordinator";

std::uint64_t SelfPeakRssBytes() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
}

const char* ServeRoundName(std::uint8_t kind) {
  switch (static_cast<DneMsgKind>(kind)) {
    case DneMsgKind::kServeSync:
      return "serve-sync";
    case DneMsgKind::kServeStepEnd:
      return "serve-step-end";
    case DneMsgKind::kBarrier:
      return "barrier";
    default:
      return "unknown";
  }
}

std::string ProcLabel(int c) { return "serve rank process " + std::to_string(c); }

// ---- Child side -------------------------------------------------------------

/// Recoverable-failure terminal state of a serve rank process: close the
/// mesh so every peer unblocks with EOF (their round turns kUnavailable and
/// they park too — the cluster drains instead of deadlocking), report the
/// (request, superstep, round) coordinates, then wait for the supervisor's
/// SIGKILL.
[[noreturn]] void ServePark(int child, const std::vector<int>& mesh_fds,
                            int control_fd, std::uint64_t req_id,
                            std::uint32_t superstep, std::uint8_t round_kind,
                            const std::string& why) {
  for (int fd : mesh_fds) {
    if (fd >= 0) ::close(fd);
  }
  std::vector<unsigned char> buf;
  ServeParkedHead head{};
  head.req_id = req_id;
  head.superstep = superstep;
  head.round_kind = round_kind;
  wire::AppendPod(&buf, head);
  buf.insert(buf.end(), why.begin(), why.end());
  (void)wire::SendFrame(control_fd, kServeCtrlParked,
                        static_cast<std::uint32_t>(child), buf.data(),
                        buf.size(), kCoordinator);
  char b;
  for (;;) {
    const ssize_t n = ::read(control_fd, &b, 1);
    if (n == 0 || (n < 0 && errno != EINTR)) break;
  }
  ::_exit(0);
}

/// Parses one kServeCtrlShard payload into `shard`.
Status ParseShardFrame(const std::vector<unsigned char>& payload,
                       std::uint32_t rank, ServeShard* shard) {
  wire::PayloadReader reader(payload.data(), payload.size());
  ServeShardHead head{};
  if (!reader.Read(&head) || head.rank != rank ||
      reader.remaining() != head.num_edges * sizeof(Edge) +
                                head.num_vertices * sizeof(ServeVertexRecord) +
                                head.num_replica_ids * sizeof(std::uint32_t)) {
    return Status::Internal("malformed shard frame for rank " +
                            std::to_string(rank));
  }
  shard->rank = static_cast<int>(rank);
  shard->edges.resize(head.num_edges);
  if (head.num_edges > 0 &&
      !reader.ReadBytes(shard->edges.data(), head.num_edges * sizeof(Edge))) {
    return Status::Internal("malformed shard frame for rank " +
                            std::to_string(rank));
  }
  shard->verts.resize(head.num_vertices);
  if (head.num_vertices > 0 &&
      !reader.ReadBytes(shard->verts.data(),
                        head.num_vertices * sizeof(ServeVertexRecord))) {
    return Status::Internal("malformed shard frame for rank " +
                            std::to_string(rank));
  }
  shard->replica_ranks.resize(head.num_replica_ids);
  if (head.num_replica_ids > 0 &&
      !reader.ReadBytes(shard->replica_ranks.data(),
                        head.num_replica_ids * sizeof(std::uint32_t))) {
    return Status::Internal("malformed shard frame for rank " +
                            std::to_string(rank));
  }
  return Status::OK();
}

Status ServeChildRun(int child, const std::vector<int>& mesh_fds,
                     int control_fd) {
  wire::FrameHeader header;
  std::vector<unsigned char> payload;
  DNE_RETURN_IF_ERROR(
      wire::RecvFrame(control_fd, &header, &payload, kCoordinator));
  if (header.kind != kServeCtrlConfig) {
    return Status::Internal("serve rank process expected a config frame");
  }
  ServeConfigRecord cfg{};
  FaultAction faults[DneOptions::kMaxFaultActions] = {};
  {
    wire::PayloadReader reader(payload.data(), payload.size());
    if (!reader.Read(&cfg) || cfg.num_faults > DneOptions::kMaxFaultActions) {
      return Status::Internal("malformed serve config frame");
    }
    for (std::uint32_t i = 0; i < cfg.num_faults; ++i) {
      if (!reader.Read(&faults[i])) {
        return Status::Internal("malformed serve config frame");
      }
    }
  }

  // Deterministic fault injection: only the plan entries keyed to this
  // process and this recovery epoch are armed.
  FaultInjector injector;
  injector.Configure(faults, cfg.num_faults, child,
                     static_cast<int>(cfg.nproc), cfg.epoch);

  SocketCommunicator comm(static_cast<int>(cfg.num_ranks),
                          static_cast<int>(cfg.nproc), child, mesh_fds,
                          /*coalesce=*/true,
                          static_cast<double>(cfg.stall_timeout_ms) / 1000.0);
  if (injector.armed()) comm.SetFaultInjector(&injector);
  const std::vector<int>& local = comm.local_ranks();
  const std::size_t num_local = local.size();

  // Resident shards, one per hosted rank. The frame's `from` field carries
  // the destination rank; arrival order is not assumed.
  std::vector<ServeShard> shards(num_local);
  std::vector<bool> have(num_local, false);
  for (;;) {
    DNE_RETURN_IF_ERROR(
        wire::RecvFrame(control_fd, &header, &payload, kCoordinator));
    if (header.kind == kServeCtrlShardsDone) break;
    if (header.kind != kServeCtrlShard) {
      return Status::Internal("serve rank process expected a shard frame");
    }
    if (header.from >= cfg.num_ranks ||
        comm.rank_to_proc(static_cast<int>(header.from)) != child) {
      return Status::Internal("misrouted shard frame");
    }
    const std::size_t slot = comm.slot_of_rank(static_cast<int>(header.from));
    DNE_RETURN_IF_ERROR(ParseShardFrame(payload, header.from, &shards[slot]));
    have[slot] = true;
  }
  for (std::size_t l = 0; l < num_local; ++l) {
    if (!have[l]) {
      return Status::Internal("shard shipment incomplete: rank " +
                              std::to_string(local[l]) + " missing");
    }
  }
  std::vector<ServeRankState> states = MakeServeRankStates(shards);

  // Request loop: the process is a resident serving endpoint — it holds the
  // shards and answers requests until told to shut down. Any control-channel
  // failure here means the coordinator is gone: exit quietly, nothing is
  // in flight.
  for (;;) {
    if (!wire::RecvFrame(control_fd, &header, &payload, kCoordinator).ok()) {
      return Status::OK();
    }
    if (header.kind == kServeCtrlShutdown) return Status::OK();
    if (header.kind == kServeCtrlCancel) continue;  // stale: request finished
    if (header.kind != kServeCtrlRequest) {
      return Status::Internal("serve rank process expected a request frame");
    }
    ServeRequestRecord rr{};
    {
      wire::PayloadReader reader(payload.data(), payload.size());
      if (!reader.Read(&rr) || reader.remaining() != 0) {
        return Status::Internal("malformed serve request frame");
      }
    }
    ServeRequest req;
    req.req_id = rr.req_id;
    req.algo = static_cast<ServeAlgo>(rr.algo);
    req.iterations = rr.iterations;
    req.source = rr.source;
    req.max_supersteps = rr.max_supersteps;

    ServeTotalsLedger ledger;
    comm.SetLedger(&ledger);
    std::uint32_t sticky_flags = 0;
    std::uint32_t current_superstep = 0;
    ServeRunEnv env;
    env.comm = &comm;
    env.ledger = &ledger;
    env.num_vertices = cfg.num_vertices;
    env.step_hook = [&](std::uint64_t superstep,
                        std::uint32_t* abort_flags) -> Status {
      current_superstep = static_cast<std::uint32_t>(superstep);
      injector.SetSuperstep(current_superstep);
      injector.AtSuperstepStart();
      if (child == 0) {
        // Only process 0 is addressed with cancel frames; its summary flags
        // reach every rank through the step-end summary channel.
        pollfd pfd{control_fd, POLLIN, 0};
        while (::poll(&pfd, 1, 0) > 0 && (pfd.revents & POLLIN) != 0) {
          wire::FrameHeader h;
          std::vector<unsigned char> pl;
          DNE_RETURN_IF_ERROR(wire::RecvFrame(control_fd, &h, &pl,
                                              kCoordinator));
          if (h.kind == kServeCtrlCancel) {
            ServeCancelRecord cr{};
            wire::PayloadReader reader(pl.data(), pl.size());
            if (reader.Read(&cr) && cr.req_id == req.req_id) {
              sticky_flags |= cr.flags;
            }  // a stale id targets an already-finished request: ignore
          } else if (h.kind == kServeCtrlShutdown) {
            // Drain raced a running request: finish it as cancelled.
            sticky_flags |= kServeAbortCancelled;
          } else {
            return Status::Internal("unexpected control frame mid-request");
          }
          pfd.revents = 0;
        }
      }
      *abort_flags |= sticky_flags;
      return Status::OK();
    };

    ServeRunStats run_stats;
    Status run = RunServeRequest(req, env, &states, &run_stats);
    comm.SetLedger(nullptr);
    const bool reportable =
        run.ok() || run.code() == Status::Code::kDeadlineExceeded ||
        run.code() == Status::Code::kCancelled;
    if (!reportable) {
      if (run.code() == Status::Code::kUnavailable) {
        ServePark(child, mesh_fds, control_fd, req.req_id,
                  current_superstep, comm.last_round_kind(), run.message());
      }
      return run;
    }

    // Results: one frame per hosted rank with its master values, then one
    // stats frame with this endpoint's observed totals.
    std::vector<unsigned char> buf;
    std::vector<SyncValueRecord> masters;
    for (std::size_t l = 0; l < num_local; ++l) {
      masters.clear();
      CollectMasterValues(states[l], &masters);
      buf.clear();
      ServeResultHead rh{};
      rh.req_id = req.req_id;
      rh.rank = static_cast<std::uint32_t>(local[l]);
      rh.status_code = static_cast<std::uint32_t>(run.code());
      rh.num_values = masters.size();
      rh.supersteps = run_stats.supersteps;
      wire::AppendPod(&buf, rh);
      const auto* data =
          reinterpret_cast<const unsigned char*>(masters.data());
      buf.insert(buf.end(), data,
                 data + masters.size() * sizeof(SyncValueRecord));
      DNE_RETURN_IF_ERROR(wire::SendFrame(control_fd, kServeCtrlResult,
                                          static_cast<std::uint32_t>(child),
                                          buf.data(), buf.size(),
                                          kCoordinator));
    }
    buf.clear();
    ServeStatsRecord sr{};
    sr.req_id = req.req_id;
    sr.supersteps = ledger.supersteps();
    sr.data_bytes = ledger.data_bytes();
    sr.data_messages = ledger.data_messages();
    sr.control_bytes = ledger.control_bytes();
    sr.wire_bytes = ledger.wire_bytes();
    sr.wire_frames = ledger.wire_frames();
    sr.rss_bytes = SelfPeakRssBytes();
    wire::AppendPod(&buf, sr);
    DNE_RETURN_IF_ERROR(wire::SendFrame(control_fd, kServeCtrlStats,
                                        static_cast<std::uint32_t>(child),
                                        buf.data(), buf.size(),
                                        kCoordinator));
  }
}

int ServeChildMain(int child, const std::vector<int>& mesh_fds,
                   int control_fd) {
  const Status st = ServeChildRun(child, mesh_fds, control_fd);
  if (st.ok()) return 0;
  const std::string msg = st.ToString();
  (void)wire::SendFrame(
      control_fd, kServeCtrlError, static_cast<std::uint32_t>(child),
      reinterpret_cast<const unsigned char*>(msg.data()), msg.size(),
      kCoordinator);
  return 1;
}

}  // namespace

// ---- Coordinator side -------------------------------------------------------

Status ProcessServeOptions::Validate() const {
  if (nproc < 1) {
    return Status::InvalidArgument("serve: nproc must be >= 1");
  }
  if (stall_timeout_s <= 0.0) {
    return Status::InvalidArgument("serve: stall_timeout_s must be positive");
  }
  if (num_faults > DneOptions::kMaxFaultActions) {
    return Status::InvalidArgument("serve: too many fault actions");
  }
  return Status::OK();
}

ProcessServeBackend::ProcessServeBackend(const Graph& g,
                                         const EdgePartition& partition,
                                         const ProcessServeOptions& opts)
    : num_vertices_(g.NumVertices()),
      num_ranks_(partition.num_partitions()),
      opts_(opts) {
  // Serialise every shard once; recovery re-ships these buffers verbatim so
  // a relaunched cluster is bit-identical to the original.
  const std::vector<ServeShard> shards = BuildServeShards(g, partition);
  shard_frames_.resize(shards.size());
  for (std::size_t r = 0; r < shards.size(); ++r) {
    const ServeShard& shard = shards[r];
    std::vector<unsigned char>& buf = shard_frames_[r];
    ServeShardHead head{};
    head.rank = static_cast<std::uint32_t>(r);
    head.num_edges = shard.edges.size();
    head.num_vertices = shard.verts.size();
    head.num_replica_ids = shard.replica_ranks.size();
    wire::AppendPod(&buf, head);
    const auto* edges = reinterpret_cast<const unsigned char*>(
        shard.edges.data());
    buf.insert(buf.end(), edges,
               edges + shard.edges.size() * sizeof(Edge));
    const auto* verts = reinterpret_cast<const unsigned char*>(
        shard.verts.data());
    buf.insert(buf.end(), verts,
               verts + shard.verts.size() * sizeof(ServeVertexRecord));
    const auto* reps = reinterpret_cast<const unsigned char*>(
        shard.replica_ranks.data());
    buf.insert(buf.end(), reps,
               reps + shard.replica_ranks.size() * sizeof(std::uint32_t));
  }
}

ProcessServeBackend::~ProcessServeBackend() { Shutdown(); }

void ProcessServeBackend::KillCluster() {
  if (cluster_ == nullptr) return;
  cluster_->KillAll();
  cluster_->ReapAll();
  cluster_.reset();
}

void ProcessServeBackend::Shutdown() {
  if (cluster_ == nullptr) return;
  bool clean = true;
  for (int c = 0; c < cluster_->nproc(); ++c) {
    if (!wire::SendFrame(cluster_->control_fd(c), kServeCtrlShutdown, 0,
                         nullptr, 0, ProcLabel(c))
             .ok()) {
      clean = false;
    }
  }
  if (!clean) {
    KillCluster();
    return;
  }
  cluster_->ReapAll();
  cluster_.reset();
}

Status ProcessServeBackend::EnsureCluster() {
  if (cluster_ != nullptr) return Status::OK();
  auto cluster = std::make_unique<ProcessCluster>();
  DNE_RETURN_IF_ERROR(cluster->Launch(opts_.nproc, ServeChildMain));
  auto fail = [&cluster](Status st) {
    cluster->KillAll();
    cluster->ReapAll();
    return st;
  };
  // Config (including the recovery epoch that keys the fault plan), then
  // the cached shard frames, to every rank process.
  std::vector<unsigned char> buf;
  for (int c = 0; c < opts_.nproc; ++c) {
    buf.clear();
    ServeConfigRecord cfg{};
    cfg.num_ranks = num_ranks_;
    cfg.nproc = static_cast<std::uint32_t>(opts_.nproc);
    cfg.proc_index = static_cast<std::uint32_t>(c);
    cfg.epoch = epoch_;
    cfg.num_vertices = num_vertices_;
    cfg.stall_timeout_ms =
        static_cast<std::uint64_t>(opts_.stall_timeout_s * 1000.0);
    cfg.num_faults = opts_.num_faults;
    wire::AppendPod(&buf, cfg);
    for (std::uint32_t i = 0; i < opts_.num_faults; ++i) {
      wire::AppendPod(&buf, opts_.faults[i]);
    }
    Status st = wire::SendFrame(cluster->control_fd(c), kServeCtrlConfig, 0,
                                buf.data(), buf.size(), ProcLabel(c));
    if (!st.ok()) return fail(std::move(st));
  }
  for (std::uint32_t r = 0; r < num_ranks_; ++r) {
    const int c = static_cast<int>(r) % opts_.nproc;
    Status st = wire::SendFrame(cluster->control_fd(c), kServeCtrlShard, r,
                                shard_frames_[r].data(),
                                shard_frames_[r].size(), ProcLabel(c));
    if (!st.ok()) return fail(std::move(st));
  }
  for (int c = 0; c < opts_.nproc; ++c) {
    Status st = wire::SendFrame(cluster->control_fd(c), kServeCtrlShardsDone,
                                0, nullptr, 0, ProcLabel(c));
    if (!st.ok()) return fail(std::move(st));
  }
  cluster_ = std::move(cluster);
  return Status::OK();
}

Status ProcessServeBackend::ExecuteOnce(
    const ServeRequest& req, const std::atomic<bool>* cancel,
    const std::chrono::steady_clock::time_point* deadline,
    ServeResponse* resp, bool* recoverable, std::string* detail) {
  const int nproc = cluster_->nproc();
  *recoverable = false;
  detail->clear();

  // Broadcast the request.
  {
    std::vector<unsigned char> buf;
    ServeRequestRecord rr{};
    rr.req_id = req.req_id;
    rr.algo = static_cast<std::uint32_t>(req.algo);
    rr.iterations = req.iterations;
    rr.source = req.source;
    rr.max_supersteps = req.max_supersteps;
    wire::AppendPod(&buf, rr);
    for (int c = 0; c < nproc; ++c) {
      Status st = wire::SendFrame(cluster_->control_fd(c), kServeCtrlRequest,
                                  0, buf.data(), buf.size(), ProcLabel(c));
      if (!st.ok()) {
        *recoverable = true;
        *detail = ProcLabel(c) + " unreachable: " + st.message();
        return Status::Unavailable(*detail);
      }
    }
  }

  // Monitor: collect one result frame per rank and one stats frame per
  // process; relay deadline/cancel signals to process 0; classify failures.
  std::vector<bool> rank_done(num_ranks_, false);
  std::vector<std::uint32_t> rank_status(num_ranks_, 0);
  std::size_t ranks_remaining = num_ranks_;
  std::vector<bool> stats_done(nproc, false);
  std::vector<bool> closed(nproc, false);
  int stats_remaining = nproc;
  InitServeResultBits(req, num_vertices_, &resp->bits);
  resp->req_id = req.req_id;
  resp->supersteps = 0;
  resp->data_bytes = resp->data_messages = 0;
  resp->control_bytes = resp->wire_bytes = resp->wire_frames = 0;

  bool deadline_sent = false;
  bool cancel_sent = false;
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline;
  auto last_activity = std::chrono::steady_clock::now();
  const auto watchdog = std::chrono::milliseconds(
      static_cast<long long>(2.0 * opts_.stall_timeout_s * 1000.0));

  auto record_recoverable = [&](std::string d) {
    if (!*recoverable) {
      *recoverable = true;
      *detail = std::move(d);
    }
    if (!draining) {
      draining = true;
      drain_deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
    }
  };

  for (;;) {
    if (!draining && ranks_remaining == 0 && stats_remaining == 0) break;
    if (draining) {
      bool any_open = false;
      for (int c = 0; c < nproc; ++c) {
        if (!stats_done[c] && !closed[c]) any_open = true;
      }
      if (!any_open || std::chrono::steady_clock::now() >= drain_deadline) {
        break;
      }
    }

    // Relay abort signals: one small frame to process 0 each; its superstep
    // hook folds the flags into the shared summary channel.
    if (!draining) {
      const auto now = std::chrono::steady_clock::now();
      std::uint32_t flags = 0;
      if (!deadline_sent && deadline != nullptr && now >= *deadline) {
        flags |= kServeAbortDeadline;
        deadline_sent = true;
      }
      if (!cancel_sent && cancel != nullptr &&
          cancel->load(std::memory_order_relaxed)) {
        flags |= kServeAbortCancelled;
        cancel_sent = true;
      }
      if (flags != 0) {
        std::vector<unsigned char> buf;
        ServeCancelRecord cr{};
        cr.req_id = req.req_id;
        cr.flags = flags;
        wire::AppendPod(&buf, cr);
        // A failed send means process 0 is dying; its EOF classifies below.
        (void)wire::SendFrame(cluster_->control_fd(0), kServeCtrlCancel, 0,
                              buf.data(), buf.size(), ProcLabel(0));
      }
    }

    std::vector<pollfd> pfds;
    std::vector<int> children;
    for (int c = 0; c < nproc; ++c) {
      if (stats_done[c] || closed[c]) continue;
      pfds.push_back(pollfd{cluster_->control_fd(c), POLLIN, 0});
      children.push_back(c);
    }
    if (pfds.empty()) break;
    const int rc = ::poll(pfds.data(), pfds.size(), 100);
    if (rc < 0 && errno != EINTR) {
      return Status::Internal(std::string("serve poll failed: ") +
                              std::strerror(errno));
    }
    {
      // Reap zombies as they appear; a finished child's frames may still
      // sit in the socket buffer, so an exit is not yet a failure.
      int exited = 0, status = 0;
      while (cluster_->PollExited(&exited, &status)) {
        last_activity = std::chrono::steady_clock::now();
      }
    }
    if (rc <= 0) {
      if (!draining &&
          std::chrono::steady_clock::now() - last_activity > watchdog) {
        record_recoverable("no control-channel progress for " +
                           std::to_string(2.0 * opts_.stall_timeout_s) +
                           "s (serve cluster stalled)");
      }
      continue;
    }

    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int c = children[k];
      last_activity = std::chrono::steady_clock::now();
      wire::FrameHeader header;
      std::vector<unsigned char> payload;
      Status st = wire::RecvFrame(cluster_->control_fd(c), &header, &payload,
                                  ProcLabel(c));
      if (!st.ok()) {
        closed[c] = true;
        record_recoverable(ProcLabel(c) +
                           " died mid-request: " + st.message());
        continue;
      }
      if (header.kind == kServeCtrlParked) {
        closed[c] = true;
        ServeParkedHead ph{};
        wire::PayloadReader reader(payload.data(), payload.size());
        if (reader.Read(&ph)) {
          const std::string msg(payload.begin() + sizeof(ServeParkedHead),
                                payload.end());
          record_recoverable(
              ProcLabel(c) + " parked at superstep " +
              std::to_string(ph.superstep) + " (" +
              ServeRoundName(ph.round_kind) + " round) of request " +
              std::to_string(ph.req_id) + ": " + msg);
        } else {
          record_recoverable(ProcLabel(c) + " parked with a malformed report");
        }
        continue;
      }
      // A recorded recoverable failure kills this attempt: survivors'
      // frames are noise — the deterministic re-run reproduces everything.
      if (draining) continue;
      if (header.kind == kServeCtrlError) {
        return Status::Internal(
            ProcLabel(c) + " failed: " +
            std::string(payload.begin(), payload.end()));
      }
      if (header.kind == kServeCtrlResult) {
        wire::PayloadReader reader(payload.data(), payload.size());
        ServeResultHead rh{};
        if (!reader.Read(&rh) || rh.req_id != req.req_id ||
            rh.rank >= num_ranks_ ||
            static_cast<int>(rh.rank) % nproc != c || rank_done[rh.rank] ||
            reader.remaining() != rh.num_values * sizeof(SyncValueRecord)) {
          return Status::Internal("malformed serve result frame from " +
                                  ProcLabel(c));
        }
        SyncValueRecord rec{};
        for (std::uint64_t i = 0; i < rh.num_values; ++i) {
          reader.Read(&rec);
          if (rec.v >= num_vertices_) {
            return Status::Internal("serve result names vertex " +
                                    std::to_string(rec.v) +
                                    " out of range");
          }
          resp->bits[rec.v] = rec.bits;
        }
        rank_done[rh.rank] = true;
        rank_status[rh.rank] = rh.status_code;
        resp->supersteps = std::max(resp->supersteps, rh.supersteps);
        --ranks_remaining;
        continue;
      }
      if (header.kind == kServeCtrlStats) {
        wire::PayloadReader reader(payload.data(), payload.size());
        ServeStatsRecord sr{};
        if (!reader.Read(&sr) || reader.remaining() != 0 ||
            sr.req_id != req.req_id || stats_done[c]) {
          return Status::Internal("malformed serve stats frame from " +
                                  ProcLabel(c));
        }
        resp->data_bytes += sr.data_bytes;
        resp->data_messages += sr.data_messages;
        resp->control_bytes += sr.control_bytes;
        resp->wire_bytes += sr.wire_bytes;
        resp->wire_frames += sr.wire_frames;
        peak_child_rss_ = std::max(peak_child_rss_, sr.rss_bytes);
        stats_done[c] = true;
        --stats_remaining;
        continue;
      }
      return Status::Internal("unexpected serve control frame kind " +
                              std::to_string(header.kind));
    }
  }

  if (*recoverable) {
    return Status::Unavailable(*detail);
  }

  // Every rank ran the same deterministic abort decision, so the status
  // codes agree; fold them defensively anyway (worst wins).
  Status result = Status::OK();
  for (std::uint32_t r = 0; r < num_ranks_; ++r) {
    const auto code = static_cast<Status::Code>(rank_status[r]);
    if (code == Status::Code::kCancelled) {
      return Status::Cancelled("serve request " + std::to_string(req.req_id) +
                               " cancelled");
    }
    if (code == Status::Code::kDeadlineExceeded && result.ok()) {
      result = Status::DeadlineExceeded(
          "serve request " + std::to_string(req.req_id) +
          " deadline exceeded after " + std::to_string(resp->supersteps) +
          " superstep(s)");
    }
  }
  return result;
}

Status ProcessServeBackend::Execute(
    const ServeRequest& req, const std::atomic<bool>* cancel,
    const std::chrono::steady_clock::time_point* deadline,
    ServeResponse* resp) {
  // Supervisor loop: on a recoverable failure, tear the cluster down,
  // relaunch at epoch+1 (disarming the dead epoch's fault plan), re-ship
  // the cached shards and re-run the request from scratch — the BSP loop
  // is deterministic, so the retry is bit-identical to a fault-free run.
  std::uint32_t attempt = 0;
  for (;;) {
    DNE_RETURN_IF_ERROR(EnsureCluster());
    bool recoverable = false;
    std::string detail;
    Status run = ExecuteOnce(req, cancel, deadline, resp, &recoverable,
                             &detail);
    if (run.ok() || !recoverable) {
      resp->recoveries = attempt;
      return run;
    }
    KillCluster();
    if (attempt >= opts_.max_recoveries) {
      return Status::Internal(
          "serve request " + std::to_string(req.req_id) +
          " failed; recovery exhausted after " + std::to_string(attempt) +
          " restart(s): " + detail);
    }
    ++attempt;
    ++total_recoveries_;
    ++epoch_;
    // Exponential backoff before the relaunch: transient host pressure
    // (fd/pid exhaustion, OOM kills) should not be hammered.
    const int backoff_ms =
        std::min(100 << static_cast<int>(std::min(attempt - 1, 4u)), 2000);
    ::poll(nullptr, 0, backoff_ms);
  }
}

}  // namespace dne
