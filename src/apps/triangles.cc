#include "apps/triangles.h"

#include <algorithm>

namespace dne {

namespace {

// Degree-ordered "forward" adjacency: arcs point from lower-rank to
// higher-rank endpoints (rank = (degree, id)), so every triangle has
// exactly one vertex with two out-arcs — each triangle is found once.
struct ForwardAdjacency {
  std::vector<std::uint64_t> offsets;
  struct Arc {
    VertexId to;
    EdgeId edge;
  };
  std::vector<Arc> arcs;
};

bool RankLess(const Graph& g, VertexId a, VertexId b) {
  const std::size_t da = g.degree(a), db = g.degree(b);
  return da != db ? da < db : a < b;
}

ForwardAdjacency BuildForward(const Graph& g) {
  const VertexId n = g.NumVertices();
  ForwardAdjacency fwd;
  fwd.offsets.assign(n + 1, 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.edge(e);
    const VertexId lo = RankLess(g, ed.src, ed.dst) ? ed.src : ed.dst;
    ++fwd.offsets[lo + 1];
  }
  for (VertexId v = 0; v < n; ++v) fwd.offsets[v + 1] += fwd.offsets[v];
  fwd.arcs.resize(g.NumEdges());
  std::vector<std::uint64_t> cursor(fwd.offsets.begin(),
                                    fwd.offsets.end() - 1);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.edge(e);
    const bool src_lo = RankLess(g, ed.src, ed.dst);
    const VertexId lo = src_lo ? ed.src : ed.dst;
    const VertexId hi = src_lo ? ed.dst : ed.src;
    fwd.arcs[cursor[lo]++] = ForwardAdjacency::Arc{hi, e};
  }
  // Sort each row by target for the merge-intersection below.
  for (VertexId v = 0; v < n; ++v) {
    std::sort(fwd.arcs.begin() + static_cast<std::ptrdiff_t>(fwd.offsets[v]),
              fwd.arcs.begin() +
                  static_cast<std::ptrdiff_t>(fwd.offsets[v + 1]),
              [](const ForwardAdjacency::Arc& a,
                 const ForwardAdjacency::Arc& b) { return a.to < b.to; });
  }
  return fwd;
}

// Calls fn(closing_edge_id) once per triangle.
template <typename Fn>
void ForEachTriangle(const Graph& g, Fn fn) {
  ForwardAdjacency fwd = BuildForward(g);
  const VertexId n = g.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t begin = fwd.offsets[v], end = fwd.offsets[v + 1];
    for (std::uint64_t i = begin; i < end; ++i) {
      const VertexId u = fwd.arcs[i].to;
      // Merge-intersect the FULL forward(v) row with forward(u); rows are
      // sorted by target id. u itself cannot appear in forward(u) (no self
      // loops), so no exclusion is needed. The arc found in forward(u)'s
      // row is the triangle's closing edge.
      std::uint64_t a = begin;
      std::uint64_t b = fwd.offsets[u];
      const std::uint64_t b_end = fwd.offsets[u + 1];
      while (a < end && b < b_end) {
        if (fwd.arcs[a].to < fwd.arcs[b].to) {
          ++a;
        } else if (fwd.arcs[b].to < fwd.arcs[a].to) {
          ++b;
        } else {
          fn(fwd.arcs[b].edge);
          ++a;
          ++b;
        }
      }
    }
  }
}

}  // namespace

std::uint64_t CountTriangles(const Graph& g) {
  std::uint64_t count = 0;
  ForEachTriangle(g, [&count](EdgeId) { ++count; });
  return count;
}

std::vector<std::uint64_t> CountTrianglesPerPartition(
    const Graph& g, const EdgePartition& partition) {
  std::vector<std::uint64_t> counts(partition.num_partitions(), 0);
  ForEachTriangle(g, [&](EdgeId closing) { ++counts[partition.Get(closing)]; });
  return counts;
}

}  // namespace dne
