#include "apps/kcore.h"

#include <algorithm>

namespace dne {

std::vector<std::uint32_t> CoreNumbers(const Graph& g) {
  // Matula-Beck bucket peeling: repeatedly remove the minimum-degree
  // vertex; its degree at removal is its core number (made monotone below).
  const VertexId n = g.NumVertices();
  std::vector<std::uint32_t> degree(n);
  std::size_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(g.degree(v));
    max_degree = std::max<std::size_t>(max_degree, degree[v]);
  }

  // Bucket sort by degree.
  std::vector<std::uint32_t> bucket_start(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (std::size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<VertexId> order(n);      // vertices sorted by current degree
  std::vector<std::uint32_t> pos(n);   // position of each vertex in order
  {
    std::vector<std::uint32_t> cursor(bucket_start.begin(),
                                      bucket_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]];
      order[pos[v]] = v;
      ++cursor[degree[v]];
    }
  }

  std::vector<std::uint32_t> core(n, 0);
  std::vector<bool> removed(n, false);
  std::uint32_t current = 0;
  for (VertexId i = 0; i < n; ++i) {
    const VertexId v = order[i];
    current = std::max(current, degree[v]);
    core[v] = current;
    removed[v] = true;
    for (const Adjacency& a : g.neighbors(v)) {
      const VertexId u = a.to;
      if (removed[u] || degree[u] <= degree[v]) continue;
      // Move u one bucket down: swap it with the first element of its
      // bucket, then shrink the bucket boundary.
      const std::uint32_t du = degree[u];
      const std::uint32_t first_pos = bucket_start[du];
      const VertexId first_v = order[first_pos];
      if (first_v != u) {
        std::swap(order[pos[u]], order[first_pos]);
        std::swap(pos[u], pos[first_v]);
      }
      ++bucket_start[du];
      --degree[u];
    }
  }
  return core;
}

std::uint32_t Degeneracy(const Graph& g) {
  std::uint32_t best = 0;
  for (std::uint32_t c : CoreNumbers(g)) best = std::max(best, c);
  return best;
}

}  // namespace dne
