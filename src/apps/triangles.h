// Triangle counting: the forward (node-iterator) algorithm on the canonical
// adjacency plus a per-partition decomposition that shows how the edge
// partition splits analytic work.
#ifndef DNE_APPS_TRIANGLES_H_
#define DNE_APPS_TRIANGLES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "partition/edge_partition.h"

namespace dne {

/// Exact global triangle count (forward algorithm: each triangle counted
/// once via its degree-ordered orientation).
std::uint64_t CountTriangles(const Graph& g);

/// Per-partition triangle ownership: triangle (u,v,w) is attributed to the
/// partition of its closing edge under the degree-ordered orientation.
/// Summing the vector reproduces CountTriangles (tested invariant).
std::vector<std::uint64_t> CountTrianglesPerPartition(
    const Graph& g, const EdgePartition& partition);

}  // namespace dne

#endif  // DNE_APPS_TRIANGLES_H_
