#include "apps/pagerank.h"

namespace dne {

std::vector<double> PageRankReference(const Graph& g, int iterations) {
  const VertexId n = g.NumVertices();
  std::vector<double> value(n, 1.0 / static_cast<double>(n));
  std::vector<double> acc(n, 0.0);
  constexpr double kDamping = 0.85;
  for (int it = 0; it < iterations; ++it) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (VertexId v = 0; v < n; ++v) {
      const double share =
          g.degree(v) == 0 ? 0.0
                           : value[v] / static_cast<double>(g.degree(v));
      for (const Adjacency& a : g.neighbors(v)) acc[a.to] += share;
    }
    for (VertexId v = 0; v < n; ++v) {
      if (g.degree(v) == 0) continue;
      value[v] =
          (1.0 - kDamping) / static_cast<double>(n) + kDamping * acc[v];
    }
  }
  return value;
}

}  // namespace dne
