// Single-machine SSSP reference (BFS levels on the unit-weight graph), the
// ground truth the distributed engine is verified against.
#ifndef DNE_APPS_SSSP_H_
#define DNE_APPS_SSSP_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dne {

/// BFS distances from `source`; UINT32_MAX for unreachable vertices.
std::vector<std::uint32_t> SsspReference(const Graph& g, VertexId source);

}  // namespace dne

#endif  // DNE_APPS_SSSP_H_
