#include "apps/engine.h"

#include <utility>

#include "common/hash.h"
#include "common/timer.h"
#include "runtime/communicator.h"

namespace dne {

VertexCutEngine::VertexCutEngine(const Graph& g,
                                 const EdgePartition& partition,
                                 const CostModelOptions& cost)
    : g_(g),
      num_partitions_(partition.num_partitions()),
      local_edges_(partition.num_partitions()),
      replicas_(ComputeVertexReplicaSets(g, partition)),
      master_(g.NumVertices(), kNoPartition),
      cost_options_(cost) {
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    local_edges_[partition.Get(e)].push_back(e);
  }
  // PowerGraph picks the master uniformly among a vertex's replicas.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto reps = replicas_.of(v);
    if (reps.empty()) continue;
    master_[v] = reps[HashVertex(v, 0x5eed) % reps.size()];
  }
  shards_ = BuildServeShards(g, partition, replicas_, master_);
  states_ = MakeServeRankStates(shards_);
}

Status VertexCutEngine::RunServe(const ServeRequest& req,
                                 std::vector<std::uint64_t>* bits,
                                 AppStats* stats) {
  WallTimer timer;
  SimCluster cluster(static_cast<int>(num_partitions_), cost_options_);
  SimClusterLedger ledger(&cluster);
  InProcessCommunicator comm(static_cast<int>(num_partitions_));
  comm.SetLedger(&ledger);

  ServeRunEnv env;
  env.comm = &comm;
  env.ledger = &ledger;
  env.num_vertices = g_.NumVertices();
  const PartitionContext* ctx = ctx_;
  if (ctx != nullptr) {
    env.step_hook = [ctx](std::uint64_t, std::uint32_t* abort_flags) {
      if (ctx->cancelled()) *abort_flags |= kServeAbortCancelled;
      return Status::OK();
    };
  }

  ServeRunStats run_stats;
  Status run = RunServeRequest(req, env, &states_, &run_stats);

  // Decode even a cancelled run: the last completed superstep left every
  // replica consistent, so the master values are a valid partial result.
  InitServeResultBits(req, g_.NumVertices(), bits);
  std::vector<SyncValueRecord> masters;
  for (const ServeRankState& s : states_) {
    masters.clear();
    CollectMasterValues(s, &masters);
    for (const SyncValueRecord& rec : masters) (*bits)[rec.v] = rec.bits;
  }

  stats->wall_seconds = timer.Seconds();
  stats->sim_seconds = cluster.cost().SimSeconds();
  stats->comm_bytes = cluster.comm().bytes;
  stats->supersteps = cluster.comm().supersteps;
  stats->work_balance = cluster.cost().WorkBalance();
  return run;
}

Status VertexCutEngine::RunPageRank(int iterations, std::vector<double>* ranks,
                                    AppStats* stats) {
  ServeRequest req;
  req.algo = ServeAlgo::kPageRank;
  req.iterations = iterations < 0 ? 0 : static_cast<std::uint32_t>(iterations);
  std::vector<std::uint64_t> bits;
  Status run = RunServe(req, &bits, stats);
  ranks->resize(bits.size());
  for (std::size_t v = 0; v < bits.size(); ++v) {
    (*ranks)[v] = UnpackDouble(bits[v]);
  }
  return run;
}

AppStats VertexCutEngine::RunPageRank(int iterations,
                                      std::vector<double>* ranks) {
  AppStats stats;
  Status run = RunPageRank(iterations, ranks, &stats);
  (void)run;  // context-free callers cannot be cancelled
  return stats;
}

Status VertexCutEngine::RunSssp(VertexId source,
                                std::vector<std::uint32_t>* dist,
                                AppStats* stats) {
  ServeRequest req;
  req.algo = ServeAlgo::kSssp;
  req.source = source;
  std::vector<std::uint64_t> bits;
  Status run = RunServe(req, &bits, stats);
  dist->resize(bits.size());
  for (std::size_t v = 0; v < bits.size(); ++v) {
    (*dist)[v] = static_cast<std::uint32_t>(bits[v]);
  }
  return run;
}

AppStats VertexCutEngine::RunSssp(VertexId source,
                                  std::vector<std::uint32_t>* dist) {
  AppStats stats;
  Status run = RunSssp(source, dist, &stats);
  (void)run;  // context-free callers cannot be cancelled
  return stats;
}

Status VertexCutEngine::RunWcc(std::vector<VertexId>* labels,
                               AppStats* stats) {
  ServeRequest req;
  req.algo = ServeAlgo::kWcc;
  std::vector<std::uint64_t> bits;
  Status run = RunServe(req, &bits, stats);
  *labels = std::move(bits);
  return run;
}

AppStats VertexCutEngine::RunWcc(std::vector<VertexId>* labels) {
  AppStats stats;
  Status run = RunWcc(labels, &stats);
  (void)run;  // context-free callers cannot be cancelled
  return stats;
}

}  // namespace dne
