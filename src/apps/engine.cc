#include "apps/engine.h"

#include <algorithm>

#include "common/hash.h"
#include "common/timer.h"

namespace dne {

VertexCutEngine::VertexCutEngine(const Graph& g,
                                 const EdgePartition& partition,
                                 const CostModelOptions& cost)
    : g_(g),
      num_partitions_(partition.num_partitions()),
      local_edges_(partition.num_partitions()),
      replicas_(ComputeVertexReplicaSets(g, partition)),
      master_(g.NumVertices(), kNoPartition),
      cost_options_(cost) {
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    local_edges_[partition.Get(e)].push_back(e);
  }
  // PowerGraph picks the master uniformly among a vertex's replicas.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto reps = replicas_.of(v);
    if (reps.empty()) continue;
    master_[v] = reps[HashVertex(v, 0x5eed) % reps.size()];
  }
}

void VertexCutEngine::ChargeSync(SimCluster* cluster,
                                 std::vector<std::uint8_t>* changed,
                                 std::uint64_t payload_bytes) {
  const std::uint64_t record = payload_bytes + sizeof(VertexId);
  for (VertexId v = 0; v < g_.NumVertices(); ++v) {
    if (!(*changed)[v]) continue;
    (*changed)[v] = 0;
    auto reps = replicas_.of(v);
    if (reps.size() <= 1) continue;
    const int master = static_cast<int>(master_[v]);
    for (PartitionId r : reps) {
      if (static_cast<int>(r) == master) continue;
      // Gather: mirror -> master; Scatter: master -> mirror.
      cluster->comm().AddMessage(record);
      cluster->cost().AddBytes(static_cast<int>(r), record);
      cluster->comm().AddMessage(record);
      cluster->cost().AddBytes(master, record);
    }
  }
}

AppStats VertexCutEngine::RunPageRank(int iterations,
                                      std::vector<double>* ranks) {
  WallTimer timer;
  SimCluster cluster(static_cast<int>(num_partitions_), cost_options_);
  const VertexId n = g_.NumVertices();
  std::vector<double> value(n, 1.0 / static_cast<double>(n));
  std::vector<double> acc(n, 0.0);
  std::vector<std::uint8_t> changed(n, 0);
  constexpr double kDamping = 0.85;

  for (int it = 0; it < iterations; ++it) {
    std::fill(acc.begin(), acc.end(), 0.0);
    // Gather along local edges: every partition scans exactly its edges —
    // the per-partition work Table 5's WB measures.
    for (PartitionId p = 0; p < num_partitions_; ++p) {
      for (EdgeId e : local_edges_[p]) {
        const Edge& ed = g_.edge(e);
        acc[ed.src] += value[ed.dst] / static_cast<double>(g_.degree(ed.dst));
        acc[ed.dst] += value[ed.src] / static_cast<double>(g_.degree(ed.src));
      }
      cluster.cost().AddWork(static_cast<int>(p), local_edges_[p].size());
    }
    // Apply at masters; every vertex's value changes each round, so every
    // replicated vertex synchronises (PageRank is the paper's all-to-all
    // heavy workload).
    for (VertexId v = 0; v < n; ++v) {
      if (g_.degree(v) == 0) continue;
      value[v] = (1.0 - kDamping) / static_cast<double>(n) +
                 kDamping * acc[v];
      changed[v] = 1;
    }
    ChargeSync(&cluster, &changed, sizeof(double));
    cluster.Barrier();
  }

  *ranks = std::move(value);
  AppStats stats;
  stats.wall_seconds = timer.Seconds();
  stats.sim_seconds = cluster.cost().SimSeconds();
  stats.comm_bytes = cluster.comm().bytes;
  stats.supersteps = cluster.comm().supersteps;
  stats.work_balance = cluster.cost().WorkBalance();
  return stats;
}

AppStats VertexCutEngine::RunSssp(VertexId source,
                                  std::vector<std::uint32_t>* dist) {
  WallTimer timer;
  SimCluster cluster(static_cast<int>(num_partitions_), cost_options_);
  const VertexId n = g_.NumVertices();
  dist->assign(n, kUnreachable);
  if (source < n) (*dist)[source] = 0;
  std::vector<std::uint8_t> active(n, 0);
  std::vector<std::uint8_t> changed(n, 0);
  if (source < n) active[source] = 1;

  bool any_active = source < n;
  while (any_active) {
    any_active = false;
    for (PartitionId p = 0; p < num_partitions_; ++p) {
      std::uint64_t work = 0;
      for (EdgeId e : local_edges_[p]) {
        const Edge& ed = g_.edge(e);
        if (!active[ed.src] && !active[ed.dst]) continue;
        ++work;
        const std::uint32_t via_src =
            (*dist)[ed.src] == kUnreachable ? kUnreachable
                                            : (*dist)[ed.src] + 1;
        const std::uint32_t via_dst =
            (*dist)[ed.dst] == kUnreachable ? kUnreachable
                                            : (*dist)[ed.dst] + 1;
        if (via_src < (*dist)[ed.dst]) {
          (*dist)[ed.dst] = via_src;
          changed[ed.dst] = 1;
        }
        if (via_dst < (*dist)[ed.src]) {
          (*dist)[ed.src] = via_dst;
          changed[ed.src] = 1;
        }
      }
      cluster.cost().AddWork(static_cast<int>(p), work + 1);
    }
    std::fill(active.begin(), active.end(), 0);
    for (VertexId v = 0; v < n; ++v) {
      if (changed[v]) {
        active[v] = 1;
        any_active = true;
      }
    }
    ChargeSync(&cluster, &changed, sizeof(std::uint32_t));
    cluster.Barrier();
    if (cluster.comm().supersteps > 10 * n + 100) break;  // safety valve
  }

  AppStats stats;
  stats.wall_seconds = timer.Seconds();
  stats.sim_seconds = cluster.cost().SimSeconds();
  stats.comm_bytes = cluster.comm().bytes;
  stats.supersteps = cluster.comm().supersteps;
  stats.work_balance = cluster.cost().WorkBalance();
  return stats;
}

AppStats VertexCutEngine::RunWcc(std::vector<VertexId>* labels) {
  WallTimer timer;
  SimCluster cluster(static_cast<int>(num_partitions_), cost_options_);
  const VertexId n = g_.NumVertices();
  labels->resize(n);
  for (VertexId v = 0; v < n; ++v) (*labels)[v] = v;
  std::vector<std::uint8_t> changed(n, 0);

  bool moved = true;
  while (moved) {
    moved = false;
    for (PartitionId p = 0; p < num_partitions_; ++p) {
      for (EdgeId e : local_edges_[p]) {
        const Edge& ed = g_.edge(e);
        const VertexId lo = std::min((*labels)[ed.src], (*labels)[ed.dst]);
        if ((*labels)[ed.src] != lo) {
          (*labels)[ed.src] = lo;
          changed[ed.src] = 1;
          moved = true;
        }
        if ((*labels)[ed.dst] != lo) {
          (*labels)[ed.dst] = lo;
          changed[ed.dst] = 1;
          moved = true;
        }
      }
      cluster.cost().AddWork(static_cast<int>(p), local_edges_[p].size());
    }
    ChargeSync(&cluster, &changed, sizeof(VertexId));
    cluster.Barrier();
    if (cluster.comm().supersteps > 10 * n + 100) break;  // safety valve
  }

  AppStats stats;
  stats.wall_seconds = timer.Seconds();
  stats.sim_seconds = cluster.cost().SimSeconds();
  stats.comm_bytes = cluster.comm().bytes;
  stats.supersteps = cluster.comm().supersteps;
  stats.work_balance = cluster.cost().WorkBalance();
  return stats;
}

}  // namespace dne
