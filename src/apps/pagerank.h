// Single-machine PageRank reference (synchronous power iteration on the
// undirected, degree-normalised walk).
#ifndef DNE_APPS_PAGERANK_H_
#define DNE_APPS_PAGERANK_H_

#include <vector>

#include "graph/graph.h"

namespace dne {

/// `iterations` synchronous rounds with damping 0.85, matching
/// VertexCutEngine::RunPageRank bit-for-bit in exact arithmetic.
std::vector<double> PageRankReference(const Graph& g, int iterations);

}  // namespace dne

#endif  // DNE_APPS_PAGERANK_H_
