#include "apps/sssp.h"

#include <deque>

namespace dne {

std::vector<std::uint32_t> SsspReference(const Graph& g, VertexId source) {
  std::vector<std::uint32_t> dist(g.NumVertices(), UINT32_MAX);
  if (source >= g.NumVertices()) return dist;
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (const Adjacency& a : g.neighbors(v)) {
      if (dist[a.to] == UINT32_MAX) {
        dist[a.to] = dist[v] + 1;
        queue.push_back(a.to);
      }
    }
  }
  return dist;
}

}  // namespace dne
