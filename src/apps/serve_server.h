// ServeServer: the resilient request front-end of `dne_cli serve`. A
// ServeBackend executes one request at a time over resident partition shards
// (in-process Communicator, or the supervised multi-process transport in
// serve_transport.h); the server wraps it with the robustness contract:
//
//   * per-request deadlines — queued requests that expire are failed without
//     executing; running requests are stopped cooperatively at the next
//     superstep boundary and return kDeadlineExceeded with partial-progress
//     stats (a deadline can never hang a mesh round);
//   * bounded admission — beyond max_inflight executing + queue_depth
//     waiting requests, Submit sheds with kUnavailable and a retry-after
//     hint instead of queueing unboundedly; a MemTracker-backed budget
//     bounds the result memory reserved by admitted requests the same way;
//   * graceful drain — Drain() stops admission and waits until every
//     accepted request has completed (or deadline-failed); the destructor
//     drains, so tearing the server down never abandons accepted work.
//
// Concurrency contract (machine-checked by the DNE_GUARDED_BY annotations):
// any thread may call Submit/Cancel/Drain; one worker thread owns backend
// execution, so backends need no internal synchronisation and request
// results stay deterministic. Completion callbacks run on the worker thread
// before the request is accounted done — Drain() returning means every
// callback has returned.
#ifndef DNE_APPS_SERVE_SERVER_H_
#define DNE_APPS_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "apps/serve_engine.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"
#include "partition/edge_partition.h"
#include "runtime/mem_tracker.h"

namespace dne {

/// Everything one finished request reports back.
struct ServeResponse {
  std::uint64_t req_id = 0;
  Status status;
  /// Raw per-vertex result bits (see InitServeResultBits for the decoding);
  /// on DeadlineExceeded/Cancelled these are the partially-converged values.
  std::vector<std::uint64_t> bits;
  std::uint64_t supersteps = 0;
  std::uint32_t recoveries = 0;  ///< rank-failure recoveries this request rode
  std::uint64_t data_bytes = 0;
  std::uint64_t data_messages = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t wire_frames = 0;
  double latency_seconds = 0.0;  ///< admission -> completion (server-filled)
};

/// A request executor over resident shards. Execute runs one request to
/// completion; `cancel` (borrowed, may be null) and `deadline` (may be null)
/// are polled at superstep boundaries for cooperative aborts.
///
/// Thread safety: Execute is called from exactly one thread at a time (the
/// ServeServer worker); implementations may keep unsynchronised per-request
/// scratch.
class ServeBackend {
 public:
  virtual ~ServeBackend() = default;
  virtual std::uint64_t num_vertices() const = 0;
  virtual Status Execute(const ServeRequest& req,
                         const std::atomic<bool>* cancel,
                         const std::chrono::steady_clock::time_point* deadline,
                         ServeResponse* resp) = 0;
};

/// Single-address-space backend: all ranks co-hosted on an
/// InProcessCommunicator, modeled charging via ServeTotalsLedger.
class InProcessServeBackend final : public ServeBackend {
 public:
  InProcessServeBackend(const Graph& g, const EdgePartition& partition);

  std::uint64_t num_vertices() const override { return num_vertices_; }
  Status Execute(const ServeRequest& req, const std::atomic<bool>* cancel,
                 const std::chrono::steady_clock::time_point* deadline,
                 ServeResponse* resp) override;

 private:
  std::uint64_t num_vertices_;
  std::vector<ServeShard> shards_;
  std::vector<ServeRankState> states_;
};

struct ServeServerOptions {
  std::uint32_t max_inflight = 1;   ///< requests executing (worker is serial)
  std::uint32_t queue_depth = 16;   ///< admitted requests waiting beyond that
  std::uint64_t mem_budget_bytes = 0;  ///< 0 = unbounded result-memory budget
  std::uint32_t retry_after_ms = 50;   ///< shed hint returned on kUnavailable

  /// InvalidArgument when the limits cannot admit any request.
  Status Validate() const;
};

/// Monotonic counters + completed-request latencies (see class comment).
struct ServeServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;        ///< finished OK
  std::uint64_t shed = 0;             ///< rejected at admission (kUnavailable)
  std::uint64_t deadline_failed = 0;  ///< kDeadlineExceeded (queued or running)
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;  ///< any other non-OK terminal status
  std::uint64_t recoveries = 0;
  std::uint64_t peak_admitted = 0;    ///< high-water queued+executing
  std::uint64_t peak_mem_bytes = 0;   ///< high-water reserved result memory
  std::vector<double> latencies_seconds;  ///< one entry per finished request
};

class ServeServer {
 public:
  /// Runs on the worker thread when the request finishes, before the request
  /// counts as done (so Drain() implies the callback returned). The response
  /// status mirrors what the stats counters record.
  using DoneFn = std::function<void(ServeResponse)>;

  /// `backend` is borrowed and must outlive the server. `opts` must
  /// Validate() — the constructor asserts it did.
  ServeServer(ServeBackend* backend, const ServeServerOptions& opts);
  ~ServeServer();  ///< drains, then joins the worker

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Admits or sheds. OK = accepted, `done` will be invoked exactly once;
  /// kUnavailable = shed (draining, queue full, or over the memory budget —
  /// the message carries the retry-after hint), `done` is never invoked.
  /// `deadline_ms` 0 means no deadline.
  Status Submit(const ServeRequest& req, std::uint64_t deadline_ms,
                DoneFn done);

  /// Requests cooperative cancellation of an accepted request; false when no
  /// such request is still pending (finished or never admitted).
  bool Cancel(std::uint64_t req_id);

  /// Stops admission and blocks until every accepted request completed.
  /// Idempotent; Submit after Drain sheds with kUnavailable.
  void Drain();

  ServeServerStats stats() const;
  std::uint32_t retry_after_ms() const { return opts_.retry_after_ms; }

 private:
  struct Pending {
    ServeRequest req;
    std::chrono::steady_clock::time_point enqueue;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<std::atomic<bool>> cancel;
    DoneFn done;
    std::uint64_t mem_reserved = 0;
  };

  void WorkerLoop();
  void AccountFinished(const Status& status, std::uint32_t recoveries,
                       double latency_seconds) DNE_REQUIRES(mu_);

  ServeBackend* const backend_;
  const ServeServerOptions opts_;

  mutable Mutex mu_;
  std::condition_variable_any work_ready_;
  std::condition_variable_any idle_;
  std::deque<Pending> queue_ DNE_GUARDED_BY(mu_);
  std::uint64_t executing_ DNE_GUARDED_BY(mu_) = 0;
  /// Cancel handle of the request currently executing (null when idle).
  std::shared_ptr<std::atomic<bool>> current_cancel_ DNE_GUARDED_BY(mu_);
  std::uint64_t current_req_id_ DNE_GUARDED_BY(mu_) = 0;
  bool draining_ DNE_GUARDED_BY(mu_) = false;
  bool shutdown_ DNE_GUARDED_BY(mu_) = false;
  ServeServerStats stats_ DNE_GUARDED_BY(mu_);
  /// Rank 0 holds the admitted-request result reservations; MemTracker is
  /// internally synchronised but the reserve/shed decision needs mu_.
  MemTracker mem_{1};

  std::thread worker_;
};

}  // namespace dne

#endif  // DNE_APPS_SERVE_SERVER_H_
