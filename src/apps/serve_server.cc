#include "apps/serve_server.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

namespace dne {

// ---- InProcessServeBackend --------------------------------------------------

InProcessServeBackend::InProcessServeBackend(const Graph& g,
                                             const EdgePartition& partition)
    : num_vertices_(g.NumVertices()),
      shards_(BuildServeShards(g, partition)),
      states_(MakeServeRankStates(shards_)) {}

Status InProcessServeBackend::Execute(
    const ServeRequest& req, const std::atomic<bool>* cancel,
    const std::chrono::steady_clock::time_point* deadline,
    ServeResponse* resp) {
  InProcessCommunicator comm(static_cast<int>(shards_.size()));
  ServeTotalsLedger ledger;
  comm.SetLedger(&ledger);

  ServeRunEnv env;
  env.comm = &comm;
  env.ledger = &ledger;
  env.num_vertices = num_vertices_;
  env.step_hook = [cancel, deadline](std::uint64_t,
                                     std::uint32_t* abort_flags) {
    if (deadline != nullptr &&
        std::chrono::steady_clock::now() >= *deadline) {
      *abort_flags |= kServeAbortDeadline;
    }
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      *abort_flags |= kServeAbortCancelled;
    }
    return Status::OK();
  };

  ServeRunStats run_stats;
  Status run = RunServeRequest(req, env, &states_, &run_stats);

  resp->req_id = req.req_id;
  // Deadline-failed and cancelled runs still decode: the last completed
  // superstep left every replica consistent.
  InitServeResultBits(req, num_vertices_, &resp->bits);
  std::vector<SyncValueRecord> masters;
  for (const ServeRankState& s : states_) {
    masters.clear();
    CollectMasterValues(s, &masters);
    for (const SyncValueRecord& rec : masters) resp->bits[rec.v] = rec.bits;
  }
  resp->supersteps = run_stats.supersteps;
  resp->recoveries = 0;  // nothing to recover from in one address space
  resp->data_bytes = ledger.data_bytes();
  resp->data_messages = ledger.data_messages();
  resp->control_bytes = ledger.control_bytes();
  resp->wire_bytes = ledger.wire_bytes();
  resp->wire_frames = ledger.wire_frames();
  return run;
}

// ---- ServeServer ------------------------------------------------------------

Status ServeServerOptions::Validate() const {
  if (max_inflight == 0) {
    return Status::InvalidArgument("serve: max_inflight must be >= 1");
  }
  if (mem_budget_bytes != 0 && mem_budget_bytes < sizeof(std::uint64_t)) {
    return Status::InvalidArgument(
        "serve: mem_budget_bytes too small to admit any request");
  }
  return Status::OK();
}

ServeServer::ServeServer(ServeBackend* backend, const ServeServerOptions& opts)
    : backend_(backend), opts_(opts) {
  assert(opts.Validate().ok());
  worker_ = std::thread([this] { WorkerLoop(); });
}

ServeServer::~ServeServer() {
  Drain();
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  worker_.join();
}

Status ServeServer::Submit(const ServeRequest& req, std::uint64_t deadline_ms,
                           DoneFn done) {
  const auto now = std::chrono::steady_clock::now();
  MutexLock lock(&mu_);
  if (draining_ || shutdown_) {
    ++stats_.shed;
    return Status::Unavailable("serve: draining, not admitting requests");
  }
  const std::uint64_t admitted = queue_.size() + executing_;
  if (admitted >= static_cast<std::uint64_t>(opts_.max_inflight) +
                      opts_.queue_depth) {
    ++stats_.shed;
    return Status::Unavailable(
        "serve: admission queue full (" + std::to_string(admitted) +
        " in flight); retry after " + std::to_string(opts_.retry_after_ms) +
        " ms");
  }
  // Reserve the request's result memory up front — the one per-request
  // allocation whose size is known exactly at admission time.
  const std::uint64_t reserve = backend_->num_vertices() * sizeof(std::uint64_t);
  if (opts_.mem_budget_bytes != 0 &&
      mem_.current_total() + reserve > opts_.mem_budget_bytes) {
    ++stats_.shed;
    return Status::Unavailable(
        "serve: over memory budget (" + std::to_string(mem_.current_total()) +
        " + " + std::to_string(reserve) + " > " +
        std::to_string(opts_.mem_budget_bytes) + " bytes); retry after " +
        std::to_string(opts_.retry_after_ms) + " ms");
  }
  mem_.Allocate(0, reserve);

  Pending p;
  p.req = req;
  p.enqueue = now;
  if (deadline_ms != 0) {
    p.has_deadline = true;
    p.deadline = now + std::chrono::milliseconds(deadline_ms);
  }
  p.cancel = std::make_shared<std::atomic<bool>>(false);
  p.done = std::move(done);
  p.mem_reserved = reserve;
  queue_.push_back(std::move(p));

  ++stats_.accepted;
  stats_.peak_admitted = std::max(stats_.peak_admitted, admitted + 1);
  stats_.peak_mem_bytes = std::max(stats_.peak_mem_bytes, mem_.current_total());
  work_ready_.notify_one();
  return Status::OK();
}

bool ServeServer::Cancel(std::uint64_t req_id) {
  MutexLock lock(&mu_);
  if (executing_ != 0 && current_req_id_ == req_id &&
      current_cancel_ != nullptr) {
    current_cancel_->store(true, std::memory_order_relaxed);
    return true;
  }
  for (Pending& p : queue_) {
    if (p.req.req_id == req_id) {
      p.cancel->store(true, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ServeServer::Drain() {
  MutexLock lock(&mu_);
  draining_ = true;
  while (!queue_.empty() || executing_ != 0) {
    idle_.wait(mu_);
  }
}

ServeServerStats ServeServer::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void ServeServer::AccountFinished(const Status& status,
                                  std::uint32_t recoveries,
                                  double latency_seconds) {
  switch (status.code()) {
    case Status::Code::kOk:
      ++stats_.completed;
      break;
    case Status::Code::kDeadlineExceeded:
      ++stats_.deadline_failed;
      break;
    case Status::Code::kCancelled:
      ++stats_.cancelled;
      break;
    default:
      ++stats_.failed;
      break;
  }
  stats_.recoveries += recoveries;
  stats_.latencies_seconds.push_back(latency_seconds);
}

void ServeServer::WorkerLoop() {
  for (;;) {
    Pending p;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !shutdown_) {
        work_ready_.wait(mu_);
      }
      if (queue_.empty()) return;  // shutdown with nothing left
      p = std::move(queue_.front());
      queue_.pop_front();
      executing_ = 1;
      current_cancel_ = p.cancel;
      current_req_id_ = p.req.req_id;
    }

    ServeResponse resp;
    resp.req_id = p.req.req_id;
    const auto start = std::chrono::steady_clock::now();
    if (p.has_deadline && start >= p.deadline) {
      // Expired while queued: fail fast, never touch the backend.
      resp.status = Status::DeadlineExceeded(
          "serve: deadline expired while queued");
    } else if (p.cancel->load(std::memory_order_relaxed)) {
      resp.status = Status::Cancelled("serve: cancelled while queued");
    } else {
      resp.status = backend_->Execute(p.req, p.cancel.get(),
                                      p.has_deadline ? &p.deadline : nullptr,
                                      &resp);
    }
    resp.latency_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      p.enqueue)
            .count();

    const Status status = resp.status;
    const std::uint32_t recoveries = resp.recoveries;
    const double latency = resp.latency_seconds;
    // The callback runs before the request counts as done so Drain() implies
    // every callback returned.
    if (p.done) p.done(std::move(resp));

    {
      MutexLock lock(&mu_);
      mem_.Release(0, p.mem_reserved);
      executing_ = 0;
      current_cancel_.reset();
      current_req_id_ = 0;
      AccountFinished(status, recoveries, latency);
      if (queue_.empty()) idle_.notify_all();
    }
  }
}

}  // namespace dne
