// FaultInjector: executes the FaultPlan inside a rank process.
//
// Each rank process configures one injector with the plan shipped in
// DneOptions, its own process index and the supervisor's recovery epoch.
// The superstep loop and the socket transport then probe it at the exact
// points a real fault would strike:
//
//   SetSuperstep + AtSuperstepStart   top of the BSP loop
//   AtRoundStart                      a mesh round is about to run
//   ShouldDropFrame / ShouldFlipFrame a frame to one peer is being built
//   ShouldFailCheckpoint / ShouldTearCheckpoint
//                                     the checkpoint writer commits
//
// Every probe is keyed on (rank process, superstep, round, epoch), so a
// plan reproduces the identical failure sequence on every run. Crash is a
// self-SIGKILL (death without a goodbye frame); stall is a self-SIGSTOP
// (alive but wedged — the peers' stall deadline has to catch it).
#ifndef DNE_RUNTIME_FAULT_INJECTOR_H_
#define DNE_RUNTIME_FAULT_INJECTOR_H_

#include <csignal>
#include <cstdint>

#include <sys/types.h>
#include <unistd.h>

#include "partition/dne/dne_options.h"

namespace dne {

class FaultInjector {
 public:
  /// Arms the injector with the plan entries targeting `proc_index` in
  /// recovery epoch `epoch`. `nproc` resolves peer=-1 (lowest peer) for
  /// frame faults. Entries for other processes or other epochs are inert.
  void Configure(const FaultAction* actions, std::uint32_t num_actions,
                 int proc_index, int nproc, std::int32_t epoch) {
    num_actions_ = 0;
    for (std::uint32_t i = 0; i < num_actions; ++i) {
      const FaultAction& a = actions[i];
      if (a.rank != proc_index) continue;
      if (a.epoch != -1 && a.epoch != epoch) continue;
      actions_[num_actions_] = a;
      if (actions_[num_actions_].peer < 0) {
        actions_[num_actions_].peer =
            static_cast<std::int16_t>(proc_index == 0 && nproc > 1 ? 1 : 0);
      }
      fired_[num_actions_] = false;
      ++num_actions_;
    }
  }

  bool armed() const { return num_actions_ > 0; }

  void SetSuperstep(std::uint32_t superstep) { superstep_ = superstep; }

  /// Fires crash/stall actions keyed to the superstep boundary.
  void AtSuperstepStart() { FireSignals(FaultRound::kSuperstepStart); }

  /// Fires crash/stall actions keyed to `round` of the current superstep.
  void AtRoundStart(FaultRound round) { FireSignals(round); }

  /// True exactly once for the (round, peer) frame a drop action targets:
  /// the caller must not send that frame, wedging both endpoints.
  bool ShouldDropFrame(FaultRound round, int peer) {
    return ConsumeFrameFault(FaultKind::kDropFrame, round, peer);
  }

  /// True exactly once for the (round, peer) frame a flip action targets:
  /// the caller corrupts one payload byte after sealing the checksum.
  bool ShouldFlipFrame(FaultRound round, int peer) {
    return ConsumeFrameFault(FaultKind::kFlipFrame, round, peer);
  }

  /// True once when the checkpoint written at `superstep` must fail.
  bool ShouldFailCheckpoint(std::uint32_t superstep) {
    return ConsumeCheckpointFault(FaultKind::kCheckpointFail, superstep);
  }

  /// True once when the checkpoint committed at `superstep` must be torn
  /// (tail truncated after the rename).
  bool ShouldTearCheckpoint(std::uint32_t superstep) {
    return ConsumeCheckpointFault(FaultKind::kTornCheckpoint, superstep);
  }

 private:
  void FireSignals(FaultRound round) {
    for (std::uint32_t i = 0; i < num_actions_; ++i) {
      FaultAction& a = actions_[i];
      if (fired_[i] || a.superstep != superstep_ ||
          a.round != static_cast<std::uint8_t>(round)) {
        continue;
      }
      if (a.kind == static_cast<std::uint8_t>(FaultKind::kCrash)) {
        fired_[i] = true;
        ::kill(::getpid(), SIGKILL);
      } else if (a.kind == static_cast<std::uint8_t>(FaultKind::kStall)) {
        fired_[i] = true;
        ::raise(SIGSTOP);
      }
    }
  }

  bool ConsumeFrameFault(FaultKind kind, FaultRound round, int peer) {
    for (std::uint32_t i = 0; i < num_actions_; ++i) {
      FaultAction& a = actions_[i];
      if (fired_[i] || a.kind != static_cast<std::uint8_t>(kind) ||
          a.superstep != superstep_ ||
          a.round != static_cast<std::uint8_t>(round) || a.peer != peer) {
        continue;
      }
      fired_[i] = true;
      return true;
    }
    return false;
  }

  bool ConsumeCheckpointFault(FaultKind kind, std::uint32_t superstep) {
    for (std::uint32_t i = 0; i < num_actions_; ++i) {
      FaultAction& a = actions_[i];
      if (fired_[i] || a.kind != static_cast<std::uint8_t>(kind) ||
          a.superstep != superstep) {
        continue;
      }
      fired_[i] = true;
      return true;
    }
    return false;
  }

  FaultAction actions_[DneOptions::kMaxFaultActions] = {};
  bool fired_[DneOptions::kMaxFaultActions] = {};
  std::uint32_t num_actions_ = 0;
  std::uint32_t superstep_ = 0;
};

}  // namespace dne

#endif  // DNE_RUNTIME_FAULT_INJECTOR_H_
