#include "runtime/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "runtime/wire.h"

namespace dne {
namespace ckpt {

namespace {

Status WriteAllFd(int fd, const void* data, std::size_t len,
                  const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("checkpoint write '" + path +
                             "': " + std::strerror(errno));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly len bytes; false on EOF or error (a torn / foreign file —
/// the caller reports the path).
bool ReadAllFd(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Parses "proc<P>.step<S>.ckpt"; false for any other name.
bool ParseCheckpointName(const std::string& name, std::uint32_t* proc,
                         std::uint32_t* step) {
  constexpr char kProc[] = "proc";
  constexpr char kStep[] = ".step";
  constexpr char kExt[] = ".ckpt";
  if (name.rfind(kProc, 0) != 0) return false;
  const std::size_t step_at = name.find(kStep);
  if (step_at == std::string::npos) return false;
  if (name.size() < std::strlen(kExt) ||
      name.compare(name.size() - std::strlen(kExt), std::strlen(kExt),
                   kExt) != 0) {
    return false;
  }
  const auto parse = [](const char* begin, const char* end,
                        std::uint32_t* out) {
    auto [ptr, ec] = std::from_chars(begin, end, *out);
    return ec == std::errc{} && ptr == end && begin != end;
  };
  const char* data = name.data();
  return parse(data + std::strlen(kProc), data + step_at, proc) &&
         parse(data + step_at + std::strlen(kStep),
               data + name.size() - std::strlen(kExt), step);
}

}  // namespace

std::string CheckpointPath(const std::string& dir, int proc_index,
                           std::uint32_t superstep) {
  return dir + "/proc" + std::to_string(proc_index) + ".step" +
         std::to_string(superstep) + ".ckpt";
}

CheckpointWriter::~CheckpointWriter() { Abort(); }

Status CheckpointWriter::Open(const std::string& dir, int proc_index,
                              std::uint32_t superstep) {
  final_path_ = CheckpointPath(dir, proc_index, superstep);
  tmp_path_ = final_path_ + ".tmp";
  superstep_ = superstep;
  frames_ = 0;
  bytes_ = 0;
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    return Status::IOError("checkpoint open '" + tmp_path_ +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

Status CheckpointWriter::WriteFrame(std::uint8_t kind,
                                    const unsigned char* payload,
                                    std::size_t payload_len) {
  wire::FrameHeader h;
  h.kind = kind;
  h.from = 0;
  h.payload_len = payload_len;
  h.checksum = wire::FrameChecksum(payload, payload_len);
  unsigned char header[wire::kFrameHeaderBytes];
  wire::EncodeHeader(h, header);
  DNE_RETURN_IF_ERROR(WriteAllFd(fd_, header, sizeof(header), tmp_path_));
  DNE_RETURN_IF_ERROR(WriteAllFd(fd_, payload, payload_len, tmp_path_));
  ++frames_;
  bytes_ += sizeof(header) + payload_len;
  return Status::OK();
}

Status CheckpointWriter::Commit(bool tear_tail) {
  CkptFooter footer;
  footer.frame_count = frames_;
  footer.superstep = superstep_;
  DNE_RETURN_IF_ERROR(
      WriteFrame(kCkptFooter, reinterpret_cast<const unsigned char*>(&footer),
                 sizeof(footer)));
  if (::fsync(fd_) != 0 || ::close(fd_) != 0) {
    fd_ = -1;
    Abort();
    return Status::IOError("checkpoint fsync '" + tmp_path_ +
                           "': " + std::strerror(errno));
  }
  fd_ = -1;
  if (::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    Abort();
    return Status::IOError("checkpoint rename '" + final_path_ +
                           "': " + std::strerror(errno));
  }
  if (tear_tail) {
    // Fault injection: chop into the footer frame after the rename — the
    // shape an interrupted write leaves behind on a non-atomic filesystem.
    if (::truncate(final_path_.c_str(), static_cast<off_t>(bytes_ - 8)) != 0) {
      return Status::IOError("checkpoint tear '" + final_path_ +
                             "': " + std::strerror(errno));
    }
  }
  return Status::OK();
}

void CheckpointWriter::Abort() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!tmp_path_.empty()) {
    ::unlink(tmp_path_.c_str());
    tmp_path_.clear();
  }
}

Status CheckpointReader::Open(const std::string& path) {
  frames_.clear();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("checkpoint open '" + path +
                           "': " + std::strerror(errno));
  }
  Status status = Status::OK();
  bool saw_footer = false;
  CkptFooter footer;
  while (true) {
    unsigned char raw[wire::kFrameHeaderBytes];
    if (!ReadAllFd(fd, raw, sizeof(raw))) {
      status = Status::IOError("checkpoint '" + path +
                               "' is torn (truncated frame header)");
      break;
    }
    wire::FrameHeader h;
    status = wire::DecodeHeader(raw, &h);
    if (!status.ok()) break;
    std::vector<unsigned char> payload(h.payload_len);
    if (!ReadAllFd(fd, payload.data(), payload.size())) {
      status = Status::IOError("checkpoint '" + path +
                               "' is torn (truncated payload)");
      break;
    }
    if (wire::FrameChecksum(payload.data(), payload.size()) != h.checksum) {
      status =
          Status::IOError("checkpoint '" + path + "' failed its checksum");
      break;
    }
    if (h.kind == kCkptFooter) {
      if (payload.size() != sizeof(CkptFooter)) {
        status = Status::IOError("checkpoint '" + path + "' has a malformed "
                                 "footer");
        break;
      }
      std::memcpy(&footer, payload.data(), sizeof(footer));
      saw_footer = true;
      // The footer must be the last frame.
      char extra;
      if (::read(fd, &extra, 1) != 0) {
        status = Status::IOError("checkpoint '" + path +
                                 "' has bytes after its footer");
      }
      break;
    }
    frames_.emplace_back(h.kind, std::move(payload));
  }
  ::close(fd);
  DNE_RETURN_IF_ERROR(status);
  if (!saw_footer || footer.frame_count != frames_.size()) {
    return Status::IOError("checkpoint '" + path + "' is incomplete");
  }
  if (frames_.empty() || frames_[0].first != kCkptHeader ||
      frames_[0].second.size() < sizeof(CkptFileHeader)) {
    return Status::IOError("checkpoint '" + path + "' lacks a header frame");
  }
  std::memcpy(&header_, frames_[0].second.data(), sizeof(header_));
  if (header_.version != 1 || header_.superstep != footer.superstep) {
    return Status::IOError("checkpoint '" + path +
                           "' has an incompatible header");
  }
  return Status::OK();
}

std::uint32_t FindResumeStep(const std::string& dir,
                             const CheckpointExpect& expect) {
  std::error_code ec;
  std::vector<std::uint32_t> candidates;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint32_t proc = 0, step = 0;
    if (ParseCheckpointName(entry.path().filename().string(), &proc, &step) &&
        proc == 0 && step > 0) {
      candidates.push_back(step);
    }
  }
  std::sort(candidates.rbegin(), candidates.rend());
  for (const std::uint32_t step : candidates) {
    bool all_valid = true;
    for (std::uint32_t p = 0; p < expect.nproc && all_valid; ++p) {
      CheckpointReader reader;
      const Status st = reader.Open(CheckpointPath(dir, p, step));
      const CkptFileHeader& h = reader.header();
      all_valid = st.ok() && h.superstep == step && h.proc_index == p &&
                  h.nproc == expect.nproc &&
                  h.num_partitions == expect.num_partitions &&
                  h.num_vertices == expect.num_vertices &&
                  h.total_edges == expect.total_edges && h.seed == expect.seed;
    }
    if (all_valid) return step;
  }
  return 0;
}

void RemoveRunCheckpoints(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    std::uint32_t proc = 0, step = 0;
    const bool is_tmp =
        name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
    const std::string base = is_tmp ? name.substr(0, name.size() - 4) : name;
    if (ParseCheckpointName(base, &proc, &step)) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

}  // namespace ckpt
}  // namespace dne
