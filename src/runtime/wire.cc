#include "runtime/wire.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/uio.h>

#include <cerrno>
#include <cstring>

namespace dne {
namespace wire {

void EncodeHeader(const FrameHeader& h, unsigned char out[kFrameHeaderBytes]) {
  std::memset(out, 0, kFrameHeaderBytes);
  std::memcpy(out + 0, &h.magic, 4);
  out[4] = h.kind;
  std::memcpy(out + 8, &h.from, 4);
  std::memcpy(out + 16, &h.payload_len, 8);
  std::memcpy(out + 24, &h.checksum, 8);
}

Status DecodeHeader(const unsigned char in[kFrameHeaderBytes],
                    FrameHeader* out) {
  std::memcpy(&out->magic, in + 0, 4);
  out->kind = in[4];
  std::memcpy(&out->from, in + 8, 4);
  std::memcpy(&out->payload_len, in + 16, 8);
  std::memcpy(&out->checksum, in + 24, 8);
  // Corruption, not a programming error: a crashed/corrupting peer is a
  // recoverable event for the supervisor, so these map to kUnavailable.
  if (out->magic != kMagic) {
    return Status::Unavailable(
        "transport frame with bad magic (stream desync)");
  }
  if (out->payload_len > kMaxFramePayload) {
    return Status::Unavailable("transport frame with implausible length " +
                               std::to_string(out->payload_len));
  }
  return Status::OK();
}

Status SendAll(int fd, const void* data, std::size_t len,
               const std::string& peer) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const int err = n < 0 ? errno : EPIPE;
    // A vanished peer (EPIPE/ECONNRESET) is the supervisor's problem, not a
    // protocol bug — recoverable.
    if (err == EPIPE || err == ECONNRESET) {
      return Status::Unavailable("send to " + peer + " failed: " +
                                 std::strerror(err));
    }
    return Status::Internal("send to " + peer + " failed: " +
                            std::strerror(err));
  }
  return Status::OK();
}

Status RecvAll(int fd, void* data, std::size_t len, const std::string& peer) {
  auto* p = static_cast<unsigned char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      return Status::Unavailable(peer + " disconnected (rank process crash?)");
    }
    if (errno == ECONNRESET) {
      return Status::Unavailable("recv from " + peer + " failed: " +
                                 std::strerror(errno));
    }
    return Status::Internal("recv from " + peer + " failed: " +
                            std::strerror(errno));
  }
  return Status::OK();
}

namespace {

// Vectored equivalent of SendAll over two buffers: header + payload leave in
// one sendmsg syscall on the common path instead of two sends. writev(2)
// cannot suppress SIGPIPE, so this goes through sendmsg with MSG_NOSIGNAL.
Status SendAllV(int fd, const void* a, std::size_t a_len, const void* b,
                std::size_t b_len, const std::string& peer) {
  std::size_t sent = 0;
  const std::size_t total = a_len + b_len;
  while (sent < total) {
    struct iovec iov[2];
    int iovcnt = 0;
    if (sent < a_len) {
      iov[iovcnt].iov_base =
          const_cast<unsigned char*>(static_cast<const unsigned char*>(a)) +
          sent;
      iov[iovcnt].iov_len = a_len - sent;
      ++iovcnt;
    }
    const std::size_t b_sent = sent > a_len ? sent - a_len : 0;
    if (b_sent < b_len) {
      iov[iovcnt].iov_base =
          const_cast<unsigned char*>(static_cast<const unsigned char*>(b)) +
          b_sent;
      iov[iovcnt].iov_len = b_len - b_sent;
      ++iovcnt;
    }
    struct msghdr msg;
    std::memset(&msg, 0, sizeof(msg));
    msg.msg_iov = iov;
    msg.msg_iovlen = iovcnt;
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const int err = n < 0 ? errno : EPIPE;
    if (err == EPIPE || err == ECONNRESET) {
      return Status::Unavailable("send to " + peer + " failed: " +
                                 std::strerror(err));
    }
    return Status::Internal("send to " + peer + " failed: " +
                            std::strerror(err));
  }
  return Status::OK();
}

}  // namespace

Status SendFrame(int fd, std::uint8_t kind, std::uint32_t from,
                 const unsigned char* payload, std::size_t payload_len,
                 const std::string& peer) {
  FrameHeader h;
  h.kind = kind;
  h.from = from;
  h.payload_len = payload_len;
  h.checksum = FrameChecksum(payload, payload_len);
  unsigned char buf[kFrameHeaderBytes];
  EncodeHeader(h, buf);
  return SendAllV(fd, buf, kFrameHeaderBytes, payload, payload_len, peer);
}

Status RecvFrame(int fd, FrameHeader* header,
                 std::vector<unsigned char>* payload,
                 const std::string& peer) {
  unsigned char buf[kFrameHeaderBytes];
  DNE_RETURN_IF_ERROR(RecvAll(fd, buf, kFrameHeaderBytes, peer));
  DNE_RETURN_IF_ERROR(DecodeHeader(buf, header));
  payload->resize(header->payload_len);
  if (header->payload_len > 0) {
    DNE_RETURN_IF_ERROR(
        RecvAll(fd, payload->data(), header->payload_len, peer));
  }
  const std::uint64_t sum = FrameChecksum(payload->data(), payload->size());
  if (sum != header->checksum) {
    return Status::Unavailable("frame checksum mismatch from " + peer +
                               " (corrupted transport stream)");
  }
  return Status::OK();
}

}  // namespace wire
}  // namespace dne
