// Superstep checkpoint files for the multi-process transport.
//
// Every K supersteps each rank process serialises its full
// superstep-boundary state to `<dir>/proc<P>.step<S>.ckpt`. A checkpoint
// file is a sequence of wire-format frames (the same 32-byte checksummed
// header the socket transport uses, written with file I/O instead of
// socket I/O):
//
//   kCkptHeader   CkptFileHeader + |P| u64 allocated counts + |P| u64 peeks
//   kCkptRank     (one per locally hosted rank) CkptRankHeader followed by
//                 the AllocationProcess and ExpansionProcess state blobs
//   kCkptTape     the TapeLedger step history (same step encoding as the
//                 end-of-run stats frame)
//   kCkptFooter   CkptFooter naming the frame count — the file is complete
//                 if and only if a valid footer is the last frame
//
// Files are written to a temp name and renamed into place after fsync, so
// a crash mid-write never shadows the previous checkpoint; a torn tail
// (power cut after rename, injected fault) fails the footer/checksum scan
// and the supervisor falls back to the previous complete superstep.
#ifndef DNE_RUNTIME_CHECKPOINT_H_
#define DNE_RUNTIME_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dne {
namespace ckpt {

/// Frame kinds inside a checkpoint file (disjoint from DneMsgKind /
/// CtrlKind so a misdirected frame can never be mistaken for either).
inline constexpr std::uint8_t kCkptHeader = 64;
inline constexpr std::uint8_t kCkptRank = 65;
inline constexpr std::uint8_t kCkptTape = 66;
inline constexpr std::uint8_t kCkptFooter = 67;

/// Identity + shape of the run a checkpoint belongs to. The supervisor
/// refuses to resume from a file whose shape differs from the run it is
/// recovering (stale directory, different graph, different config).
struct CkptFileHeader {
  std::uint32_t version = 1;
  std::uint32_t nproc = 0;
  std::uint32_t proc_index = 0;
  std::uint32_t num_partitions = 0;
  std::uint32_t num_local_ranks = 0;
  std::uint32_t superstep = 0;  ///< BSP iterations completed at the boundary
  std::uint64_t num_vertices = 0;
  std::uint64_t total_edges = 0;
  std::uint64_t seed = 0;
  std::uint64_t total_allocated = 0;
};
static_assert(std::is_trivially_copyable_v<CkptFileHeader> &&
                  sizeof(CkptFileHeader) == 56 &&
                  offsetof(CkptFileHeader, superstep) == 20 &&
                  offsetof(CkptFileHeader, total_allocated) == 48,
              "CkptFileHeader is on-disk state — layout is frozen");

/// One hosted rank's state blob sizes + counters inside a kCkptRank frame.
struct CkptRankHeader {
  std::uint32_t rank = 0;
  std::uint32_t pad = 0;
  std::uint64_t alloc_bytes = 0;      ///< AllocationProcess blob length
  std::uint64_t expansion_bytes = 0;  ///< ExpansionProcess blob length
  std::uint64_t two_hop_edges = 0;
  std::uint64_t random_restarts = 0;
};
static_assert(std::is_trivially_copyable_v<CkptRankHeader> &&
                  sizeof(CkptRankHeader) == 40 &&
                  offsetof(CkptRankHeader, alloc_bytes) == 8,
              "CkptRankHeader is on-disk state — layout is frozen");

/// Completion marker: a file lacking this (or whose counts disagree) is
/// torn and unusable.
struct CkptFooter {
  std::uint64_t frame_count = 0;  ///< frames before the footer
  std::uint32_t superstep = 0;
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<CkptFooter> &&
                  sizeof(CkptFooter) == 16,
              "CkptFooter is on-disk state — layout is frozen");

/// `<dir>/proc<proc_index>.step<superstep>.ckpt`.
std::string CheckpointPath(const std::string& dir, int proc_index,
                           std::uint32_t superstep);

/// Writes one checkpoint file: Open -> WriteFrame* -> Commit. Commit
/// appends the footer, fsyncs and renames the temp file into place.
/// `tear_tail` (fault injection) truncates the final bytes AFTER the
/// rename — the exact torn-write shape recovery must survive.
class CheckpointWriter {
 public:
  ~CheckpointWriter();

  Status Open(const std::string& dir, int proc_index, std::uint32_t superstep);
  Status WriteFrame(std::uint8_t kind, const unsigned char* payload,
                    std::size_t payload_len);
  Status Commit(bool tear_tail);
  /// Removes the temp file of an Open that will not Commit.
  void Abort();

  /// Bytes written so far, frame headers included (checkpoint overhead
  /// accounting).
  std::uint64_t bytes_written() const { return bytes_; }

 private:
  int fd_ = -1;
  std::string tmp_path_;
  std::string final_path_;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint32_t superstep_ = 0;
};

/// Reads + fully validates one checkpoint file (every frame checksum, the
/// footer, the expected frame sequence). After a successful Open the
/// frames are available for decoding; any failure means the file is torn
/// or foreign and must not be resumed from.
class CheckpointReader {
 public:
  Status Open(const std::string& path);

  const CkptFileHeader& header() const { return header_; }
  /// Payloads in file order, footer excluded: [0] is the kCkptHeader frame.
  const std::vector<std::pair<std::uint8_t, std::vector<unsigned char>>>&
  frames() const {
    return frames_;
  }

 private:
  CkptFileHeader header_;
  std::vector<std::pair<std::uint8_t, std::vector<unsigned char>>> frames_;
};

/// Run shape a resumable checkpoint set must match.
struct CheckpointExpect {
  std::uint32_t nproc = 0;
  std::uint32_t num_partitions = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t total_edges = 0;
  std::uint64_t seed = 0;
};
static_assert(std::is_trivially_copyable_v<CheckpointExpect>,
              "CheckpointExpect is compared field-wise against on-disk "
              "headers");

/// The latest superstep for which ALL nproc processes have a complete,
/// shape-matching checkpoint file in `dir`; 0 when none exists (restart
/// from scratch).
std::uint32_t FindResumeStep(const std::string& dir,
                             const CheckpointExpect& expect);

/// Deletes every proc*.step*.ckpt (and temp) file in `dir` — run start
/// hygiene so a stale directory can never be resumed from.
void RemoveRunCheckpoints(const std::string& dir);

}  // namespace ckpt
}  // namespace dne

#endif  // DNE_RUNTIME_CHECKPOINT_H_
