#include "runtime/thread_pool.h"

namespace dne {

ThreadPool::ThreadPool(int num_threads) {
  for (int i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  mu_.Lock();
  while (true) {
    while (!(shutdown_ || !tasks_.empty() ||
             (job_ != nullptr && generation_ != seen_generation))) {
      work_ready_.wait(mu_);
    }
    // Drain pending Submit tasks first (also during shutdown, so futures
    // handed out before the destructor always complete).
    if (!tasks_.empty()) {
      std::packaged_task<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      mu_.Unlock();
      task();
      mu_.Lock();
      continue;
    }
    if (shutdown_) break;
    seen_generation = generation_;
    while (next_index_ < job_size_) {
      const std::size_t i = next_index_++;
      const std::function<void(std::size_t)>* job = job_;
      mu_.Unlock();
      (*job)(i);
      mu_.Lock();
      ++completed_;
    }
    if (completed_ == job_size_) work_done_.notify_all();
  }
  mu_.Unlock();
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    MutexLock lock(&mu_);
    job_ = &fn;
    job_size_ = n;
    next_index_ = 0;
    completed_ = 0;
    ++generation_;
  }
  work_ready_.notify_all();
  // The caller participates too.
  mu_.Lock();
  while (next_index_ < job_size_) {
    const std::size_t i = next_index_++;
    mu_.Unlock();
    fn(i);
    mu_.Lock();
    ++completed_;
  }
  while (completed_ != job_size_) work_done_.wait(mu_);
  job_ = nullptr;
  mu_.Unlock();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (workers_.empty()) {
    task();  // single-threaded pool: run inline
    return future;
  }
  {
    MutexLock lock(&mu_);
    tasks_.push_back(std::move(task));
  }
  work_ready_.notify_all();
  return future;
}

}  // namespace dne
