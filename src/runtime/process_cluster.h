// Multi-process runtime: forked rank processes, a peer-to-peer mesh between
// them, and a control channel back to the coordinating parent.
//
//   ProcessCluster   — parent-side lifecycle: creates the mesh (a Unix
//                      socketpair per pair, or one shared-memory ring
//                      region) and per-child control channels, forks the
//                      children, and guarantees teardown (kill + reap) on
//                      every exit path so a crashed or wedged rank can
//                      never hang the caller.
//   MeshCommunicator — the transport-agnostic Communicator core a rank
//                      process runs the superstep loop against: collectives
//                      are batched, length-prefixed, FNV-checksummed frames
//                      exchanged peer-to-peer (see runtime/wire.h), and the
//                      charged volume is what was actually sent. Subclasses
//                      supply only the byte movement (ProgressRound).
//   SocketCommunicator — frames over the Unix-domain socket mesh
//                      (non-blocking send/recv under poll).
//   ShmCommunicator  — the same frames through per-pair shared-memory SPSC
//                      rings (runtime/shm_ring.h): no per-round syscalls on
//                      the data path, one copy fewer, futex doorbells for
//                      blocking waits. Frame bytes are identical to the
//                      socket mesh, so partitions, accounting and the
//                      fault-injection grammar carry over unchanged.
//
// Topology: one frame per ordered process pair per collective (an
// alltoallv-style batch of all (from_rank -> to_rank) sub-messages between
// the two processes). Empty frames still flow — they are the
// synchronisation. Ranks co-hosted on one process exchange in memory for
// free, exactly like co-located MPI ranks over shared memory. The fused
// end-of-superstep collective goes further: boundary reports, the edge
// hand-off and the per-rank step summaries ride ONE multi-channel frame per
// peer (wire.h ChannelDir directory, single checksum), and the replica-sync
// exchange can run asynchronously (BeginExchange / FinishExchange) so
// Phase-C compute overlaps the in-flight round.
//
// Failure model: on the socket mesh a dying process closes its socket
// ends and every peer's poll loop treats EOF/HUP as a fatal protocol
// event. Shared memory has no EOF, so the parent marks a reaped child dead
// in the mesh (alive word + doorbells) and peers observe ring-empty +
// !alive — either way the collective surfaces a recoverable
// Status::Unavailable naming the peer instead of deadlocking on a missing
// frame.
#ifndef DNE_RUNTIME_PROCESS_CLUSTER_H_
#define DNE_RUNTIME_PROCESS_CLUSTER_H_

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/communicator.h"
#include "runtime/shm_ring.h"
#include "runtime/wire.h"

namespace dne {

class FaultInjector;

/// Parent-side handle on the forked rank processes.
///
/// Thread safety: confined to the coordinating parent thread — Launch,
/// PollExited, KillAll and ReapAll share the pid/reaped tables with no
/// internal lock, and fork()/waitpid() from concurrent threads would be a
/// hazard regardless. (This file is also the only place outside the linter
/// allowlist permitted to call fork(): tools/dne_lint.py bans raw
/// pthread/fork primitives outside src/runtime/.)
class ProcessCluster {
 public:
  /// Runs in the forked child: (child index, mesh fds indexed by peer
  /// process with -1 at the child's own slot, control fd to the parent).
  /// The return value becomes the child's exit status; the child never
  /// returns to the caller's code. Under MeshMode::kShm the mesh fds are
  /// all -1 and the child reaches the rings through shm_mesh() on its
  /// forked copy of this cluster (the MAP_SHARED mapping is inherited).
  using ChildMain = std::function<int(int, const std::vector<int>&, int)>;

  /// Which mesh the children exchange frames over. The control channel to
  /// the parent is a socketpair either way.
  enum class MeshMode { kSocket, kShm };

  ProcessCluster() = default;
  ~ProcessCluster();

  ProcessCluster(const ProcessCluster&) = delete;
  ProcessCluster& operator=(const ProcessCluster&) = delete;

  /// Creates the mesh + control channels and forks `nproc` children. On
  /// success the parent holds one control fd per child; all mesh fds are
  /// closed in the parent.
  Status Launch(int nproc, const ChildMain& child_main) {
    return Launch(nproc, MeshMode::kSocket, child_main);
  }
  Status Launch(int nproc, MeshMode mode, const ChildMain& child_main);

  int nproc() const { return static_cast<int>(pids_.size()); }
  int control_fd(int child) const { return control_fds_[child]; }
  pid_t pid(int child) const { return pids_[child]; }

  /// The shared-memory mesh under MeshMode::kShm; null in socket mode.
  ShmMesh* shm_mesh() const { return shm_mesh_.get(); }

  /// True once the child has been reaped (by ReapAll or a monitor).
  bool reaped(int child) const { return reaped_[child]; }
  /// Also marks the child dead in the shm mesh (when one exists), so peers
  /// blocked on its rings unwedge — the shared-memory analogue of EOF.
  void MarkReaped(int child, int wait_status);

  /// Non-blocking scan for any exited child; returns true and fills
  /// (child, wait_status) when one was reaped.
  bool PollExited(int* child, int* wait_status);

  /// SIGKILLs every still-running child (idempotent) and marks them dead in
  /// the shm mesh.
  void KillAll();

  /// Reaps every remaining child (blocking) and returns a human-readable
  /// summary of abnormal exits ("rank process 2 (pid 123) killed by signal
  /// 9"), empty when all exited cleanly.
  std::string ReapAll();

 private:
  std::vector<pid_t> pids_;
  std::vector<int> control_fds_;
  std::vector<bool> reaped_;
  std::vector<int> wait_status_;
  std::unique_ptr<ShmMesh> shm_mesh_;
};

/// Transport-agnostic core of the rank-process Communicator endpoints: all
/// frame construction/parsing, sub-block staging, inbox assembly, ledger
/// charging, collective fusion and fault-injection hooks live here.
/// Subclasses implement only ProgressRound — how staged frame bytes reach
/// the peers and how their frames come back.
class MeshCommunicator : public Communicator {
 public:
  int num_ranks() const override { return num_ranks_; }
  const std::vector<int>& local_ranks() const override { return local_; }
  void SetLedger(CommLedger* ledger) override { ledger_ = ledger; }

  Status Exchange(DneMsgKind k, RankMailboxes<SelectRequest>* m) override;
  Status Exchange(DneMsgKind k, RankMailboxes<VertexPartPair>* m) override;
  Status Exchange(DneMsgKind k, RankMailboxes<BoundaryReport>* m) override;
  Status Exchange(DneMsgKind k, RankMailboxes<Edge>* m) override;
  Status Exchange(DneMsgKind k, RankMailboxes<VertexId>* m) override;
  Status Exchange(DneMsgKind k, RankMailboxes<SyncValueRecord>* m) override;
  Status ExchangeServeStep(RankMailboxes<SyncValueRecord>* sync,
                           const std::vector<ServeStepSummary>& local,
                           std::vector<ServeStepSummary>* all) override;
  Status BeginExchange(DneMsgKind k, RankMailboxes<VertexPartPair>* m) override;
  Status FinishExchange(DneMsgKind k,
                        RankMailboxes<VertexPartPair>* m) override;
  Status ExchangeStepEnd(RankMailboxes<BoundaryReport>* reports,
                         RankMailboxes<Edge>* handoff,
                         const std::vector<std::uint64_t>& local_peeks,
                         std::vector<std::uint64_t>* all_peeks,
                         std::vector<std::uint64_t>* handoff_totals) override;
  Status AllGatherU64(const std::vector<std::uint64_t>& local_vals,
                      std::vector<std::uint64_t>* all) override;
  Status Barrier() override;

  int rank_to_proc(int rank) const { return rank % nproc_; }
  int slot_of_rank(int rank) const { return (rank - proc_index_) / nproc_; }

  /// Arms deterministic fault injection: every mesh round probes the
  /// injector for round-keyed crash/stall signals and frame drop/flip
  /// targets. Borrowed; null (the default) disables all probes.
  void SetFaultInjector(FaultInjector* injector) { fault_ = injector; }

  /// Kind of the most recently armed mesh round — when a collective
  /// returns kUnavailable, this names the round the endpoint was in for
  /// the structured failure report.
  std::uint8_t last_round_kind() const { return round_kind_; }

 protected:
  MeshCommunicator(int num_ranks, int nproc, int proc_index, bool coalesce,
                   double stall_timeout_s);

  /// Per-peer progress of the round in flight.
  struct PeerIo {
    std::size_t sent = 0;
    unsigned char hdr[wire::kFrameHeaderBytes];
    std::size_t hdr_got = 0;
    wire::FrameHeader header;
    bool header_done = false;
    std::size_t payload_got = 0;
    bool recv_done = false;
  };

  /// "rank process q (simulated ranks ...)" — every mesh-round diagnostic
  /// names the peer this way so a crash is attributable to concrete ranks.
  std::string PeerLabel(int q) const;

  /// Arms a round: every peer will be sent `send_frames_[q]` and owes one
  /// frame of `kind` back. Fails if a round is already in flight.
  Status StartRound(std::uint8_t kind);
  /// Drives the armed round. block=false makes one opportunistic pass
  /// (sends what fits, drains what arrived) and returns with the round
  /// still pending — the overlap window. block=true runs to completion,
  /// waiting event-driven with the round deadline as the wedge guard.
  /// Received payloads land in `recv_payloads_[q]`; a completing call ends
  /// with CompleteRound() (checksum verification).
  virtual Status ProgressRound(bool block) = 0;
  /// Closes the round: clears the in-flight flag and verifies every peer
  /// frame's checksum. Every ProgressRound implementation returns this
  /// once all peers are done.
  Status CompleteRound();
  /// StartRound + ProgressRound(block=true): a synchronous collective.
  Status RunMeshRound(std::uint8_t kind);

  template <typename T>
  Status ExchangeImpl(DneMsgKind kind, RankMailboxes<T>* m);
  /// Serialises one frame per peer from the out boxes and charges the
  /// ledger (data payloads + framing overhead).
  template <typename T>
  void BuildExchangeFrames(DneMsgKind kind, RankMailboxes<T>* m);
  /// Parses one peer's sub-block byte range into stage_.
  template <typename T>
  Status StageSubBlocks(const unsigned char* data, std::size_t len, int q);
  /// Assembles every local inbox from stage_ + co-hosted out boxes, then
  /// clears the out boxes.
  template <typename T>
  void AssembleInboxes(RankMailboxes<T>* m);
  void ClearStage();
  /// Folds one peer's StepSummaryRecord sequence into the global peek /
  /// hand-off tables.
  Status ParseSummaries(const unsigned char* data, std::size_t len, int q,
                        std::vector<std::uint64_t>* all_peeks,
                        std::vector<std::uint64_t>* handoff_totals);
  /// Folds one peer's ServeStepSummary sequence into the global table.
  Status ParseServeSummaries(const unsigned char* data, std::size_t len, int q,
                             std::vector<ServeStepSummary>* all);

  int num_ranks_;
  int nproc_;
  int proc_index_;
  std::vector<int> local_;
  bool coalesce_;
  double stall_timeout_s_;
  CommLedger* ledger_ = nullptr;
  FaultInjector* fault_ = nullptr;

  // Per-peer scratch, reused across rounds.
  std::vector<std::vector<unsigned char>> send_frames_;
  std::vector<std::vector<unsigned char>> recv_payloads_;
  // Sub-message staging for exchanges: stage_[local slot][from rank] holds
  // the raw bytes sent by `from` to that local rank this round.
  std::vector<std::vector<std::vector<unsigned char>>> stage_;
  // Round in flight (between StartRound and its completing ProgressRound).
  std::vector<PeerIo> round_io_;
  bool round_active_ = false;
  std::uint8_t round_kind_ = 0;
  std::chrono::steady_clock::time_point round_deadline_;
};

/// The rank-process Communicator endpoint over the socket mesh.
class SocketCommunicator final : public MeshCommunicator {
 public:
  /// `mesh_fds[q]` connects to process q (-1 at `proc_index`). The endpoint
  /// hosts the simulated ranks {r : r mod nproc == proc_index}. `coalesce`
  /// selects the fused multi-channel step-end frame (default); when false
  /// the step-end collective degrades to one frame per logical exchange —
  /// kept as the differential baseline for the coalescing tests.
  /// `stall_timeout_s` is the mesh-round deadline: how long to wait on a
  /// wedged (but not crashed) peer before giving up on the round.
  SocketCommunicator(int num_ranks, int nproc, int proc_index,
                     std::vector<int> mesh_fds, bool coalesce = true,
                     double stall_timeout_s = 600.0);
  ~SocketCommunicator() override;

 private:
  Status ProgressRound(bool block) override;

  std::vector<int> mesh_fds_;
};

/// The rank-process Communicator endpoint over the shared-memory ring mesh.
/// Byte-for-byte the same frames as SocketCommunicator — only the transport
/// underneath changes (SPSC rings + futex doorbells instead of socketpairs
/// + poll), so results, accounting and fault semantics are identical.
class ShmCommunicator final : public MeshCommunicator {
 public:
  /// `mesh` is borrowed (owned by the forked copy of the ProcessCluster);
  /// it must host exactly `nproc` processes.
  ShmCommunicator(int num_ranks, int nproc, int proc_index, ShmMesh* mesh,
                  bool coalesce = true, double stall_timeout_s = 600.0);

 private:
  Status ProgressRound(bool block) override;

  ShmMesh* mesh_;
};

}  // namespace dne

#endif  // DNE_RUNTIME_PROCESS_CLUSTER_H_
