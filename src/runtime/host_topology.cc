#include "runtime/host_topology.h"

#if defined(__linux__)
#include <sys/vfs.h>
#include <unistd.h>
#endif

namespace dne {

int CountNumaNodes() {
#if defined(__linux__)
  // Existence probes instead of reading the `online` mask: no numeric
  // parsing, and sparse node numbering (node0, node2) still counts right
  // up to the probe bound. 64 nodes covers every single-host box the
  // transport targets (kMaxRankProcesses is 64 too).
  int nodes = 0;
  for (int i = 0; i < 64; ++i) {
    const std::string dir = "/sys/devices/system/node/node" + std::to_string(i);
    if (::access(dir.c_str(), F_OK) == 0) ++nodes;
  }
  return nodes > 0 ? nodes : 1;
#else
  return 1;
#endif
}

bool FilesystemMagicIsRemote(long magic) {
  // NFS_SUPER_MAGIC, SMB_SUPER_MAGIC, CIFS_MAGIC_NUMBER, SMB2_MAGIC_NUMBER —
  // spelled as literals so the classification needs no kernel headers and
  // stays testable on any platform.
  switch (static_cast<unsigned long>(magic)) {
    case 0x6969UL:      // NFS
    case 0x517BUL:      // SMB
    case 0xFF534D42UL:  // CIFS
    case 0xFE534D42UL:  // SMB2
      return true;
    default:
      return false;
  }
}

bool PathOnLocalFilesystem(const std::string& path) {
#if defined(__linux__)
  // The checkpoint directory usually does not exist yet — walk up to the
  // nearest existing parent, which is the mount the files will land on.
  std::string probe = path.empty() ? "." : path;
  for (;;) {
    struct statfs fs;
    if (::statfs(probe.c_str(), &fs) == 0) {
      return !FilesystemMagicIsRemote(static_cast<long>(fs.f_type));
    }
    const std::size_t slash = probe.find_last_of('/');
    if (slash == std::string::npos) {
      probe = ".";
      struct statfs cwd_fs;
      if (::statfs(probe.c_str(), &cwd_fs) == 0) {
        return !FilesystemMagicIsRemote(static_cast<long>(cwd_fs.f_type));
      }
      return true;
    }
    probe = slash == 0 ? "/" : probe.substr(0, slash);
  }
#else
  (void)path;
  return true;
#endif
}

}  // namespace dne
