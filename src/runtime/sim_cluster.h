// SimCluster: the deterministic in-process replacement for the paper's MPI
// deployment. Ranks exchange byte-counted message buffers at superstep
// barriers; work/bytes feed the CostModel; buffers feed the MemTracker.
//
// Why a simulation is faithful: Distributed NE (and the app engine) are
// bulk-synchronous — every observable output (edge placement, iteration
// count, bytes on the wire, critical-path work) is a deterministic function
// of the superstep schedule, which this class executes exactly. See
// DESIGN.md §1.
#ifndef DNE_RUNTIME_SIM_CLUSTER_H_
#define DNE_RUNTIME_SIM_CLUSTER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/comm_stats.h"
#include "runtime/cost_model.h"
#include "runtime/mem_tracker.h"

namespace dne {

/// A simulated cluster of `num_ranks` machines.
///
/// Thread safety: *externally synchronised, single-writer*. All charging
/// (comm()/cost() mutation, Barrier()) happens on the orchestrating driver
/// thread — the superstep loop flushes per-rank work sequentially in rank
/// order precisely so the charge stream is deterministic; pool workers never
/// touch the cluster directly. The one exception is mem(): MemTracker is
/// internally synchronised (see mem_tracker.h) because the stream harness
/// charges it from read-ahead tasks. This contract is what keeps charging
/// deterministic and is exercised under TSan by tests/tsan_stress_test.cc.
class SimCluster {
 public:
  explicit SimCluster(int num_ranks,
                      const CostModelOptions& cost = CostModelOptions{})
      : num_ranks_(num_ranks),
        cost_model_(cost, num_ranks),
        mem_(num_ranks) {}

  int num_ranks() const { return num_ranks_; }

  CommStats& comm() { return comm_; }
  const CommStats& comm() const { return comm_; }
  CostModel& cost() { return cost_model_; }
  const CostModel& cost() const { return cost_model_; }
  MemTracker& mem() { return mem_; }
  const MemTracker& mem() const { return mem_; }

  /// Ends a superstep: advances the simulated clock past the barrier.
  void Barrier() {
    ++comm_.supersteps;
    cost_model_.EndSuperstep();
  }

 private:
  int num_ranks_;
  CommStats comm_;
  CostModel cost_model_;
  MemTracker mem_;
};

/// All-to-all exchange of trivially-copyable messages of type T.
///
/// Usage: each rank appends to Out(from, to); Deliver()/DeliverInto() route
/// everything, charging sizeof(T) per *cross-rank* message to CommStats and
/// to the sender's injection bytes in the CostModel, and fill inbox[to] with
/// messages ordered by sending rank (deterministic).
///
/// The object is reusable: a delivery leaves every outbox empty (capacity
/// retained by DeliverInto, released by Deliver) and the next round of
/// Out().push_back() starts clean. A persistent AllToAll plus a persistent
/// inbox arena passed to DeliverInto() makes repeated exchanges
/// allocation-free in steady state — the DNE driver runs four exchanges per
/// superstep this way. Reset() abandons any buffered messages in place
/// (capacity retained, nothing charged).
///
/// Thread safety: *phase-structured*. During a fill phase, concurrent
/// threads may each append to disjoint Out(from, ·) rows (the outbox grid is
/// pre-sized at construction, so no shared vector reallocates); the
/// ParallelFor completion hand-shake then publishes every append to the
/// driver before Deliver()/DeliverInto()/Reset(), which must run exclusively
/// on the driver thread. A mutex cannot express this barrier discipline —
/// it is documented here, checked at runtime by the TSan stress suite.
template <typename T>
class AllToAll {
 public:
  explicit AllToAll(int num_ranks)
      : num_ranks_(num_ranks),
        boxes_(static_cast<std::size_t>(num_ranks) * num_ranks) {}

  std::vector<T>& Out(int from, int to) {
    return boxes_[static_cast<std::size_t>(from) * num_ranks_ + to];
  }

  /// Discards all buffered (undelivered) messages, keeping the outbox
  /// capacity for reuse. No communication is charged.
  void Reset() {
    for (std::vector<T>& box : boxes_) box.clear();
  }

  /// Routes all buffered messages into a fresh inbox. The exchange itself
  /// is not a barrier; callers invoke cluster.Barrier() when the superstep
  /// ends.
  std::vector<std::vector<T>> Deliver(SimCluster* cluster) {
    std::vector<std::vector<T>> inbox(num_ranks_);
    DeliverInto(cluster, &inbox);
    // One-shot use: also drop the outbox capacity.
    for (std::vector<T>& box : boxes_) box.shrink_to_fit();
    return inbox;
  }

  /// Routes all buffered messages into `*inbox`, a caller-owned arena that
  /// is resized to one vector per rank and overwritten (capacity of both
  /// the inbox vectors and the outboxes is retained across calls). The
  /// charged communication is identical to Deliver().
  void DeliverInto(SimCluster* cluster, std::vector<std::vector<T>>* inbox) {
    inbox->resize(num_ranks_);
    // Pre-size inboxes, then concatenate in sender order.
    for (int to = 0; to < num_ranks_; ++to) {
      std::size_t total = 0;
      for (int from = 0; from < num_ranks_; ++from) {
        total += Out(from, to).size();
      }
      (*inbox)[to].clear();
      (*inbox)[to].reserve(total);
    }
    for (int from = 0; from < num_ranks_; ++from) {
      for (int to = 0; to < num_ranks_; ++to) {
        std::vector<T>& box = Out(from, to);
        if (from != to && !box.empty()) {
          const std::uint64_t msg_bytes = box.size() * sizeof(T);
          cluster->comm().AddMessage(msg_bytes);
          cluster->cost().AddBytes(from, msg_bytes);
        }
        (*inbox)[to].insert((*inbox)[to].end(), box.begin(), box.end());
        box.clear();
      }
    }
  }

 private:
  int num_ranks_;
  std::vector<std::vector<T>> boxes_;
};

}  // namespace dne

#endif  // DNE_RUNTIME_SIM_CLUSTER_H_
