#include "runtime/communicator.h"

#include <algorithm>
#include <numeric>

namespace dne {

InProcessCommunicator::InProcessCommunicator(int num_ranks)
    : num_ranks_(num_ranks), local_(static_cast<std::size_t>(num_ranks)) {
  std::iota(local_.begin(), local_.end(), 0);
}

template <typename T>
Status InProcessCommunicator::ExchangeImpl(RankMailboxes<T>* m) {
  // Concatenate in ascending sender order into persistent inbox arenas —
  // the same routing (and the same modeled charging: sizeof(T) per
  // cross-rank non-empty box, self-traffic free) as AllToAll::DeliverInto.
  for (int to = 0; to < num_ranks_; ++to) {
    std::size_t total = 0;
    for (int from = 0; from < num_ranks_; ++from) {
      total += m->out[from][to].size();
    }
    std::vector<T>& inbox = m->in[to];
    inbox.clear();
    inbox.reserve(total);
    m->in_begin[to][0] = 0;
    for (int from = 0; from < num_ranks_; ++from) {
      std::vector<T>& box = m->out[from][to];
      if (from != to && !box.empty() && ledger_ != nullptr) {
        ledger_->AddDataMessage(from, box.size() * sizeof(T));
      }
      inbox.insert(inbox.end(), box.begin(), box.end());
      m->in_begin[to][from + 1] = inbox.size();
      box.clear();
    }
  }
  return Status::OK();
}

Status InProcessCommunicator::Exchange(DneMsgKind,
                                       RankMailboxes<SelectRequest>* m) {
  return ExchangeImpl(m);
}
Status InProcessCommunicator::Exchange(DneMsgKind,
                                       RankMailboxes<VertexPartPair>* m) {
  return ExchangeImpl(m);
}
Status InProcessCommunicator::Exchange(DneMsgKind,
                                       RankMailboxes<BoundaryReport>* m) {
  return ExchangeImpl(m);
}
Status InProcessCommunicator::Exchange(DneMsgKind, RankMailboxes<Edge>* m) {
  return ExchangeImpl(m);
}
Status InProcessCommunicator::Exchange(DneMsgKind,
                                       RankMailboxes<VertexId>* m) {
  return ExchangeImpl(m);
}
Status InProcessCommunicator::Exchange(DneMsgKind,
                                       RankMailboxes<SyncValueRecord>* m) {
  return ExchangeImpl(m);
}

Status InProcessCommunicator::ExchangeServeStep(
    RankMailboxes<SyncValueRecord>* sync,
    const std::vector<ServeStepSummary>& local,
    std::vector<ServeStepSummary>* all) {
  // Every rank is local, so the summary table is the local vector.
  *all = local;
  DNE_RETURN_IF_ERROR(ExchangeImpl(sync));
  if (ledger_ != nullptr && num_ranks_ > 1) {
    // Each rank broadcasts one ServeStepSummary to every other rank — the
    // control charge that makes termination/abort a shared decision without
    // a separate all-gather round.
    for (int r = 0; r < num_ranks_; ++r) {
      ledger_->AddControlBytes(r, static_cast<std::uint64_t>(num_ranks_ - 1) *
                                      sizeof(ServeStepSummary));
    }
  }
  return Status::OK();
}

Status InProcessCommunicator::ExchangeStepEnd(
    RankMailboxes<BoundaryReport>* reports, RankMailboxes<Edge>* handoff,
    const std::vector<std::uint64_t>& local_peeks,
    std::vector<std::uint64_t>* all_peeks,
    std::vector<std::uint64_t>* handoff_totals) {
  // Per-rank hand-off growth: column sums over the out boxes, self traffic
  // included — taken before ExchangeImpl clears the boxes.
  handoff_totals->assign(static_cast<std::size_t>(num_ranks_), 0);
  for (int to = 0; to < num_ranks_; ++to) {
    for (int from = 0; from < num_ranks_; ++from) {
      (*handoff_totals)[to] += handoff->out[from][to].size();
    }
  }
  // Every rank is local, so the peek table is the local contribution vector.
  *all_peeks = local_peeks;
  DNE_RETURN_IF_ERROR(ExchangeImpl(reports));
  DNE_RETURN_IF_ERROR(ExchangeImpl(handoff));
  if (ledger_ != nullptr && num_ranks_ > 1) {
    // Each rank broadcasts one StepSummaryRecord head plus a u64 count per
    // partition to every other rank — the control charge that replaces the
    // probe round and the |E_p| all-gather it fuses away.
    const std::uint64_t summary_bytes =
        sizeof(StepSummaryRecord) +
        static_cast<std::uint64_t>(num_ranks_) * sizeof(std::uint64_t);
    for (int r = 0; r < num_ranks_; ++r) {
      ledger_->AddControlBytes(
          r, static_cast<std::uint64_t>(num_ranks_ - 1) * summary_bytes);
    }
  }
  return Status::OK();
}

Status InProcessCommunicator::AllGatherU64(
    const std::vector<std::uint64_t>& local_vals,
    std::vector<std::uint64_t>* all) {
  all->assign(static_cast<std::size_t>(num_ranks_), 0);
  for (int r = 0; r < num_ranks_; ++r) {
    (*all)[r] = local_vals[r];
    if (ledger_ != nullptr && num_ranks_ > 1) {
      // Each rank broadcasts its 8-byte contribution to every other rank —
      // the |E_p| all-gather charge of Alg. 1 line 14.
      ledger_->AddControlBytes(
          r, static_cast<std::uint64_t>(num_ranks_ - 1) * sizeof(std::uint64_t));
    }
  }
  return Status::OK();
}

// ---- SimClusterLedger -------------------------------------------------------

SimClusterLedger::SimClusterLedger(SimCluster* cluster)
    : cluster_(cluster),
      phase_ops_(static_cast<std::size_t>(cluster->num_ranks()), 0) {}

void SimClusterLedger::AddWork(int rank, std::uint64_t ops) {
  cluster_->cost().AddWork(rank, ops);
  phase_ops_[rank] += ops;
}

void SimClusterLedger::AddDataMessage(int from_rank,
                                      std::uint64_t payload_bytes) {
  cluster_->comm().AddMessage(payload_bytes);
  cluster_->cost().AddBytes(from_rank, payload_bytes);
}

void SimClusterLedger::AddDataAggregate(int from_rank, std::uint64_t bytes,
                                        std::uint64_t messages) {
  cluster_->comm().messages += messages;
  cluster_->comm().bytes += bytes;
  cluster_->cost().AddBytes(from_rank, bytes);
}

void SimClusterLedger::AddControlBytes(int from_rank, std::uint64_t bytes) {
  cluster_->cost().AddBytes(from_rank, bytes);
}

void SimClusterLedger::AddWireOverhead(int from_rank, std::uint64_t bytes,
                                       std::uint64_t frames) {
  // Observed framing: charged to the sender like any other byte on the wire
  // and tracked separately so modeled and observed totals stay comparable.
  cluster_->cost().AddBytes(from_rank, bytes);
  wire_bytes_ += bytes;
  wire_frames_ += frames;
}

void SimClusterLedger::ClosePhase(bool selection) {
  std::uint64_t mx = 0;
  for (std::uint64_t& w : phase_ops_) {
    mx = std::max(mx, w);
    w = 0;
  }
  if (selection) selection_critical_ops_ += mx;
  total_critical_ops_ += mx;
}

void SimClusterLedger::EndPhase(bool selection) {
  ClosePhase(selection);
  cluster_->cost().EndSuperstep();
}

void SimClusterLedger::EndSuperstep() {
  ClosePhase(false);
  cluster_->Barrier();
}

// ---- TapeLedger -------------------------------------------------------------

TapeLedger::TapeLedger(std::vector<int> local_ranks)
    : local_ranks_(std::move(local_ranks)), current_(local_ranks_.size()) {}

TapeLedger::StepRow& TapeLedger::Row(int rank) {
  for (std::size_t i = 0; i < local_ranks_.size(); ++i) {
    if (local_ranks_[i] == rank) return current_[i];
  }
  // The loop only ever charges hosted ranks; falling through would be a
  // protocol bug — attribute to slot 0 rather than writing out of bounds.
  return current_[0];
}

void TapeLedger::AddWork(int rank, std::uint64_t ops) { Row(rank).work += ops; }

void TapeLedger::AddDataMessage(int from_rank, std::uint64_t payload_bytes) {
  StepRow& r = Row(from_rank);
  r.data_bytes += payload_bytes;
  ++r.data_messages;
}

void TapeLedger::AddControlBytes(int from_rank, std::uint64_t bytes) {
  Row(from_rank).control_bytes += bytes;
}

void TapeLedger::AddWireOverhead(int from_rank, std::uint64_t bytes,
                                 std::uint64_t frames) {
  StepRow& r = Row(from_rank);
  r.wire_bytes += bytes;
  r.wire_frames += frames;
}

void TapeLedger::CloseStep(bool selection, bool superstep_end) {
  Step step;
  step.selection = selection;
  step.superstep_end = superstep_end;
  step.rows = current_;
  steps_.push_back(std::move(step));
  for (StepRow& r : current_) r = StepRow{};
}

void TapeLedger::EndPhase(bool selection) { CloseStep(selection, false); }

void TapeLedger::EndSuperstep() { CloseStep(false, true); }

}  // namespace dne
