// Communication counters for the simulated cluster.
#ifndef DNE_RUNTIME_COMM_STATS_H_
#define DNE_RUNTIME_COMM_STATS_H_

#include <cstdint>

namespace dne {

/// Aggregate communication volume observed by a SimCluster run. Only
/// *cross-rank* traffic is counted: messages a rank sends to itself model
/// intra-machine handoff (e.g. expansion process -> allocation process on the
/// same machine in Fig. 4) and are free, exactly as in the MPI deployment.
///
/// Thread contract: NOT internally synchronized. AddMessage/Reset are called
/// only from the driver thread during the sequential, rank-ordered ledger
/// flush at an exchange boundary (see CommLedger in runtime/communicator.h);
/// worker threads never touch these counters, so plain non-atomic fields are
/// correct and keep the per-message cost at two increments.
struct CommStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t supersteps = 0;

  void AddMessage(std::uint64_t message_bytes) {
    ++messages;
    bytes += message_bytes;
  }

  void Reset() { *this = CommStats{}; }
};

}  // namespace dne

#endif  // DNE_RUNTIME_COMM_STATS_H_
