#include "runtime/process_cluster.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>

#include "runtime/fault_injector.h"
#include "runtime/wire.h"

namespace dne {

namespace {

/// Maps a mesh-round frame kind to the FaultRound key that targets it;
/// false for rounds the fault plan cannot name (barrier, all-gather, the
/// legacy uncoalesced step-end sub-rounds).
bool FaultRoundOfKind(std::uint8_t kind, FaultRound* round) {
  switch (static_cast<DneMsgKind>(kind)) {
    case DneMsgKind::kSelectRequest:
      *round = FaultRound::kSelect;
      return true;
    case DneMsgKind::kSyncPair:
      *round = FaultRound::kSync;
      return true;
    case DneMsgKind::kStepEnd:
      *round = FaultRound::kStepEnd;
      return true;
    case DneMsgKind::kServeSync:
      // The serve replica-sync gather is the serve loop's "sync" round, so
      // one fault grammar targets both the partitioning and serving planes.
      *round = FaultRound::kSync;
      return true;
    case DneMsgKind::kServeStepEnd:
      *round = FaultRound::kStepEnd;
      return true;
    default:
      return false;
  }
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string PeerName(int q) { return "rank process " + std::to_string(q); }

// Unix socketpairs default to ~208 KB of kernel buffer — smaller than one
// coalesced superstep frame, so the sender would block mid-frame and every
// round degenerates into write/wake ping-pong (ruinous when the rank
// processes share cores). Best effort: the kernel silently caps the
// request at net.core.{w,r}mem_max.
void GrowSocketBuffers(int fd) {
  int bytes = 4 * 1024 * 1024;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
}

}  // namespace

// ---- ProcessCluster ---------------------------------------------------------

ProcessCluster::~ProcessCluster() {
  KillAll();
  ReapAll();
}

Status ProcessCluster::Launch(int nproc, MeshMode mode,
                              const ChildMain& child_main) {
  // Mesh: one socketpair per unordered process pair; fds[i][j] is i's end
  // of the {i, j} link (row-major convenience matrix, -1 on the diagonal).
  // Under MeshMode::kShm the matrix stays all -1 and the frames flow through
  // a single MAP_SHARED ring region instead — created here, before fork, so
  // every child inherits the same physical pages.
  std::vector<std::vector<int>> mesh(nproc, std::vector<int>(nproc, -1));
  if (mode == MeshMode::kShm) {
    DNE_RETURN_IF_ERROR(ShmMesh::Create(nproc, ShmMesh::RingCapacityFor(nproc),
                                        &shm_mesh_));
  }
  auto cleanup_fds = [&]() {
    for (auto& row : mesh) {
      for (int fd : row) {
        if (fd >= 0) ::close(fd);
      }
    }
    for (int fd : control_fds_) {
      if (fd >= 0) ::close(fd);
    }
    control_fds_.clear();
  };
  std::vector<int> child_control(nproc, -1);
  for (int i = 0; mode == MeshMode::kSocket && i < nproc; ++i) {
    for (int j = i + 1; j < nproc; ++j) {
      int sp[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0) {
        cleanup_fds();
        return Status::Internal(std::string("socketpair failed: ") +
                                std::strerror(errno));
      }
      GrowSocketBuffers(sp[0]);
      GrowSocketBuffers(sp[1]);
      mesh[i][j] = sp[0];
      mesh[j][i] = sp[1];
    }
  }
  control_fds_.assign(nproc, -1);
  for (int i = 0; i < nproc; ++i) {
    int sp[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0) {
      for (int fd : child_control) {
        if (fd >= 0) ::close(fd);
      }
      cleanup_fds();
      return Status::Internal(std::string("socketpair failed: ") +
                              std::strerror(errno));
    }
    // The control link streams each child its whole 2-D shard at startup;
    // deep buffers matter even more there.
    GrowSocketBuffers(sp[0]);
    GrowSocketBuffers(sp[1]);
    control_fds_[i] = sp[0];
    child_control[i] = sp[1];
  }

  // Buffered stdio must be flushed before fork or the children replay it.
  std::fflush(stdout);
  std::fflush(stderr);

  pids_.assign(nproc, -1);
  reaped_.assign(nproc, false);
  wait_status_.assign(nproc, 0);
  for (int i = 0; i < nproc; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      const Status st = Status::Internal(std::string("fork failed: ") +
                                         std::strerror(errno));
      pids_.resize(i);
      reaped_.resize(i);
      wait_status_.resize(i);
      KillAll();
      ReapAll();
      for (int fd : child_control) {
        if (fd >= 0) ::close(fd);
      }
      cleanup_fds();
      return st;
    }
    if (pid == 0) {
      // Child i: keep row i of the mesh and its own control end, close
      // everything else inherited from the parent.
      for (int a = 0; a < nproc; ++a) {
        for (int b = 0; b < nproc; ++b) {
          if (a != i && mesh[a][b] >= 0) ::close(mesh[a][b]);
        }
      }
      for (int c = 0; c < nproc; ++c) {
        if (control_fds_[c] >= 0) ::close(control_fds_[c]);
        if (c != i && child_control[c] >= 0) ::close(child_control[c]);
      }
      int code = 9;
      try {
        code = child_main(i, mesh[i], child_control[i]);
      } catch (...) {
        code = 9;
      }
      // _exit, not exit: the child must not run the parent's atexit
      // handlers or flush inherited stdio state.
      ::_exit(code);
    }
    pids_[i] = pid;
  }
  // Parent: the mesh and the children's control ends belong to the
  // children alone.
  for (auto& row : mesh) {
    for (int& fd : row) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }
  for (int fd : child_control) {
    if (fd >= 0) ::close(fd);
  }
  return Status::OK();
}

void ProcessCluster::MarkReaped(int child, int wait_status) {
  reaped_[child] = true;
  wait_status_[child] = wait_status;
  // Shared memory has no EOF: marking the reaped child dead in the mesh is
  // what lets peers blocked on its rings observe the death and fail their
  // round instead of sleeping until the stall deadline.
  if (shm_mesh_ != nullptr) shm_mesh_->MarkDead(child);
}

bool ProcessCluster::PollExited(int* child, int* wait_status) {
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (reaped_[i]) continue;
    int status = 0;
    const pid_t r = ::waitpid(pids_[i], &status, WNOHANG);
    if (r == pids_[i]) {
      MarkReaped(static_cast<int>(i), status);
      *child = static_cast<int>(i);
      *wait_status = status;
      return true;
    }
  }
  return false;
}

void ProcessCluster::KillAll() {
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (!reaped_[i] && pids_[i] > 0) {
      ::kill(pids_[i], SIGKILL);
      if (shm_mesh_ != nullptr) shm_mesh_->MarkDead(static_cast<int>(i));
    }
  }
}

std::string ProcessCluster::ReapAll() {
  std::string abnormal;
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (!reaped_[i] && pids_[i] > 0) {
      int status = 0;
      if (::waitpid(pids_[i], &status, 0) == pids_[i]) {
        MarkReaped(static_cast<int>(i), status);
      } else {
        continue;
      }
    }
    const int status = wait_status_[i];
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) continue;
    if (!abnormal.empty()) abnormal += "; ";
    abnormal += PeerName(static_cast<int>(i)) + " (pid " +
                std::to_string(pids_[i]) + ") ";
    if (WIFSIGNALED(status)) {
      abnormal += "killed by signal " + std::to_string(WTERMSIG(status));
    } else {
      abnormal += "exited with status " + std::to_string(WEXITSTATUS(status));
    }
  }
  for (int& fd : control_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  return abnormal;
}

// ---- MeshCommunicator -------------------------------------------------------

MeshCommunicator::MeshCommunicator(int num_ranks, int nproc, int proc_index,
                                   bool coalesce, double stall_timeout_s)
    : num_ranks_(num_ranks),
      nproc_(nproc),
      proc_index_(proc_index),
      coalesce_(coalesce),
      stall_timeout_s_(stall_timeout_s),
      send_frames_(nproc),
      recv_payloads_(nproc),
      round_io_(nproc) {
  for (int r = proc_index_; r < num_ranks_; r += nproc_) local_.push_back(r);
  stage_.resize(local_.size());
  for (auto& per_from : stage_) {
    per_from.resize(static_cast<std::size_t>(num_ranks_));
  }
}

std::string MeshCommunicator::PeerLabel(int q) const {
  std::string s = "rank process " + std::to_string(q) + " (simulated rank";
  int n = 0;
  for (int r = q; r < num_ranks_; r += nproc_) ++n;
  if (n != 1) s += 's';
  bool first = true;
  for (int r = q; r < num_ranks_; r += nproc_) {
    s += first ? " " : ", ";
    s += std::to_string(r);
    first = false;
  }
  s += ')';
  return s;
}

Status MeshCommunicator::CompleteRound() {
  round_active_ = false;
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    if (wire::FrameChecksum(recv_payloads_[q].data(),
                            recv_payloads_[q].size()) !=
        round_io_[q].header.checksum) {
      return Status::Unavailable("frame checksum mismatch from " +
                                 PeerLabel(q));
    }
  }
  return Status::OK();
}

// ---- SocketCommunicator -----------------------------------------------------

SocketCommunicator::SocketCommunicator(int num_ranks, int nproc,
                                       int proc_index,
                                       std::vector<int> mesh_fds,
                                       bool coalesce, double stall_timeout_s)
    : MeshCommunicator(num_ranks, nproc, proc_index, coalesce,
                       stall_timeout_s),
      mesh_fds_(std::move(mesh_fds)) {
  for (int q = 0; q < nproc_; ++q) {
    if (q != proc_index_ && mesh_fds_[q] >= 0) SetNonBlocking(mesh_fds_[q]);
  }
}

SocketCommunicator::~SocketCommunicator() {
  for (int fd : mesh_fds_) {
    if (fd >= 0) ::close(fd);
  }
}

Status MeshCommunicator::StartRound(std::uint8_t kind) {
  if (round_active_) {
    return Status::Internal(
        "transport protocol bug: mesh round started while kind " +
        std::to_string(round_kind_) + " is still in flight");
  }
  for (PeerIo& p : round_io_) p = PeerIo{};
  round_kind_ = kind;
  round_active_ = true;
  round_deadline_ =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(
          static_cast<long long>(stall_timeout_s_ * 1000.0));
  if (fault_ != nullptr) {
    FaultRound round;
    if (FaultRoundOfKind(kind, &round)) {
      // Round-keyed crash/stall strike before any byte moves; frame faults
      // rewrite the fully built per-peer frames. A dropped frame wedges the
      // victim (its round never completes -> stall deadline); a flipped
      // byte fails the victim's checksum immediately. The frames' ledger
      // charges stay as built — the fault models corruption on the wire,
      // not a cheaper send.
      fault_->AtRoundStart(round);
      for (int q = 0; q < nproc_; ++q) {
        if (q == proc_index_) continue;
        if (fault_->ShouldDropFrame(round, q)) {
          send_frames_[q].clear();
        } else if (fault_->ShouldFlipFrame(round, q) &&
                   !send_frames_[q].empty()) {
          // Flip a payload byte when there is one, else a checksum byte —
          // either way the receiver's verification must fail.
          const std::size_t at =
              send_frames_[q].size() > wire::kFrameHeaderBytes
                  ? wire::kFrameHeaderBytes
                  : 24;
          send_frames_[q][at] ^= 0x01;
        }
      }
    }
  }
  return Status::OK();
}

Status SocketCommunicator::ProgressRound(bool block) {
  if (!round_active_) return Status::OK();
  for (;;) {
    bool pending = false;
    std::vector<pollfd> pfds;
    std::vector<int> peers;
    for (int q = 0; q < nproc_; ++q) {
      if (q == proc_index_) continue;
      short events = 0;
      if (round_io_[q].sent < send_frames_[q].size()) events |= POLLOUT;
      if (!round_io_[q].recv_done) events |= POLLIN;
      if (events == 0) continue;
      pending = true;
      pfds.push_back(pollfd{mesh_fds_[q], events, 0});
      peers.push_back(q);
    }
    if (!pending) break;
    // Event-driven wait: block exactly until a peer is ready (capped by the
    // wedge-guard deadline) instead of waking on a fixed interval; the
    // non-blocking overlap pass polls with a zero timeout.
    int timeout_ms = 0;
    if (block) {
      const auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                              round_deadline_ - std::chrono::steady_clock::now())
                              .count();
      if (remain <= 0) {
        return Status::Unavailable(
            "transport timeout: a rank process stopped making progress");
      }
      timeout_ms = static_cast<int>(
          std::min<long long>(remain, std::numeric_limits<int>::max()));
    }
    const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("poll failed: ") +
                              std::strerror(errno));
    }
    if (rc == 0) {
      if (!block) return Status::OK();  // overlap window: come back later
      continue;  // deadline re-checked above
    }
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      const int q = peers[k];
      PeerIo& p = round_io_[q];
      const int fd = mesh_fds_[q];
      if ((pfds[k].revents & POLLOUT) != 0 &&
          p.sent < send_frames_[q].size()) {
        const ssize_t n =
            ::send(fd, send_frames_[q].data() + p.sent,
                   send_frames_[q].size() - p.sent, MSG_NOSIGNAL);
        if (n > 0) {
          p.sent += static_cast<std::size_t>(n);
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          // EPIPE/ECONNRESET = the peer died (recoverable); anything else
          // is a local socket failure.
          if (errno == EPIPE || errno == ECONNRESET) {
            return Status::Unavailable(PeerLabel(q) + " unreachable: " +
                                       std::strerror(errno));
          }
          return Status::Internal(PeerLabel(q) + " unreachable: " +
                                  std::strerror(errno));
        }
      }
      if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          !p.recv_done) {
        for (;;) {
          ssize_t n;
          if (!p.header_done) {
            n = ::recv(fd, p.hdr + p.hdr_got,
                       wire::kFrameHeaderBytes - p.hdr_got, 0);
          } else {
            n = ::recv(fd, recv_payloads_[q].data() + p.payload_got,
                       p.header.payload_len - p.payload_got, 0);
          }
          if (n > 0) {
            if (!p.header_done) {
              p.hdr_got += static_cast<std::size_t>(n);
              if (p.hdr_got == wire::kFrameHeaderBytes) {
                DNE_RETURN_IF_ERROR(wire::DecodeHeader(p.hdr, &p.header));
                if (p.header.kind != round_kind_) {
                  // A peer one round behind (it lost a frame and wedged)
                  // eventually feeds us a stale kind — recoverable, like
                  // the frame loss that caused it.
                  return Status::Unavailable(
                      "protocol desync with " + PeerLabel(q) + ": expected "
                      "frame kind " + std::to_string(round_kind_) + ", got " +
                      std::to_string(p.header.kind));
                }
                recv_payloads_[q].resize(p.header.payload_len);
                p.header_done = true;
                if (p.header.payload_len == 0) {
                  p.recv_done = true;
                  break;
                }
              }
            } else {
              p.payload_got += static_cast<std::size_t>(n);
              if (p.payload_got == p.header.payload_len) {
                p.recv_done = true;
                break;
              }
            }
          } else if (n == 0) {
            // Fast failure on peer death: the EOF names the process AND its
            // simulated ranks so the blocked mesh is attributable — and is
            // recoverable for a supervising parent.
            return Status::Unavailable(PeerLabel(q) +
                                       " disconnected mid-superstep (crash?)");
          } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
            break;
          } else if (errno == ECONNRESET) {
            return Status::Unavailable("recv from " + PeerLabel(q) +
                                       " failed: " + std::strerror(errno));
          } else if (errno != EINTR) {
            return Status::Internal("recv from " + PeerLabel(q) +
                                    " failed: " + std::strerror(errno));
          }
        }
      }
    }
  }
  return CompleteRound();
}

// ---- ShmCommunicator --------------------------------------------------------

ShmCommunicator::ShmCommunicator(int num_ranks, int nproc, int proc_index,
                                 ShmMesh* mesh, bool coalesce,
                                 double stall_timeout_s)
    : MeshCommunicator(num_ranks, nproc, proc_index, coalesce,
                       stall_timeout_s),
      mesh_(mesh) {}

Status ShmCommunicator::ProgressRound(bool block) {
  if (!round_active_) return Status::OK();
  for (;;) {
    // Eventcount: capture the doorbell BEFORE scanning the rings, so a
    // notification raised while we scan is seen by Wait's re-validation and
    // the park returns immediately instead of losing the wakeup.
    const std::uint32_t seen = mesh_->PrepareWait(proc_index_);
    bool pending = false;
    bool progressed = false;
    for (int q = 0; q < nproc_; ++q) {
      if (q == proc_index_) continue;
      PeerIo& p = round_io_[q];
      if (p.sent < send_frames_[q].size()) {
        pending = true;
        // Load liveness BEFORE attempting the write: a peer that died after
        // the load may still have drained the ring, so only a full ring AND
        // a prior death is conclusive.
        const bool peer_alive = mesh_->alive(q);
        const std::size_t n =
            mesh_->WriteSome(proc_index_, q, send_frames_[q].data() + p.sent,
                             send_frames_[q].size() - p.sent);
        if (n > 0) {
          p.sent += n;
          progressed = true;
        } else if (!peer_alive) {
          return Status::Unavailable(PeerLabel(q) +
                                     " unreachable: peer process exited");
        }
      }
      if (!p.recv_done) {
        pending = true;
        // Liveness BEFORE draining: everything the peer wrote before dying
        // is still in the ring, so drain first and only a (previously
        // observed) death plus an empty ring means the frame will never
        // complete — the shared-memory analogue of EOF.
        const bool peer_alive = mesh_->alive(q);
        for (;;) {
          std::size_t n;
          if (!p.header_done) {
            n = mesh_->ReadSome(q, proc_index_, p.hdr + p.hdr_got,
                                wire::kFrameHeaderBytes - p.hdr_got);
            if (n == 0) break;
            progressed = true;
            p.hdr_got += n;
            if (p.hdr_got == wire::kFrameHeaderBytes) {
              DNE_RETURN_IF_ERROR(wire::DecodeHeader(p.hdr, &p.header));
              if (p.header.kind != round_kind_) {
                return Status::Unavailable(
                    "protocol desync with " + PeerLabel(q) + ": expected "
                    "frame kind " + std::to_string(round_kind_) + ", got " +
                    std::to_string(p.header.kind));
              }
              recv_payloads_[q].resize(p.header.payload_len);
              p.header_done = true;
              if (p.header.payload_len == 0) {
                p.recv_done = true;
                break;
              }
            }
          } else {
            n = mesh_->ReadSome(q, proc_index_,
                                recv_payloads_[q].data() + p.payload_got,
                                p.header.payload_len - p.payload_got);
            if (n == 0) break;
            progressed = true;
            p.payload_got += n;
            if (p.payload_got == p.header.payload_len) {
              p.recv_done = true;
              break;
            }
          }
        }
        if (!p.recv_done && !peer_alive) {
          return Status::Unavailable(PeerLabel(q) +
                                     " disconnected mid-superstep (crash?)");
        }
      }
    }
    if (!pending) break;
    if (progressed) continue;  // keep streaming while bytes are moving
    if (!block) return Status::OK();  // overlap window: come back later
    const auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                            round_deadline_ - std::chrono::steady_clock::now())
                            .count();
    if (remain <= 0) {
      return Status::Unavailable(
          "transport timeout: a rank process stopped making progress");
    }
    // Park on the doorbell until a peer writes, drains, or dies. The 500ms
    // cap is insurance, not a polling interval: any real transition rings
    // the doorbell and wakes us immediately.
    mesh_->Wait(proc_index_, seen,
                static_cast<int>(std::min<long long>(remain, 500)));
  }
  return CompleteRound();
}

Status MeshCommunicator::RunMeshRound(std::uint8_t kind) {
  DNE_RETURN_IF_ERROR(StartRound(kind));
  return ProgressRound(/*block=*/true);
}

template <typename T>
void MeshCommunicator::BuildExchangeFrames(DneMsgKind kind,
                                             RankMailboxes<T>* m) {
  const std::size_t num_local = local_.size();
  // Serialise one frame per peer: all (from -> to) sub-messages between the
  // two processes, each prefixed with {from, to, byte length}. Empty boxes
  // send nothing; empty frames still flow as the synchronisation point.
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    std::vector<unsigned char>& frame = send_frames_[q];
    frame.clear();
    frame.resize(wire::kFrameHeaderBytes);  // header patched below
    std::uint64_t sub_blocks = 0;
    for (std::size_t l = 0; l < num_local; ++l) {
      const int from = local_[l];
      for (int to = q; to < num_ranks_; to += nproc_) {
        const std::vector<T>& box = m->out[l][to];
        if (box.empty()) continue;
        const std::uint64_t bytes = box.size() * sizeof(T);
        wire::AppendPod(&frame, static_cast<std::uint32_t>(from));
        wire::AppendPod(&frame, static_cast<std::uint32_t>(to));
        wire::AppendPod(&frame, bytes);
        const auto* data =
            reinterpret_cast<const unsigned char*>(box.data());
        frame.insert(frame.end(), data, data + bytes);
        ++sub_blocks;
        if (ledger_ != nullptr) ledger_->AddDataMessage(from, bytes);
      }
    }
    const std::size_t payload_len = frame.size() - wire::kFrameHeaderBytes;
    wire::FrameHeader h;
    h.kind = static_cast<std::uint8_t>(kind);
    h.from = static_cast<std::uint32_t>(proc_index_);
    h.payload_len = payload_len;
    h.checksum =
        wire::FrameChecksum(frame.data() + wire::kFrameHeaderBytes, payload_len);
    wire::EncodeHeader(h, frame.data());
    if (ledger_ != nullptr) {
      ledger_->AddWireOverhead(
          local_[0],
          wire::kFrameHeaderBytes + wire::kSubBlockHeaderBytes * sub_blocks,
          1);
    }
  }
}

void MeshCommunicator::ClearStage() {
  for (auto& per_from : stage_) {
    for (auto& buf : per_from) buf.clear();
  }
}

template <typename T>
Status MeshCommunicator::StageSubBlocks(const unsigned char* data,
                                          std::size_t len, int q) {
  wire::PayloadReader reader(data, len);
  while (reader.remaining() > 0) {
    std::uint32_t from = 0, to = 0;
    std::uint64_t bytes = 0;
    if (!reader.Read(&from) || !reader.Read(&to) || !reader.Read(&bytes) ||
        bytes % sizeof(T) != 0 || reader.remaining() < bytes) {
      return Status::Internal("malformed exchange sub-block from " +
                              PeerLabel(q));
    }
    if (static_cast<int>(from) >= num_ranks_ ||
        static_cast<int>(to) >= num_ranks_ ||
        rank_to_proc(static_cast<int>(from)) != q ||
        rank_to_proc(static_cast<int>(to)) != proc_index_) {
      return Status::Internal("misrouted exchange sub-block from " +
                              PeerLabel(q));
    }
    const std::size_t slot = slot_of_rank(static_cast<int>(to));
    std::vector<unsigned char>& buf = stage_[slot][from];
    buf.insert(buf.end(), reader.cursor(), reader.cursor() + bytes);
    reader.Skip(bytes);
  }
  return Status::OK();
}

template <typename T>
void MeshCommunicator::AssembleInboxes(RankMailboxes<T>* m) {
  const std::size_t num_local = local_.size();
  // Assemble every local inbox: concatenated ascending sender order, local
  // senders straight out of their outboxes (co-hosted traffic never hits
  // the wire), remote senders from the staged bytes.
  for (std::size_t l = 0; l < num_local; ++l) {
    const int to_rank = local_[l];
    std::size_t total = 0;
    for (int from = 0; from < num_ranks_; ++from) {
      if (rank_to_proc(from) == proc_index_) {
        total += m->out[slot_of_rank(from)][to_rank].size();
      } else {
        total += stage_[l][from].size() / sizeof(T);
      }
    }
    std::vector<T>& inbox = m->in[l];
    inbox.clear();
    inbox.resize(total);
    std::size_t pos = 0;
    m->in_begin[l][0] = 0;
    for (int from = 0; from < num_ranks_; ++from) {
      if (rank_to_proc(from) == proc_index_) {
        const std::vector<T>& box = m->out[slot_of_rank(from)][to_rank];
        std::copy(box.begin(), box.end(), inbox.begin() + pos);
        pos += box.size();
      } else {
        const std::vector<unsigned char>& buf = stage_[l][from];
        if (!buf.empty()) {
          std::memcpy(inbox.data() + pos, buf.data(), buf.size());
          pos += buf.size() / sizeof(T);
        }
      }
      m->in_begin[l][from + 1] = pos;
    }
  }
  for (std::size_t l = 0; l < num_local; ++l) {
    for (auto& box : m->out[l]) box.clear();
  }
}

template <typename T>
Status MeshCommunicator::ExchangeImpl(DneMsgKind kind,
                                        RankMailboxes<T>* m) {
  BuildExchangeFrames(kind, m);
  DNE_RETURN_IF_ERROR(RunMeshRound(static_cast<std::uint8_t>(kind)));
  ClearStage();
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    DNE_RETURN_IF_ERROR(StageSubBlocks<T>(recv_payloads_[q].data(),
                                          recv_payloads_[q].size(), q));
  }
  AssembleInboxes(m);
  return Status::OK();
}

Status MeshCommunicator::Exchange(DneMsgKind k,
                                    RankMailboxes<SelectRequest>* m) {
  return ExchangeImpl(k, m);
}
Status MeshCommunicator::Exchange(DneMsgKind k,
                                    RankMailboxes<VertexPartPair>* m) {
  return ExchangeImpl(k, m);
}
Status MeshCommunicator::Exchange(DneMsgKind k,
                                    RankMailboxes<BoundaryReport>* m) {
  return ExchangeImpl(k, m);
}
Status MeshCommunicator::Exchange(DneMsgKind k, RankMailboxes<Edge>* m) {
  return ExchangeImpl(k, m);
}
Status MeshCommunicator::Exchange(DneMsgKind k,
                                    RankMailboxes<VertexId>* m) {
  return ExchangeImpl(k, m);
}
Status MeshCommunicator::Exchange(DneMsgKind k,
                                    RankMailboxes<SyncValueRecord>* m) {
  return ExchangeImpl(k, m);
}

Status MeshCommunicator::ExchangeServeStep(
    RankMailboxes<SyncValueRecord>* sync,
    const std::vector<ServeStepSummary>& local,
    std::vector<ServeStepSummary>* all) {
  const std::size_t num_local = local_.size();
  // Per-rank serve summaries: the same bytes go to every peer.
  std::vector<unsigned char> summary;
  for (std::size_t l = 0; l < num_local; ++l) {
    wire::AppendPod(&summary, local[l]);
  }
  // Seed the global table with this endpoint's own contributions; peer
  // summaries fill in the rest below.
  all->assign(static_cast<std::size_t>(num_ranks_), ServeStepSummary{});
  for (std::size_t l = 0; l < num_local; ++l) {
    (*all)[local[l].rank] = local[l];
  }
  auto charge_summaries = [&]() {
    if (ledger_ == nullptr || nproc_ <= 1) return;
    for (std::size_t l = 0; l < num_local; ++l) {
      ledger_->AddControlBytes(local_[l],
                               static_cast<std::uint64_t>(nproc_ - 1) *
                                   sizeof(ServeStepSummary));
    }
  };

  // ONE kServeStepEnd frame per peer fusing two channels — the
  // masters->mirrors scatter and the per-rank summaries — under one
  // checksum. The sync channel reuses the sub-block format, so data
  // charging is byte-for-byte what a standalone Exchange would record.
  constexpr std::size_t kNumChannels = 2;
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    std::vector<unsigned char>& frame = send_frames_[q];
    frame.clear();
    frame.resize(wire::kFrameHeaderBytes);
    const std::size_t dir_pos = frame.size();
    wire::AppendPod(&frame, static_cast<std::uint64_t>(kNumChannels));
    wire::ChannelDir dirs[kNumChannels];
    dirs[0].kind = static_cast<std::uint8_t>(DneMsgKind::kServeSync);
    dirs[1].kind = static_cast<std::uint8_t>(DneMsgKind::kServeSummary);
    for (const wire::ChannelDir& d : dirs) wire::AppendPod(&frame, d);

    std::uint64_t sub_blocks = 0;
    const std::size_t sync_pos = frame.size();
    for (std::size_t l = 0; l < num_local; ++l) {
      const int from = local_[l];
      for (int to = q; to < num_ranks_; to += nproc_) {
        const std::vector<SyncValueRecord>& box = sync->out[l][to];
        if (box.empty()) continue;
        const std::uint64_t bytes = box.size() * sizeof(SyncValueRecord);
        wire::AppendPod(&frame, static_cast<std::uint32_t>(from));
        wire::AppendPod(&frame, static_cast<std::uint32_t>(to));
        wire::AppendPod(&frame, bytes);
        const auto* data = reinterpret_cast<const unsigned char*>(box.data());
        frame.insert(frame.end(), data, data + bytes);
        ++sub_blocks;
        if (ledger_ != nullptr) ledger_->AddDataMessage(from, bytes);
      }
    }
    const std::size_t summary_pos = frame.size();
    frame.insert(frame.end(), summary.begin(), summary.end());

    dirs[0].byte_len = summary_pos - sync_pos;
    dirs[1].byte_len = summary.size();
    {
      unsigned char* d = frame.data() + dir_pos + sizeof(std::uint64_t);
      for (const wire::ChannelDir& dir : dirs) {
        std::memcpy(d, &dir, wire::kChannelDirBytes);
        d += wire::kChannelDirBytes;
      }
    }
    const std::size_t payload_len = frame.size() - wire::kFrameHeaderBytes;
    wire::FrameHeader h;
    h.kind = static_cast<std::uint8_t>(DneMsgKind::kServeStepEnd);
    h.from = static_cast<std::uint32_t>(proc_index_);
    h.payload_len = payload_len;
    h.checksum =
        wire::FrameChecksum(frame.data() + wire::kFrameHeaderBytes, payload_len);
    wire::EncodeHeader(h, frame.data());
    if (ledger_ != nullptr) {
      ledger_->AddWireOverhead(
          local_[0],
          wire::kFrameHeaderBytes + wire::ChannelDirectoryBytes(kNumChannels) +
              wire::kSubBlockHeaderBytes * sub_blocks,
          1);
    }
  }
  charge_summaries();

  DNE_RETURN_IF_ERROR(
      RunMeshRound(static_cast<std::uint8_t>(DneMsgKind::kServeStepEnd)));

  struct ChannelView {
    const unsigned char* data = nullptr;
    std::size_t len = 0;
  };
  std::vector<ChannelView> sync_views(nproc_), summary_views(nproc_);
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    wire::PayloadReader reader(recv_payloads_[q].data(),
                               recv_payloads_[q].size());
    std::uint64_t num_channels = 0;
    if (!reader.Read(&num_channels) || num_channels != kNumChannels) {
      return Status::Internal("malformed serve step-end directory from " +
                              PeerLabel(q));
    }
    wire::ChannelDir dirs[kNumChannels];
    for (wire::ChannelDir& d : dirs) {
      if (!reader.Read(&d)) {
        return Status::Internal("malformed serve step-end directory from " +
                                PeerLabel(q));
      }
    }
    if (dirs[0].byte_len + dirs[1].byte_len != reader.remaining() ||
        dirs[0].kind != static_cast<std::uint8_t>(DneMsgKind::kServeSync) ||
        dirs[1].kind != static_cast<std::uint8_t>(DneMsgKind::kServeSummary)) {
      return Status::Internal("malformed serve step-end directory from " +
                              PeerLabel(q));
    }
    sync_views[q] = {reader.cursor(), dirs[0].byte_len};
    reader.Skip(dirs[0].byte_len);
    summary_views[q] = {reader.cursor(), dirs[1].byte_len};
  }
  ClearStage();
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    DNE_RETURN_IF_ERROR(StageSubBlocks<SyncValueRecord>(sync_views[q].data,
                                                        sync_views[q].len, q));
  }
  AssembleInboxes(sync);
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    DNE_RETURN_IF_ERROR(ParseServeSummaries(summary_views[q].data,
                                            summary_views[q].len, q, all));
  }
  return Status::OK();
}

Status MeshCommunicator::ParseServeSummaries(
    const unsigned char* data, std::size_t len, int q,
    std::vector<ServeStepSummary>* all) {
  wire::PayloadReader reader(data, len);
  while (reader.remaining() > 0) {
    ServeStepSummary rec;
    if (!reader.Read(&rec) || static_cast<int>(rec.rank) >= num_ranks_ ||
        rank_to_proc(static_cast<int>(rec.rank)) != q) {
      return Status::Internal("malformed serve summary from " + PeerLabel(q));
    }
    (*all)[rec.rank] = rec;
  }
  return Status::OK();
}

Status MeshCommunicator::BeginExchange(DneMsgKind k,
                                         RankMailboxes<VertexPartPair>* m) {
  // Post the sends and make one opportunistic pass; the round stays in
  // flight while the caller computes. The out boxes remain owned by the
  // transport until FinishExchange (co-hosted routing reads them there).
  BuildExchangeFrames(k, m);
  DNE_RETURN_IF_ERROR(StartRound(static_cast<std::uint8_t>(k)));
  return ProgressRound(/*block=*/false);
}

Status MeshCommunicator::FinishExchange(DneMsgKind,
                                          RankMailboxes<VertexPartPair>* m) {
  // Completion barrier: drive the in-flight round to the end, then deliver.
  DNE_RETURN_IF_ERROR(ProgressRound(/*block=*/true));
  ClearStage();
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    DNE_RETURN_IF_ERROR(StageSubBlocks<VertexPartPair>(
        recv_payloads_[q].data(), recv_payloads_[q].size(), q));
  }
  AssembleInboxes(m);
  return Status::OK();
}

Status MeshCommunicator::ExchangeStepEnd(
    RankMailboxes<BoundaryReport>* reports, RankMailboxes<Edge>* handoff,
    const std::vector<std::uint64_t>& local_peeks,
    std::vector<std::uint64_t>* all_peeks,
    std::vector<std::uint64_t>* handoff_totals) {
  const std::size_t num_local = local_.size();
  const std::size_t num_ranks = static_cast<std::size_t>(num_ranks_);

  // Step summaries: one record per hosted rank — its free-vertex peek and
  // its per-partition hand-off contributions (out-box sizes, read before
  // anything clears the boxes). The same bytes go to every peer.
  std::vector<unsigned char> summary;
  for (std::size_t l = 0; l < num_local; ++l) {
    StepSummaryRecord rec;
    rec.rank = static_cast<std::uint32_t>(local_[l]);
    rec.num_counts = static_cast<std::uint32_t>(num_ranks_);
    rec.peek = local_peeks[l];
    wire::AppendPod(&summary, rec);
    for (std::size_t p = 0; p < num_ranks; ++p) {
      wire::AppendPod(&summary,
                      static_cast<std::uint64_t>(handoff->out[l][p].size()));
    }
  }

  // Seed the global tables with this endpoint's own contributions; peer
  // summaries fill in the rest below.
  all_peeks->assign(num_ranks, 0);
  handoff_totals->assign(num_ranks, 0);
  for (std::size_t l = 0; l < num_local; ++l) {
    (*all_peeks)[local_[l]] = local_peeks[l];
    for (std::size_t p = 0; p < num_ranks; ++p) {
      (*handoff_totals)[p] += handoff->out[l][p].size();
    }
  }
  const std::uint64_t summary_record_bytes =
      sizeof(StepSummaryRecord) + num_ranks * sizeof(std::uint64_t);
  auto charge_summaries = [&]() {
    if (ledger_ == nullptr || nproc_ <= 1) return;
    for (std::size_t l = 0; l < num_local; ++l) {
      ledger_->AddControlBytes(
          local_[l],
          static_cast<std::uint64_t>(nproc_ - 1) * summary_record_bytes);
    }
  };

  if (!coalesce_) {
    // Legacy framing baseline: one frame per logical exchange, plus a
    // dedicated summary round. Identical data/control charging, identical
    // inbox assembly — only the frame count and header overhead differ.
    DNE_RETURN_IF_ERROR(ExchangeImpl(DneMsgKind::kBoundaryReport, reports));
    DNE_RETURN_IF_ERROR(ExchangeImpl(DneMsgKind::kEdgeHandoff, handoff));
    for (int q = 0; q < nproc_; ++q) {
      if (q == proc_index_) continue;
      std::vector<unsigned char>& frame = send_frames_[q];
      frame.assign(wire::kFrameHeaderBytes, 0);
      frame.insert(frame.end(), summary.begin(), summary.end());
      wire::FrameHeader h;
      h.kind = static_cast<std::uint8_t>(DneMsgKind::kStepSummary);
      h.from = static_cast<std::uint32_t>(proc_index_);
      h.payload_len = summary.size();
      h.checksum = wire::FrameChecksum(summary.data(), summary.size());
      wire::EncodeHeader(h, frame.data());
    }
    charge_summaries();
    if (ledger_ != nullptr && nproc_ > 1) {
      ledger_->AddWireOverhead(
          local_[0],
          static_cast<std::uint64_t>(nproc_ - 1) * wire::kFrameHeaderBytes,
          static_cast<std::uint64_t>(nproc_ - 1));
    }
    DNE_RETURN_IF_ERROR(
        RunMeshRound(static_cast<std::uint8_t>(DneMsgKind::kStepSummary)));
    for (int q = 0; q < nproc_; ++q) {
      if (q == proc_index_) continue;
      DNE_RETURN_IF_ERROR(ParseSummaries(recv_payloads_[q].data(),
                                         recv_payloads_[q].size(), q,
                                         all_peeks, handoff_totals));
    }
    return Status::OK();
  }

  // Coalesced path: ONE kStepEnd frame per peer fusing three channels —
  // boundary reports, edge hand-off, step summaries — under one checksum.
  // Channel bodies reuse the sub-block format, so data charging is byte-for
  // byte what the two separate exchanges would have recorded.
  constexpr std::size_t kNumChannels = 3;
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    std::vector<unsigned char>& frame = send_frames_[q];
    frame.clear();
    frame.resize(wire::kFrameHeaderBytes);
    const std::size_t dir_pos = frame.size();
    wire::AppendPod(&frame, static_cast<std::uint64_t>(kNumChannels));
    wire::ChannelDir dirs[kNumChannels];
    dirs[0].kind = static_cast<std::uint8_t>(DneMsgKind::kBoundaryReport);
    dirs[1].kind = static_cast<std::uint8_t>(DneMsgKind::kEdgeHandoff);
    dirs[2].kind = static_cast<std::uint8_t>(DneMsgKind::kStepSummary);
    for (const wire::ChannelDir& d : dirs) wire::AppendPod(&frame, d);

    std::uint64_t sub_blocks = 0;
    const std::size_t reports_pos = frame.size();
    for (std::size_t l = 0; l < num_local; ++l) {
      const int from = local_[l];
      for (int to = q; to < num_ranks_; to += nproc_) {
        const std::vector<BoundaryReport>& box = reports->out[l][to];
        if (box.empty()) continue;
        const std::uint64_t bytes = box.size() * sizeof(BoundaryReport);
        wire::AppendPod(&frame, static_cast<std::uint32_t>(from));
        wire::AppendPod(&frame, static_cast<std::uint32_t>(to));
        wire::AppendPod(&frame, bytes);
        const auto* data = reinterpret_cast<const unsigned char*>(box.data());
        frame.insert(frame.end(), data, data + bytes);
        ++sub_blocks;
        if (ledger_ != nullptr) ledger_->AddDataMessage(from, bytes);
      }
    }
    const std::size_t handoff_pos = frame.size();
    for (std::size_t l = 0; l < num_local; ++l) {
      const int from = local_[l];
      for (int to = q; to < num_ranks_; to += nproc_) {
        const std::vector<Edge>& box = handoff->out[l][to];
        if (box.empty()) continue;
        const std::uint64_t bytes = box.size() * sizeof(Edge);
        wire::AppendPod(&frame, static_cast<std::uint32_t>(from));
        wire::AppendPod(&frame, static_cast<std::uint32_t>(to));
        wire::AppendPod(&frame, bytes);
        const auto* data = reinterpret_cast<const unsigned char*>(box.data());
        frame.insert(frame.end(), data, data + bytes);
        ++sub_blocks;
        if (ledger_ != nullptr) ledger_->AddDataMessage(from, bytes);
      }
    }
    const std::size_t summary_pos = frame.size();
    frame.insert(frame.end(), summary.begin(), summary.end());

    dirs[0].byte_len = handoff_pos - reports_pos;
    dirs[1].byte_len = summary_pos - handoff_pos;
    dirs[2].byte_len = summary.size();
    {
      unsigned char* d = frame.data() + dir_pos + sizeof(std::uint64_t);
      for (const wire::ChannelDir& dir : dirs) {
        std::memcpy(d, &dir, wire::kChannelDirBytes);
        d += wire::kChannelDirBytes;
      }
    }
    const std::size_t payload_len = frame.size() - wire::kFrameHeaderBytes;
    wire::FrameHeader h;
    h.kind = static_cast<std::uint8_t>(DneMsgKind::kStepEnd);
    h.from = static_cast<std::uint32_t>(proc_index_);
    h.payload_len = payload_len;
    h.checksum =
        wire::FrameChecksum(frame.data() + wire::kFrameHeaderBytes, payload_len);
    wire::EncodeHeader(h, frame.data());
    if (ledger_ != nullptr) {
      ledger_->AddWireOverhead(
          local_[0],
          wire::kFrameHeaderBytes + wire::ChannelDirectoryBytes(kNumChannels) +
              wire::kSubBlockHeaderBytes * sub_blocks,
          1);
    }
  }
  charge_summaries();

  DNE_RETURN_IF_ERROR(
      RunMeshRound(static_cast<std::uint8_t>(DneMsgKind::kStepEnd)));

  // Split every peer's payload along its channel directory, then deliver
  // each channel exactly as its standalone exchange would have.
  struct ChannelView {
    const unsigned char* data = nullptr;
    std::size_t len = 0;
  };
  std::vector<ChannelView> report_views(nproc_), handoff_views(nproc_),
      summary_views(nproc_);
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    wire::PayloadReader reader(recv_payloads_[q].data(),
                               recv_payloads_[q].size());
    std::uint64_t num_channels = 0;
    if (!reader.Read(&num_channels) || num_channels != kNumChannels) {
      return Status::Internal("malformed step-end channel directory from " +
                              PeerLabel(q));
    }
    wire::ChannelDir dirs[kNumChannels];
    for (wire::ChannelDir& d : dirs) {
      if (!reader.Read(&d)) {
        return Status::Internal("malformed step-end channel directory from " +
                                PeerLabel(q));
      }
    }
    std::uint64_t total = 0;
    for (const wire::ChannelDir& d : dirs) total += d.byte_len;
    if (total != reader.remaining() ||
        dirs[0].kind != static_cast<std::uint8_t>(DneMsgKind::kBoundaryReport) ||
        dirs[1].kind != static_cast<std::uint8_t>(DneMsgKind::kEdgeHandoff) ||
        dirs[2].kind != static_cast<std::uint8_t>(DneMsgKind::kStepSummary)) {
      return Status::Internal("malformed step-end channel directory from " +
                              PeerLabel(q));
    }
    report_views[q] = {reader.cursor(), dirs[0].byte_len};
    reader.Skip(dirs[0].byte_len);
    handoff_views[q] = {reader.cursor(), dirs[1].byte_len};
    reader.Skip(dirs[1].byte_len);
    summary_views[q] = {reader.cursor(), dirs[2].byte_len};
  }
  ClearStage();
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    DNE_RETURN_IF_ERROR(StageSubBlocks<BoundaryReport>(report_views[q].data,
                                                       report_views[q].len, q));
  }
  AssembleInboxes(reports);
  ClearStage();
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    DNE_RETURN_IF_ERROR(
        StageSubBlocks<Edge>(handoff_views[q].data, handoff_views[q].len, q));
  }
  AssembleInboxes(handoff);
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    DNE_RETURN_IF_ERROR(ParseSummaries(summary_views[q].data,
                                       summary_views[q].len, q, all_peeks,
                                       handoff_totals));
  }
  return Status::OK();
}

Status MeshCommunicator::ParseSummaries(
    const unsigned char* data, std::size_t len, int q,
    std::vector<std::uint64_t>* all_peeks,
    std::vector<std::uint64_t>* handoff_totals) {
  wire::PayloadReader reader(data, len);
  while (reader.remaining() > 0) {
    StepSummaryRecord rec;
    if (!reader.Read(&rec) || static_cast<int>(rec.rank) >= num_ranks_ ||
        rank_to_proc(static_cast<int>(rec.rank)) != q ||
        rec.num_counts != static_cast<std::uint32_t>(num_ranks_)) {
      return Status::Internal("malformed step summary from " + PeerLabel(q));
    }
    (*all_peeks)[rec.rank] = rec.peek;
    for (std::uint32_t p = 0; p < rec.num_counts; ++p) {
      std::uint64_t count = 0;
      if (!reader.Read(&count)) {
        return Status::Internal("malformed step summary from " + PeerLabel(q));
      }
      (*handoff_totals)[p] += count;
    }
  }
  return Status::OK();
}

Status MeshCommunicator::AllGatherU64(
    const std::vector<std::uint64_t>& local_vals,
    std::vector<std::uint64_t>* all) {
  struct Entry {
    std::uint32_t rank;
    std::uint32_t pad = 0;
    std::uint64_t value;
  };
  // One frame to every peer carrying this process's (rank, value) entries.
  std::vector<unsigned char> payload;
  for (std::size_t l = 0; l < local_.size(); ++l) {
    wire::AppendPod(&payload,
                    Entry{static_cast<std::uint32_t>(local_[l]), 0,
                          local_vals[l]});
  }
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    std::vector<unsigned char>& frame = send_frames_[q];
    frame.assign(wire::kFrameHeaderBytes, 0);
    frame.insert(frame.end(), payload.begin(), payload.end());
    wire::FrameHeader h;
    h.kind = static_cast<std::uint8_t>(DneMsgKind::kAllGather);
    h.from = static_cast<std::uint32_t>(proc_index_);
    h.payload_len = payload.size();
    h.checksum = wire::FrameChecksum(payload.data(), payload.size());
    wire::EncodeHeader(h, frame.data());
  }
  if (ledger_ != nullptr && nproc_ > 1) {
    for (std::size_t l = 0; l < local_.size(); ++l) {
      ledger_->AddControlBytes(
          local_[l],
          static_cast<std::uint64_t>(nproc_ - 1) * sizeof(Entry));
    }
    ledger_->AddWireOverhead(
        local_[0],
        static_cast<std::uint64_t>(nproc_ - 1) * wire::kFrameHeaderBytes,
        static_cast<std::uint64_t>(nproc_ - 1));
  }
  DNE_RETURN_IF_ERROR(
      RunMeshRound(static_cast<std::uint8_t>(DneMsgKind::kAllGather)));

  all->assign(static_cast<std::size_t>(num_ranks_), 0);
  for (std::size_t l = 0; l < local_.size(); ++l) {
    (*all)[local_[l]] = local_vals[l];
  }
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    wire::PayloadReader reader(recv_payloads_[q].data(),
                               recv_payloads_[q].size());
    Entry e{0, 0, 0};
    while (reader.remaining() > 0) {
      if (!reader.Read(&e) || static_cast<int>(e.rank) >= num_ranks_ ||
          rank_to_proc(static_cast<int>(e.rank)) != q) {
        return Status::Internal("malformed all-gather entry from " +
                                PeerName(q));
      }
      (*all)[e.rank] = e.value;
    }
  }
  return Status::OK();
}

Status MeshCommunicator::Barrier() {
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    std::vector<unsigned char>& frame = send_frames_[q];
    frame.assign(wire::kFrameHeaderBytes, 0);
    wire::FrameHeader h;
    h.kind = static_cast<std::uint8_t>(DneMsgKind::kBarrier);
    h.from = static_cast<std::uint32_t>(proc_index_);
    h.payload_len = 0;
    h.checksum = wire::FrameChecksum(nullptr, 0);
    wire::EncodeHeader(h, frame.data());
  }
  return RunMeshRound(static_cast<std::uint8_t>(DneMsgKind::kBarrier));
}

}  // namespace dne
