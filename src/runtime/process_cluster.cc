#include "runtime/process_cluster.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "runtime/wire.h"

namespace dne {

namespace {

/// Mesh rounds give a wedged peer this long before the endpoint gives up
/// with a diagnostic instead of hanging forever (a *crashed* peer is
/// detected immediately via EOF/HUP; this guards live-but-stuck ones).
constexpr int kMeshTimeoutSeconds = 600;

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string PeerName(int q) { return "rank process " + std::to_string(q); }

}  // namespace

// ---- ProcessCluster ---------------------------------------------------------

ProcessCluster::~ProcessCluster() {
  KillAll();
  ReapAll();
}

Status ProcessCluster::Launch(int nproc, const ChildMain& child_main) {
  // Mesh: one socketpair per unordered process pair; fds[i][j] is i's end
  // of the {i, j} link (row-major convenience matrix, -1 on the diagonal).
  std::vector<std::vector<int>> mesh(nproc, std::vector<int>(nproc, -1));
  auto cleanup_fds = [&]() {
    for (auto& row : mesh) {
      for (int fd : row) {
        if (fd >= 0) ::close(fd);
      }
    }
    for (int fd : control_fds_) {
      if (fd >= 0) ::close(fd);
    }
    control_fds_.clear();
  };
  std::vector<int> child_control(nproc, -1);
  for (int i = 0; i < nproc; ++i) {
    for (int j = i + 1; j < nproc; ++j) {
      int sp[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0) {
        cleanup_fds();
        return Status::Internal(std::string("socketpair failed: ") +
                                std::strerror(errno));
      }
      mesh[i][j] = sp[0];
      mesh[j][i] = sp[1];
    }
  }
  control_fds_.assign(nproc, -1);
  for (int i = 0; i < nproc; ++i) {
    int sp[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0) {
      for (int fd : child_control) {
        if (fd >= 0) ::close(fd);
      }
      cleanup_fds();
      return Status::Internal(std::string("socketpair failed: ") +
                              std::strerror(errno));
    }
    control_fds_[i] = sp[0];
    child_control[i] = sp[1];
  }

  // Buffered stdio must be flushed before fork or the children replay it.
  std::fflush(stdout);
  std::fflush(stderr);

  pids_.assign(nproc, -1);
  reaped_.assign(nproc, false);
  wait_status_.assign(nproc, 0);
  for (int i = 0; i < nproc; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      const Status st = Status::Internal(std::string("fork failed: ") +
                                         std::strerror(errno));
      pids_.resize(i);
      reaped_.resize(i);
      wait_status_.resize(i);
      KillAll();
      ReapAll();
      for (int fd : child_control) {
        if (fd >= 0) ::close(fd);
      }
      cleanup_fds();
      return st;
    }
    if (pid == 0) {
      // Child i: keep row i of the mesh and its own control end, close
      // everything else inherited from the parent.
      for (int a = 0; a < nproc; ++a) {
        for (int b = 0; b < nproc; ++b) {
          if (a != i && mesh[a][b] >= 0) ::close(mesh[a][b]);
        }
      }
      for (int c = 0; c < nproc; ++c) {
        if (control_fds_[c] >= 0) ::close(control_fds_[c]);
        if (c != i && child_control[c] >= 0) ::close(child_control[c]);
      }
      int code = 9;
      try {
        code = child_main(i, mesh[i], child_control[i]);
      } catch (...) {
        code = 9;
      }
      // _exit, not exit: the child must not run the parent's atexit
      // handlers or flush inherited stdio state.
      ::_exit(code);
    }
    pids_[i] = pid;
  }
  // Parent: the mesh and the children's control ends belong to the
  // children alone.
  for (auto& row : mesh) {
    for (int& fd : row) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }
  for (int fd : child_control) {
    if (fd >= 0) ::close(fd);
  }
  return Status::OK();
}

void ProcessCluster::MarkReaped(int child, int wait_status) {
  reaped_[child] = true;
  wait_status_[child] = wait_status;
}

bool ProcessCluster::PollExited(int* child, int* wait_status) {
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (reaped_[i]) continue;
    int status = 0;
    const pid_t r = ::waitpid(pids_[i], &status, WNOHANG);
    if (r == pids_[i]) {
      MarkReaped(static_cast<int>(i), status);
      *child = static_cast<int>(i);
      *wait_status = status;
      return true;
    }
  }
  return false;
}

void ProcessCluster::KillAll() {
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (!reaped_[i] && pids_[i] > 0) ::kill(pids_[i], SIGKILL);
  }
}

std::string ProcessCluster::ReapAll() {
  std::string abnormal;
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (!reaped_[i] && pids_[i] > 0) {
      int status = 0;
      if (::waitpid(pids_[i], &status, 0) == pids_[i]) {
        MarkReaped(static_cast<int>(i), status);
      } else {
        continue;
      }
    }
    const int status = wait_status_[i];
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) continue;
    if (!abnormal.empty()) abnormal += "; ";
    abnormal += PeerName(static_cast<int>(i)) + " (pid " +
                std::to_string(pids_[i]) + ") ";
    if (WIFSIGNALED(status)) {
      abnormal += "killed by signal " + std::to_string(WTERMSIG(status));
    } else {
      abnormal += "exited with status " + std::to_string(WEXITSTATUS(status));
    }
  }
  for (int& fd : control_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  return abnormal;
}

// ---- SocketCommunicator -----------------------------------------------------

SocketCommunicator::SocketCommunicator(int num_ranks, int nproc,
                                       int proc_index,
                                       std::vector<int> mesh_fds)
    : num_ranks_(num_ranks),
      nproc_(nproc),
      proc_index_(proc_index),
      mesh_fds_(std::move(mesh_fds)),
      send_frames_(nproc),
      recv_payloads_(nproc) {
  for (int r = proc_index_; r < num_ranks_; r += nproc_) local_.push_back(r);
  stage_.resize(local_.size());
  for (auto& per_from : stage_) {
    per_from.resize(static_cast<std::size_t>(num_ranks_));
  }
  for (int q = 0; q < nproc_; ++q) {
    if (q != proc_index_ && mesh_fds_[q] >= 0) SetNonBlocking(mesh_fds_[q]);
  }
}

SocketCommunicator::~SocketCommunicator() {
  for (int fd : mesh_fds_) {
    if (fd >= 0) ::close(fd);
  }
}

Status SocketCommunicator::RunMeshRound(std::uint8_t kind) {
  struct PeerIo {
    std::size_t sent = 0;
    unsigned char hdr[wire::kFrameHeaderBytes];
    std::size_t hdr_got = 0;
    wire::FrameHeader header;
    bool header_done = false;
    std::size_t payload_got = 0;
    bool recv_done = false;
  };
  std::vector<PeerIo> io(nproc_);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(kMeshTimeoutSeconds);
  for (;;) {
    bool pending = false;
    std::vector<pollfd> pfds;
    std::vector<int> peers;
    for (int q = 0; q < nproc_; ++q) {
      if (q == proc_index_) continue;
      short events = 0;
      if (io[q].sent < send_frames_[q].size()) events |= POLLOUT;
      if (!io[q].recv_done) events |= POLLIN;
      if (events == 0) continue;
      pending = true;
      pfds.push_back(pollfd{mesh_fds_[q], events, 0});
      peers.push_back(q);
    }
    if (!pending) break;
    const int rc = ::poll(pfds.data(), pfds.size(), 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("poll failed: ") +
                              std::strerror(errno));
    }
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::Internal(
          "transport timeout: a rank process stopped making progress");
    }
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      const int q = peers[k];
      PeerIo& p = io[q];
      const int fd = mesh_fds_[q];
      if ((pfds[k].revents & POLLOUT) != 0 &&
          p.sent < send_frames_[q].size()) {
        const ssize_t n =
            ::send(fd, send_frames_[q].data() + p.sent,
                   send_frames_[q].size() - p.sent, MSG_NOSIGNAL);
        if (n > 0) {
          p.sent += static_cast<std::size_t>(n);
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          return Status::Internal(PeerName(q) + " unreachable: " +
                                  std::strerror(errno));
        }
      }
      if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          !p.recv_done) {
        for (;;) {
          ssize_t n;
          if (!p.header_done) {
            n = ::recv(fd, p.hdr + p.hdr_got,
                       wire::kFrameHeaderBytes - p.hdr_got, 0);
          } else {
            n = ::recv(fd, recv_payloads_[q].data() + p.payload_got,
                       p.header.payload_len - p.payload_got, 0);
          }
          if (n > 0) {
            if (!p.header_done) {
              p.hdr_got += static_cast<std::size_t>(n);
              if (p.hdr_got == wire::kFrameHeaderBytes) {
                DNE_RETURN_IF_ERROR(wire::DecodeHeader(p.hdr, &p.header));
                if (p.header.kind != kind) {
                  return Status::Internal(
                      "protocol desync with " + PeerName(q) + ": expected "
                      "frame kind " + std::to_string(kind) + ", got " +
                      std::to_string(p.header.kind));
                }
                recv_payloads_[q].resize(p.header.payload_len);
                p.header_done = true;
                if (p.header.payload_len == 0) {
                  p.recv_done = true;
                  break;
                }
              }
            } else {
              p.payload_got += static_cast<std::size_t>(n);
              if (p.payload_got == p.header.payload_len) {
                p.recv_done = true;
                break;
              }
            }
          } else if (n == 0) {
            return Status::Internal(PeerName(q) +
                                    " disconnected mid-superstep (crash?)");
          } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
            break;
          } else if (errno != EINTR) {
            return Status::Internal("recv from " + PeerName(q) +
                                    " failed: " + std::strerror(errno));
          }
        }
      }
    }
  }
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    if (wire::Fnv1a64(recv_payloads_[q].data(), recv_payloads_[q].size()) !=
        io[q].header.checksum) {
      return Status::Internal("frame checksum mismatch from " + PeerName(q));
    }
  }
  return Status::OK();
}

template <typename T>
Status SocketCommunicator::ExchangeImpl(DneMsgKind kind,
                                        RankMailboxes<T>* m) {
  const std::size_t num_local = local_.size();
  // Serialise one frame per peer: all (from -> to) sub-messages between the
  // two processes, each prefixed with {from, to, byte length}. Empty boxes
  // send nothing; empty frames still flow as the synchronisation point.
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    std::vector<unsigned char>& frame = send_frames_[q];
    frame.clear();
    frame.resize(wire::kFrameHeaderBytes);  // header patched below
    std::uint64_t sub_blocks = 0;
    for (std::size_t l = 0; l < num_local; ++l) {
      const int from = local_[l];
      for (int to = q; to < num_ranks_; to += nproc_) {
        const std::vector<T>& box = m->out[l][to];
        if (box.empty()) continue;
        const std::uint64_t bytes = box.size() * sizeof(T);
        wire::AppendPod(&frame, static_cast<std::uint32_t>(from));
        wire::AppendPod(&frame, static_cast<std::uint32_t>(to));
        wire::AppendPod(&frame, bytes);
        const auto* data =
            reinterpret_cast<const unsigned char*>(box.data());
        frame.insert(frame.end(), data, data + bytes);
        ++sub_blocks;
        if (ledger_ != nullptr) ledger_->AddDataMessage(from, bytes);
      }
    }
    const std::size_t payload_len = frame.size() - wire::kFrameHeaderBytes;
    wire::FrameHeader h;
    h.kind = static_cast<std::uint8_t>(kind);
    h.from = static_cast<std::uint32_t>(proc_index_);
    h.payload_len = payload_len;
    h.checksum =
        wire::Fnv1a64(frame.data() + wire::kFrameHeaderBytes, payload_len);
    wire::EncodeHeader(h, frame.data());
    if (ledger_ != nullptr) {
      ledger_->AddWireOverhead(
          local_[0],
          wire::kFrameHeaderBytes + wire::kSubBlockHeaderBytes * sub_blocks,
          1);
    }
  }

  DNE_RETURN_IF_ERROR(RunMeshRound(static_cast<std::uint8_t>(kind)));

  // Parse the received frames into per-(local slot, sender) staging.
  for (std::size_t l = 0; l < num_local; ++l) {
    for (auto& buf : stage_[l]) buf.clear();
  }
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    wire::PayloadReader reader(recv_payloads_[q].data(),
                               recv_payloads_[q].size());
    while (reader.remaining() > 0) {
      std::uint32_t from = 0, to = 0;
      std::uint64_t bytes = 0;
      if (!reader.Read(&from) || !reader.Read(&to) || !reader.Read(&bytes) ||
          bytes % sizeof(T) != 0 || reader.remaining() < bytes) {
        return Status::Internal("malformed exchange sub-block from " +
                                PeerName(q));
      }
      if (static_cast<int>(from) >= num_ranks_ ||
          static_cast<int>(to) >= num_ranks_ ||
          rank_to_proc(static_cast<int>(from)) != q ||
          rank_to_proc(static_cast<int>(to)) != proc_index_) {
        return Status::Internal("misrouted exchange sub-block from " +
                                PeerName(q));
      }
      const std::size_t slot = slot_of_rank(static_cast<int>(to));
      std::vector<unsigned char>& buf = stage_[slot][from];
      buf.insert(buf.end(), reader.cursor(), reader.cursor() + bytes);
      reader.Skip(bytes);
    }
  }

  // Assemble every local inbox: concatenated ascending sender order, local
  // senders straight out of their outboxes (co-hosted traffic never hits
  // the wire), remote senders from the staged bytes.
  for (std::size_t l = 0; l < num_local; ++l) {
    const int to_rank = local_[l];
    std::size_t total = 0;
    for (int from = 0; from < num_ranks_; ++from) {
      if (rank_to_proc(from) == proc_index_) {
        total += m->out[slot_of_rank(from)][to_rank].size();
      } else {
        total += stage_[l][from].size() / sizeof(T);
      }
    }
    std::vector<T>& inbox = m->in[l];
    inbox.clear();
    inbox.resize(total);
    std::size_t pos = 0;
    m->in_begin[l][0] = 0;
    for (int from = 0; from < num_ranks_; ++from) {
      if (rank_to_proc(from) == proc_index_) {
        const std::vector<T>& box = m->out[slot_of_rank(from)][to_rank];
        std::copy(box.begin(), box.end(), inbox.begin() + pos);
        pos += box.size();
      } else {
        const std::vector<unsigned char>& buf = stage_[l][from];
        if (!buf.empty()) {
          std::memcpy(inbox.data() + pos, buf.data(), buf.size());
          pos += buf.size() / sizeof(T);
        }
      }
      m->in_begin[l][from + 1] = pos;
    }
  }
  for (std::size_t l = 0; l < num_local; ++l) {
    for (auto& box : m->out[l]) box.clear();
  }
  return Status::OK();
}

Status SocketCommunicator::Exchange(DneMsgKind k,
                                    RankMailboxes<SelectRequest>* m) {
  return ExchangeImpl(k, m);
}
Status SocketCommunicator::Exchange(DneMsgKind k,
                                    RankMailboxes<VertexPartPair>* m) {
  return ExchangeImpl(k, m);
}
Status SocketCommunicator::Exchange(DneMsgKind k,
                                    RankMailboxes<BoundaryReport>* m) {
  return ExchangeImpl(k, m);
}
Status SocketCommunicator::Exchange(DneMsgKind k, RankMailboxes<Edge>* m) {
  return ExchangeImpl(k, m);
}
Status SocketCommunicator::Exchange(DneMsgKind k,
                                    RankMailboxes<VertexId>* m) {
  return ExchangeImpl(k, m);
}

Status SocketCommunicator::AllGatherU64(
    const std::vector<std::uint64_t>& local_vals,
    std::vector<std::uint64_t>* all) {
  struct Entry {
    std::uint32_t rank;
    std::uint32_t pad = 0;
    std::uint64_t value;
  };
  // One frame to every peer carrying this process's (rank, value) entries.
  std::vector<unsigned char> payload;
  for (std::size_t l = 0; l < local_.size(); ++l) {
    wire::AppendPod(&payload,
                    Entry{static_cast<std::uint32_t>(local_[l]), 0,
                          local_vals[l]});
  }
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    std::vector<unsigned char>& frame = send_frames_[q];
    frame.assign(wire::kFrameHeaderBytes, 0);
    frame.insert(frame.end(), payload.begin(), payload.end());
    wire::FrameHeader h;
    h.kind = static_cast<std::uint8_t>(DneMsgKind::kAllGather);
    h.from = static_cast<std::uint32_t>(proc_index_);
    h.payload_len = payload.size();
    h.checksum = wire::Fnv1a64(payload.data(), payload.size());
    wire::EncodeHeader(h, frame.data());
  }
  if (ledger_ != nullptr && nproc_ > 1) {
    for (std::size_t l = 0; l < local_.size(); ++l) {
      ledger_->AddControlBytes(
          local_[l],
          static_cast<std::uint64_t>(nproc_ - 1) * sizeof(Entry));
    }
    ledger_->AddWireOverhead(
        local_[0],
        static_cast<std::uint64_t>(nproc_ - 1) * wire::kFrameHeaderBytes,
        static_cast<std::uint64_t>(nproc_ - 1));
  }
  DNE_RETURN_IF_ERROR(
      RunMeshRound(static_cast<std::uint8_t>(DneMsgKind::kAllGather)));

  all->assign(static_cast<std::size_t>(num_ranks_), 0);
  for (std::size_t l = 0; l < local_.size(); ++l) {
    (*all)[local_[l]] = local_vals[l];
  }
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    wire::PayloadReader reader(recv_payloads_[q].data(),
                               recv_payloads_[q].size());
    Entry e{0, 0, 0};
    while (reader.remaining() > 0) {
      if (!reader.Read(&e) || static_cast<int>(e.rank) >= num_ranks_ ||
          rank_to_proc(static_cast<int>(e.rank)) != q) {
        return Status::Internal("malformed all-gather entry from " +
                                PeerName(q));
      }
      (*all)[e.rank] = e.value;
    }
  }
  return Status::OK();
}

Status SocketCommunicator::Barrier() {
  for (int q = 0; q < nproc_; ++q) {
    if (q == proc_index_) continue;
    std::vector<unsigned char>& frame = send_frames_[q];
    frame.assign(wire::kFrameHeaderBytes, 0);
    wire::FrameHeader h;
    h.kind = static_cast<std::uint8_t>(DneMsgKind::kBarrier);
    h.from = static_cast<std::uint32_t>(proc_index_);
    h.payload_len = 0;
    h.checksum = wire::Fnv1a64(nullptr, 0);
    wire::EncodeHeader(h, frame.data());
  }
  return RunMeshRound(static_cast<std::uint8_t>(DneMsgKind::kBarrier));
}

}  // namespace dne
