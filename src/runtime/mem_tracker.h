// Per-rank memory accounting for the Fig. 9 "mem score" experiments.
#ifndef DNE_RUNTIME_MEM_TRACKER_H_
#define DNE_RUNTIME_MEM_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dne {

/// Tracks the bytes resident on each simulated rank and the cluster-wide
/// high-water mark. The paper's mem score (Sec. 7.3) is
///   (sum over processes of bytes at the peak snapshot) / |E|;
/// we take the peak of the cluster-wide total, which is what the 0.5-second
/// snapshot sampling in the paper approximates.
class MemTracker {
 public:
  MemTracker() : MemTracker(1) {}
  explicit MemTracker(int num_ranks)
      : current_(num_ranks, 0), rank_peak_(num_ranks, 0) {}

  void Allocate(int rank, std::size_t bytes) {
    current_[rank] += bytes;
    if (current_[rank] > rank_peak_[rank]) rank_peak_[rank] = current_[rank];
    total_ += bytes;
    if (total_ > peak_total_) peak_total_ = total_;
  }

  void Release(int rank, std::size_t bytes) {
    current_[rank] -= bytes;
    total_ -= bytes;
  }

  std::uint64_t current_total() const { return total_; }
  std::uint64_t peak_total() const { return peak_total_; }

  /// Per-rank high-water marks. Under the in-process transport these come
  /// from the driver's charges; under the process transport each rank
  /// process reports its own peaks, which the coordinator replays here at
  /// the terminal barrier — so "peak per rank" is the rank's, not a share
  /// of a single global number.
  std::uint64_t rank_peak(int rank) const { return rank_peak_[rank]; }
  const std::vector<std::uint64_t>& rank_peaks() const { return rank_peak_; }

  /// Mem score = peak cluster-wide bytes / edge count.
  double MemScore(std::uint64_t num_edges) const {
    return num_edges == 0
               ? 0.0
               : static_cast<double>(peak_total_) /
                     static_cast<double>(num_edges);
  }

 private:
  std::vector<std::uint64_t> current_;
  std::vector<std::uint64_t> rank_peak_;
  std::uint64_t total_ = 0;
  std::uint64_t peak_total_ = 0;
};

}  // namespace dne

#endif  // DNE_RUNTIME_MEM_TRACKER_H_
