// Per-rank memory accounting for the Fig. 9 "mem score" experiments.
#ifndef DNE_RUNTIME_MEM_TRACKER_H_
#define DNE_RUNTIME_MEM_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"

namespace dne {

/// Tracks the bytes resident on each simulated rank and the cluster-wide
/// high-water mark. The paper's mem score (Sec. 7.3) is
///   (sum over processes of bytes at the peak snapshot) / |E|;
/// we take the peak of the cluster-wide total, which is what the 0.5-second
/// snapshot sampling in the paper approximates.
///
/// Thread safety: fully internally synchronised — Allocate/Release and every
/// accessor take mu_, so charges may arrive from pool workers (the stream
/// harness charges from the read-ahead task) concurrently with the driver.
/// The peak is maintained under the same mutex as the counter it snapshots,
/// so `peak >= every concurrent current` holds with no relaxed-atomic
/// subtleties: a mutex-serialised read-modify-write is the whole contract.
/// Readers see the totals of all charges that happened-before the accessor
/// call; for exact end-of-run figures, call after joining/awaiting the
/// charging tasks (all existing callers read after a barrier or future.get).
class MemTracker {
 public:
  MemTracker() : MemTracker(1) {}
  explicit MemTracker(int num_ranks)
      : current_(num_ranks, 0), rank_peak_(num_ranks, 0) {}

  void Allocate(int rank, std::size_t bytes) DNE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    current_[rank] += bytes;
    if (current_[rank] > rank_peak_[rank]) rank_peak_[rank] = current_[rank];
    total_ += bytes;
    if (total_ > peak_total_) peak_total_ = total_;
  }

  void Release(int rank, std::size_t bytes) DNE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    current_[rank] -= bytes;
    total_ -= bytes;
  }

  std::uint64_t current_total() const DNE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return total_;
  }
  std::uint64_t peak_total() const DNE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return peak_total_;
  }

  /// Per-rank high-water marks. Under the in-process transport these come
  /// from the driver's charges; under the process transport each rank
  /// process reports its own peaks, which the coordinator replays here at
  /// the terminal barrier — so "peak per rank" is the rank's, not a share
  /// of a single global number.
  std::uint64_t rank_peak(int rank) const DNE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return rank_peak_[rank];
  }
  /// Snapshot of all per-rank peaks (by value: the internal vector may keep
  /// moving under concurrent charges).
  std::vector<std::uint64_t> rank_peaks() const DNE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return rank_peak_;
  }

  /// Mem score = peak cluster-wide bytes / edge count.
  double MemScore(std::uint64_t num_edges) const DNE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return num_edges == 0
               ? 0.0
               : static_cast<double>(peak_total_) /
                     static_cast<double>(num_edges);
  }

 private:
  mutable Mutex mu_;
  std::vector<std::uint64_t> current_ DNE_GUARDED_BY(mu_);
  std::vector<std::uint64_t> rank_peak_ DNE_GUARDED_BY(mu_);
  std::uint64_t total_ DNE_GUARDED_BY(mu_) = 0;
  std::uint64_t peak_total_ DNE_GUARDED_BY(mu_) = 0;
};

}  // namespace dne

#endif  // DNE_RUNTIME_MEM_TRACKER_H_
