#include "runtime/cost_model.h"

#include <algorithm>

namespace dne {

CostModel::CostModel(const CostModelOptions& options, int num_ranks)
    : options_(options),
      step_work_(num_ranks, 0),
      step_bytes_(num_ranks, 0),
      cumulative_work_(num_ranks, 0) {}

void CostModel::AddWork(int rank, std::uint64_t ops) {
  step_work_[rank] += ops;
  cumulative_work_[rank] += ops;
  total_work_ += ops;
}

void CostModel::AddBytes(int rank, std::uint64_t bytes) {
  step_bytes_[rank] += bytes;
}

void CostModel::EndSuperstep() {
  std::uint64_t max_work = 0, max_bytes = 0;
  for (std::uint64_t w : step_work_) max_work = std::max(max_work, w);
  for (std::uint64_t b : step_bytes_) max_bytes = std::max(max_bytes, b);
  sim_ns_ += static_cast<double>(max_work) * options_.ns_per_op +
             static_cast<double>(max_bytes) * options_.ns_per_byte +
             options_.barrier_ns;
  std::fill(step_work_.begin(), step_work_.end(), 0);
  std::fill(step_bytes_.begin(), step_bytes_.end(), 0);
}

double CostModel::WorkBalance() const {
  std::uint64_t max_w = 0, sum = 0;
  for (std::uint64_t w : cumulative_work_) {
    max_w = std::max(max_w, w);
    sum += w;
  }
  if (sum == 0) return 1.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(cumulative_work_.size());
  return static_cast<double>(max_w) / mean;
}

}  // namespace dne
