// POD message records of the serving data plane. Kept in a leaf header so
// the serve engine (apps/serve_engine), the transports (runtime/communicator,
// runtime/process_cluster, apps/serve_transport) and the tests can all name
// them without pulling each other in. Every struct is trivially copyable —
// the process transport serialises them by memcpy into checksummed frames —
// and layout-frozen below, with tools/dne_lint.py enforcing the wire-pod
// discipline (explicit-width fields + trivially-copyable assert) on this
// header from day one.
#ifndef DNE_RUNTIME_SERVE_MESSAGES_H_
#define DNE_RUNTIME_SERVE_MESSAGES_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/types.h"

namespace dne {

/// Replica-synchronisation record: the value of vertex v, as raw bits so one
/// frame kind carries all three algorithms (PageRank packs a double, SSSP a
/// widened u32 distance, WCC a component label). Flows masters->mirrors in
/// the scatter half and mirrors->masters in the gather half of a superstep.
struct SyncValueRecord {
  VertexId v;
  std::uint64_t bits;
};

/// Per-rank serve superstep summary, carried in the control channel of the
/// fused kServeStepEnd round: the rank's count of master vertices whose value
/// changed this superstep (global sum == frontier size, so every rank derives
/// the same termination decision), plus cooperative abort flags (deadline /
/// cancellation) that every rank folds with OR — all ranks stop at the same
/// superstep boundary, never mid-round.
struct ServeStepSummary {
  std::uint32_t rank;
  std::uint32_t flags;
  std::uint64_t active;
};

/// Abort flag bits for ServeStepSummary::flags.
inline constexpr std::uint32_t kServeAbortDeadline = 1u << 0;
inline constexpr std::uint32_t kServeAbortCancelled = 1u << 1;

/// Resident-shard vertex descriptor: one per vertex hosted by a rank, with
/// the global degree (replicas must normalise PageRank contributions by the
/// *global* degree), the master rank and the replica count. Shipped once at
/// shard-residency time (and re-shipped on recovery), not per request.
struct ServeVertexRecord {
  VertexId v;
  std::uint64_t degree;
  std::uint32_t master;
  std::uint32_t num_replicas;
};

/// Shard shipment frame head: followed on the wire by `num_edges` Edge
/// records, `num_vertices` ServeVertexRecord records and `num_replica_ids`
/// u32 replica ranks (concatenated per vertex in record order).
struct ServeShardHead {
  std::uint32_t rank;
  std::uint32_t pad;
  std::uint64_t num_edges;
  std::uint64_t num_vertices;
  std::uint64_t num_replica_ids;
};

/// Serve cluster configuration, shipped once per (re)launch epoch; followed
/// on the wire by `num_faults` FaultAction records (dne_options.h) so the
/// serve path reuses the deterministic `fault=` grammar unchanged.
struct ServeConfigRecord {
  std::uint32_t num_ranks;
  std::uint32_t nproc;
  std::uint32_t proc_index;
  std::int32_t epoch;
  std::uint64_t num_vertices;
  std::uint64_t stall_timeout_ms;
  std::uint32_t num_faults;
  std::uint32_t pad;
};

/// One query, broadcast to every rank process. algo: 0 = pagerank,
/// 1 = sssp, 2 = wcc (ServeAlgo in apps/serve_engine.h).
struct ServeRequestRecord {
  std::uint64_t req_id;
  std::uint32_t algo;
  std::uint32_t iterations;
  VertexId source;
  std::uint64_t max_supersteps;
};

/// Cooperative cancellation of an in-flight request (deadline expiry or
/// client cancel); flags names the ServeStepSummary abort bit to raise.
/// Stale records (req_id older than the running request) are ignored.
struct ServeCancelRecord {
  std::uint64_t req_id;
  std::uint32_t flags;
  std::uint32_t pad;
};

/// Per-rank result frame head: followed on the wire by `num_values`
/// SyncValueRecord entries, one per master-owned vertex of the rank.
/// status_code is the Status::Code the rank's superstep loop ended with
/// (OK / DeadlineExceeded / Cancelled) — identical on every rank because
/// the abort decision is folded from the same summary table.
struct ServeResultHead {
  std::uint64_t req_id;
  std::uint32_t rank;
  std::uint32_t status_code;
  std::uint64_t num_values;
  std::uint64_t supersteps;
};

/// Per-process per-request accounting, reported after the result frames and
/// reconciled by the coordinator against the replication factor the metrics
/// layer predicts (observed wire bytes vs modeled replica-sync traffic).
struct ServeStatsRecord {
  std::uint64_t req_id;
  std::uint64_t supersteps;
  std::uint64_t data_bytes;
  std::uint64_t data_messages;
  std::uint64_t control_bytes;
  std::uint64_t wire_bytes;
  std::uint64_t wire_frames;
  std::uint64_t rss_bytes;
};

/// Park notification head sent by a rank process that hit a transient mesh
/// failure mid-query (peer crash EOF-cascade): tells the supervisor which
/// request and superstep to retry after relaunching the cluster. Followed on
/// the wire by a diagnostic string.
struct ServeParkedHead {
  std::uint64_t req_id;
  std::uint32_t superstep;
  std::uint8_t round_kind;
  std::uint8_t pad[3];
};

static_assert(std::is_trivially_copyable_v<SyncValueRecord> &&
                  std::is_trivially_copyable_v<ServeStepSummary> &&
                  std::is_trivially_copyable_v<ServeVertexRecord> &&
                  std::is_trivially_copyable_v<ServeShardHead> &&
                  std::is_trivially_copyable_v<ServeConfigRecord> &&
                  std::is_trivially_copyable_v<ServeRequestRecord> &&
                  std::is_trivially_copyable_v<ServeCancelRecord> &&
                  std::is_trivially_copyable_v<ServeResultHead> &&
                  std::is_trivially_copyable_v<ServeStatsRecord> &&
                  std::is_trivially_copyable_v<ServeParkedHead>,
              "wire records must be memcpy-safe");

// Layout freeze: the process transport memcpys these records (including
// padding) into checksummed frames, so any size or offset drift between two
// builds silently desyncs the stream past the checksum. Pinning the layout
// here turns drift into a build error instead.
static_assert(sizeof(VertexId) == 8 && sizeof(PartitionId) == 4,
              "wire scalar widths are part of the frame format");
static_assert(sizeof(SyncValueRecord) == 16 &&
                  offsetof(SyncValueRecord, v) == 0 &&
                  offsetof(SyncValueRecord, bits) == 8,
              "SyncValueRecord wire layout drifted");
static_assert(sizeof(ServeStepSummary) == 16 &&
                  offsetof(ServeStepSummary, rank) == 0 &&
                  offsetof(ServeStepSummary, flags) == 4 &&
                  offsetof(ServeStepSummary, active) == 8,
              "ServeStepSummary wire layout drifted");
static_assert(sizeof(ServeVertexRecord) == 24 &&
                  offsetof(ServeVertexRecord, v) == 0 &&
                  offsetof(ServeVertexRecord, degree) == 8 &&
                  offsetof(ServeVertexRecord, master) == 16 &&
                  offsetof(ServeVertexRecord, num_replicas) == 20,
              "ServeVertexRecord wire layout drifted");
static_assert(sizeof(ServeShardHead) == 32 &&
                  offsetof(ServeShardHead, rank) == 0 &&
                  offsetof(ServeShardHead, num_edges) == 8 &&
                  offsetof(ServeShardHead, num_vertices) == 16 &&
                  offsetof(ServeShardHead, num_replica_ids) == 24,
              "ServeShardHead wire layout drifted");
static_assert(sizeof(ServeConfigRecord) == 40 &&
                  offsetof(ServeConfigRecord, num_ranks) == 0 &&
                  offsetof(ServeConfigRecord, nproc) == 4 &&
                  offsetof(ServeConfigRecord, proc_index) == 8 &&
                  offsetof(ServeConfigRecord, epoch) == 12 &&
                  offsetof(ServeConfigRecord, num_vertices) == 16 &&
                  offsetof(ServeConfigRecord, stall_timeout_ms) == 24 &&
                  offsetof(ServeConfigRecord, num_faults) == 32,
              "ServeConfigRecord wire layout drifted");
static_assert(sizeof(ServeRequestRecord) == 32 &&
                  offsetof(ServeRequestRecord, req_id) == 0 &&
                  offsetof(ServeRequestRecord, algo) == 8 &&
                  offsetof(ServeRequestRecord, iterations) == 12 &&
                  offsetof(ServeRequestRecord, source) == 16 &&
                  offsetof(ServeRequestRecord, max_supersteps) == 24,
              "ServeRequestRecord wire layout drifted");
static_assert(sizeof(ServeCancelRecord) == 16 &&
                  offsetof(ServeCancelRecord, req_id) == 0 &&
                  offsetof(ServeCancelRecord, flags) == 8,
              "ServeCancelRecord wire layout drifted");
static_assert(sizeof(ServeResultHead) == 32 &&
                  offsetof(ServeResultHead, req_id) == 0 &&
                  offsetof(ServeResultHead, rank) == 8 &&
                  offsetof(ServeResultHead, status_code) == 12 &&
                  offsetof(ServeResultHead, num_values) == 16 &&
                  offsetof(ServeResultHead, supersteps) == 24,
              "ServeResultHead wire layout drifted");
static_assert(sizeof(ServeStatsRecord) == 64 &&
                  offsetof(ServeStatsRecord, req_id) == 0 &&
                  offsetof(ServeStatsRecord, supersteps) == 8 &&
                  offsetof(ServeStatsRecord, data_bytes) == 16 &&
                  offsetof(ServeStatsRecord, data_messages) == 24 &&
                  offsetof(ServeStatsRecord, control_bytes) == 32 &&
                  offsetof(ServeStatsRecord, wire_bytes) == 40 &&
                  offsetof(ServeStatsRecord, wire_frames) == 48 &&
                  offsetof(ServeStatsRecord, rss_bytes) == 56,
              "ServeStatsRecord wire layout drifted");
static_assert(sizeof(ServeParkedHead) == 16 &&
                  offsetof(ServeParkedHead, req_id) == 0 &&
                  offsetof(ServeParkedHead, superstep) == 8 &&
                  offsetof(ServeParkedHead, round_kind) == 12,
              "ServeParkedHead wire layout drifted");

}  // namespace dne

#endif  // DNE_RUNTIME_SERVE_MESSAGES_H_
