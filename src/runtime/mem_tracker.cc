#include "runtime/mem_tracker.h"

// Header-only; this TU anchors the type in the library.
namespace dne {}  // namespace dne
