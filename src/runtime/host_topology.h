// Host topology and filesystem probes used to resolve transport defaults:
// how many NUMA nodes the machine exposes (the shm transport defaults to
// one rank process per node) and whether a path lives on a local
// filesystem (shared-memory clusters must not checkpoint onto NFS-class
// mounts, where a rename is not an atomic commit and a recovering cluster
// may read a stale or torn file).
#ifndef DNE_RUNTIME_HOST_TOPOLOGY_H_
#define DNE_RUNTIME_HOST_TOPOLOGY_H_

#include <string>

namespace dne {

/// Number of NUMA nodes the kernel exposes under
/// /sys/devices/system/node/node<i>; 1 when the sysfs tree is absent
/// (non-Linux, containers with a masked /sys) or only node0 exists.
int CountNumaNodes();

/// True when the statfs magic identifies a network filesystem (NFS, SMB,
/// CIFS). Split out from PathOnLocalFilesystem so the classification is
/// unit-testable without mounting anything.
bool FilesystemMagicIsRemote(long magic);

/// True when `path` (or, for a not-yet-created path, its nearest existing
/// parent) sits on a local filesystem. Errs on the side of true: an
/// unstatable path is reported local rather than blocking the run.
bool PathOnLocalFilesystem(const std::string& path);

}  // namespace dne

#endif  // DNE_RUNTIME_HOST_TOPOLOGY_H_
