#include "runtime/shm_ring.h"

#include <sys/mman.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>
#else
#include <sched.h>
#endif

namespace dne {

namespace {

#if defined(__linux__)
// Raw futex on the shared doorbell words. syscall() directly: there is no
// glibc wrapper, and this file sits inside src/runtime/ — the one directory
// tools/dne_lint.py permits raw synchronisation primitives in.
long FutexWait(std::uint32_t* addr, std::uint32_t expected, int timeout_ms) {
  timespec ts;
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1000000L;
  return ::syscall(SYS_futex, addr, FUTEX_WAIT, expected, &ts, nullptr, 0);
}

void FutexWakeAll(std::uint32_t* addr) {
  ::syscall(SYS_futex, addr, FUTEX_WAKE, 0x7fffffff, nullptr, nullptr, 0);
}
#endif

}  // namespace

std::size_t ShmMesh::RingCapacityFor(int nproc) {
  const std::size_t rings =
      static_cast<std::size_t>(nproc) * static_cast<std::size_t>(nproc - 1);
  std::size_t budget = (256u << 20) / (rings == 0 ? 1 : rings);
  std::size_t cap = 1;
  while (cap * 2 <= budget) cap *= 2;
  return std::clamp<std::size_t>(cap, 64u << 10, 8u << 20);
}

Status ShmMesh::Create(int nproc, std::size_t ring_capacity,
                       std::unique_ptr<ShmMesh>* out) {
  if (nproc < 2) {
    return Status::InvalidArgument("shm mesh needs at least 2 processes");
  }
  if (ring_capacity == 0 || (ring_capacity & (ring_capacity - 1)) != 0) {
    return Status::InvalidArgument("shm ring capacity must be a power of two");
  }
  const std::size_t rings =
      static_cast<std::size_t>(nproc) * static_cast<std::size_t>(nproc - 1);
  const std::size_t stride = sizeof(ShmRingHdr) + ring_capacity;
  const std::size_t bytes =
      static_cast<std::size_t>(nproc) * sizeof(ShmProcState) + rings * stride;
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    return Status::Internal(std::string("mmap of shm mesh failed: ") +
                            std::strerror(errno));
  }
  // No memset: MAP_ANONYMOUS memory is zero-filled by the kernel, and
  // touching every ring page here would fault the whole region in before
  // a single frame needs it. Cursors, doorbells and waiter counts start
  // at their correct zero values for free; the fields below are the only
  // ones with nonzero initial state.
  auto mesh = std::unique_ptr<ShmMesh>(new ShmMesh(
      static_cast<unsigned char*>(base), bytes, nproc, ring_capacity));
  for (int p = 0; p < nproc; ++p) {
    mesh->proc_state(p)->alive = 1;
  }
  for (int i = 0; i < nproc; ++i) {
    for (int j = 0; j < nproc; ++j) {
      if (i == j) continue;
      ShmRingHdr* h = mesh->ring(i, j);
      h->capacity = ring_capacity;
      h->magic = kShmRingMagic;
    }
  }
  *out = std::move(mesh);
  return Status::OK();
}

ShmMesh::ShmMesh(unsigned char* base, std::size_t bytes, int nproc,
                 std::size_t ring_capacity)
    : base_(base),
      bytes_(bytes),
      nproc_(nproc),
      ring_capacity_(ring_capacity),
      ring_stride_(sizeof(ShmRingHdr) + ring_capacity) {}

ShmMesh::~ShmMesh() {
  if (base_ != nullptr) ::munmap(base_, bytes_);
}

ShmProcState* ShmMesh::proc_state(int p) const {
  return reinterpret_cast<ShmProcState*>(base_) + p;
}

unsigned char* ShmMesh::ring_base(int from, int to) const {
  return base_ + static_cast<std::size_t>(nproc_) * sizeof(ShmProcState) +
         RingIndex(from, to) * ring_stride_;
}

ShmRingHdr* ShmMesh::ring(int from, int to) const {
  return reinterpret_cast<ShmRingHdr*>(ring_base(from, to));
}

bool ShmMesh::alive(int p) const {
  return __atomic_load_n(&proc_state(p)->alive, __ATOMIC_ACQUIRE) != 0;
}

void ShmMesh::MarkDead(int p) {
  __atomic_store_n(&proc_state(p)->alive, 0u, __ATOMIC_RELEASE);
  // Ring every doorbell (p's included — a parked self is unwedged too) so
  // blocked peers rescan their rings and observe the death.
  for (int q = 0; q < nproc_; ++q) Notify(q);
}

std::uint32_t ShmMesh::PrepareWait(int p) const {
  return __atomic_load_n(&proc_state(p)->doorbell, __ATOMIC_ACQUIRE);
}

void ShmMesh::Wait(int p, std::uint32_t seen, int timeout_ms) {
  ShmProcState* st = proc_state(p);
  __atomic_fetch_add(&st->waiters, 1u, __ATOMIC_SEQ_CST);
  // Re-validate after announcing the park: a notify between the caller's
  // ring scan and here bumped the doorbell, and FUTEX_WAIT's in-kernel
  // compare turns that into an immediate EAGAIN instead of a lost wakeup.
  if (__atomic_load_n(&st->doorbell, __ATOMIC_SEQ_CST) == seen) {
#if defined(__linux__)
    FutexWait(&st->doorbell, seen, timeout_ms);
#else
    ::sched_yield();
    (void)timeout_ms;
#endif
  }
  __atomic_fetch_sub(&st->waiters, 1u, __ATOMIC_SEQ_CST);
}

void ShmMesh::Notify(int p) {
  ShmProcState* st = proc_state(p);
  __atomic_fetch_add(&st->doorbell, 1u, __ATOMIC_SEQ_CST);
  if (__atomic_load_n(&st->waiters, __ATOMIC_SEQ_CST) != 0) {
#if defined(__linux__)
    FutexWakeAll(&st->doorbell);
#endif
  }
}

std::size_t ShmMesh::WriteSome(int from, int to, const unsigned char* src,
                               std::size_t n) {
  ShmRingHdr* h = ring(from, to);
  unsigned char* data = ring_base(from, to) + sizeof(ShmRingHdr);
  const std::uint64_t head = __atomic_load_n(&h->head, __ATOMIC_RELAXED);
  const std::uint64_t tail = __atomic_load_n(&h->tail, __ATOMIC_ACQUIRE);
  const std::size_t free_bytes =
      ring_capacity_ - static_cast<std::size_t>(head - tail);
  const std::size_t w = std::min(n, free_bytes);
  if (w == 0) return 0;
  const std::size_t pos =
      static_cast<std::size_t>(head) & (ring_capacity_ - 1);
  const std::size_t first = std::min(w, ring_capacity_ - pos);
  std::memcpy(data + pos, src, first);
  if (w > first) std::memcpy(data, src + first, w - first);
  __atomic_store_n(&h->head, head + w, __ATOMIC_RELEASE);
  Notify(to);
  return w;
}

std::size_t ShmMesh::ReadSome(int from, int to, unsigned char* dst,
                              std::size_t n) {
  ShmRingHdr* h = ring(from, to);
  const unsigned char* data = ring_base(from, to) + sizeof(ShmRingHdr);
  const std::uint64_t tail = __atomic_load_n(&h->tail, __ATOMIC_RELAXED);
  const std::uint64_t head = __atomic_load_n(&h->head, __ATOMIC_ACQUIRE);
  const std::size_t avail = static_cast<std::size_t>(head - tail);
  const std::size_t r = std::min(n, avail);
  if (r == 0) return 0;
  const std::size_t pos =
      static_cast<std::size_t>(tail) & (ring_capacity_ - 1);
  const std::size_t first = std::min(r, ring_capacity_ - pos);
  std::memcpy(dst, data + pos, first);
  if (r > first) std::memcpy(dst + first, data, r - first);
  __atomic_store_n(&h->tail, tail + r, __ATOMIC_RELEASE);
  // Flow-control doorbell, rung only when this drain started from a full
  // ring: a producer parks only after WriteSome found no free space, so
  // any drain that can unblock it began at capacity — and the doorbell is
  // a counter, so a producer racing toward its park still observes the
  // bump in Wait's re-validation. Draining a non-full ring (the common
  // case) skips the peer wakeup entirely.
  if (avail == ring_capacity_) Notify(from);
  return r;
}

Status ShmBulk::Create(std::size_t bytes, std::unique_ptr<ShmBulk>* out) {
  if (bytes == 0) {
    return Status::InvalidArgument("shm bulk region must not be empty");
  }
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    return Status::Internal(std::string("mmap of shm bulk region failed: ") +
                            std::strerror(errno));
  }
  out->reset(new ShmBulk(static_cast<unsigned char*>(base), bytes));
  return Status::OK();
}

ShmBulk::~ShmBulk() {
  if (base_ != nullptr) ::munmap(base_, bytes_);
}

}  // namespace dne
