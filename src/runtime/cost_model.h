// Alpha-beta cost model turning counted work and bytes into simulated
// elapsed time. This is how the single-box reproduction recovers the *shape*
// of the paper's Fig. 10 scaling results (see DESIGN.md §1).
#ifndef DNE_RUNTIME_COST_MODEL_H_
#define DNE_RUNTIME_COST_MODEL_H_

#include <cstdint>
#include <vector>

namespace dne {

/// Machine constants of the simulated cluster. Defaults approximate the
/// paper's testbed class (2x12-core Xeon, InfiniBand EDR): ~1 ns per local
/// work unit, ~10 GB/s effective per-machine injection bandwidth, ~25 us
/// full-cluster barrier.
struct CostModelOptions {
  double ns_per_op = 1.0;
  double ns_per_byte = 0.1;
  double barrier_ns = 25000.0;
  /// Cores per machine (the paper's testbed: 2 x 12). Phases a rank executes
  /// "in parallel" (Alg. 3) divide their work across this many units;
  /// inherently serial phases (the expansion process's priority queue)
  /// charge full ops. See Theorem 3's per-unit complexity.
  int cores_per_machine = 24;
};

/// Accumulates per-rank work/bytes within a superstep; at the barrier, the
/// superstep's simulated duration is
///   max_r(work_r)*ns_per_op + max_r(bytes_r)*ns_per_byte + barrier_ns
/// (BSP critical path: the slowest rank gates everyone).
class CostModel {
 public:
  CostModel() : CostModel(CostModelOptions{}, 1) {}
  CostModel(const CostModelOptions& options, int num_ranks);

  void AddWork(int rank, std::uint64_t ops);
  void AddBytes(int rank, std::uint64_t bytes);

  /// Closes the current superstep and adds its critical path to SimSeconds.
  void EndSuperstep();

  double SimSeconds() const { return sim_ns_ * 1e-9; }
  std::uint64_t TotalWork() const { return total_work_; }

  /// Cumulative per-rank work: max/avg is the workload-balance metric (WB).
  const std::vector<std::uint64_t>& CumulativeWork() const {
    return cumulative_work_;
  }

  /// max(cumulative work) / mean(cumulative work); 1.0 when perfectly even.
  double WorkBalance() const;

 private:
  CostModelOptions options_;
  std::vector<std::uint64_t> step_work_;
  std::vector<std::uint64_t> step_bytes_;
  std::vector<std::uint64_t> cumulative_work_;
  std::uint64_t total_work_ = 0;
  double sim_ns_ = 0.0;
};

}  // namespace dne

#endif  // DNE_RUNTIME_COST_MODEL_H_
