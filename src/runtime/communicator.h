// Communicator: the pluggable transport under the DNE superstep loop.
//
// The loop is written against this interface only — every byte that crosses
// a simulated rank boundary (expansion requests, replica synchronisation,
// boundary reports, edge hand-off, the random-restart probes and the |E_p|
// all-gather) flows through a Communicator collective. Two backends exist:
//
//   * InProcessCommunicator — all ranks hosted in one address space; the
//     exchange is a deterministic in-memory concatenation (the persistent
//     AllToAll/inbox-arena machinery of the hot-path overhaul) and the
//     communication volume is *modeled*: sizeof(T) per cross-rank message,
//     charged to the CommLedger exactly like the pre-refactor driver.
//   * SocketCommunicator (runtime/process_cluster.h) — each endpoint lives
//     in a forked rank process; exchanges are length-prefixed, checksummed
//     frames over Unix-domain socket pairs and the charged volume is
//     *observed* (payload actually sent plus framing overhead).
//
// Ranks vs processes: the algorithm always runs |P| simulated ranks (one
// expansion + one allocation process per partition, as in the paper's
// Fig. 4). A Communicator endpoint hosts a subset of them (`local_ranks`);
// the in-process backend hosts all |P|, a rank process hosts the ranks
// mapped to it (rank % nproc). Traffic between co-hosted ranks never leaves
// the endpoint; the in-process backend still *charges* it when the ranks
// differ, because it models the fully distributed deployment.
#ifndef DNE_RUNTIME_COMMUNICATOR_H_
#define DNE_RUNTIME_COMMUNICATOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "partition/dne/dne_messages.h"
#include "runtime/serve_messages.h"
#include "runtime/sim_cluster.h"

namespace dne {

/// Message kinds on the wire. The data-plane kinds carry algorithm state and
/// are counted in CommStats (messages + payload bytes); the control kinds
/// (all-gather, barrier) are charged to the cost model only, mirroring how
/// the pre-refactor driver charged the |E_p| all-gather.
enum class DneMsgKind : std::uint8_t {
  kSelectRequest = 0,  ///< expansion request fan-out (Alg. 1 line 8)
  kSyncPair = 1,       ///< replica synchronisation (Alg. 2 line 3)
  kBoundaryReport = 2, ///< local D_rest reports (Alg. 2 lines 5-6)
  kEdgeHandoff = 3,    ///< allocated edges copied to their partition's rank
  kProbeRequest = 4,   ///< random-restart free-vertex probe (retired: the
                       ///< step-end peek table replaced the probe round)
  kProbeResponse = 5,  ///< probe answer: a free vertex or kNoVertex (retired)
  kAllGather = 6,      ///< control: per-rank u64 all-gather
  kBarrier = 7,        ///< control: empty synchronisation round
  kStepEnd = 8,        ///< fused end-of-superstep round (reports + handoff +
                       ///< step summaries in one coalesced frame per peer)
  kStepSummary = 9,    ///< control channel inside kStepEnd: per-rank
                       ///< StepSummaryRecord (free-vertex peek + handoff
                       ///< counts); also its own round when coalescing is off
  kServeSync = 10,     ///< serve data plane: replica-sync SyncValueRecord
                       ///< gather (mirrors -> masters)
  kServeStepEnd = 11,  ///< fused serve end-of-superstep round (scatter
                       ///< sync records + step summaries in one coalesced
                       ///< frame per peer)
  kServeSummary = 12,  ///< control channel inside kServeStepEnd: per-rank
                       ///< ServeStepSummary (frontier count + abort flags)
};

/// Accounting sink for everything the loop and the transport observe:
/// compute ops, message payloads, control traffic and wire overhead, plus
/// the BSP step boundaries. The in-process driver plugs a SimCluster-backed
/// ledger in (modeled charging, identical to the pre-refactor driver); a
/// rank process plugs in a tape that is shipped to the parent and replayed.
///
/// Thread safety: charges are *driver-thread-only*, like the collectives —
/// the superstep loop accumulates per-rank ops in rank-local state during
/// parallel phases and flushes them here sequentially in rank order, which
/// is also what keeps the charge stream (and thus every derived stat)
/// deterministic across thread counts.
class CommLedger {
 public:
  virtual ~CommLedger() = default;

  /// Local work units executed by `rank` in the current step.
  virtual void AddWork(int rank, std::uint64_t ops) = 0;

  /// One data-plane message sent by `from_rank` (payload bytes, excluding
  /// any framing). Counted in CommStats and the cost model.
  virtual void AddDataMessage(int from_rank, std::uint64_t payload_bytes) = 0;

  /// Control-plane traffic sent by `from_rank` (all-gather payloads).
  /// Charged to the cost model only.
  virtual void AddControlBytes(int from_rank, std::uint64_t bytes) = 0;

  /// Physical framing overhead observed by the real transport (frame
  /// headers + sub-block headers). Zero under modeled transports.
  virtual void AddWireOverhead(int from_rank, std::uint64_t bytes,
                               std::uint64_t frames) = 0;

  /// Ends a BSP phase (superstep-internal barrier; phases A/B/C).
  /// `selection` marks the vertex-selection phase for the critical-path
  /// split the paper reports in Sec. 7.4.
  virtual void EndPhase(bool selection) = 0;

  /// Ends the superstep (phase D + cluster barrier).
  virtual void EndSuperstep() = 0;
};

/// Typed mailboxes for one exchange: `out[l][to]` is what local rank slot
/// `l` (position in Communicator::local_ranks()) sends to rank `to`;
/// after the exchange `in[l]` holds everything addressed to that rank,
/// concatenated in ascending sender order (deterministic), with
/// `in_begin[l][from] .. in_begin[l][from+1]` delimiting each sender's
/// slice. All buffers retain capacity across exchanges — a persistent
/// RankMailboxes makes the four exchanges per superstep allocation-free in
/// steady state, like the AllToAll arenas it replaces.
template <typename T>
struct RankMailboxes {
  std::vector<std::vector<std::vector<T>>> out;
  std::vector<std::vector<T>> in;
  std::vector<std::vector<std::uint64_t>> in_begin;

  void Init(std::size_t num_local, int num_ranks) {
    out.resize(num_local);
    for (auto& boxes : out) boxes.resize(static_cast<std::size_t>(num_ranks));
    in.resize(num_local);
    in_begin.resize(num_local);
    for (auto& b : in_begin) {
      b.assign(static_cast<std::size_t>(num_ranks) + 1, 0);
    }
  }

  std::span<const T> InFrom(std::size_t l, int from) const {
    const std::uint64_t b = in_begin[l][from];
    const std::uint64_t e = in_begin[l][from + 1];
    return std::span<const T>(in[l].data() + b, e - b);
  }
};

/// The transport interface. One virtual Exchange per POD message type (the
/// kinds are a closed set); every call is a collective — all ranks reach it
/// in the same order, the BSP structure of the loop guarantees that.
///
/// Thread safety: collectives are *driver-thread-only*. One thread per
/// endpoint issues Exchange/AllGatherU64/Barrier; pool workers fill the
/// mailboxes' disjoint out-rows beforehand and the ParallelFor join
/// publishes those writes to the driver (see the RankMailboxes/AllToAll
/// phase contract). Implementations may therefore keep unsynchronised
/// per-endpoint scratch. SetLedger must happen-before the first collective.
class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int num_ranks() const = 0;
  /// Simulated ranks hosted by this endpoint, ascending.
  virtual const std::vector<int>& local_ranks() const = 0;
  /// Installs the accounting sink (owned by the caller, may be null).
  virtual void SetLedger(CommLedger* ledger) = 0;

  virtual Status Exchange(DneMsgKind kind, RankMailboxes<SelectRequest>* m) = 0;
  virtual Status Exchange(DneMsgKind kind, RankMailboxes<VertexPartPair>* m) = 0;
  virtual Status Exchange(DneMsgKind kind, RankMailboxes<BoundaryReport>* m) = 0;
  virtual Status Exchange(DneMsgKind kind, RankMailboxes<Edge>* m) = 0;
  virtual Status Exchange(DneMsgKind kind, RankMailboxes<VertexId>* m) = 0;

  /// Asynchronous replica-sync exchange: BeginExchange serialises and posts
  /// the sends; FinishExchange completes delivery into the in-boxes. Between
  /// the two calls the caller may run local compute that does not touch `m`
  /// (the transport may still be reading the out rows for co-hosted
  /// routing) — that is the comm/compute overlap of the superstep loop.
  /// FinishExchange is the completion barrier: after it returns, `in` /
  /// `in_begin` are fully assembled and `out` is cleared, exactly as if one
  /// synchronous Exchange had run. The default implementation degrades to
  /// synchronous: Begin does the whole exchange, Finish is a no-op.
  virtual Status BeginExchange(DneMsgKind kind,
                               RankMailboxes<VertexPartPair>* m) {
    return Exchange(kind, m);
  }
  virtual Status FinishExchange(DneMsgKind, RankMailboxes<VertexPartPair>*) {
    return Status::OK();
  }

  /// Fused end-of-superstep collective — one round that carries three
  /// logical channels: boundary reports, the edge hand-off, and a per-rank
  /// StepSummaryRecord (next free-vertex peek + per-partition hand-off
  /// counts). Both mailboxes are exchanged exactly as two separate Exchange
  /// calls would; additionally, on return:
  ///   * `all_peeks` (size num_ranks, identical on every endpoint) holds
  ///     every rank's peek — next superstep's random-restart table, which
  ///     replaces the probe request/response rounds;
  ///   * `handoff_totals` (size num_ranks, identical everywhere) holds the
  ///     number of hand-off records addressed to each rank, summed over all
  ///     senders including the rank itself — the |E_p| growth that replaces
  ///     the separate all-gather.
  /// `local_peeks[l]` is the contribution of local rank slot `l`. Summaries
  /// are charged as control traffic; the mailboxes as data.
  virtual Status ExchangeStepEnd(RankMailboxes<BoundaryReport>* reports,
                                 RankMailboxes<Edge>* handoff,
                                 const std::vector<std::uint64_t>& local_peeks,
                                 std::vector<std::uint64_t>* all_peeks,
                                 std::vector<std::uint64_t>* handoff_totals) = 0;

  /// Serve data-plane exchange (replica synchronisation). Default-implemented
  /// so transports that predate serving (and test fakes) stay source
  /// compatible; the two shipped backends override it.
  virtual Status Exchange(DneMsgKind kind, RankMailboxes<SyncValueRecord>* m) {
    (void)kind;
    (void)m;
    return Status::NotSupported("serve exchange: transport does not serve");
  }

  /// Fused serve end-of-superstep collective — one round carrying two
  /// logical channels: the masters->mirrors scatter of sync records, and a
  /// per-rank ServeStepSummary (frontier count + cooperative abort flags).
  /// The mailboxes are exchanged exactly as one Exchange(kServeSync) call
  /// would; on return `*all` (size num_ranks, identical on every endpoint)
  /// holds every rank's summary, so termination and abort decisions are
  /// taken identically everywhere. Summaries are charged as control traffic;
  /// the mailboxes as data.
  virtual Status ExchangeServeStep(RankMailboxes<SyncValueRecord>* sync,
                                   const std::vector<ServeStepSummary>& local,
                                   std::vector<ServeStepSummary>* all) {
    (void)sync;
    (void)local;
    (void)all;
    return Status::NotSupported("serve step-end: transport does not serve");
  }

  /// All-gather of one u64 per rank: `local_vals[l]` is the contribution of
  /// local rank slot `l`; on return `*all` (size num_ranks, identical on
  /// every endpoint) holds every rank's value. Charged as control traffic —
  /// 8 bytes to each other rank under the modeled transport, the observed
  /// frames under the real one.
  virtual Status AllGatherU64(const std::vector<std::uint64_t>& local_vals,
                              std::vector<std::uint64_t>* all) = 0;

  /// Full synchronisation barrier (no payload). The exchanges are already
  /// synchronising; the loop uses this once, after termination, so every
  /// rank's final accounting is complete before results are collected.
  virtual Status Barrier() = 0;
};

/// All ranks in one address space; deterministic in-memory routing with
/// modeled charging (sizeof(T) per cross-rank message, self-traffic free).
class InProcessCommunicator final : public Communicator {
 public:
  explicit InProcessCommunicator(int num_ranks);

  int num_ranks() const override { return num_ranks_; }
  const std::vector<int>& local_ranks() const override { return local_; }
  void SetLedger(CommLedger* ledger) override { ledger_ = ledger; }

  Status Exchange(DneMsgKind k, RankMailboxes<SelectRequest>* m) override;
  Status Exchange(DneMsgKind k, RankMailboxes<VertexPartPair>* m) override;
  Status Exchange(DneMsgKind k, RankMailboxes<BoundaryReport>* m) override;
  Status Exchange(DneMsgKind k, RankMailboxes<Edge>* m) override;
  Status Exchange(DneMsgKind k, RankMailboxes<VertexId>* m) override;
  Status Exchange(DneMsgKind k, RankMailboxes<SyncValueRecord>* m) override;
  Status ExchangeServeStep(RankMailboxes<SyncValueRecord>* sync,
                           const std::vector<ServeStepSummary>& local,
                           std::vector<ServeStepSummary>* all) override;
  Status ExchangeStepEnd(RankMailboxes<BoundaryReport>* reports,
                         RankMailboxes<Edge>* handoff,
                         const std::vector<std::uint64_t>& local_peeks,
                         std::vector<std::uint64_t>* all_peeks,
                         std::vector<std::uint64_t>* handoff_totals) override;
  Status AllGatherU64(const std::vector<std::uint64_t>& local_vals,
                      std::vector<std::uint64_t>* all) override;
  Status Barrier() override { return Status::OK(); }

 private:
  template <typename T>
  Status ExchangeImpl(RankMailboxes<T>* m);

  int num_ranks_;
  std::vector<int> local_;
  CommLedger* ledger_ = nullptr;
};

/// SimCluster-backed ledger: reproduces the pre-refactor driver's charging
/// bit for bit (CommStats message/byte counters, CostModel work/bytes and
/// superstep boundaries) and tracks the per-phase critical path that feeds
/// DneStats::selection_work_fraction.
class SimClusterLedger final : public CommLedger {
 public:
  explicit SimClusterLedger(SimCluster* cluster);

  void AddWork(int rank, std::uint64_t ops) override;
  void AddDataMessage(int from_rank, std::uint64_t payload_bytes) override;
  void AddControlBytes(int from_rank, std::uint64_t bytes) override;
  void AddWireOverhead(int from_rank, std::uint64_t bytes,
                       std::uint64_t frames) override;
  void EndPhase(bool selection) override;
  void EndSuperstep() override;

  /// Aggregated replay entry points for the process transport: the parent
  /// feeds each rank's tape row through these so the derived stats come out
  /// of the same machinery.
  void AddDataAggregate(int from_rank, std::uint64_t bytes,
                        std::uint64_t messages);

  std::uint64_t selection_critical_ops() const {
    return selection_critical_ops_;
  }
  std::uint64_t total_critical_ops() const { return total_critical_ops_; }
  std::uint64_t wire_bytes() const { return wire_bytes_; }
  std::uint64_t wire_frames() const { return wire_frames_; }

 private:
  void ClosePhase(bool selection);

  SimCluster* cluster_;
  std::vector<std::uint64_t> phase_ops_;
  std::uint64_t selection_critical_ops_ = 0;
  std::uint64_t total_critical_ops_ = 0;
  std::uint64_t wire_bytes_ = 0;
  std::uint64_t wire_frames_ = 0;
};

/// Tape ledger for a rank process: accumulates one row per (BSP step, local
/// rank) — work, data payload bytes/messages, control bytes, wire overhead —
/// for replay on the parent after the run.
class TapeLedger final : public CommLedger {
 public:
  struct StepRow {
    std::uint64_t work = 0;
    std::uint64_t data_bytes = 0;
    std::uint64_t data_messages = 0;
    std::uint64_t control_bytes = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t wire_frames = 0;
  };
  /// One step: `selection` + one row per local rank (local_ranks order).
  struct Step {
    bool selection = false;
    bool superstep_end = false;
    std::vector<StepRow> rows;
  };

  explicit TapeLedger(std::vector<int> local_ranks);

  void AddWork(int rank, std::uint64_t ops) override;
  void AddDataMessage(int from_rank, std::uint64_t payload_bytes) override;
  void AddControlBytes(int from_rank, std::uint64_t bytes) override;
  void AddWireOverhead(int from_rank, std::uint64_t bytes,
                       std::uint64_t frames) override;
  void EndPhase(bool selection) override;
  void EndSuperstep() override;

  const std::vector<Step>& steps() const { return steps_; }

  /// Checkpoint restore: replaces the closed-step history with the tape
  /// recorded up to the checkpointed superstep, so the end-of-run stats
  /// frame replays the whole run — not just the post-recovery tail — and
  /// ledger totals match a fault-free execution. In-flight (unclosed)
  /// charges are untouched; the resumed loop accrues them as usual.
  void RestoreSteps(std::vector<Step> steps) { steps_ = std::move(steps); }

 private:
  StepRow& Row(int rank);
  void CloseStep(bool selection, bool superstep_end);

  std::vector<int> local_ranks_;
  std::vector<StepRow> current_;
  std::vector<Step> steps_;
};

}  // namespace dne

#endif  // DNE_RUNTIME_COMMUNICATOR_H_
