// ThreadPool + ParallelFor: intra-machine parallelism for the allocation
// phases (the paper's Alg. 3 "do in parallel" loops run on all cores of a
// machine; Theorem 3 gives the per-core complexity).
#ifndef DNE_RUNTIME_THREAD_POOL_H_
#define DNE_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace dne {

/// Upper bound accepted by every user-facing thread-count knob (CLI flags
/// and partitioner options). A fixed pool beyond this is a misconfiguration
/// on any host this project targets; keeping the constant here makes the
/// CLI and the option schemas agree by construction.
inline constexpr int kMaxPoolThreads = 256;

/// A fixed-size pool executing index-range tasks. With num_threads <= 1 all
/// work runs inline on the caller (the default on single-core hosts), so
/// results are bit-identical with and without threads as long as tasks are
/// independent per index — which is how the DNE driver uses it (one
/// simulated rank per index, no shared mutable state across ranks).
///
/// Concurrency contract (machine-checked by the DNE_GUARDED_BY annotations,
/// exercised under TSan by tests/tsan_stress_test.cc):
///   * Submit() may be called from any thread, concurrently with other
///     Submit() calls and with an in-flight ParallelFor().
///   * ParallelFor() is a *driver-side* primitive: at most one call may be
///     in flight at a time (concurrent callers would stomp the shared job
///     slot). The DNE driver and the stream harness both satisfy this by
///     construction — one orchestrating thread.
///   * The destructor drains queued Submit tasks before joining, so every
///     future handed out is eventually satisfied; it must not race with new
///     Submit()/ParallelFor() calls (owner destroys last, as usual).
///
/// Memory ordering: all cross-thread publication goes through mu_ — the
/// closure state read by workers inside fn is written by the driver before
/// the mutex-protected job hand-off and read back after the mutex-protected
/// completion hand-shake, so plain (non-atomic) captures are safe on both
/// sides. The pool itself uses no relaxed atomics.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n), distributing indices over the pool
  /// plus the calling thread; returns when all calls completed.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn)
      DNE_EXCLUDES(mu_);

  /// Schedules fn on a pool worker and returns a future that completes when
  /// it has run — the primitive behind double-buffered chunk read-ahead
  /// (fetch the next chunk while the consumer works on the current one).
  /// With num_threads <= 1 fn runs inline before returning, degenerating to
  /// a sequential fetch. Tasks coexist with ParallelFor: a worker busy on a
  /// task simply does not participate in an ongoing ParallelFor.
  std::future<void> Submit(std::function<void()> fn) DNE_EXCLUDES(mu_);

 private:
  void WorkerLoop() DNE_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  // condition_variable_any so the waits run against the annotated Mutex
  // (BasicLockable) and every surrounding access stays analysed.
  std::condition_variable_any work_ready_;
  std::condition_variable_any work_done_;
  std::deque<std::packaged_task<void()>> tasks_ DNE_GUARDED_BY(mu_);
  const std::function<void(std::size_t)>* job_ DNE_GUARDED_BY(mu_) = nullptr;
  std::size_t job_size_ DNE_GUARDED_BY(mu_) = 0;
  std::size_t next_index_ DNE_GUARDED_BY(mu_) = 0;
  std::size_t completed_ DNE_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ DNE_GUARDED_BY(mu_) = 0;
  bool shutdown_ DNE_GUARDED_BY(mu_) = false;
};

}  // namespace dne

#endif  // DNE_RUNTIME_THREAD_POOL_H_
