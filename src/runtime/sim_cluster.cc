#include "runtime/sim_cluster.h"

// Header-only templates; this TU anchors the component in the library.
namespace dne {}  // namespace dne
