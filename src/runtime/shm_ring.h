// Shared-memory mesh for same-host rank processes: one mmap'd MAP_SHARED
// region created by the parent before fork, holding a single-producer/
// single-consumer byte ring per ordered process pair plus one doorbell +
// liveness word per process. The ShmCommunicator (runtime/process_cluster.h)
// moves the exact same 32-byte checksummed frames (runtime/wire.h) through
// these rings that the socket mesh moves through socketpairs — eliminating
// the per-round sendmsg/poll syscalls and one kernel copy — so dne_lint's
// wire-pod rules and the `fault=` flip/drop injection grammar apply
// unchanged.
//
// Ring protocol (classic SPSC byte stream):
//   * `head` is the producer's write cursor, `tail` the consumer's read
//     cursor; both are free-running 64-bit byte counts (position = cursor
//     mod capacity, capacity is a power of two). head - tail bytes are
//     readable; capacity - (head - tail) bytes are writable.
//   * The producer publishes data with a release store of `head`; the
//     consumer frees space with a release store of `tail`. Each side owns
//     its cursor exclusively — no CAS, no seqlock retries on the data path.
//   * Frames larger than the ring stream through incrementally, exactly
//     like a socket with a full send buffer.
//
// Doorbell protocol (eventcount): a waiter loads its own doorbell
// (PrepareWait), rescans every ring, and only if nothing moved parks on the
// doorbell word via futex — re-validating that the doorbell still equals
// the captured value, so a notification between scan and sleep is never
// lost. Notifiers bump the doorbell and issue the futex wake only when the
// `waiters` count says someone may be parked (the busy-path notify is a
// single uncontended atomic add).
//
// Failure model: shared memory has no EOF. The parent's monitor reaps a
// dead child within its ~100ms poll cadence and calls MarkDead, which
// clears the child's `alive` word and rings every doorbell; a peer blocked
// on that process then observes ring-empty + !alive and fails the round
// with the same recoverable "disconnected mid-superstep" diagnostic the
// socket mesh derives from EOF. The mesh-round stall deadline remains the
// backstop for a wedged-but-alive peer.
#ifndef DNE_RUNTIME_SHM_RING_H_
#define DNE_RUNTIME_SHM_RING_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "common/status.h"

namespace dne {

/// Per-ring control block, one cache line per cursor so the producer's
/// head stores never bounce the consumer's tail line (and vice versa).
/// Lives in shared memory — layout frozen, explicit-width fields only,
/// accessed exclusively through __atomic builtins.
struct ShmRingHdr {
  std::uint64_t head;      ///< producer write cursor (free-running bytes)
  std::uint8_t pad0[56];
  std::uint64_t tail;      ///< consumer read cursor (free-running bytes)
  std::uint8_t pad1[56];
  std::uint64_t capacity;  ///< data bytes that follow; power of two
  std::uint64_t magic;     ///< kShmRingMagic, checked on attach
  std::uint8_t pad2[48];
};
static_assert(std::is_trivially_copyable_v<ShmRingHdr>,
              "ShmRingHdr lives in shared memory");
static_assert(sizeof(ShmRingHdr) == 192 && offsetof(ShmRingHdr, head) == 0 &&
                  offsetof(ShmRingHdr, tail) == 64 &&
                  offsetof(ShmRingHdr, capacity) == 128 &&
                  offsetof(ShmRingHdr, magic) == 136,
              "ShmRingHdr shared-memory layout drifted");

/// Per-process control block: the futex doorbell its peers ring, the
/// liveness word the parent clears on death, and the parked-waiter count
/// that gates the wake syscall. One cache line per process.
struct ShmProcState {
  std::uint32_t doorbell;  ///< eventcount word; futex-waited on
  std::uint32_t alive;     ///< 1 while the process may touch its rings
  std::uint32_t waiters;   ///< processes parked on `doorbell` right now
  std::uint8_t pad[52];
};
static_assert(std::is_trivially_copyable_v<ShmProcState>,
              "ShmProcState lives in shared memory");
static_assert(sizeof(ShmProcState) == 64 &&
                  offsetof(ShmProcState, doorbell) == 0 &&
                  offsetof(ShmProcState, alive) == 4 &&
                  offsetof(ShmProcState, waiters) == 8,
              "ShmProcState shared-memory layout drifted");

inline constexpr std::uint64_t kShmRingMagic = 0x444e453153484d52ULL;  // "DNE1SHMR"

/// The whole-mesh mapping: created by the parent before fork (MAP_SHARED |
/// MAP_ANONYMOUS, so the children inherit the same physical pages), then
/// borrowed by each child's ShmCommunicator through the forked copy of the
/// owning ProcessCluster.
///
/// Thread safety: the cursor/doorbell words are cross-process atomics; each
/// ring is written by exactly one process and read by exactly one other.
/// Within a process, confine a given (from, to) direction to one thread —
/// the rank superstep loop already does.
class ShmMesh {
 public:
  /// Maps the region and initialises every ring header and process state
  /// (alive = 1). `ring_capacity` must be a power of two.
  static Status Create(int nproc, std::size_t ring_capacity,
                       std::unique_ptr<ShmMesh>* out);
  ~ShmMesh();

  ShmMesh(const ShmMesh&) = delete;
  ShmMesh& operator=(const ShmMesh&) = delete;

  /// Per-ring data capacity for an nproc-process mesh: a ~256 MB total
  /// budget split over the nproc*(nproc-1) rings, rounded down to a power
  /// of two and clamped to [64 KB, 8 MB]. Frames larger than the ring
  /// stream through incrementally, so the clamp bounds memory, not frame
  /// size.
  static std::size_t RingCapacityFor(int nproc);

  int nproc() const { return nproc_; }
  std::size_t ring_capacity() const { return ring_capacity_; }
  std::size_t total_bytes() const { return bytes_; }

  ShmProcState* proc_state(int p) const;
  ShmRingHdr* ring(int from, int to) const;

  /// True while process p has not been marked dead.
  bool alive(int p) const;
  /// Parent-side death hook (also used by a parking child on itself):
  /// clears p's alive word and rings every doorbell so blocked peers
  /// rescan and observe the death.
  void MarkDead(int p);

  /// Eventcount: capture p's doorbell before scanning the rings...
  std::uint32_t PrepareWait(int p) const;
  /// ...and park on it only if it still equals `seen` (bounded by
  /// `timeout_ms`). Spurious wakeups are fine — the caller rescans.
  void Wait(int p, std::uint32_t seen, int timeout_ms);
  /// Rings p's doorbell; issues the futex wake only if p may be parked.
  void Notify(int p);

  /// SPSC byte-stream push: copies up to n bytes of src into the
  /// (from -> to) ring, returns the bytes accepted (0 when full) and rings
  /// `to`'s doorbell when anything moved.
  std::size_t WriteSome(int from, int to, const unsigned char* src,
                        std::size_t n);
  /// SPSC byte-stream pull: copies up to n readable bytes into dst and
  /// returns the bytes delivered (0 when empty). `from`'s doorbell rings
  /// only when the drain started from a full ring — the one state in which
  /// the producer can be parked waiting for space.
  std::size_t ReadSome(int from, int to, unsigned char* dst, std::size_t n);

 private:
  ShmMesh(unsigned char* base, std::size_t bytes, int nproc,
          std::size_t ring_capacity);

  /// Rings are stored densely over ordered pairs (from != to).
  std::size_t RingIndex(int from, int to) const {
    return static_cast<std::size_t>(from) *
               static_cast<std::size_t>(nproc_ - 1) +
           static_cast<std::size_t>(to < from ? to : to - 1);
  }
  unsigned char* ring_base(int from, int to) const;

  unsigned char* base_;
  std::size_t bytes_;
  int nproc_;
  std::size_t ring_capacity_;
  std::size_t ring_stride_;  ///< sizeof(ShmRingHdr) + ring_capacity_
};

/// A one-shot pre-fork MAP_SHARED scratch region for same-host bulk
/// handoff. The parent maps it, fills it completely, and only then forks —
/// the fork is the synchronisation point, so readers in the children need
/// no atomics and no protocol: the bytes are simply there, in the same
/// physical pages, at the same address. The shm transport uses one to lay
/// out every rank's 2-D shard, replacing the per-edge round trip through
/// the control socketpair with in-place parsing.
class ShmBulk {
 public:
  /// Maps `bytes` of zeroed MAP_SHARED | MAP_ANONYMOUS memory.
  static Status Create(std::size_t bytes, std::unique_ptr<ShmBulk>* out);
  ~ShmBulk();

  ShmBulk(const ShmBulk&) = delete;
  ShmBulk& operator=(const ShmBulk&) = delete;

  unsigned char* data() const { return base_; }
  std::size_t bytes() const { return bytes_; }

 private:
  ShmBulk(unsigned char* base, std::size_t bytes)
      : base_(base), bytes_(bytes) {}

  unsigned char* base_;
  std::size_t bytes_;
};

}  // namespace dne

#endif  // DNE_RUNTIME_SHM_RING_H_
