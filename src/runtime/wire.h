// Wire format + socket helpers for the multi-process transport.
//
// Every message between processes — mesh exchanges between rank processes
// and the parent<->child control channel — is one *frame*:
//
//   header (32 bytes, little-endian):
//     u32 magic      'DNE1' (0x31454e44)
//     u8  kind       DneMsgKind / control kind
//     u8  reserved[3]
//     u32 from       sending process index (or rank, on control channels)
//     u64 payload_len
//     u64 checksum   FrameChecksum (word-at-a-time FNV-style) of the payload
//   payload (payload_len bytes)
//
// Exchange frames batch all (from_rank -> to_rank) sub-messages between two
// processes into one payload; each sub-block is
//     u32 from_rank, u32 to_rank, u64 byte_len,  then byte_len bytes.
//
// Coalesced multi-channel frames (DneMsgKind::kStepEnd) go further and fuse
// several logical exchanges into ONE frame per peer per superstep — one
// header, one checksum over everything. Their payload starts with a
// sub-message directory:
//     u64 num_channels, then num_channels ChannelDir entries
//     {u8 kind, u64 byte_len}, then the channel bodies back to back in
//     directory order.
// Data channels keep the sub-block format above; control channels carry
// their own record sequences (see StepSummaryRecord in dne_messages.h).
//
// The checksum is verified on receipt; a mismatch, a short read (peer died)
// or an unexpected kind surfaces as Status::Internal with the peer named —
// never a hang: a crashed peer closes its socket ends, which every poll
// loop treats as a fatal protocol event.
#ifndef DNE_RUNTIME_WIRE_H_
#define DNE_RUNTIME_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace dne {
namespace wire {

inline constexpr std::uint32_t kMagic = 0x31454e44;  // "DNE1"
inline constexpr std::size_t kFrameHeaderBytes = 32;
inline constexpr std::size_t kSubBlockHeaderBytes = 16;
/// Sanity bound on one frame's payload (guards a corrupted length field
/// before any allocation happens).
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 32;

/// FNV-1a 64 over a byte range (the same construction the binary graph
/// format uses for its file checksum).
inline std::uint64_t Fnv1a64(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Frame checksum: FNV-style multiply-xor mixing eight bytes per step with
/// an avalanche shift, seeded with the length. The process transport
/// checksums every payload byte twice (once to send, once to verify) —
/// byte-serial FNV-1a was a measurable share of superstep wall time, this
/// runs ~5x faster at the same 64-bit corruption-detection strength. The
/// value never leaves the socket pair (both ends are the same binary), so
/// it is free to differ from the graph-file checksum, which stays true
/// FNV-1a for on-disk compatibility.
inline std::uint64_t FrameChecksum(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull ^ (len * 1099511628211ull);
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    h ^= w;
    h *= 1099511628211ull;
    h ^= h >> 29;
  }
  if (i < len) {
    std::uint64_t tail = 0;
    for (std::size_t j = 0; i + j < len; ++j) {
      tail |= static_cast<std::uint64_t>(p[i + j]) << (8 * j);
    }
    h ^= tail;
    h *= 1099511628211ull;
    h ^= h >> 29;
  }
  return h;
}

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint8_t kind = 0;
  std::uint32_t from = 0;
  std::uint64_t payload_len = 0;
  std::uint64_t checksum = 0;
};

// The header is encoded field-by-field (EncodeHeader), not memcpy'd whole,
// but each field IS memcpy'd at a fixed offset — freeze the field widths and
// the frame constants so a type edit here cannot silently change the wire
// format under the checksum.
static_assert(std::is_trivially_copyable_v<FrameHeader>,
              "FrameHeader fields are memcpy'd into frames");
static_assert(sizeof(FrameHeader::magic) == 4 &&
                  sizeof(FrameHeader::kind) == 1 &&
                  sizeof(FrameHeader::from) == 4 &&
                  sizeof(FrameHeader::payload_len) == 8 &&
                  sizeof(FrameHeader::checksum) == 8,
              "frame header field widths are part of the wire format");
static_assert(kFrameHeaderBytes == 32 && kSubBlockHeaderBytes == 16,
              "frame geometry is part of the wire format");

/// Directory entry of a coalesced multi-channel frame: which logical
/// exchange the channel carries (a DneMsgKind value) and how many payload
/// bytes it spans. The single frame checksum covers the directory and every
/// channel body, so corruption anywhere in any sub-message is detected.
struct ChannelDir {
  std::uint8_t kind = 0;
  std::uint8_t pad[7] = {0, 0, 0, 0, 0, 0, 0};
  std::uint64_t byte_len = 0;
};
static_assert(std::is_trivially_copyable_v<ChannelDir>,
              "ChannelDir entries are memcpy'd into frame payloads");
static_assert(sizeof(ChannelDir) == 16 && offsetof(ChannelDir, kind) == 0 &&
                  offsetof(ChannelDir, byte_len) == 8,
              "ChannelDir wire layout drifted");
inline constexpr std::size_t kChannelDirBytes = sizeof(ChannelDir);

/// Bytes the directory of an n-channel frame occupies (count word plus one
/// ChannelDir per channel) — the framing overhead a coalesced frame adds on
/// top of its single 32-byte header.
inline constexpr std::size_t ChannelDirectoryBytes(std::size_t n) {
  return sizeof(std::uint64_t) + n * kChannelDirBytes;
}

/// Serialises the header into exactly kFrameHeaderBytes.
void EncodeHeader(const FrameHeader& h, unsigned char out[kFrameHeaderBytes]);

/// Parses + validates magic and the payload-length bound.
Status DecodeHeader(const unsigned char in[kFrameHeaderBytes],
                    FrameHeader* out);

/// Appends a POD value to a byte buffer (sub-block headers, config records).
template <typename T>
void AppendPod(std::vector<unsigned char>* buf, const T& v) {
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  buf->insert(buf->end(), p, p + sizeof(T));
}

/// Bounds-checked POD reader over a received payload.
class PayloadReader {
 public:
  PayloadReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* out) {
    if (pos_ + sizeof(T) > size_) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadBytes(void* out, std::size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const unsigned char* cursor() const { return data_ + pos_; }
  bool Skip(std::size_t n) {
    if (pos_ + n > size_) return false;
    pos_ += n;
    return true;
  }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Blocking send of a whole buffer (MSG_NOSIGNAL, EINTR-safe). Fails with
/// Status::Internal when the peer is gone.
Status SendAll(int fd, const void* data, std::size_t len,
               const std::string& peer);

/// Blocking receive of exactly `len` bytes. A clean EOF mid-message is a
/// protocol failure (peer died) and is reported as such.
Status RecvAll(int fd, void* data, std::size_t len, const std::string& peer);

/// Sends one frame (header + payload) over a blocking fd.
Status SendFrame(int fd, std::uint8_t kind, std::uint32_t from,
                 const unsigned char* payload, std::size_t payload_len,
                 const std::string& peer);

/// Receives one frame over a blocking fd, verifying the checksum.
Status RecvFrame(int fd, FrameHeader* header,
                 std::vector<unsigned char>* payload, const std::string& peer);

}  // namespace wire
}  // namespace dne

#endif  // DNE_RUNTIME_WIRE_H_
