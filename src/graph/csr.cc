#include "graph/csr.h"

#include "graph/edge_list.h"

namespace dne {

Csr Csr::Build(const EdgeList& list) {
  Csr csr;
  const VertexId n = list.NumVertices();
  const auto& edges = list.edges();
  csr.num_edges_ = edges.size();
  csr.offsets_.assign(n + 1, 0);

  for (const Edge& e : edges) {
    ++csr.offsets_[e.src + 1];
    ++csr.offsets_[e.dst + 1];
  }
  for (VertexId v = 0; v < n; ++v) csr.offsets_[v + 1] += csr.offsets_[v];

  csr.adj_.resize(2 * edges.size());
  std::vector<std::uint64_t> cursor(csr.offsets_.begin(),
                                    csr.offsets_.end() - 1);
  for (EdgeId i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    csr.adj_[cursor[e.src]++] = Adjacency{e.dst, i};
    csr.adj_[cursor[e.dst]++] = Adjacency{e.src, i};
  }
  return csr;
}

}  // namespace dne
