// Out-of-core edge ingestion: an EdgeStreamReader hands a graph's edges to
// the consumer in bounded chunks, so partitioning a trillion-edge input
// never requires the full edge list in memory. Three backends exist — a
// chunked text reader (SNAP "u v" lines), a chunked binary reader (the
// checksummed v2 edge-file format of graph/graph_io.h), and the in-memory
// VectorEdgeStream used by tests and adapters. The generator-backed stream
// lives in gen/generator_stream.h behind the same interface.
//
//   std::unique_ptr<EdgeStreamReader> reader;
//   DNE_RETURN_IF_ERROR(OpenEdgeStream(path, "auto", 1 << 20, &reader));
//   std::vector<Edge> chunk;
//   for (;;) {
//     DNE_RETURN_IF_ERROR(reader->NextChunk(&chunk));
//     if (chunk.empty()) break;  // end of stream
//     Consume(chunk);
//   }
#ifndef DNE_GRAPH_EDGE_STREAM_READER_H_
#define DNE_GRAPH_EDGE_STREAM_READER_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/graph_io.h"

namespace dne {

/// A resettable, chunk-at-a-time source of raw edges (self-loops and
/// duplicates allowed, exactly as the batch loaders deliver them).
class EdgeStreamReader {
 public:
  virtual ~EdgeStreamReader() = default;

  /// Fills *out with the next chunk, at most the reader's configured chunk
  /// size. An empty *out signals a clean end of stream; every subsequent
  /// call keeps returning an empty chunk. The vector's capacity is reused
  /// across calls, so a steady-state stream performs no allocation.
  virtual Status NextChunk(std::vector<Edge>* out) = 0;

  /// Rewinds to the first chunk. Multi-pass consumers (e.g. shard spilling
  /// after the assignment is known) depend on the replayed stream being
  /// identical to the first pass.
  virtual Status Reset() = 0;

  /// Total number of edges, when known upfront (binary header, generators);
  /// 0 means unknown (text files).
  virtual std::uint64_t EdgeCountHint() const { return 0; }

  /// Vertex-universe size, when known upfront; 0 means unknown.
  virtual std::uint64_t NumVerticesHint() const { return 0; }
};

/// Chunked reader over a whitespace-separated "u v" text edge list (SNAP
/// format; '#'/'%' comment lines and blank lines are skipped). Malformed
/// lines fail the chunk that contains them with the 1-based line number.
class TextEdgeStreamReader final : public EdgeStreamReader {
 public:
  /// Fails on an unreadable or zero-byte file or chunk_edges == 0.
  static Status Open(const std::string& path, std::size_t chunk_edges,
                     std::unique_ptr<TextEdgeStreamReader>* out);

  Status NextChunk(std::vector<Edge>* out) override;
  Status Reset() override;

 private:
  TextEdgeStreamReader(std::string path, std::size_t chunk_edges)
      : path_(std::move(path)), chunk_edges_(chunk_edges) {}

  std::string path_;
  std::size_t chunk_edges_;
  std::ifstream in_;
  std::string line_;
  std::uint64_t lineno_ = 0;
  bool done_ = false;
};

/// Chunked reader over the binary edge-file format of graph/graph_io.h.
/// Understands both the checksummed v2 layout (verified incrementally and
/// checked against the header when the last chunk is delivered) and the
/// legacy v1 layout (no checksum). The header is validated against the file
/// size at Open, so truncation is reported before any chunk is read.
class BinaryEdgeStreamReader final : public EdgeStreamReader {
 public:
  static Status Open(const std::string& path, std::size_t chunk_edges,
                     std::unique_ptr<BinaryEdgeStreamReader>* out);

  Status NextChunk(std::vector<Edge>* out) override;
  Status Reset() override;
  std::uint64_t EdgeCountHint() const override { return num_edges_; }
  std::uint64_t NumVerticesHint() const override { return num_vertices_; }

 private:
  BinaryEdgeStreamReader(std::string path, std::size_t chunk_edges)
      : path_(std::move(path)), chunk_edges_(chunk_edges) {}

  Status OpenAndReadHeader();

  std::string path_;
  std::size_t chunk_edges_;
  std::ifstream in_;
  std::uint64_t num_vertices_ = 0;
  std::uint64_t num_edges_ = 0;
  std::uint64_t remaining_ = 0;
  std::uint64_t expected_checksum_ = 0;
  bool has_checksum_ = false;
  EdgeChecksum checksum_;
};

/// In-memory stream over an owned edge vector — the reference backend for
/// differential tests and for chunk-driving partitioners from an EdgeList.
class VectorEdgeStream final : public EdgeStreamReader {
 public:
  /// chunk_edges == 0 is rounded up to 1.
  VectorEdgeStream(std::vector<Edge> edges, std::size_t chunk_edges,
                   std::uint64_t num_vertices_hint = 0)
      : edges_(std::move(edges)),
        chunk_edges_(chunk_edges == 0 ? 1 : chunk_edges),
        num_vertices_hint_(num_vertices_hint) {}

  Status NextChunk(std::vector<Edge>* out) override;
  Status Reset() override {
    position_ = 0;
    return Status::OK();
  }
  std::uint64_t EdgeCountHint() const override { return edges_.size(); }
  std::uint64_t NumVerticesHint() const override {
    return num_vertices_hint_;
  }

 private:
  std::vector<Edge> edges_;
  std::size_t chunk_edges_;
  std::uint64_t num_vertices_hint_;
  std::size_t position_ = 0;
};

/// Opens a file-backed edge stream. `format` is "text", "bin" or "auto"
/// (by extension: ".txt" is text, anything else binary).
Status OpenEdgeStream(const std::string& path, const std::string& format,
                      std::size_t chunk_edges,
                      std::unique_ptr<EdgeStreamReader>* out);

}  // namespace dne

#endif  // DNE_GRAPH_EDGE_STREAM_READER_H_
