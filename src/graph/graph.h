// Graph: immutable canonical edge array + CSR adjacency, the input to every
// partitioner.
#ifndef DNE_GRAPH_GRAPH_H_
#define DNE_GRAPH_GRAPH_H_

#include <cstddef>
#include <utility>

#include "graph/csr.h"
#include "graph/edge_list.h"

namespace dne {

/// An undirected, unweighted graph G(V, E) in the paper's notation.
///
/// Invariants after Build:
///  * `edges()` is canonical: self-loop free, deduplicated, src <= dst,
///    sorted; edge i has EdgeId i.
///  * `csr()` materialises both directions of each edge with that EdgeId.
class Graph {
 public:
  Graph() = default;

  /// Canonicalises `list` (Normalize) and builds the CSR.
  static Graph Build(EdgeList list) {
    list.Normalize();
    return FromNormalized(std::move(list));
  }

  /// Builds from an already-canonical EdgeList (checked in debug builds).
  static Graph FromNormalized(EdgeList list) {
    Graph g;
    g.edges_ = std::move(list);
    g.csr_ = Csr::Build(g.edges_);
    return g;
  }

  VertexId NumVertices() const { return edges_.NumVertices(); }
  EdgeId NumEdges() const { return edges_.NumEdges(); }

  const EdgeList& edges() const { return edges_; }
  const Csr& csr() const { return csr_; }

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  std::size_t degree(VertexId v) const { return csr_.degree(v); }
  std::span<const Adjacency> neighbors(VertexId v) const {
    return csr_.neighbors(v);
  }

  /// Approximate resident bytes (edge array + CSR), for memory accounting.
  std::size_t MemoryBytes() const {
    return edges_.NumEdges() * sizeof(Edge) + csr_.MemoryBytes();
  }

 private:
  EdgeList edges_;
  Csr csr_;
};

}  // namespace dne

#endif  // DNE_GRAPH_GRAPH_H_
