// METIS graph-format interop: the de-facto exchange format of the
// partitioning community (and of the paper's ParMETIS baseline).
#ifndef DNE_GRAPH_METIS_IO_H_
#define DNE_GRAPH_METIS_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace dne {

/// Reads an (unweighted) METIS .graph file: header "n m", then line i
/// (1-based) lists the neighbours of vertex i. Each undirected edge appears
/// in both endpoint lines; inconsistent files are rejected.
Status LoadMetisGraph(const std::string& path, Graph* out);

/// Writes the METIS representation of g.
Status SaveMetisGraph(const std::string& path, const Graph& g);

}  // namespace dne

#endif  // DNE_GRAPH_METIS_IO_H_
