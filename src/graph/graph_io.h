// Text (SNAP-style) and binary edge-list persistence.
//
// Binary edge-file format v2 (all fields little-endian):
//
//   offset  0  u64  magic "DNEEDGE2"
//   offset  8  u32  version (currently 2)
//   offset 12  u32  reserved (zero)
//   offset 16  u64  num_vertices
//   offset 24  u64  num_edges
//   offset 32  u64  checksum (EdgeChecksum over the records in file order)
//   offset 40  num_edges * { u64 src, u64 dst }
//
// The header carries the edge count and a payload checksum so that an
// out-of-core reader can size its chunking upfront and detect truncation or
// corruption deterministically. Writers emit v2; loaders additionally accept
// the legacy v1 layout (magic "DNE_GRAH", no version/checksum) written by
// earlier releases.
#ifndef DNE_GRAPH_GRAPH_IO_H_
#define DNE_GRAPH_GRAPH_IO_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

#include "common/hash.h"
#include "common/status.h"
#include "graph/edge_list.h"

namespace dne {

/// Loads a whitespace-separated "u v" edge list (SNAP format). Lines starting
/// with '#' or '%' are comments. Vertex ids must be non-negative integers.
Status LoadEdgeListText(const std::string& path, EdgeList* out);

/// Writes "u v" lines, one edge per line, preceded by a "# vertices edges"
/// comment header.
Status SaveEdgeListText(const std::string& path, const EdgeList& list);

/// Loads a binary edge file (v2 with checksum verification, or legacy v1).
/// The header is validated against the file size before the payload is
/// touched, so truncated or oversized files fail cleanly.
Status LoadEdgeListBinary(const std::string& path, EdgeList* out);

/// Writes the v2 binary format. An order of magnitude faster to load than
/// text for large graphs.
Status SaveEdgeListBinary(const std::string& path, const EdgeList& list);

/// Legacy v1 magic ("DNE_GRAH"): u64 magic, u64 num_vertices, u64 num_edges,
/// then the edge records. Read-only support.
inline constexpr std::uint64_t kEdgeFileMagicV1 = 0x444e455f47524148ULL;
/// v2 magic: the bytes "DNEEDGE2" read as a little-endian u64.
inline constexpr std::uint64_t kEdgeFileMagicV2 = 0x3245474445454e44ULL;
inline constexpr std::uint32_t kEdgeFileVersion = 2;
inline constexpr std::size_t kEdgeFileHeaderBytesV1 = 24;
inline constexpr std::size_t kEdgeFileHeaderBytesV2 = 40;

/// Parsed and validated binary edge-file header (v1 or v2).
struct EdgeFileHeader {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t checksum = 0;
  bool has_checksum = false;  ///< true for v2 headers
  std::size_t header_bytes = 0;
};

/// Reads the v1/v2 header from `in` (an open binary stream) and validates it
/// against the file size — including that the payload holds exactly
/// num_edges records, checked division-side so a lying edge count can never
/// overflow the arithmetic or trigger a huge allocation. On OK the stream is
/// positioned at the first edge record. Shared by LoadEdgeListBinary and
/// BinaryEdgeStreamReader. `path` is used in error messages only.
Status ReadEdgeFileHeader(std::ifstream& in, const std::string& path,
                          EdgeFileHeader* out);

/// Sequential FNV-style checksum over edge records; both endpoints are mixed
/// so endpoint swaps and record reorderings change the value. Incremental by
/// construction, so streaming writers and readers can fold in one chunk at a
/// time.
class EdgeChecksum {
 public:
  void Update(const Edge& edge) {
    hash_ = (hash_ ^ Mix64(edge.src)) * kPrime;
    hash_ = (hash_ ^ Mix64(edge.dst)) * kPrime;
  }
  void Update(std::span<const Edge> edges) {
    for (const Edge& e : edges) Update(e);
  }
  std::uint64_t value() const { return hash_; }
  void Reset() { hash_ = kOffsetBasis; }

 private:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t hash_ = kOffsetBasis;
};

}  // namespace dne

#endif  // DNE_GRAPH_GRAPH_IO_H_
