// Text (SNAP-style) and binary edge-list persistence.
#ifndef DNE_GRAPH_GRAPH_IO_H_
#define DNE_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/edge_list.h"

namespace dne {

/// Loads a whitespace-separated "u v" edge list (SNAP format). Lines starting
/// with '#' or '%' are comments. Vertex ids must be non-negative integers.
Status LoadEdgeListText(const std::string& path, EdgeList* out);

/// Writes "u v" lines, one edge per line, preceded by a "# vertices edges"
/// comment header.
Status SaveEdgeListText(const std::string& path, const EdgeList& list);

/// Binary format: u64 magic, u64 num_vertices, u64 num_edges, then
/// num_edges * {u64 src, u64 dst}. An order of magnitude faster to load than
/// text for large graphs.
Status LoadEdgeListBinary(const std::string& path, EdgeList* out);
Status SaveEdgeListBinary(const std::string& path, const EdgeList& list);

}  // namespace dne

#endif  // DNE_GRAPH_GRAPH_IO_H_
