#include "graph/metis_io.h"

#include <fstream>
#include <sstream>
#include <string>

namespace dne {

Status LoadMetisGraph(const std::string& path, Graph* out) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  // Header (skipping comment lines that start with '%').
  std::uint64_t n = 0, m = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '%') continue;
    std::istringstream header(line);
    if (!(header >> n >> m)) {
      return Status::IOError(path + ": malformed METIS header");
    }
    std::string fmt;
    if (header >> fmt && fmt != "0" && fmt != "00" && fmt != "000") {
      return Status::NotSupported(path + ": weighted METIS format " + fmt);
    }
    break;
  }
  EdgeList list;
  list.SetNumVertices(n);
  list.Reserve(2 * m);
  std::uint64_t vertex = 0;
  while (vertex < n) {
    if (!std::getline(in, line)) {
      return Status::IOError(path + ": fewer adjacency lines than vertices");
    }
    if (!line.empty() && line[0] == '%') continue;
    std::istringstream row(line);
    std::uint64_t neighbor;
    while (row >> neighbor) {
      if (neighbor < 1 || neighbor > n) {
        return Status::IOError(path + ": neighbour id out of range");
      }
      // METIS is 1-based; add each edge once (from its lower endpoint).
      if (neighbor - 1 > vertex) list.Add(vertex, neighbor - 1);
    }
    ++vertex;
  }
  Graph g = Graph::Build(std::move(list));
  if (g.NumEdges() != m) {
    return Status::IOError(path + ": header claims " + std::to_string(m) +
                           " edges, found " + std::to_string(g.NumEdges()));
  }
  *out = std::move(g);
  return Status::OK();
}

Status SaveMetisGraph(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << g.NumVertices() << " " << g.NumEdges() << "\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    bool first = true;
    for (const Adjacency& a : g.neighbors(v)) {
      if (!first) out << " ";
      out << (a.to + 1);  // 1-based
      first = false;
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

}  // namespace dne
