#include "graph/degree_stats.h"

#include <algorithm>
#include <cmath>

namespace dne {

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats s;
  std::vector<std::size_t> degrees;
  degrees.reserve(g.NumVertices());
  double log_sum = 0.0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    std::size_t d = g.degree(v);
    if (d == 0) continue;
    degrees.push_back(d);
    log_sum += std::log(static_cast<double>(d));
    if (d > s.max_degree) s.max_degree = d;
  }
  if (degrees.empty()) return s;

  const double n = static_cast<double>(degrees.size());
  s.mean_degree = 2.0 * static_cast<double>(g.NumEdges()) / n;
  s.mle_alpha = (log_sum > 0.0) ? 1.0 + n / log_sum : 0.0;

  std::sort(degrees.begin(), degrees.end());
  s.median_degree = static_cast<double>(degrees[degrees.size() / 2]);

  std::size_t top = std::max<std::size_t>(1, degrees.size() / 100);
  std::uint64_t top_sum = 0;
  for (std::size_t i = degrees.size() - top; i < degrees.size(); ++i) {
    top_sum += degrees[i];
  }
  s.top1pct_edge_share =
      static_cast<double>(top_sum) / (2.0 * static_cast<double>(g.NumEdges()));
  return s;
}

std::vector<std::uint64_t> DegreeHistogram(const Graph& g) {
  std::size_t max_d = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    max_d = std::max(max_d, g.degree(v));
  }
  std::vector<std::uint64_t> hist(max_d + 1, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ++hist[g.degree(v)];
  }
  return hist;
}

}  // namespace dne
