// Degree-distribution statistics: used to validate generator skew and to
// parameterise the degree-aware partitioners.
#ifndef DNE_GRAPH_DEGREE_STATS_H_
#define DNE_GRAPH_DEGREE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dne {

/// Summary of a graph's degree distribution.
struct DegreeStats {
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  double median_degree = 0.0;
  /// Fraction of edges incident to the top 1% highest-degree vertices — a
  /// simple, robust skewness proxy (≈0.02 for uniform graphs, >0.2 for
  /// power-law graphs).
  double top1pct_edge_share = 0.0;
  /// Maximum-likelihood estimate of the power-law exponent alpha with
  /// d_min = 1 (Clauset et al. [15]): alpha = 1 + n / sum(ln d_i).
  double mle_alpha = 0.0;
};

/// Computes DegreeStats over all non-isolated vertices.
DegreeStats ComputeDegreeStats(const Graph& g);

/// Degree histogram: result[d] = number of vertices of degree d.
std::vector<std::uint64_t> DegreeHistogram(const Graph& g);

}  // namespace dne

#endif  // DNE_GRAPH_DEGREE_STATS_H_
