#include "graph/edge_list.h"

#include <algorithm>

namespace dne {

void EdgeList::SetNumVertices(VertexId n) {
  if (n > num_vertices_) num_vertices_ = n;
}

std::size_t EdgeList::Normalize() {
  const std::size_t before = edges_.size();
  // Drop self-loops and orient canonically.
  std::size_t w = 0;
  for (std::size_t r = 0; r < edges_.size(); ++r) {
    Edge e = edges_[r];
    if (e.src == e.dst) continue;
    if (e.src > e.dst) std::swap(e.src, e.dst);
    edges_[w++] = e;
  }
  edges_.resize(w);
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  RecomputeNumVertices();
  return before - edges_.size();
}

bool EdgeList::IsNormalized() const {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    if (e.src >= e.dst) return false;  // self-loop or wrong orientation
    if (i > 0 && !(edges_[i - 1] < e)) return false;
  }
  return true;
}

void EdgeList::RecomputeNumVertices() {
  VertexId n = num_vertices_;
  for (const Edge& e : edges_) {
    VertexId hi = (e.src > e.dst ? e.src : e.dst) + 1;
    if (hi > n) n = hi;
  }
  num_vertices_ = n;
}

}  // namespace dne
