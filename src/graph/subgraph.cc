#include "graph/subgraph.h"

#include <algorithm>

namespace dne {

namespace {

// Builds a Subgraph from a list of (global edge id, endpoints) triples.
Subgraph FromEdges(const Graph& g, std::vector<EdgeId> edge_ids) {
  Subgraph sub;
  sub.global_edges = std::move(edge_ids);
  sub.global_vertices.reserve(sub.global_edges.size() * 2);
  for (EdgeId e : sub.global_edges) {
    sub.global_vertices.push_back(g.edge(e).src);
    sub.global_vertices.push_back(g.edge(e).dst);
  }
  std::sort(sub.global_vertices.begin(), sub.global_vertices.end());
  sub.global_vertices.erase(
      std::unique(sub.global_vertices.begin(), sub.global_vertices.end()),
      sub.global_vertices.end());
  auto local_of = [&](VertexId v) {
    return static_cast<VertexId>(
        std::lower_bound(sub.global_vertices.begin(),
                         sub.global_vertices.end(), v) -
        sub.global_vertices.begin());
  };
  EdgeList list;
  list.Reserve(sub.global_edges.size());
  list.SetNumVertices(sub.global_vertices.size());
  for (EdgeId e : sub.global_edges) {
    list.Add(local_of(g.edge(e).src), local_of(g.edge(e).dst));
  }
  // Canonical global edges stay canonical and sorted after the monotone
  // renumbering, so FromNormalized applies.
  sub.graph = Graph::FromNormalized(std::move(list));
  return sub;
}

}  // namespace

Subgraph InducedSubgraph(const Graph& g,
                         const std::vector<VertexId>& vertices) {
  std::vector<VertexId> sorted(vertices);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  auto inside = [&](VertexId v) {
    return std::binary_search(sorted.begin(), sorted.end(), v);
  };
  std::vector<EdgeId> edges;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (inside(g.edge(e).src) && inside(g.edge(e).dst)) {
      edges.push_back(e);
    }
  }
  Subgraph sub = FromEdges(g, std::move(edges));
  // Induced subgraphs keep isolated requested vertices too.
  if (sub.global_vertices.size() < sorted.size()) {
    sub.global_vertices = std::move(sorted);
    // Rebuild with the wider vertex table.
    Subgraph rebuilt = sub;
    EdgeList list;
    list.SetNumVertices(rebuilt.global_vertices.size());
    auto local_of = [&](VertexId v) {
      return static_cast<VertexId>(
          std::lower_bound(rebuilt.global_vertices.begin(),
                           rebuilt.global_vertices.end(), v) -
          rebuilt.global_vertices.begin());
    };
    for (EdgeId e : rebuilt.global_edges) {
      list.Add(local_of(g.edge(e).src), local_of(g.edge(e).dst));
    }
    rebuilt.graph = Graph::FromNormalized(std::move(list));
    return rebuilt;
  }
  return sub;
}

Subgraph PartitionSubgraph(const Graph& g, const EdgePartition& partition,
                           PartitionId p) {
  std::vector<EdgeId> edges;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (partition.Get(e) == p) edges.push_back(e);
  }
  return FromEdges(g, std::move(edges));
}

}  // namespace dne
