// EdgeList: the canonical mutable edge container fed to Graph::Build.
#ifndef DNE_GRAPH_EDGE_LIST_H_
#define DNE_GRAPH_EDGE_LIST_H_

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace dne {

/// A list of undirected edges plus the (inclusive) vertex-id universe size.
///
/// Generators emit raw EdgeLists (possibly with self-loops, duplicates and
/// both orientations); Graph::Build runs Normalize() to obtain the canonical
/// form the partitioners operate on: self-loop free, deduplicated, src <= dst,
/// sorted.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(std::vector<Edge> edges) : edges_(std::move(edges)) {
    RecomputeNumVertices();
  }

  /// Appends one edge. Does not maintain canonical form.
  void Add(VertexId u, VertexId v) {
    edges_.push_back(Edge{u, v});
    VertexId hi = (u > v ? u : v) + 1;
    if (hi > num_vertices_) num_vertices_ = hi;
  }

  /// Reserves capacity for n edges.
  void Reserve(std::size_t n) { edges_.reserve(n); }

  std::size_t NumEdges() const { return edges_.size(); }

  /// Vertex universe [0, NumVertices()). May exceed max id + 1 if explicitly
  /// widened with SetNumVertices (isolated vertices are representable).
  VertexId NumVertices() const { return num_vertices_; }

  /// Widens (never shrinks below max id + 1) the vertex universe.
  void SetNumVertices(VertexId n);

  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& mutable_edges() { return edges_; }

  const Edge& operator[](std::size_t i) const { return edges_[i]; }

  /// Canonicalises in place: drops self-loops, orients src <= dst, sorts,
  /// removes duplicates. Returns the number of edges removed.
  std::size_t Normalize();

  /// True if already canonical (sorted, unique, src <= dst, no self-loops).
  bool IsNormalized() const;

  /// Re-derives num_vertices_ from the maximum id present.
  void RecomputeNumVertices();

 private:
  std::vector<Edge> edges_;
  VertexId num_vertices_ = 0;
};

}  // namespace dne

#endif  // DNE_GRAPH_EDGE_LIST_H_
