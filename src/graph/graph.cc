#include "graph/graph.h"

// Graph is header-only today; this TU anchors the type for the library and
// keeps a stable home for future out-of-line members.
namespace dne {}  // namespace dne
