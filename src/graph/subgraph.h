// Subgraph extraction: induced subgraphs and per-partition subgraphs (what
// each machine of a distributed engine materialises from an EdgePartition).
#ifndef DNE_GRAPH_SUBGRAPH_H_
#define DNE_GRAPH_SUBGRAPH_H_

#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "partition/edge_partition.h"

namespace dne {

/// A subgraph with its vertices renumbered to [0, n'); `global_vertices`
/// maps local ids back to the parent graph (sorted ascending), and
/// `global_edges` maps local edge ids to parent edge ids.
struct Subgraph {
  Graph graph;
  std::vector<VertexId> global_vertices;
  std::vector<EdgeId> global_edges;

  VertexId ToGlobal(VertexId local) const { return global_vertices[local]; }
};

/// Subgraph induced by `vertices` (edges with BOTH endpoints inside).
Subgraph InducedSubgraph(const Graph& g,
                         const std::vector<VertexId>& vertices);

/// The subgraph of partition p: exactly its edges, plus the incident
/// vertices (the replicas the engine hosts for p).
Subgraph PartitionSubgraph(const Graph& g, const EdgePartition& partition,
                           PartitionId p);

}  // namespace dne

#endif  // DNE_GRAPH_SUBGRAPH_H_
