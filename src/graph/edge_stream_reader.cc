#include "graph/edge_stream_reader.h"

#include <algorithm>
#include <charconv>
#include <cstdint>

namespace dne {

namespace {

// Parses "u v" with arbitrary leading/inter-token whitespace; trailing
// content after the two ids is ignored (SNAP files may carry weights).
bool ParseEdgeLine(const std::string& line, Edge* out) {
  const char* p = line.data();
  const char* end = line.data() + line.size();
  auto skip_space = [&] {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  };
  skip_space();
  auto r1 = std::from_chars(p, end, out->src);
  if (r1.ec != std::errc()) return false;
  p = r1.ptr;
  skip_space();
  auto r2 = std::from_chars(p, end, out->dst);
  return r2.ec == std::errc();
}

bool IsSkippableLine(const std::string& line) {
  for (const char c : line) {
    if (c == '#' || c == '%') return true;
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;  // blank (or whitespace-only) line
}

}  // namespace

// ---- TextEdgeStreamReader ---------------------------------------------------

Status TextEdgeStreamReader::Open(
    const std::string& path, std::size_t chunk_edges,
    std::unique_ptr<TextEdgeStreamReader>* out) {
  if (chunk_edges == 0) {
    return Status::InvalidArgument("chunk_edges must be positive");
  }
  std::unique_ptr<TextEdgeStreamReader> reader(
      new TextEdgeStreamReader(path, chunk_edges));
  DNE_RETURN_IF_ERROR(reader->Reset());
  *out = std::move(reader);
  return Status::OK();
}

Status TextEdgeStreamReader::Reset() {
  in_ = std::ifstream(path_);
  if (!in_) return Status::IOError("cannot open " + path_);
  if (in_.peek() == std::ifstream::traits_type::eof()) {
    return Status::IOError(path_ + ": empty file");
  }
  lineno_ = 0;
  done_ = false;
  return Status::OK();
}

Status TextEdgeStreamReader::NextChunk(std::vector<Edge>* out) {
  out->clear();
  if (done_) return Status::OK();
  while (out->size() < chunk_edges_ && std::getline(in_, line_)) {
    ++lineno_;
    if (IsSkippableLine(line_)) continue;
    Edge edge;
    if (!ParseEdgeLine(line_, &edge)) {
      return Status::IOError(path_ + ":" + std::to_string(lineno_) +
                             ": malformed edge line");
    }
    out->push_back(edge);
  }
  if (out->size() < chunk_edges_) {
    if (in_.bad()) return Status::IOError(path_ + ": read failed");
    done_ = true;
  }
  return Status::OK();
}

// ---- BinaryEdgeStreamReader -------------------------------------------------

Status BinaryEdgeStreamReader::Open(
    const std::string& path, std::size_t chunk_edges,
    std::unique_ptr<BinaryEdgeStreamReader>* out) {
  if (chunk_edges == 0) {
    return Status::InvalidArgument("chunk_edges must be positive");
  }
  std::unique_ptr<BinaryEdgeStreamReader> reader(
      new BinaryEdgeStreamReader(path, chunk_edges));
  DNE_RETURN_IF_ERROR(reader->OpenAndReadHeader());
  *out = std::move(reader);
  return Status::OK();
}

Status BinaryEdgeStreamReader::OpenAndReadHeader() {
  in_ = std::ifstream(path_, std::ios::binary);
  if (!in_) return Status::IOError("cannot open " + path_);
  EdgeFileHeader header;
  DNE_RETURN_IF_ERROR(ReadEdgeFileHeader(in_, path_, &header));
  num_vertices_ = header.num_vertices;
  num_edges_ = header.num_edges;
  expected_checksum_ = header.checksum;
  has_checksum_ = header.has_checksum;
  remaining_ = num_edges_;
  checksum_.Reset();
  return Status::OK();
}

Status BinaryEdgeStreamReader::Reset() { return OpenAndReadHeader(); }

Status BinaryEdgeStreamReader::NextChunk(std::vector<Edge>* out) {
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(chunk_edges_, remaining_));
  out->resize(n);
  if (n == 0) return Status::OK();
  in_.read(reinterpret_cast<char*>(out->data()),
           static_cast<std::streamsize>(n * sizeof(Edge)));
  if (!in_) return Status::IOError(path_ + ": truncated edge payload");
  remaining_ -= n;
  if (has_checksum_) {
    checksum_.Update(std::span<const Edge>(*out));
    if (remaining_ == 0 && checksum_.value() != expected_checksum_) {
      return Status::IOError(path_ +
                             ": checksum mismatch (corrupt payload)");
    }
  }
  return Status::OK();
}

// ---- VectorEdgeStream -------------------------------------------------------

Status VectorEdgeStream::NextChunk(std::vector<Edge>* out) {
  const std::size_t n = std::min(chunk_edges_, edges_.size() - position_);
  out->assign(edges_.begin() + position_, edges_.begin() + position_ + n);
  position_ += n;
  return Status::OK();
}

// ---- Factory ----------------------------------------------------------------

Status OpenEdgeStream(const std::string& path, const std::string& format,
                      std::size_t chunk_edges,
                      std::unique_ptr<EdgeStreamReader>* out) {
  bool text;
  if (format == "text") {
    text = true;
  } else if (format == "bin") {
    text = false;
  } else if (format == "auto") {
    text = path.size() >= 4 && path.compare(path.size() - 4, 4, ".txt") == 0;
  } else {
    return Status::InvalidArgument("unknown edge-stream format \"" + format +
                                   "\" (text|bin|auto)");
  }
  if (text) {
    std::unique_ptr<TextEdgeStreamReader> reader;
    DNE_RETURN_IF_ERROR(TextEdgeStreamReader::Open(path, chunk_edges,
                                                   &reader));
    *out = std::move(reader);
  } else {
    std::unique_ptr<BinaryEdgeStreamReader> reader;
    DNE_RETURN_IF_ERROR(BinaryEdgeStreamReader::Open(path, chunk_edges,
                                                     &reader));
    *out = std::move(reader);
  }
  return Status::OK();
}

}  // namespace dne
