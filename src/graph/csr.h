// Compressed sparse row adjacency with edge-id payloads.
#ifndef DNE_GRAPH_CSR_H_
#define DNE_GRAPH_CSR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace dne {

class EdgeList;

/// One adjacency entry: the neighbouring vertex and the id of the canonical
/// (undirected) edge connecting to it. Edge ids let allocation state live in
/// one flat array even though each undirected edge appears in two rows.
struct Adjacency {
  VertexId to;
  EdgeId edge;
};

/// Compressed sparse row representation of an undirected graph.
///
/// Both directions of every canonical edge are materialised, so
/// `neighbors(v).size() == degree(v)`. The structure is immutable after
/// Build. This is the paper's storage choice (Sec. 4): "The core components
/// of the graph are stored in CSR" — offsets + adjacency arrays only, no
/// hash maps.
class Csr {
 public:
  Csr() = default;

  /// Builds from a *normalized* EdgeList (see EdgeList::Normalize). Edge i of
  /// the list gets EdgeId i.
  static Csr Build(const EdgeList& list);

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeId num_edges() const { return num_edges_; }

  std::size_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const Adjacency> neighbors(VertexId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  /// Approximate resident bytes of the structure (for memory accounting).
  std::size_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(std::uint64_t) +
           adj_.capacity() * sizeof(Adjacency);
  }

 private:
  std::vector<std::uint64_t> offsets_;  // size num_vertices + 1
  std::vector<Adjacency> adj_;          // size 2 * num_edges
  EdgeId num_edges_ = 0;
};

}  // namespace dne

#endif  // DNE_GRAPH_CSR_H_
