#include "graph/graph_io.h"

#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dne {

// The raw-record reads/writes below assume the host is little-endian, which
// makes the in-memory Edge array byte-identical to the on-disk payload.
static_assert(std::endian::native == std::endian::little,
              "binary edge-file I/O requires a little-endian host");

namespace {

void PutU64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool GetU64(std::ifstream& in, std::uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool GetU32(std::ifstream& in, std::uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

std::uint64_t FileSize(std::ifstream& in) {
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  return size < 0 ? 0 : static_cast<std::uint64_t>(size);
}

}  // namespace

Status LoadEdgeListText(const std::string& path, EdgeList* out) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  EdgeList list;
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    std::uint64_t u, v;
    if (!(ss >> u >> v)) {
      return Status::IOError(path + ":" + std::to_string(lineno) +
                             ": malformed edge line");
    }
    list.Add(u, v);
  }
  *out = std::move(list);
  return Status::OK();
}

Status SaveEdgeListText(const std::string& path, const EdgeList& list) {
  std::ofstream outf(path);
  if (!outf) return Status::IOError("cannot open " + path);
  outf << "# " << list.NumVertices() << " " << list.NumEdges() << "\n";
  for (const Edge& e : list.edges()) {
    outf << e.src << " " << e.dst << "\n";
  }
  if (!outf) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Status ReadEdgeFileHeader(std::ifstream& in, const std::string& path,
                          EdgeFileHeader* out) {
  const std::uint64_t size = FileSize(in);
  if (size == 0) return Status::IOError(path + ": empty file");
  if (size < kEdgeFileHeaderBytesV1) {
    return Status::IOError(path + ": truncated header");
  }
  EdgeFileHeader header;
  std::uint64_t magic = 0;
  if (!GetU64(in, &magic)) return Status::IOError(path + ": truncated header");
  if (magic == kEdgeFileMagicV2) {
    std::uint32_t version = 0, reserved = 0;
    if (size < kEdgeFileHeaderBytesV2 || !GetU32(in, &version) ||
        !GetU32(in, &reserved) || !GetU64(in, &header.num_vertices) ||
        !GetU64(in, &header.num_edges) || !GetU64(in, &header.checksum)) {
      return Status::IOError(path + ": truncated header");
    }
    if (version != kEdgeFileVersion) {
      return Status::IOError(path + ": unsupported edge-file version " +
                             std::to_string(version));
    }
    header.has_checksum = true;
    header.header_bytes = kEdgeFileHeaderBytesV2;
  } else if (magic == kEdgeFileMagicV1) {
    if (!GetU64(in, &header.num_vertices) || !GetU64(in, &header.num_edges)) {
      return Status::IOError(path + ": truncated header");
    }
    header.header_bytes = kEdgeFileHeaderBytesV1;
  } else {
    return Status::IOError(path + ": bad magic (not a DNE binary edge list)");
  }
  // Payload consistency, division-side: `header_bytes + ne * sizeof(Edge)`
  // could wrap for a lying edge count and sail past the check into a huge
  // allocation.
  const std::uint64_t payload = size - header.header_bytes;
  if (payload % sizeof(Edge) != 0 ||
      payload / sizeof(Edge) != header.num_edges) {
    return Status::IOError(path + ": truncated edge payload (header says " +
                           std::to_string(header.num_edges) + " edges)");
  }
  *out = header;
  return Status::OK();
}

Status LoadEdgeListBinary(const std::string& path, EdgeList* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  EdgeFileHeader header;
  DNE_RETURN_IF_ERROR(ReadEdgeFileHeader(in, path, &header));
  std::vector<Edge> edges(header.num_edges);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(header.num_edges * sizeof(Edge)));
  if (!in) return Status::IOError(path + ": truncated edge payload");
  if (header.has_checksum) {
    EdgeChecksum checksum;
    checksum.Update(std::span<const Edge>(edges));
    if (checksum.value() != header.checksum) {
      return Status::IOError(path + ": checksum mismatch (corrupt payload)");
    }
  }
  EdgeList list(std::move(edges));
  list.SetNumVertices(header.num_vertices);
  *out = std::move(list);
  return Status::OK();
}

Status SaveEdgeListBinary(const std::string& path, const EdgeList& list) {
  std::ofstream outf(path, std::ios::binary);
  if (!outf) return Status::IOError("cannot open " + path);
  EdgeChecksum checksum;
  checksum.Update(std::span<const Edge>(list.edges()));
  PutU64(outf, kEdgeFileMagicV2);
  PutU32(outf, kEdgeFileVersion);
  PutU32(outf, 0);  // reserved
  PutU64(outf, list.NumVertices());
  PutU64(outf, list.NumEdges());
  PutU64(outf, checksum.value());
  outf.write(reinterpret_cast<const char*>(list.edges().data()),
             static_cast<std::streamsize>(list.NumEdges() * sizeof(Edge)));
  if (!outf) return Status::IOError("write failed on " + path);
  return Status::OK();
}

}  // namespace dne
