#include "graph/graph_io.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dne {

namespace {
constexpr std::uint64_t kBinaryMagic = 0x444e455f47524148ULL;  // "DNE_GRAH"
}  // namespace

Status LoadEdgeListText(const std::string& path, EdgeList* out) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  EdgeList list;
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    std::uint64_t u, v;
    if (!(ss >> u >> v)) {
      return Status::IOError(path + ":" + std::to_string(lineno) +
                             ": malformed edge line");
    }
    list.Add(u, v);
  }
  *out = std::move(list);
  return Status::OK();
}

Status SaveEdgeListText(const std::string& path, const EdgeList& list) {
  std::ofstream outf(path);
  if (!outf) return Status::IOError("cannot open " + path);
  outf << "# " << list.NumVertices() << " " << list.NumEdges() << "\n";
  for (const Edge& e : list.edges()) {
    outf << e.src << " " << e.dst << "\n";
  }
  if (!outf) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Status LoadEdgeListBinary(const std::string& path, EdgeList* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::uint64_t magic = 0, nv = 0, ne = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&nv), sizeof(nv));
  in.read(reinterpret_cast<char*>(&ne), sizeof(ne));
  if (!in || magic != kBinaryMagic) {
    return Status::IOError(path + ": bad magic (not a DNE binary edge list)");
  }
  std::vector<Edge> edges(ne);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(ne * sizeof(Edge)));
  if (!in) return Status::IOError(path + ": truncated edge payload");
  EdgeList list(std::move(edges));
  list.SetNumVertices(nv);
  *out = std::move(list);
  return Status::OK();
}

Status SaveEdgeListBinary(const std::string& path, const EdgeList& list) {
  std::ofstream outf(path, std::ios::binary);
  if (!outf) return Status::IOError("cannot open " + path);
  const std::uint64_t magic = kBinaryMagic;
  const std::uint64_t nv = list.NumVertices();
  const std::uint64_t ne = list.NumEdges();
  outf.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  outf.write(reinterpret_cast<const char*>(&nv), sizeof(nv));
  outf.write(reinterpret_cast<const char*>(&ne), sizeof(ne));
  outf.write(reinterpret_cast<const char*>(list.edges().data()),
             static_cast<std::streamsize>(ne * sizeof(Edge)));
  if (!outf) return Status::IOError("write failed on " + path);
  return Status::OK();
}

}  // namespace dne
