#include "core/factory.h"

#include <cstdio>
#include <cstdlib>

namespace dne {

std::vector<std::string> KnownPartitioners() {
  return PartitionerRegistry::Global().Names();
}

Status CreatePartitioner(const std::string& name,
                         const PartitionConfig& config,
                         std::unique_ptr<Partitioner>* out) {
  return PartitionerRegistry::Global().Create(name, config, out);
}

Status CreatePartitioner(const std::string& name,
                         std::unique_ptr<Partitioner>* out) {
  return PartitionerRegistry::Global().Create(name, PartitionConfig{}, out);
}

namespace {

std::unique_ptr<Partitioner> MustCreate(const std::string& name,
                                        const PartitionConfig& config) {
  std::unique_ptr<Partitioner> p;
  Status st = PartitionerRegistry::Global().Create(name, config, &p);
  if (!st.ok()) {
    std::fprintf(stderr, "MustCreatePartitioner(%s): %s\n", name.c_str(),
                 st.ToString().c_str());
    std::abort();
  }
  return p;
}

}  // namespace

std::unique_ptr<Partitioner> MustCreatePartitioner(const std::string& name) {
  return MustCreate(name, PartitionConfig{});
}

std::unique_ptr<Partitioner> MustCreatePartitioner(
    const std::string& name, const PartitionConfig& config) {
  return MustCreate(name, config);
}

// --- Deprecated compatibility shim -----------------------------------------

namespace {

// Renders the grab-bag as a config with the old hardcoded switch's exact
// field routing (fields an algorithm did not understand were ignored, and
// e.g. FactoryOptions::lambda was DNE's expansion factor, never HDRF's
// balance weight).
PartitionConfig ShimConfig(const std::string& name,
                           const FactoryOptions& options) {
  PartitionConfig c;
  const PartitionerInfo* info = PartitionerRegistry::Global().Find(name);
  if (info == nullptr) return c;  // let Create report NotFound
  if (info->schema.Find("seed") != nullptr) {
    c.Set("seed", std::to_string(options.seed));
  }
  if (name == "ne" || name == "sne" || name == "dne") {
    c.Set("alpha", std::to_string(options.alpha));
  }
  if (name == "dne") {
    c.Set("lambda", std::to_string(options.lambda));
  }
  if (name == "spinner" || name == "xtrapulp") {
    c.Set("iterations", std::to_string(options.lp_iterations));
  }
  if (name == "hybrid" || name == "ginger") {
    c.Set("degree_threshold", std::to_string(options.hybrid_threshold));
  }
  return c;
}

}  // namespace

Status CreatePartitioner(const std::string& name,
                         const FactoryOptions& options,
                         std::unique_ptr<Partitioner>* out) {
  return PartitionerRegistry::Global().Create(name, ShimConfig(name, options),
                                              out);
}

std::unique_ptr<Partitioner> MustCreatePartitioner(
    const std::string& name, const FactoryOptions& options) {
  return MustCreate(name, ShimConfig(name, options));
}

}  // namespace dne
