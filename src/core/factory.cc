#include "core/factory.h"

#include <cstdio>
#include <cstdlib>

#include "partition/dbh_partitioner.h"
#include "partition/dne/dne_partitioner.h"
#include "partition/fennel_partitioner.h"
#include "partition/ginger_partitioner.h"
#include "partition/grid_partitioner.h"
#include "partition/hdrf_partitioner.h"
#include "partition/hybrid_hash_partitioner.h"
#include "partition/multilevel_partitioner.h"
#include "partition/ne_partitioner.h"
#include "partition/oblivious_partitioner.h"
#include "partition/random_partitioner.h"
#include "partition/sheep_partitioner.h"
#include "partition/sne_partitioner.h"
#include "partition/spinner_partitioner.h"
#include "partition/xtrapulp_partitioner.h"

namespace dne {

std::vector<std::string> KnownPartitioners() {
  return {"random", "grid",    "dbh",      "hybrid", "oblivious",
          "ginger", "hdrf",    "fennel",   "ne",     "sne",    "spinner",
          "xtrapulp", "sheep", "multilevel", "dne"};
}

Status CreatePartitioner(const std::string& name,
                         const FactoryOptions& options,
                         std::unique_ptr<Partitioner>* out) {
  if (name == "random") {
    *out = std::make_unique<RandomPartitioner>(options.seed);
  } else if (name == "grid") {
    *out = std::make_unique<GridPartitioner>(options.seed);
  } else if (name == "dbh") {
    *out = std::make_unique<DbhPartitioner>(options.seed);
  } else if (name == "hybrid") {
    *out = std::make_unique<HybridHashPartitioner>(options.hybrid_threshold,
                                                   options.seed);
  } else if (name == "oblivious") {
    *out = std::make_unique<ObliviousPartitioner>(options.seed);
  } else if (name == "ginger") {
    GingerOptions g;
    g.degree_threshold = options.hybrid_threshold;
    g.seed = options.seed;
    *out = std::make_unique<GingerPartitioner>(g);
  } else if (name == "hdrf") {
    HdrfOptions h;
    h.seed = options.seed;
    *out = std::make_unique<HdrfPartitioner>(h);
  } else if (name == "fennel") {
    FennelOptions f;
    f.seed = options.seed;
    *out = std::make_unique<FennelPartitioner>(f);
  } else if (name == "ne") {
    NeOptions n;
    n.alpha = options.alpha;
    n.seed = options.seed;
    *out = std::make_unique<NePartitioner>(n);
  } else if (name == "sne") {
    SneOptions s;
    s.alpha = options.alpha;
    s.seed = options.seed;
    *out = std::make_unique<SnePartitioner>(s);
  } else if (name == "spinner") {
    *out = std::make_unique<SpinnerPartitioner>(options.lp_iterations,
                                                options.seed);
  } else if (name == "xtrapulp") {
    *out = std::make_unique<XtraPulpPartitioner>(options.lp_iterations,
                                                 options.seed);
  } else if (name == "sheep") {
    *out = std::make_unique<SheepPartitioner>(options.seed);
  } else if (name == "multilevel") {
    MultilevelOptions m;
    m.seed = options.seed;
    *out = std::make_unique<MultilevelPartitioner>(m);
  } else if (name == "dne") {
    DneOptions d;
    d.alpha = options.alpha;
    d.lambda = options.lambda;
    d.seed = options.seed;
    *out = std::make_unique<DnePartitioner>(d);
  } else {
    return Status::NotFound("unknown partitioner: " + name);
  }
  return Status::OK();
}

std::unique_ptr<Partitioner> MustCreatePartitioner(
    const std::string& name, const FactoryOptions& options) {
  std::unique_ptr<Partitioner> p;
  Status st = CreatePartitioner(name, options, &p);
  if (!st.ok()) {
    std::fprintf(stderr, "MustCreatePartitioner(%s): %s\n", name.c_str(),
                 st.ToString().c_str());
    std::abort();
  }
  return p;
}

}  // namespace dne
