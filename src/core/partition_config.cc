#include "core/partition_config.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <charconv>
#include <cstdlib>

namespace dne {

namespace {

std::string RenderDouble(double v) {
  std::string s = std::to_string(v);
  // Trim trailing zeros but keep one digit after the point ("1.10" -> "1.1").
  while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.') {
    s.pop_back();
  }
  return s;
}

}  // namespace

OptionSpec OptionSpec::Uint(std::string key, std::uint64_t def,
                            std::string help) {
  OptionSpec s;
  s.key = std::move(key);
  s.type = OptionType::kUint;
  s.default_value = std::to_string(def);
  s.help = std::move(help);
  return s;
}

OptionSpec OptionSpec::Int(std::string key, std::int64_t def, std::int64_t min,
                           std::int64_t max, std::string help) {
  OptionSpec s;
  s.key = std::move(key);
  s.type = OptionType::kInt;
  s.default_value = std::to_string(def);
  s.min_value = static_cast<double>(min);
  s.max_value = static_cast<double>(max);
  s.has_range = true;
  s.help = std::move(help);
  return s;
}

OptionSpec OptionSpec::Double(std::string key, double def, double min,
                              double max, std::string help) {
  OptionSpec s;
  s.key = std::move(key);
  s.type = OptionType::kDouble;
  s.default_value = RenderDouble(def);
  s.min_value = min;
  s.max_value = max;
  s.has_range = true;
  s.help = std::move(help);
  return s;
}

OptionSpec OptionSpec::Bool(std::string key, bool def, std::string help) {
  OptionSpec s;
  s.key = std::move(key);
  s.type = OptionType::kBool;
  s.default_value = def ? "true" : "false";
  s.help = std::move(help);
  return s;
}

OptionSpec OptionSpec::Enum(std::string key, std::vector<std::string> values,
                            std::string def, std::string help) {
  OptionSpec s;
  s.key = std::move(key);
  s.type = OptionType::kEnum;
  s.enum_values = std::move(values);
  s.default_value = std::move(def);
  s.help = std::move(help);
  return s;
}

OptionSpec OptionSpec::String(std::string key, std::string def,
                              std::string help) {
  OptionSpec s;
  s.key = std::move(key);
  s.type = OptionType::kString;
  s.default_value = std::move(def);
  s.help = std::move(help);
  return s;
}

std::string OptionSpec::TypeName() const {
  switch (type) {
    case OptionType::kInt:
      return "int";
    case OptionType::kUint:
      return "uint";
    case OptionType::kDouble:
      return "double";
    case OptionType::kBool:
      return "bool";
    case OptionType::kString:
      return "string";
    case OptionType::kEnum: {
      std::string out = "enum{";
      for (std::size_t i = 0; i < enum_values.size(); ++i) {
        if (i > 0) out += '|';
        out += enum_values[i];
      }
      out += '}';
      return out;
    }
  }
  return "?";
}

Status ParseUint(const std::string& text, std::uint64_t* out) {
  std::uint64_t v = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end || text.empty()) {
    return Status::InvalidArgument("'" + text + "' is not a uint");
  }
  *out = v;
  return Status::OK();
}

Status ParseInt(const std::string& text, std::int64_t* out) {
  std::int64_t v = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end || text.empty()) {
    return Status::InvalidArgument("'" + text + "' is not an int");
  }
  *out = v;
  return Status::OK();
}

Status ParseDouble(const std::string& text, double* out) {
  if (text.empty()) {
    return Status::InvalidArgument("'' is not a double");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return Status::InvalidArgument("'" + text + "' is not a double");
  }
  *out = v;
  return Status::OK();
}

Status ParseBool(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "on" || text == "yes") {
    *out = true;
    return Status::OK();
  }
  if (text == "false" || text == "0" || text == "off" || text == "no") {
    *out = false;
    return Status::OK();
  }
  return Status::InvalidArgument("'" + text + "' is not a bool");
}

PartitionConfig::PartitionConfig(
    std::initializer_list<std::pair<std::string, std::string>> kv) {
  for (const auto& [k, v] : kv) values_[k] = v;
}

Status PartitionConfig::Set(const std::string& key, const std::string& value) {
  if (key.empty()) {
    return Status::InvalidArgument("option key must be non-empty");
  }
  values_[key] = value;
  return Status::OK();
}

Status PartitionConfig::ParseAssignment(const std::string& assignment) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("expected key=value, got '" + assignment +
                                   "'");
  }
  return Set(assignment.substr(0, eq), assignment.substr(eq + 1));
}

Status PartitionConfig::FromAssignments(
    const std::vector<std::string>& assignments, PartitionConfig* out) {
  PartitionConfig config;
  for (const std::string& a : assignments) {
    DNE_RETURN_IF_ERROR(config.ParseAssignment(a));
  }
  *out = std::move(config);
  return Status::OK();
}

const std::string* PartitionConfig::Find(const std::string& key) const {
  auto it = values_.find(key);
  return it == values_.end() ? nullptr : &it->second;
}

const OptionSpec* OptionSchema::Find(const std::string& key) const {
  for (const OptionSpec& s : specs_) {
    if (s.key == key) return &s;
  }
  return nullptr;
}

namespace {

Status CheckValue(const OptionSpec& spec, const std::string& value) {
  double numeric = 0.0;
  switch (spec.type) {
    case OptionType::kUint: {
      std::uint64_t v = 0;
      DNE_RETURN_IF_ERROR(ParseUint(value, &v));
      numeric = static_cast<double>(v);
      break;
    }
    case OptionType::kInt: {
      std::int64_t v = 0;
      DNE_RETURN_IF_ERROR(ParseInt(value, &v));
      numeric = static_cast<double>(v);
      break;
    }
    case OptionType::kDouble:
      DNE_RETURN_IF_ERROR(ParseDouble(value, &numeric));
      break;
    case OptionType::kBool: {
      bool v = false;
      return ParseBool(value, &v);
    }
    case OptionType::kString:
      // Any value parses; semantic validation (paths, fault specs) is the
      // partitioner factory's job, where cross-option context is available.
      return Status::OK();
    case OptionType::kEnum: {
      if (std::find(spec.enum_values.begin(), spec.enum_values.end(), value) ==
          spec.enum_values.end()) {
        return Status::InvalidArgument("'" + value + "' is not one of " +
                                       spec.TypeName());
      }
      return Status::OK();
    }
  }
  if (spec.has_range &&
      (!std::isfinite(numeric) || numeric < spec.min_value ||
       numeric > spec.max_value)) {
    return Status::OutOfRange(
        spec.key + "=" + value + " outside [" + RenderDouble(spec.min_value) +
        ", " + RenderDouble(spec.max_value) + "]");
  }
  return Status::OK();
}

}  // namespace

Status OptionSchema::Validate(const PartitionConfig& config) const {
  for (const auto& [key, value] : config.entries()) {
    const OptionSpec* spec = Find(key);
    if (spec == nullptr) {
      std::string known;
      for (const OptionSpec& s : specs_) {
        if (!known.empty()) known += ", ";
        known += s.key;
      }
      return Status::InvalidArgument("unknown option '" + key +
                                     "' (known: " + known + ")");
    }
    Status st = CheckValue(*spec, value);
    if (!st.ok()) {
      if (st.code() == Status::Code::kOutOfRange) return st;
      return Status::InvalidArgument("option '" + key + "': " + st.message());
    }
  }
  return Status::OK();
}

std::uint64_t OptionSchema::UintOr(const PartitionConfig& config,
                                   const std::string& key) const {
  const OptionSpec* spec = Find(key);
  if (spec == nullptr) return 0;
  const std::string* raw = config.Find(key);
  std::uint64_t v = 0;
  if (raw == nullptr || !ParseUint(*raw, &v).ok()) {
    ParseUint(spec->default_value, &v);
  }
  return v;
}

std::int64_t OptionSchema::IntOr(const PartitionConfig& config,
                                 const std::string& key) const {
  const OptionSpec* spec = Find(key);
  if (spec == nullptr) return 0;
  const std::string* raw = config.Find(key);
  std::int64_t v = 0;
  if (raw == nullptr || !ParseInt(*raw, &v).ok()) {
    ParseInt(spec->default_value, &v);
  }
  return v;
}

double OptionSchema::DoubleOr(const PartitionConfig& config,
                              const std::string& key) const {
  const OptionSpec* spec = Find(key);
  if (spec == nullptr) return 0.0;
  const std::string* raw = config.Find(key);
  double v = 0.0;
  if (raw == nullptr || !ParseDouble(*raw, &v).ok()) {
    ParseDouble(spec->default_value, &v);
  }
  return v;
}

bool OptionSchema::BoolOr(const PartitionConfig& config,
                          const std::string& key) const {
  const OptionSpec* spec = Find(key);
  if (spec == nullptr) return false;
  const std::string* raw = config.Find(key);
  bool v = false;
  if (raw == nullptr || !ParseBool(*raw, &v).ok()) {
    ParseBool(spec->default_value, &v);
  }
  return v;
}

std::string OptionSchema::StringOr(const PartitionConfig& config,
                                   const std::string& key) const {
  const OptionSpec* spec = Find(key);
  if (spec == nullptr) return "";
  const std::string* raw = config.Find(key);
  return raw != nullptr ? *raw : spec->default_value;
}

std::string OptionSchema::EnumOr(const PartitionConfig& config,
                                 const std::string& key) const {
  const OptionSpec* spec = Find(key);
  if (spec == nullptr) return "";
  const std::string* raw = config.Find(key);
  if (raw != nullptr &&
      std::find(spec->enum_values.begin(), spec->enum_values.end(), *raw) !=
          spec->enum_values.end()) {
    return *raw;
  }
  return spec->default_value;
}

}  // namespace dne
