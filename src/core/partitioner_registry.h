// PartitionerRegistry: self-registering, schema-carrying factory for every
// partitioning algorithm. Each algorithm's translation unit registers itself
// at static-initialisation time via DNE_REGISTER_PARTITIONER, so adding an
// algorithm touches exactly one .cc file — no central switch to edit. The
// registry owns the name -> {description, option schema, factory, streaming
// capability} mapping that backs CreatePartitioner(), KnownPartitioners()
// and `dne_cli --list`.
#ifndef DNE_CORE_PARTITIONER_REGISTRY_H_
#define DNE_CORE_PARTITIONER_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/partition_config.h"
#include "partition/partitioner.h"

namespace dne {

/// Everything the registry knows about one algorithm.
struct PartitionerInfo {
  std::string name;         ///< the key ("dne", "hdrf", ...)
  std::string description;  ///< one line for listings
  /// Presentation order in listings; the paper's Sec. 7 ordering. Ties (and
  /// unset values) fall back to name order.
  int paper_order = 1000;
  OptionSchema schema;
  std::function<std::unique_ptr<Partitioner>(const PartitionConfig&)> factory;
  /// True if the produced Partitioner exposes a StreamingPartitioner facet
  /// (Partitioner::streaming() != nullptr).
  bool streaming = false;
};

/// Thread safety: internally synchronised. Registration normally happens in
/// single-threaded static initialisation, but lookups (Find/List/Create) may
/// come from any thread — the serve/bench harnesses construct partitioners
/// from pool workers — so the table is mutex-protected. Returned
/// PartitionerInfo pointers stay valid for the process lifetime: the
/// registry is append-only and each info is heap-allocated once.
class PartitionerRegistry {
 public:
  /// The process-wide registry all DNE_REGISTER_PARTITIONER sites feed.
  static PartitionerRegistry& Global();

  /// Registers an algorithm. Duplicate names or a missing factory abort:
  /// both are build-time authoring bugs, not runtime conditions. Returns
  /// true so it can initialise a namespace-scope constant.
  bool Register(PartitionerInfo info) DNE_EXCLUDES(mu_);

  /// Info for `name`, or nullptr.
  const PartitionerInfo* Find(const std::string& name) const DNE_EXCLUDES(mu_);

  /// All registered names in paper order.
  std::vector<std::string> Names() const DNE_EXCLUDES(mu_);

  /// All registered infos in paper order (pointers stay valid for the
  /// process lifetime; the registry is append-only).
  std::vector<const PartitionerInfo*> List() const DNE_EXCLUDES(mu_);

  /// Validates `config` against the algorithm's schema and constructs it.
  /// NotFound for unknown names (message lists the known ones).
  Status Create(const std::string& name, const PartitionConfig& config,
                std::unique_ptr<Partitioner>* out) const DNE_EXCLUDES(mu_);

 private:
  const PartitionerInfo* FindLocked(const std::string& name) const
      DNE_REQUIRES(mu_);
  std::vector<const PartitionerInfo*> ListLocked() const DNE_REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<std::unique_ptr<PartitionerInfo>> infos_ DNE_GUARDED_BY(mu_);
};

/// Registers a partitioner from namespace scope of its .cc file:
///
///   DNE_REGISTER_PARTITIONER(hdrf, MakeHdrfInfo());
///
/// The first argument is a unique C identifier, the rest an expression
/// yielding a PartitionerInfo.
#define DNE_REGISTER_PARTITIONER(ident, ...)                         \
  namespace {                                                        \
  [[maybe_unused]] const bool dne_registered_##ident =               \
      ::dne::PartitionerRegistry::Global().Register(__VA_ARGS__);    \
  }

}  // namespace dne

#endif  // DNE_CORE_PARTITIONER_REGISTRY_H_
