// PartitionStream: the out-of-core driver that connects an EdgeStreamReader
// (file- or generator-backed, graph/edge_stream_reader.h) to any
// StreamingPartitioner. Chunks are double-buffered: while the partitioner
// consumes the current chunk, the next one is fetched on a ThreadPool
// worker, so I/O (or generation) overlaps placement. Peak footprint is
// O(chunk + partitioner state) — the 16-byte-per-edge edge list is never
// materialised. The partitioner state includes the collected assignment
// (4 bytes per edge of output), which is what Finish() emits; the shard
// spill path replays the stream against it rather than buffering edges.
//
//   std::unique_ptr<EdgeStreamReader> reader;
//   DNE_RETURN_IF_ERROR(OpenEdgeStream(path, "auto", 1 << 20, &reader));
//   auto p = MustCreatePartitioner("hdrf");
//   ThreadPool pool(2);
//   PartitionStreamOptions opts;
//   opts.read_ahead = &pool;
//   EdgePartition ep;
//   DNE_RETURN_IF_ERROR(PartitionStream(reader.get(), p->streaming(), 64,
//                                       PartitionContext{}, &ep, opts));
#ifndef DNE_CORE_PARTITION_STREAM_H_
#define DNE_CORE_PARTITION_STREAM_H_

#include <cstdint>

#include "common/status.h"
#include "core/partition_context.h"
#include "graph/edge_stream_reader.h"
#include "partition/edge_partition.h"
#include "partition/partition_io.h"
#include "partition/streaming_partitioner.h"
#include "runtime/mem_tracker.h"
#include "runtime/thread_pool.h"

namespace dne {

struct PartitionStreamOptions {
  /// When set, the next chunk is prefetched on this pool while the current
  /// one is being partitioned (double buffering). nullptr = fetch inline.
  ThreadPool* read_ahead = nullptr;
  /// When set, the harness accounts its chunk buffers (rank 0) so a bench or
  /// test can assert the O(chunk) bound on ingestion memory.
  MemTracker* mem_tracker = nullptr;
  /// When set, per-partition edge shards are spilled after Finish() via a
  /// second pass over the reader (reader->Reset() must replay the identical
  /// stream). The writer must be constructed but not yet opened.
  PartitionShardWriter* shard_writer = nullptr;
};

struct PartitionStreamResult {
  std::uint64_t edges_streamed = 0;
  std::uint64_t chunks = 0;
};

/// Streams every chunk of `reader` through `streaming` and collects the
/// assignment (indexed by arrival order) into *out. `result` (optional)
/// reports stream totals.
Status PartitionStream(EdgeStreamReader* reader,
                       StreamingPartitioner* streaming,
                       std::uint32_t num_partitions,
                       const PartitionContext& ctx, EdgePartition* out,
                       const PartitionStreamOptions& options = {},
                       PartitionStreamResult* result = nullptr);

}  // namespace dne

#endif  // DNE_CORE_PARTITION_STREAM_H_
