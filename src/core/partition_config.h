// PartitionConfig + OptionSchema: typed, string-parseable configuration for
// every registered partitioner. A partitioner declares its options once (an
// OptionSchema of typed OptionSpecs with defaults and ranges); callers build
// a PartitionConfig from `key=value` strings (CLI flags, sweep scripts,
// config files) and the registry validates it against the schema before the
// algorithm is constructed — no recompilation to sweep any knob of any
// algorithm.
#ifndef DNE_CORE_PARTITION_CONFIG_H_
#define DNE_CORE_PARTITION_CONFIG_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dne {

/// Value type of one declared option.
enum class OptionType { kInt, kUint, kDouble, kBool, kEnum, kString };

/// Declaration of one option: key, type, default, admissible range (numeric
/// types) or value set (enums), and a help line for `dne_cli --list`.
struct OptionSpec {
  std::string key;
  OptionType type = OptionType::kUint;
  std::string default_value;  ///< rendered with the same syntax Parse accepts
  double min_value = 0.0;     ///< inclusive; numeric types only
  double max_value = 0.0;     ///< inclusive; numeric types only
  bool has_range = false;
  std::vector<std::string> enum_values;  ///< kEnum: the admissible spellings
  std::string help;

  static OptionSpec Uint(std::string key, std::uint64_t def, std::string help);
  static OptionSpec Int(std::string key, std::int64_t def, std::int64_t min,
                        std::int64_t max, std::string help);
  static OptionSpec Double(std::string key, double def, double min, double max,
                           std::string help);
  static OptionSpec Bool(std::string key, bool def, std::string help);
  static OptionSpec Enum(std::string key, std::vector<std::string> values,
                         std::string def, std::string help);
  static OptionSpec String(std::string key, std::string def, std::string help);

  /// "uint", "int", "double", "bool", "string" or "enum{a|b|c}".
  std::string TypeName() const;
};

/// String-keyed option values for one partitioner run. Values stay raw
/// strings until validated/read against an OptionSchema, so a config can be
/// assembled before the target algorithm is even known.
class PartitionConfig {
 public:
  PartitionConfig() = default;
  PartitionConfig(std::initializer_list<std::pair<std::string, std::string>> kv);

  /// Sets key to a raw value (last set wins). Empty keys are rejected.
  Status Set(const std::string& key, const std::string& value);

  /// Parses one "key=value" assignment (the `--opt` syntax).
  Status ParseAssignment(const std::string& assignment);

  /// Parses a list of "key=value" assignments into *out.
  static Status FromAssignments(const std::vector<std::string>& assignments,
                                PartitionConfig* out);

  bool Has(const std::string& key) const { return values_.count(key) != 0; }
  /// Raw value or nullptr.
  const std::string* Find(const std::string& key) const;
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Key -> raw value, sorted by key.
  const std::map<std::string, std::string>& entries() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

/// Ordered set of OptionSpecs declared by one partitioner.
class OptionSchema {
 public:
  OptionSchema() = default;
  OptionSchema(std::initializer_list<OptionSpec> specs) : specs_(specs) {}

  OptionSchema& Add(OptionSpec spec) {
    specs_.push_back(std::move(spec));
    return *this;
  }

  const std::vector<OptionSpec>& specs() const { return specs_; }
  const OptionSpec* Find(const std::string& key) const;

  /// Checks every config entry against the schema: unknown keys and
  /// type-mismatched values are InvalidArgument, range violations are
  /// OutOfRange. A config may omit any option (the default applies).
  Status Validate(const PartitionConfig& config) const;

  /// Typed readers: the config value if present, else the spec's default.
  /// The key must be declared in this schema and the config must have been
  /// Validate()d; violations surface as the spec default (never UB).
  std::uint64_t UintOr(const PartitionConfig& config,
                       const std::string& key) const;
  std::int64_t IntOr(const PartitionConfig& config,
                     const std::string& key) const;
  double DoubleOr(const PartitionConfig& config, const std::string& key) const;
  bool BoolOr(const PartitionConfig& config, const std::string& key) const;
  std::string EnumOr(const PartitionConfig& config,
                     const std::string& key) const;
  std::string StringOr(const PartitionConfig& config,
                       const std::string& key) const;

 private:
  std::vector<OptionSpec> specs_;
};

/// Strict whole-string parsers shared by Validate and the typed readers.
Status ParseUint(const std::string& text, std::uint64_t* out);
Status ParseInt(const std::string& text, std::int64_t* out);
Status ParseDouble(const std::string& text, double* out);
Status ParseBool(const std::string& text, bool* out);

}  // namespace dne

#endif  // DNE_CORE_PARTITION_CONFIG_H_
