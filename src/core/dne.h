// Umbrella header: the library's public API in one include.
//
//   #include "core/dne.h"
//
//   dne::Graph g = dne::Graph::Build(dne::GenerateRmat({.scale = 16}));
//   auto part = dne::MustCreatePartitioner("dne");
//   dne::EdgePartition ep;
//   dne::Status st = part->Partition(g, 64, &ep);
//   auto metrics = dne::ComputePartitionMetrics(g, ep);
#ifndef DNE_CORE_DNE_H_
#define DNE_CORE_DNE_H_

#include "common/status.h"    // IWYU pragma: export
#include "common/types.h"     // IWYU pragma: export
#include "core/factory.h"     // IWYU pragma: export
#include "core/partition_config.h"      // IWYU pragma: export
#include "core/partition_context.h"     // IWYU pragma: export
#include "core/partition_stream.h"      // IWYU pragma: export
#include "core/partitioner_registry.h"  // IWYU pragma: export
#include "core/version.h"     // IWYU pragma: export
#include "gen/chung_lu.h"     // IWYU pragma: export
#include "gen/dataset.h"      // IWYU pragma: export
#include "gen/erdos_renyi.h"  // IWYU pragma: export
#include "gen/generator_stream.h"  // IWYU pragma: export
#include "gen/lattice.h"      // IWYU pragma: export
#include "gen/rmat.h"         // IWYU pragma: export
#include "gen/ring_complete.h"  // IWYU pragma: export
#include "graph/edge_stream_reader.h"  // IWYU pragma: export
#include "graph/graph.h"      // IWYU pragma: export
#include "graph/graph_io.h"   // IWYU pragma: export
#include "metrics/partition_metrics.h"  // IWYU pragma: export
#include "metrics/theory.h"   // IWYU pragma: export
#include "partition/dne/dne_partitioner.h"  // IWYU pragma: export
#include "partition/partition_io.h"         // IWYU pragma: export
#include "partition/partitioner.h"          // IWYU pragma: export
#include "partition/streaming_adapter.h"      // IWYU pragma: export
#include "partition/streaming_partitioner.h"  // IWYU pragma: export

#endif  // DNE_CORE_DNE_H_
