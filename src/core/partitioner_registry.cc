#include "core/partitioner_registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace dne {

PartitionerRegistry& PartitionerRegistry::Global() {
  // Leaked singleton: construct-on-first-use from any static initialiser,
  // never destructed (registrations may outlive main()).
  static PartitionerRegistry* registry = new PartitionerRegistry();
  return *registry;
}

bool PartitionerRegistry::Register(PartitionerInfo info) {
  if (info.name.empty() || !info.factory) {
    std::fprintf(stderr,
                 "PartitionerRegistry: registration for '%s' is missing a "
                 "name or factory\n",
                 info.name.c_str());
    std::abort();
  }
  MutexLock lock(&mu_);
  if (FindLocked(info.name) != nullptr) {
    std::fprintf(stderr, "PartitionerRegistry: duplicate partitioner '%s'\n",
                 info.name.c_str());
    std::abort();
  }
  infos_.push_back(std::make_unique<PartitionerInfo>(std::move(info)));
  return true;
}

const PartitionerInfo* PartitionerRegistry::FindLocked(
    const std::string& name) const {
  for (const auto& info : infos_) {
    if (info->name == name) return info.get();
  }
  return nullptr;
}

const PartitionerInfo* PartitionerRegistry::Find(
    const std::string& name) const {
  MutexLock lock(&mu_);
  return FindLocked(name);
}

std::vector<const PartitionerInfo*> PartitionerRegistry::ListLocked() const {
  std::vector<const PartitionerInfo*> out;
  out.reserve(infos_.size());
  for (const auto& info : infos_) out.push_back(info.get());
  std::sort(out.begin(), out.end(),
            [](const PartitionerInfo* a, const PartitionerInfo* b) {
              if (a->paper_order != b->paper_order) {
                return a->paper_order < b->paper_order;
              }
              return a->name < b->name;
            });
  return out;
}

std::vector<const PartitionerInfo*> PartitionerRegistry::List() const {
  MutexLock lock(&mu_);
  return ListLocked();
}

std::vector<std::string> PartitionerRegistry::Names() const {
  std::vector<std::string> names;
  for (const PartitionerInfo* info : List()) names.push_back(info->name);
  return names;
}

Status PartitionerRegistry::Create(const std::string& name,
                                   const PartitionConfig& config,
                                   std::unique_ptr<Partitioner>* out) const {
  const PartitionerInfo* info = Find(name);
  if (info == nullptr) {
    std::string known;
    for (const std::string& n : Names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::NotFound("unknown partitioner: " + name +
                            " (known: " + known + ")");
  }
  DNE_RETURN_IF_ERROR(info->schema.Validate(config));
  *out = info->factory(config);
  return Status::OK();
}

}  // namespace dne
