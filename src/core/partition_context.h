// PartitionContext: per-run environment every partitioner receives through
// Partition(g, k, ctx, out) — seed override, host thread pool, cooperative
// cancellation, progress reporting, and a sink that collects uniform
// PartitionRunStats across all algorithms. A default-constructed context is
// inert (no override, no cancellation, no callbacks) and is what the
// two-argument Partition overload passes.
#ifndef DNE_CORE_PARTITION_CONTEXT_H_
#define DNE_CORE_PARTITION_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>

#include "common/status.h"

namespace dne {

class ThreadPool;     // runtime/thread_pool.h
class RunStatsSink;   // partition/partitioner.h
class Communicator;   // runtime/communicator.h

/// One progress report. `total == 0` means the total is unknown (e.g. the
/// superstep count of an expansion algorithm before it terminates).
struct ProgressEvent {
  const char* stage;    ///< e.g. "edges", "superstep", "round", "window"
  std::uint64_t done;
  std::uint64_t total;
};

class PartitionContext {
 public:
  /// When set, overrides the partitioner's configured seed for this run.
  std::optional<std::uint64_t> seed;

  /// Host threads the algorithm may use; nullptr = run single-threaded (or
  /// let the algorithm manage its own configured pool, as DNE does).
  ThreadPool* thread_pool = nullptr;

  /// Cooperative cancellation: partitioners poll this flag at loop
  /// boundaries and abort with Status::Cancelled when it becomes true. The
  /// flag is owned by the caller and may be flipped from any thread (or from
  /// inside the progress callback).
  ///
  /// Memory-ordering contract: the poll uses memory_order_relaxed — the flag
  /// is a pure go/no-go signal carrying no payload, so cancellation needs no
  /// ordering with any other memory. The only guarantee required (and given:
  /// atomics are eventually visible) is that a store becomes visible to the
  /// polling loop; cancellation latency is "within one loop iteration", not
  /// "immediately". Anyone adding state that must be visible *with* the
  /// cancel signal must switch the store/load pair to release/acquire.
  const std::atomic<bool>* cancel = nullptr;

  /// Invoked from the partitioning thread at coarse milestones. Must be
  /// cheap; a null function disables reporting.
  std::function<void(const ProgressEvent&)> progress;

  /// Collects one uniform PartitionRunStats record per Partition() call
  /// (including failed runs), with wall time filled by the harness for
  /// every algorithm.
  RunStatsSink* stats_sink = nullptr;

  /// Advanced: a caller-provided transport endpoint for the distributed
  /// algorithms (currently DNE). When set, the superstep loop runs over
  /// this Communicator instead of constructing one from its options — the
  /// endpoint must host every simulated rank (local_ranks() == all |P|
  /// ranks) and it overrides the algorithm's `transport` option. The
  /// endpoint is borrowed, not owned.
  Communicator* communicator = nullptr;

  bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  /// Status::Cancelled if the flag is set, OK otherwise — the idiom is
  /// DNE_RETURN_IF_ERROR(ctx.CheckCancelled()) at loop boundaries.
  Status CheckCancelled() const {
    if (cancelled()) return Status::Cancelled("partitioning cancelled");
    return Status::OK();
  }

  void ReportProgress(const char* stage, std::uint64_t done,
                      std::uint64_t total) const {
    if (progress) progress(ProgressEvent{stage, done, total});
  }

  /// The seed this run should use given the algorithm's configured one.
  std::uint64_t EffectiveSeed(std::uint64_t configured) const {
    return seed.has_value() ? *seed : configured;
  }
};

}  // namespace dne

#endif  // DNE_CORE_PARTITION_CONTEXT_H_
