// Library version.
#ifndef DNE_CORE_VERSION_H_
#define DNE_CORE_VERSION_H_

namespace dne {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace dne

#endif  // DNE_CORE_VERSION_H_
