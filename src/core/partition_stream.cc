#include "core/partition_stream.h"

#include <exception>
#include <future>
#include <span>
#include <utility>
#include <vector>

namespace dne {

namespace {

// Mirrors a byte amount into a MemTracker (rank 0), releasing it on exit.
class TrackedBytes {
 public:
  explicit TrackedBytes(MemTracker* tracker) : tracker_(tracker) {}
  ~TrackedBytes() { Update(0); }

  void Update(std::size_t bytes) {
    if (tracker_ == nullptr) return;
    if (bytes > bytes_) tracker_->Allocate(0, bytes - bytes_);
    if (bytes < bytes_) tracker_->Release(0, bytes_ - bytes);
    bytes_ = bytes;
  }

 private:
  MemTracker* tracker_;
  std::size_t bytes_ = 0;
};

}  // namespace

Status PartitionStream(EdgeStreamReader* reader,
                       StreamingPartitioner* streaming,
                       std::uint32_t num_partitions,
                       const PartitionContext& ctx, EdgePartition* out,
                       const PartitionStreamOptions& options,
                       PartitionStreamResult* result) {
  if (reader == nullptr) {
    return Status::InvalidArgument("reader must not be null");
  }
  if (streaming == nullptr) {
    return Status::InvalidArgument("partitioner has no streaming facet");
  }
  DNE_RETURN_IF_ERROR(streaming->BeginStream(num_partitions, ctx));

  std::vector<Edge> current, ahead;
  TrackedBytes tracked(options.mem_tracker);
  const std::uint64_t hint = reader->EdgeCountHint();
  std::uint64_t streamed = 0, chunks = 0;

  DNE_RETURN_IF_ERROR(reader->NextChunk(&current));
  tracked.Update((current.capacity() + ahead.capacity()) * sizeof(Edge));
  while (!current.empty()) {
    // Double buffering: fetch the next chunk on the pool while the
    // partitioner consumes this one. The fetch owns `ahead` and `reader`
    // until the future completes, so every exit path below waits first.
    Status ahead_status;
    std::future<void> fetch;
    if (options.read_ahead != nullptr) {
      fetch = options.read_ahead->Submit(
          [reader, &ahead, &ahead_status] {
            ahead_status = reader->NextChunk(&ahead);
          });
    }
    const Status add_status =
        streaming->AddEdges(std::span<const Edge>(current));
    if (fetch.valid()) {
      // get(), not wait(): an exception escaping the fetch (e.g. bad_alloc
      // resizing the chunk buffer) is stored in the future and would
      // otherwise be silently dropped, leaving `ahead` stale.
      try {
        fetch.get();
      } catch (const std::exception& e) {
        if (ahead_status.ok()) {
          ahead_status =
              Status::Internal(std::string("chunk read-ahead failed: ") +
                               e.what());
        }
      }
    }
    DNE_RETURN_IF_ERROR(add_status);
    DNE_RETURN_IF_ERROR(ahead_status);
    if (options.read_ahead == nullptr) {
      DNE_RETURN_IF_ERROR(reader->NextChunk(&ahead));
    }
    streamed += current.size();
    ++chunks;
    ctx.ReportProgress("edges", streamed, hint);
    std::swap(current, ahead);
    tracked.Update((current.capacity() + ahead.capacity()) * sizeof(Edge));
  }
  DNE_RETURN_IF_ERROR(streaming->Finish(out));
  if (result != nullptr) {
    result->edges_streamed = streamed;
    result->chunks = chunks;
  }

  if (options.shard_writer == nullptr) return Status::OK();
  if (out->num_edges() != streamed) {
    return Status::Internal("assignment size does not match streamed edges");
  }
  // Second pass: replay the stream and spill each edge to its partition's
  // shard. O(chunk + writer buffers) memory — the edges themselves were not
  // retained during pass one.
  DNE_RETURN_IF_ERROR(reader->Reset());
  DNE_RETURN_IF_ERROR(options.shard_writer->Open());
  const std::vector<PartitionId>& assignment = out->assignment();
  std::uint64_t replayed = 0;
  for (;;) {
    DNE_RETURN_IF_ERROR(ctx.CheckCancelled());
    DNE_RETURN_IF_ERROR(reader->NextChunk(&current));
    if (current.empty()) break;
    if (replayed + current.size() > streamed) {
      return Status::Internal("replayed stream is longer than the first pass");
    }
    DNE_RETURN_IF_ERROR(options.shard_writer->AppendBatch(
        std::span<const Edge>(current),
        std::span<const PartitionId>(assignment.data() + replayed,
                                     current.size())));
    replayed += current.size();
  }
  if (replayed != streamed) {
    return Status::Internal("replayed stream is shorter than the first pass");
  }
  return options.shard_writer->Finish();
}

}  // namespace dne
