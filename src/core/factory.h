// Partitioner factory: string-keyed construction for benches, examples and
// downstream users.
#ifndef DNE_CORE_FACTORY_H_
#define DNE_CORE_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "partition/partitioner.h"

namespace dne {

/// Knobs shared across partitioner families; each implementation picks the
/// fields it understands.
struct FactoryOptions {
  std::uint64_t seed = 1;
  double alpha = 1.1;     ///< balance slack (NE / SNE / DNE)
  double lambda = 0.1;    ///< DNE expansion factor
  int lp_iterations = 20; ///< label-propagation sweeps
  std::size_t hybrid_threshold = 100;  ///< hybrid/ginger degree threshold
};

/// Known partitioner names, in the paper's presentation order:
/// "random", "grid", "dbh", "hybrid", "oblivious", "ginger", "hdrf",
/// "ne", "sne", "spinner", "xtrapulp", "sheep", "multilevel", "dne".
std::vector<std::string> KnownPartitioners();

/// Creates a partitioner by name. Returns NotFound for unknown names.
Status CreatePartitioner(const std::string& name,
                         const FactoryOptions& options,
                         std::unique_ptr<Partitioner>* out);

/// Convenience wrapper that aborts on error (benches/examples).
std::unique_ptr<Partitioner> MustCreatePartitioner(
    const std::string& name, const FactoryOptions& options = FactoryOptions{});

}  // namespace dne

#endif  // DNE_CORE_FACTORY_H_
