// Partitioner factory: thin convenience layer over PartitionerRegistry for
// benches, examples and downstream users. Algorithms self-register (see
// core/partitioner_registry.h); configuration travels as a typed
// PartitionConfig validated against each algorithm's declared OptionSchema.
#ifndef DNE_CORE_FACTORY_H_
#define DNE_CORE_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/partition_config.h"
#include "core/partitioner_registry.h"
#include "partition/partitioner.h"

namespace dne {

/// All registered partitioner names, in the paper's presentation order:
/// "random", "grid", "dbh", "hybrid", "oblivious", "ginger", "hdrf",
/// "fennel", "ne", "sne", "spinner", "xtrapulp", "sheep", "multilevel",
/// "dne", "dynamic".
std::vector<std::string> KnownPartitioners();

/// Creates a partitioner by name with a validated config. NotFound for
/// unknown names; InvalidArgument/OutOfRange for bad options.
Status CreatePartitioner(const std::string& name,
                         const PartitionConfig& config,
                         std::unique_ptr<Partitioner>* out);

/// Creates a partitioner by name with every option at its declared default.
Status CreatePartitioner(const std::string& name,
                         std::unique_ptr<Partitioner>* out);

/// Convenience wrappers that abort on error (benches/examples).
std::unique_ptr<Partitioner> MustCreatePartitioner(const std::string& name);
std::unique_ptr<Partitioner> MustCreatePartitioner(
    const std::string& name, const PartitionConfig& config);

// --- Deprecated compatibility shim (one release) ---------------------------

/// Pre-registry grab-bag of knobs. Fields map onto config keys (seed ->
/// "seed", alpha -> "alpha", lambda -> "lambda", lp_iterations ->
/// "iterations", hybrid_threshold -> "degree_threshold"); keys a partitioner
/// does not declare are dropped, mirroring the old "each implementation
/// picks the fields it understands" behaviour.
struct FactoryOptions {
  std::uint64_t seed = 1;
  double alpha = 1.1;     ///< balance slack (NE / SNE / DNE)
  double lambda = 0.1;    ///< DNE expansion factor
  int lp_iterations = 20; ///< label-propagation sweeps
  std::size_t hybrid_threshold = 100;  ///< hybrid/ginger degree threshold
};

[[deprecated("use the PartitionConfig overload")]] Status CreatePartitioner(
    const std::string& name, const FactoryOptions& options,
    std::unique_ptr<Partitioner>* out);

[[deprecated("use the PartitionConfig overload")]] std::unique_ptr<Partitioner>
MustCreatePartitioner(const std::string& name, const FactoryOptions& options);

}  // namespace dne

#endif  // DNE_CORE_FACTORY_H_
