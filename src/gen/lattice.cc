#include "gen/lattice.h"

#include "common/random.h"

namespace dne {

EdgeList GenerateLattice(const LatticeOptions& options) {
  SplitMix64 rng(options.seed ^ 0x790e3f1fca2b1aebULL);
  const std::uint64_t w = options.width;
  const std::uint64_t h = options.height;
  EdgeList list;
  list.SetNumVertices(w * h);
  list.Reserve(2 * w * h);
  auto id = [w](std::uint64_t x, std::uint64_t y) { return y * w + x; };
  for (std::uint64_t y = 0; y < h; ++y) {
    for (std::uint64_t x = 0; x < w; ++x) {
      if (x + 1 < w && rng.NextDouble() < options.keep_probability) {
        list.Add(id(x, y), id(x + 1, y));
      }
      if (y + 1 < h && rng.NextDouble() < options.keep_probability) {
        list.Add(id(x, y), id(x, y + 1));
      }
      if (x + 1 < w && y + 1 < h &&
          rng.NextDouble() < options.diagonal_probability) {
        list.Add(id(x, y), id(x + 1, y + 1));
      }
    }
  }
  return list;
}

}  // namespace dne
