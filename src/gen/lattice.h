// Road-network stand-in: a 2-D lattice with random edge deletions and a few
// diagonal shortcuts. Matches the structural profile of the paper's Sec. 7.7
// road graphs (California/Pennsylvania/Texas): mean degree ~2.5-2.8, tiny
// maximum degree, huge diameter, no skew.
#ifndef DNE_GEN_LATTICE_H_
#define DNE_GEN_LATTICE_H_

#include <cstdint>

#include "graph/edge_list.h"

namespace dne {

struct LatticeOptions {
  std::uint64_t width = 256;
  std::uint64_t height = 256;
  /// Probability of *keeping* each lattice edge (roads have dead ends).
  double keep_probability = 0.9;
  /// Probability of adding a diagonal shortcut at a cell (highway ramps).
  double diagonal_probability = 0.05;
  std::uint64_t seed = 1;
};

EdgeList GenerateLattice(const LatticeOptions& options);

}  // namespace dne

#endif  // DNE_GEN_LATTICE_H_
