#include "gen/dataset.h"

#include <cstdio>
#include <cstdlib>

#include "gen/lattice.h"
#include "gen/rmat.h"

namespace dne {

namespace {

// Per-dataset RMAT recipe. Scale/edge-factor are chosen so that |V| and
// |E|/|V| track the paper's Table 2 graphs at roughly 1/1000 the size:
//   Pokec      1.63M/30.6M  (EF ~ 19)  -> scale 14, EF 19
//   Flickr     2.30M/33.1M  (EF ~ 14)  -> scale 14, EF 14
//   LiveJ.     4.84M/68.5M  (EF ~ 14)  -> scale 15, EF 14
//   Orkut      3.07M/117.2M (EF ~ 38)  -> scale 14, EF 38
//   Twitter    41.7M/1.46B  (EF ~ 35)  -> scale 15, EF 35
//   Friendster 65.6M/1.80B  (EF ~ 27)  -> scale 16, EF 27
//   WebUK      105.2M/3.72B (EF ~ 35)  -> scale 16, EF 35 (web: stronger
//              community structure -> higher RMAT 'a')
struct Recipe {
  DatasetInfo info;
  int scale;
  int edge_factor;
  double a;  // RMAT skew knob; b = c = (1 - a - d)/2, d fixed at 0.05.
};

const Recipe kSkewed[] = {
    {{"pokec-sim", "Pokec", "social", 1.63, 30.62}, 14, 19, 0.57},
    {{"flickr-sim", "Flickr", "social", 2.30, 33.14}, 14, 14, 0.57},
    {{"livej-sim", "LiveJ.", "social", 4.84, 68.47}, 15, 14, 0.57},
    {{"orkut-sim", "Orkut", "social", 3.07, 117.18}, 14, 38, 0.57},
    {{"twitter-sim", "Twitter", "social", 41.65, 1460.0}, 15, 35, 0.57},
    {{"friendster-sim", "Friendster", "social", 65.60, 1800.0}, 16, 27, 0.57},
    {{"webuk-sim", "WebUK", "web", 105.15, 3720.0}, 16, 35, 0.65},
};

struct RoadRecipe {
  DatasetInfo info;
  std::uint64_t width;
  std::uint64_t height;
};

// Paper road graphs: California 1.96M/2.76M, Pennsylvania 1.08M/1.54M,
// Texas 1.37M/1.92M — mean degree ~2.8, reproduced at ~1/40 scale.
const RoadRecipe kRoads[] = {
    {{"calif-road-sim", "California", "road", 1.96, 2.76}, 256, 192},
    {{"penn-road-sim", "Pennsylvania", "road", 1.08, 1.54}, 176, 152},
    {{"texas-road-sim", "Texas", "road", 1.37, 1.92}, 208, 168},
};

}  // namespace

std::vector<DatasetInfo> SkewedDatasets() {
  std::vector<DatasetInfo> out;
  for (const Recipe& r : kSkewed) out.push_back(r.info);
  return out;
}

std::vector<DatasetInfo> RoadDatasets() {
  std::vector<DatasetInfo> out;
  for (const RoadRecipe& r : kRoads) out.push_back(r.info);
  return out;
}

Status BuildDataset(const std::string& name, int scale_shift, Graph* out) {
  for (const Recipe& r : kSkewed) {
    if (r.info.name != name) continue;
    RmatOptions opt;
    opt.scale = r.scale - scale_shift;
    if (opt.scale < 4) {
      return Status::InvalidArgument("scale_shift too large for " + name);
    }
    opt.edge_factor = r.edge_factor;
    opt.a = r.a;
    opt.b = opt.c = (1.0 - r.a - 0.05) / 2.0;
    opt.seed = 0x9a3f + static_cast<std::uint64_t>(r.scale);
    *out = Graph::Build(GenerateRmat(opt));
    return Status::OK();
  }
  for (const RoadRecipe& r : kRoads) {
    if (r.info.name != name) continue;
    LatticeOptions opt;
    int shift = scale_shift / 2;
    opt.width = shift >= 0 ? (r.width >> shift) : (r.width << -shift);
    opt.height = shift >= 0 ? (r.height >> shift) : (r.height << -shift);
    if (opt.width < 4 || opt.height < 4) {
      return Status::InvalidArgument("scale_shift too large for " + name);
    }
    opt.seed = 0x60ad + r.width;
    *out = Graph::Build(GenerateLattice(opt));
    return Status::OK();
  }
  return Status::NotFound("unknown dataset: " + name);
}

Graph MustBuildDataset(const std::string& name, int scale_shift) {
  Graph g;
  Status st = BuildDataset(name, scale_shift, &g);
  if (!st.ok()) {
    std::fprintf(stderr, "MustBuildDataset(%s): %s\n", name.c_str(),
                 st.ToString().c_str());
    std::abort();
  }
  return g;
}

}  // namespace dne
