#include "gen/chung_lu.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/random.h"

namespace dne {

EdgeList GenerateChungLu(const ChungLuOptions& options) {
  SplitMix64 rng(options.seed ^ 0xa02bdbf7bb3c0a7ULL);
  const std::uint64_t n = options.num_vertices;
  std::uint64_t dmax = options.max_degree;
  if (dmax == 0) {
    dmax = static_cast<std::uint64_t>(
        std::sqrt(static_cast<double>(n)));
  }

  // Inverse-CDF sampling of the discrete power law truncated at dmax:
  // P(d >= x) ~ x^{-(alpha-1)} for x >= dmin.
  const double exponent = -1.0 / (options.alpha - 1.0);
  std::vector<std::uint64_t> degree(n);
  std::uint64_t total = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    double u = rng.NextDouble();
    if (u <= 0.0) u = 1e-18;
    double d = static_cast<double>(options.min_degree) * std::pow(u, exponent);
    std::uint64_t di = static_cast<std::uint64_t>(d);
    if (di < options.min_degree) di = options.min_degree;
    if (di > dmax) di = dmax;
    degree[v] = di;
    total += di;
  }

  // Edge sampling: pick both endpoints degree-proportionally via a flat
  // "stub" array (configuration-model style; collisions removed later).
  std::vector<VertexId> stubs;
  stubs.reserve(total);
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint64_t k = 0; k < degree[v]; ++k) stubs.push_back(v);
  }

  EdgeList list;
  list.SetNumVertices(n);
  const std::uint64_t num_edges = total / 2;
  list.Reserve(num_edges);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    VertexId u = stubs[rng.Below(stubs.size())];
    VertexId v = stubs[rng.Below(stubs.size())];
    list.Add(u, v);
  }
  return list;
}

}  // namespace dne
