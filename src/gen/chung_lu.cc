#include "gen/chung_lu.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace dne {

ChungLuSampler::ChungLuSampler(const ChungLuOptions& options)
    : rng_(options.seed ^ 0xa02bdbf7bb3c0a7ULL) {
  const std::uint64_t n = options.num_vertices;
  std::uint64_t dmax = options.max_degree;
  if (dmax == 0) {
    dmax = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(n)));
  }

  // Inverse-CDF sampling of the discrete power law truncated at dmax:
  // P(d >= x) ~ x^{-(alpha-1)} for x >= dmin.
  const double exponent = -1.0 / (options.alpha - 1.0);
  cumulative_.resize(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    double u = rng_.NextDouble();
    if (u <= 0.0) u = 1e-18;
    double d = static_cast<double>(options.min_degree) * std::pow(u, exponent);
    std::uint64_t di = static_cast<std::uint64_t>(d);
    if (di < options.min_degree) di = options.min_degree;
    if (di > dmax) di = dmax;
    total_stubs_ += di;
    cumulative_[v] = total_stubs_;
  }
}

Edge ChungLuSampler::Next() {
  // stubs[i] is the vertex v with cumulative_[v-1] <= i < cumulative_[v];
  // upper_bound on the cumulative array performs that lookup directly.
  auto pick = [&](std::uint64_t i) -> VertexId {
    return static_cast<VertexId>(
        std::upper_bound(cumulative_.begin(), cumulative_.end(), i) -
        cumulative_.begin());
  };
  const VertexId u = pick(rng_.Below(total_stubs_));
  const VertexId v = pick(rng_.Below(total_stubs_));
  return Edge{u, v};
}

EdgeList GenerateChungLu(const ChungLuOptions& options) {
  ChungLuSampler sampler(options);
  EdgeList list;
  list.SetNumVertices(options.num_vertices);
  const std::uint64_t num_edges = sampler.num_edges();
  list.Reserve(num_edges);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    const Edge e = sampler.Next();
    list.Add(e.src, e.dst);
  }
  return list;
}

}  // namespace dne
