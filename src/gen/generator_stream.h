// GeneratorEdgeStream: a synthetic-workload backend for the out-of-core
// ingestion pipeline. Emits RMAT, Erdős–Rényi or Chung-Lu edges chunk by
// chunk without ever materialising the edge list, so arbitrarily large
// streams cost O(chunk) memory (plus O(V) degree state for Chung-Lu). For
// RMAT and Erdős–Rényi the emitted sequence is bit-identical to the batch
// generators (gen/rmat.h, gen/erdos_renyi.h) on the same options; Chung-Lu
// matches GenerateChungLu through the shared ChungLuSampler.
#ifndef DNE_GEN_GENERATOR_STREAM_H_
#define DNE_GEN_GENERATOR_STREAM_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "common/random.h"
#include "common/status.h"
#include "gen/chung_lu.h"
#include "gen/erdos_renyi.h"
#include "gen/rmat.h"
#include "graph/edge_stream_reader.h"

namespace dne {

struct GeneratorStreamOptions {
  enum class Kind { kRmat, kErdosRenyi, kChungLu };

  Kind kind = Kind::kRmat;
  /// Parameters of the selected model; the other two are ignored.
  RmatOptions rmat;
  struct ErdosRenyi {
    std::uint64_t num_vertices = 1 << 16;
    std::uint64_t num_edges = 1 << 20;
    std::uint64_t seed = 1;
  };
  ErdosRenyi erdos_renyi;
  ChungLuOptions chung_lu;
  /// Edges per emitted chunk.
  std::size_t chunk_edges = 1 << 20;
};

class GeneratorEdgeStream final : public EdgeStreamReader {
 public:
  /// Validates the options (positive chunk size, sane RMAT scale, nonzero
  /// vertex universe).
  static Status Open(const GeneratorStreamOptions& options,
                     std::unique_ptr<GeneratorEdgeStream>* out);

  Status NextChunk(std::vector<Edge>* out) override;
  Status Reset() override;
  std::uint64_t EdgeCountHint() const override { return total_edges_; }
  std::uint64_t NumVerticesHint() const override { return num_vertices_; }

 private:
  explicit GeneratorEdgeStream(const GeneratorStreamOptions& options);

  GeneratorStreamOptions options_;
  SplitMix64 rng_{0};
  std::optional<ChungLuSampler> chung_lu_;
  std::uint64_t total_edges_ = 0;
  std::uint64_t num_vertices_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace dne

#endif  // DNE_GEN_GENERATOR_STREAM_H_
