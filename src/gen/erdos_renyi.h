// Erdos-Renyi G(n, m) generator: the unskewed random baseline used by tests
// and ablation benches.
#ifndef DNE_GEN_ERDOS_RENYI_H_
#define DNE_GEN_ERDOS_RENYI_H_

#include <cstdint>

#include "graph/edge_list.h"

namespace dne {

/// Samples `num_edges` endpoints uniformly from [0, num_vertices)^2.
/// Self-loops/duplicates may occur; Graph::Build removes them.
EdgeList GenerateErdosRenyi(std::uint64_t num_vertices,
                            std::uint64_t num_edges, std::uint64_t seed = 1);

}  // namespace dne

#endif  // DNE_GEN_ERDOS_RENYI_H_
