// Erdos-Renyi G(n, m) generator: the unskewed random baseline used by tests
// and ablation benches.
#ifndef DNE_GEN_ERDOS_RENYI_H_
#define DNE_GEN_ERDOS_RENYI_H_

#include <cstdint>

#include "common/random.h"
#include "graph/edge_list.h"

namespace dne {

/// Samples `num_edges` endpoints uniformly from [0, num_vertices)^2.
/// Self-loops/duplicates may occur; Graph::Build removes them.
EdgeList GenerateErdosRenyi(std::uint64_t num_vertices,
                            std::uint64_t num_edges, std::uint64_t seed = 1);

/// The RNG exactly as GenerateErdosRenyi primes it (shared with the chunked
/// GeneratorEdgeStream so batch and stream emit the same sequence).
inline SplitMix64 ErdosRenyiRng(std::uint64_t seed) {
  return SplitMix64(seed ^ 0x5bf03635ef1c5f1dULL);
}

/// Draws one uniform edge; the src endpoint is drawn strictly before dst, so
/// the sequence is well-defined across compilers.
inline Edge SampleErdosRenyiEdge(std::uint64_t num_vertices, SplitMix64& rng) {
  const VertexId u = rng.Below(num_vertices);
  const VertexId v = rng.Below(num_vertices);
  return Edge{u, v};
}

}  // namespace dne

#endif  // DNE_GEN_ERDOS_RENYI_H_
