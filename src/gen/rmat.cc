#include "gen/rmat.h"

#include "common/hash.h"

namespace dne {

Edge SampleRmatEdge(const RmatOptions& options, SplitMix64& rng) {
  const std::uint64_t n = 1ULL << options.scale;
  const double ab = options.a + options.b;
  const double abc = ab + options.c;
  std::uint64_t u = 0, v = 0;
  for (int bit = options.scale - 1; bit >= 0; --bit) {
    const double r = rng.NextDouble();
    if (r < options.a) {
      // upper-left quadrant: no bits set
    } else if (r < ab) {
      v |= 1ULL << bit;
    } else if (r < abc) {
      u |= 1ULL << bit;
    } else {
      u |= 1ULL << bit;
      v |= 1ULL << bit;
    }
  }
  if (options.scramble_ids) {
    // Permute ids with a fixed bijection (hash mod n works because n is a
    // power of two and Mix64 is a bijection on 64 bits; masking keeps it a
    // permutation of [0, n)).
    u = Mix64(u + 0xabcdef) & (n - 1);
    v = Mix64(v + 0xabcdef) & (n - 1);
  }
  return Edge{u, v};
}

EdgeList GenerateRmat(const RmatOptions& options) {
  const std::uint64_t n = 1ULL << options.scale;
  const std::uint64_t m =
      n * static_cast<std::uint64_t>(options.edge_factor);
  SplitMix64 rng = RmatRng(options);

  EdgeList list;
  list.Reserve(m);
  list.SetNumVertices(n);
  for (std::uint64_t i = 0; i < m; ++i) {
    const Edge e = SampleRmatEdge(options, rng);
    list.Add(e.src, e.dst);
  }
  return list;
}

}  // namespace dne
