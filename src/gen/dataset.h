// Dataset registry: scaled-down synthetic stand-ins for the paper's
// evaluation graphs (Table 2 real-world graphs and the Sec. 7.7 road
// networks). See DESIGN.md §1 for the substitution rationale.
#ifndef DNE_GEN_DATASET_H_
#define DNE_GEN_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace dne {

/// Descriptor of a named benchmark dataset.
struct DatasetInfo {
  std::string name;        ///< e.g. "pokec-sim"
  std::string paper_name;  ///< e.g. "Pokec" (Table 2)
  /// Category: "social", "web", "road".
  std::string kind;
  /// Paper-scale sizes, for the record.
  double paper_vertices_m = 0.0;  ///< millions
  double paper_edges_m = 0.0;     ///< millions
};

/// Names of the 7 skewed-graph stand-ins, in Table 2 order:
/// pokec-sim, flickr-sim, livej-sim, orkut-sim, twitter-sim,
/// friendster-sim, webuk-sim.
std::vector<DatasetInfo> SkewedDatasets();

/// Names of the 3 road-network stand-ins (Sec. 7.7): calif-road-sim,
/// penn-road-sim, texas-road-sim.
std::vector<DatasetInfo> RoadDatasets();

/// Materialises a dataset by name at a given scale shrink. `scale_shift`
/// halves the vertex count per unit (0 = the default ~1/1000-of-paper scale
/// used by the benches; negative values enlarge).
Status BuildDataset(const std::string& name, int scale_shift, Graph* out);

/// Convenience: BuildDataset with scale_shift 0; aborts on unknown name.
Graph MustBuildDataset(const std::string& name, int scale_shift = 0);

}  // namespace dne

#endif  // DNE_GEN_DATASET_H_
