// The ring + complete-graph construction from the tightness proof of
// Theorem 2: a complete graph K_n (n vertices, n(n-1)/2 edges) disjoint from
// a ring of n(n-1)/2 vertices (and as many edges).
#ifndef DNE_GEN_RING_COMPLETE_H_
#define DNE_GEN_RING_COMPLETE_H_

#include <cstdint>

#include "graph/edge_list.h"

namespace dne {

/// Builds the Theorem-2 graph for parameter n (n >= 3).
/// Vertices [0, n) form K_n; vertices [n, n + n(n-1)/2) form the ring.
/// Total: |V| = n(n-1)/2 + n, |E| = n(n-1).
EdgeList GenerateRingComplete(std::uint64_t n);

/// The partition count |P| = n(n-1)/2 that drives RF toward the upper bound.
std::uint64_t RingCompleteTightPartitions(std::uint64_t n);

}  // namespace dne

#endif  // DNE_GEN_RING_COMPLETE_H_
