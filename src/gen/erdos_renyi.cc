#include "gen/erdos_renyi.h"

namespace dne {

EdgeList GenerateErdosRenyi(std::uint64_t num_vertices,
                            std::uint64_t num_edges, std::uint64_t seed) {
  SplitMix64 rng = ErdosRenyiRng(seed);
  EdgeList list;
  list.Reserve(num_edges);
  list.SetNumVertices(num_vertices);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    const Edge e = SampleErdosRenyiEdge(num_vertices, rng);
    list.Add(e.src, e.dst);
  }
  return list;
}

}  // namespace dne
