#include "gen/erdos_renyi.h"

#include "common/random.h"

namespace dne {

EdgeList GenerateErdosRenyi(std::uint64_t num_vertices,
                            std::uint64_t num_edges, std::uint64_t seed) {
  SplitMix64 rng(seed ^ 0x5bf03635ef1c5f1dULL);
  EdgeList list;
  list.Reserve(num_edges);
  list.SetNumVertices(num_vertices);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    list.Add(rng.Below(num_vertices), rng.Below(num_vertices));
  }
  return list;
}

}  // namespace dne
