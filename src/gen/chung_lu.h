// Chung-Lu power-law generator: draws an explicit power-law degree sequence
// (Eq. (6) of the paper, d_min = 1) and samples edges proportional to degree
// products. Used to validate the Table 1 theoretical bounds empirically.
#ifndef DNE_GEN_CHUNG_LU_H_
#define DNE_GEN_CHUNG_LU_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/edge_list.h"

namespace dne {

struct ChungLuOptions {
  std::uint64_t num_vertices = 1 << 16;
  /// Power-law exponent alpha (typically 2 < alpha < 3).
  double alpha = 2.4;
  std::uint64_t min_degree = 1;
  /// Cap on sampled degrees; 0 means sqrt(num_vertices) (the standard
  /// structural-cutoff that keeps Chung-Lu simple sampling unbiased).
  std::uint64_t max_degree = 0;
  std::uint64_t seed = 1;
};

EdgeList GenerateChungLu(const ChungLuOptions& options);

/// Degree-proportional edge sampler behind GenerateChungLu, exposed so the
/// chunked GeneratorEdgeStream emits the identical sequence with O(V) state:
/// endpoints are drawn by inverse-CDF lookup into the cumulative degree
/// array, which selects exactly the vertex a flat stub array would at the
/// same random index — without materialising the O(E) stubs.
class ChungLuSampler {
 public:
  explicit ChungLuSampler(const ChungLuOptions& options);

  /// Draws one edge (two uniform draws, src strictly before dst).
  Edge Next();

  std::uint64_t num_edges() const { return total_stubs_ / 2; }
  std::uint64_t num_vertices() const { return cumulative_.size(); }

 private:
  SplitMix64 rng_;
  /// cumulative_[v] = sum of sampled degrees of vertices 0..v.
  std::vector<std::uint64_t> cumulative_;
  std::uint64_t total_stubs_ = 0;
};

}  // namespace dne

#endif  // DNE_GEN_CHUNG_LU_H_
