// Chung-Lu power-law generator: draws an explicit power-law degree sequence
// (Eq. (6) of the paper, d_min = 1) and samples edges proportional to degree
// products. Used to validate the Table 1 theoretical bounds empirically.
#ifndef DNE_GEN_CHUNG_LU_H_
#define DNE_GEN_CHUNG_LU_H_

#include <cstdint>

#include "graph/edge_list.h"

namespace dne {

struct ChungLuOptions {
  std::uint64_t num_vertices = 1 << 16;
  /// Power-law exponent alpha (typically 2 < alpha < 3).
  double alpha = 2.4;
  std::uint64_t min_degree = 1;
  /// Cap on sampled degrees; 0 means sqrt(num_vertices) (the standard
  /// structural-cutoff that keeps Chung-Lu simple sampling unbiased).
  std::uint64_t max_degree = 0;
  std::uint64_t seed = 1;
};

EdgeList GenerateChungLu(const ChungLuOptions& options);

}  // namespace dne

#endif  // DNE_GEN_CHUNG_LU_H_
