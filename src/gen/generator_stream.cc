#include "gen/generator_stream.h"

#include <algorithm>

namespace dne {

Status GeneratorEdgeStream::Open(const GeneratorStreamOptions& options,
                                 std::unique_ptr<GeneratorEdgeStream>* out) {
  if (options.chunk_edges == 0) {
    return Status::InvalidArgument("chunk_edges must be positive");
  }
  switch (options.kind) {
    case GeneratorStreamOptions::Kind::kRmat:
      if (options.rmat.scale < 1 || options.rmat.scale > 40) {
        return Status::InvalidArgument("rmat scale must be in [1, 40]");
      }
      if (options.rmat.edge_factor < 1) {
        return Status::InvalidArgument("rmat edge_factor must be positive");
      }
      break;
    case GeneratorStreamOptions::Kind::kErdosRenyi:
      if (options.erdos_renyi.num_vertices == 0) {
        return Status::InvalidArgument("num_vertices must be positive");
      }
      break;
    case GeneratorStreamOptions::Kind::kChungLu:
      if (options.chung_lu.num_vertices == 0) {
        return Status::InvalidArgument("num_vertices must be positive");
      }
      if (!(options.chung_lu.alpha > 1.0)) {  // negated to reject NaN too
        return Status::InvalidArgument("chung-lu alpha must exceed 1");
      }
      break;
  }
  out->reset(new GeneratorEdgeStream(options));
  return Status::OK();
}

GeneratorEdgeStream::GeneratorEdgeStream(const GeneratorStreamOptions& options)
    : options_(options) {
  // Reset() cannot fail after Open's validation.
  static_cast<void>(Reset());
}

Status GeneratorEdgeStream::Reset() {
  emitted_ = 0;
  switch (options_.kind) {
    case GeneratorStreamOptions::Kind::kRmat: {
      num_vertices_ = 1ULL << options_.rmat.scale;
      total_edges_ =
          num_vertices_ *
          static_cast<std::uint64_t>(options_.rmat.edge_factor);
      rng_ = RmatRng(options_.rmat);
      break;
    }
    case GeneratorStreamOptions::Kind::kErdosRenyi: {
      num_vertices_ = options_.erdos_renyi.num_vertices;
      total_edges_ = options_.erdos_renyi.num_edges;
      rng_ = ErdosRenyiRng(options_.erdos_renyi.seed);
      break;
    }
    case GeneratorStreamOptions::Kind::kChungLu: {
      // Rebuilding the sampler replays the degree-sequence draws, so the
      // replayed stream is identical to the first pass.
      chung_lu_.emplace(options_.chung_lu);
      num_vertices_ = chung_lu_->num_vertices();
      total_edges_ = chung_lu_->num_edges();
      break;
    }
  }
  return Status::OK();
}

Status GeneratorEdgeStream::NextChunk(std::vector<Edge>* out) {
  const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
      options_.chunk_edges, total_edges_ - emitted_));
  out->resize(n);
  switch (options_.kind) {
    case GeneratorStreamOptions::Kind::kRmat:
      for (std::size_t i = 0; i < n; ++i) {
        (*out)[i] = SampleRmatEdge(options_.rmat, rng_);
      }
      break;
    case GeneratorStreamOptions::Kind::kErdosRenyi:
      for (std::size_t i = 0; i < n; ++i) {
        (*out)[i] =
            SampleErdosRenyiEdge(options_.erdos_renyi.num_vertices, rng_);
      }
      break;
    case GeneratorStreamOptions::Kind::kChungLu:
      for (std::size_t i = 0; i < n; ++i) {
        (*out)[i] = chung_lu_->Next();
      }
      break;
  }
  emitted_ += n;
  return Status::OK();
}

}  // namespace dne
