#include "gen/ring_complete.h"

namespace dne {

EdgeList GenerateRingComplete(std::uint64_t n) {
  EdgeList list;
  const std::uint64_t ring_size = n * (n - 1) / 2;
  list.Reserve(n * (n - 1));
  // K_n on [0, n).
  for (std::uint64_t u = 0; u < n; ++u) {
    for (std::uint64_t v = u + 1; v < n; ++v) {
      list.Add(u, v);
    }
  }
  // Ring on [n, n + ring_size).
  for (std::uint64_t i = 0; i < ring_size; ++i) {
    list.Add(n + i, n + (i + 1) % ring_size);
  }
  return list;
}

std::uint64_t RingCompleteTightPartitions(std::uint64_t n) {
  return n * (n - 1) / 2;
}

}  // namespace dne
