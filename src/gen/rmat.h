// RMAT (recursive matrix) generator — the paper's synthetic workload
// (Sec. 7.1): Graph500 parameters, ScaleN = 2^N vertices, edge factor EF.
#ifndef DNE_GEN_RMAT_H_
#define DNE_GEN_RMAT_H_

#include <cstdint>

#include "common/random.h"
#include "graph/edge_list.h"

namespace dne {

/// Parameters of the RMAT model [12]. Defaults follow the Graph500
/// specification (a=0.57, b=0.19, c=0.19, d=0.05), the setting the paper uses.
struct RmatOptions {
  /// log2 of the number of vertices ("ScaleN is a graph with 2^N vertices").
  int scale = 16;
  /// Average edges per vertex; the paper sweeps EF in {2^4 .. 2^10}.
  int edge_factor = 16;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  // d = 1 - a - b - c.
  std::uint64_t seed = 1;
  /// Graph500-style vertex-id scrambling, decorrelating id and degree.
  bool scramble_ids = true;
};

/// Generates scale*edge_factor raw edge samples (duplicates and self-loops
/// included, as in the real model — Graph::Build deduplicates; the paper
/// notes DNE "compacts the duplicated edges" for high edge factors).
EdgeList GenerateRmat(const RmatOptions& options);

/// The RNG exactly as GenerateRmat primes it. Shared with the chunked
/// GeneratorEdgeStream so batch and stream emit the same edge sequence for
/// the same options.
inline SplitMix64 RmatRng(const RmatOptions& options) {
  return SplitMix64(options.seed * 0x9e3779b97f4a7c15ULL + 0x1234);
}

/// Draws one raw RMAT edge, advancing rng by exactly `scale` uniform draws.
Edge SampleRmatEdge(const RmatOptions& options, SplitMix64& rng);

}  // namespace dne

#endif  // DNE_GEN_RMAT_H_
